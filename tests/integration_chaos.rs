//! The chaos suite's integration gate: seeded random fault schedules
//! over both rack flavors with the lock-safety oracle attached, plus
//! the targeted regression tests for the hazards the chaos runs keep
//! probing (stale retry timers, duplicated grants, the lease-sweeper
//! release race) and sabotage runs proving the oracle is live.

use netlock_bench::chaos::{run_chaos_seed, run_chaos_seed_with, ChaosWorkload, Sabotage};
use netlock_core::prelude::*;
use netlock_proto::{
    ClientAddr, LockId, LockMode, LockRequest, NetLockMsg, Priority, ReleaseRequest, TenantId,
    TxnId,
};
use netlock_switch::SwitchNode;

/// The headline acceptance gate: 32 seeded fault schedules (16 per
/// rack flavor), every one clean under the oracle.
#[test]
fn thirty_two_seeded_schedules_stay_clean() {
    let runs = netlock_bench::chaos::run_suite(16);
    assert_eq!(runs.len(), 32);
    for r in &runs {
        assert!(
            r.is_clean(),
            "{}/{} violated:\n{}",
            r.workload.label(),
            r.seed,
            netlock_bench::chaos::render(std::slice::from_ref(r)),
        );
        assert!(
            r.plan_events > 0,
            "{}/{} had no faults",
            r.workload.label(),
            r.seed
        );
    }
    // The suite as a whole must actually have exercised the fault
    // machinery, not dodged it.
    let lost: u64 = runs.iter().map(|r| r.net_lost).sum();
    let dup: u64 = runs.iter().map(|r| r.net_duplicated).sum();
    let custom: usize = runs.iter().map(|r| r.custom_faults).sum();
    assert!(lost > 100, "schedules must drop packets: {lost}");
    assert!(dup > 100, "schedules must duplicate packets: {dup}");
    assert!(custom > 0, "schedules must reboot/restart nodes: {custom}");
}

/// Identical `(workload, seed)` must produce a byte-identical oracle
/// audit log — on this thread, and on any other thread.
#[test]
fn audit_log_is_byte_identical_across_runs_and_threads() {
    for workload in [ChaosWorkload::Micro, ChaosWorkload::Tpcc] {
        let here = run_chaos_seed(workload, 7).audit;
        let again = run_chaos_seed(workload, 7).audit;
        assert_eq!(here, again, "{} replay diverged", workload.label());
        let threads: Vec<_> = (0..2)
            .map(|_| std::thread::spawn(move || run_chaos_seed(workload, 7).audit))
            .collect();
        for t in threads {
            assert_eq!(
                here,
                t.join().expect("thread panicked"),
                "{} cross-thread run diverged",
                workload.label()
            );
        }
    }
}

/// Sabotage: with the switch's release guard disabled, duplicated or
/// stale releases double-pop FCFS queues. Some seed in the probe set
/// must produce an oracle violation — proving the mutual-exclusion
/// check is live, not vacuously green.
#[test]
fn oracle_catches_disabled_release_guard() {
    let sabotage = Sabotage {
        disable_release_guard: true,
        ..Default::default()
    };
    let mut caught = Vec::new();
    for seed in 0..12 {
        let r = run_chaos_seed_with(ChaosWorkload::Tpcc, seed, sabotage);
        if !r.is_clean() {
            caught = r.violations;
            break;
        }
    }
    assert!(
        !caught.is_empty(),
        "no probe seed tripped the oracle with the release guard off"
    );
    assert!(
        caught
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::MutualExclusion)),
        "expected a mutual-exclusion violation, got: {caught:?}"
    );
}

/// Sabotage: with the clients' surplus-grant release disabled, grants
/// for finished transactions are swallowed and their queue entries
/// strand. The oracle must flag the leak (as a leaked hold, a wedged
/// waiter behind it, or a conservation break).
#[test]
fn oracle_catches_disabled_surplus_release() {
    let sabotage = Sabotage {
        disable_surplus_release: true,
        ..Default::default()
    };
    let mut caught = Vec::new();
    for seed in 0..12 {
        let r = run_chaos_seed_with(ChaosWorkload::Tpcc, seed, sabotage);
        if !r.is_clean() {
            caught = r.violations;
            break;
        }
    }
    assert!(
        !caught.is_empty(),
        "no probe seed tripped the oracle with surplus release off"
    );
}

fn contended_rack() -> (Rack, Allocation) {
    let mut rack = Rack::build(RackConfig {
        seed: 23,
        lock_servers: 2,
        ..Default::default()
    });
    let stats: Vec<LockStats> = (0..8)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: 1.0,
            contention: 16,
            home_server: (l as usize) % 2,
        })
        .collect();
    let alloc = knapsack_allocate(&stats, 100_000);
    rack.program(&alloc);
    (rack, alloc)
}

/// Satellite: the surplus-grant release path under *forced* (p = 1)
/// duplication on both directions of a client's links. Every acquire,
/// grant and release crosses the wire twice; the client must ignore
/// network-duplicate grants, release retry duplicates exactly once,
/// and the switch's release guard must absorb the duplicated releases
/// — all without the oracle seeing a single violation.
#[test]
fn duplicated_grants_are_released_exactly_once() {
    let (mut rack, _alloc) = contended_rack();
    let switch = rack.switch;
    let client = rack.add_txn_client(
        TxnClientConfig {
            workers: 4,
            retry_timeout: SimDuration::from_millis(5),
            ..Default::default()
        },
        Box::new(SingleLockSource {
            locks: (0..8).map(LockId).collect(),
            mode: LockMode::Exclusive,
            think: SimDuration::from_micros(10),
        }),
    );
    for (src, dst) in [(client, switch), (switch, client)] {
        let mut cfg = rack.sim.topology().link(src, dst);
        cfg.faults.duplicate = 1.0;
        rack.sim.topology_mut().set_link(src, dst, cfg);
    }
    let oracle = attach_oracle(&mut rack, OracleConfig::default());
    rack.sim.run_for(SimDuration::from_millis(50));
    oracle.lock().unwrap().finish(rack.sim.now().as_nanos());

    let stats = rack
        .sim
        .read_node::<TxnClient, _>(client, |c| c.stats().clone());
    assert!(
        stats.txns > 100,
        "progress under duplication: {}",
        stats.txns
    );
    assert!(
        stats.dup_grants_ignored > 0,
        "same-stamp duplicate grants must be dropped, not released"
    );
    assert!(
        stats.stale_grants > 0,
        "duplicate queue entries must be shed via surplus releases"
    );
    let filtered = rack
        .sim
        .read_node::<SwitchNode, _>(switch, |s| s.stats().stale_releases_filtered);
    assert!(
        filtered > 0,
        "duplicated releases must be filtered by the release guard"
    );
    let o = oracle.lock().unwrap();
    assert!(
        o.is_clean(),
        "oracle must stay clean under forced duplication:\n{}",
        o.audit_log()
    );
    assert!(
        o.counts().dup_grant_deliveries > 0,
        "duplicates must have flowed"
    );
}

/// Satellite regression: a retry timer armed for one phase must never
/// fire into a later phase (the generation guard documented in
/// `client_txn.rs`). The retry timeout is tuned just above the
/// grant round-trip, so after every grant a stale timer is pending;
/// if the guard broke, each would double-issue an acquire and the
/// duplicate-entry grants would show up as retries/surplus releases.
#[test]
fn stale_retry_timer_never_double_issues() {
    let (mut rack, _alloc) = contended_rack();
    let a = netlock_core::txn::LockNeed {
        lock: LockId(0),
        mode: LockMode::Exclusive,
    };
    let b = netlock_core::txn::LockNeed {
        lock: LockId(1),
        mode: LockMode::Exclusive,
    };
    let think = SimDuration::from_micros(5);
    let src = move |_rng: &mut netlock_sim::SimRng| {
        netlock_core::txn::Transaction::new_ordered(vec![a, b], think)
    };
    // Round trip ≈ tx_delay + 2 × link + traversal ≈ 5 µs; every
    // transition happens with ~3 µs left on the armed retry timer.
    let client = rack.add_txn_client(
        TxnClientConfig {
            workers: 1,
            retry_timeout: SimDuration::from_micros(8),
            ..Default::default()
        },
        Box::new(src),
    );
    rack.sim.run_for(SimDuration::from_millis(50));
    let stats = rack
        .sim
        .read_node::<TxnClient, _>(client, |c| c.stats().clone());
    assert!(
        stats.txns > 100,
        "single worker must make progress: {}",
        stats.txns
    );
    assert_eq!(
        stats.retries, 0,
        "no packet was lost, so every retry is a stale timer firing"
    );
    assert_eq!(
        stats.stale_grants, 0,
        "a double-issued acquire would produce surplus grants"
    );
    assert_eq!(stats.dup_grants_ignored, 0);
}

/// Satellite regression: the lease-sweeper race. A holder's release
/// that arrives in the same sweep window as its lease expiry must not
/// pop the *next* holder's queue entry: the sweeper consumes the
/// grant's release credit when it force-frees the entry, so the late
/// release is filtered as stale and the new holder keeps the lock.
#[test]
fn release_racing_lease_sweep_cannot_free_live_holder() {
    use netlock_sim::{Context, Node, Packet, Simulator};
    use netlock_switch::control::apply_allocation;
    use netlock_switch::shared_queue::SharedQueueLayout;
    use netlock_switch::{DataPlane, SwitchConfig};

    struct Recorder(Vec<(u64, u64)>);
    impl Node<NetLockMsg> for Recorder {
        fn on_packet(&mut self, pkt: Packet<NetLockMsg>, ctx: &mut Context<'_, NetLockMsg>) {
            if let NetLockMsg::Grant(g) = pkt.payload {
                self.0.push((ctx.now().as_nanos(), g.txn.0));
            }
        }
        fn on_timer(&mut self, _t: u64, _c: &mut Context<'_, NetLockMsg>) {}
    }

    let lock = LockId(0);
    let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::small(2, 32, 4));
    apply_allocation(
        &mut dp,
        &knapsack_allocate(
            &[LockStats {
                lock,
                rate: 1.0,
                contention: 16,
                home_server: 0,
            }],
            16,
        ),
    );
    let mut sim: Simulator<NetLockMsg> = Simulator::with_seed(17);
    let client = sim.add_node(Box::new(Recorder(Vec::new())));
    let switch = sim.add_node(Box::new(SwitchNode::new(
        dp,
        SwitchConfig {
            lease: SimDuration::from_millis(1),
            control_tick: SimDuration::from_micros(100),
            ..Default::default()
        },
        vec![],
    )));
    let acq = |txn: u64, issued_at_ns: u64| {
        NetLockMsg::Acquire(LockRequest {
            lock,
            mode: LockMode::Exclusive,
            txn: TxnId(txn),
            client: ClientAddr(client.0),
            tenant: TenantId(0),
            priority: Priority(0),
            issued_at_ns,
        })
    };

    // txn 1 holds (lease runs out at 1 ms); txns 2 and 3 queue behind
    // it with fresher stamps.
    sim.inject(client, switch, acq(1, 0));
    sim.run_until(netlock_sim::SimTime(300_000));
    sim.inject(client, switch, acq(2, 300_000));
    sim.inject(client, switch, acq(3, 300_000));

    // Run past txn 1's expiry: the sweeper force-frees it and grants
    // txn 2.
    sim.run_until(netlock_sim::SimTime(1_150_000));
    let grants: Vec<u64> =
        sim.read_node::<Recorder, _>(client, |r| r.0.iter().map(|&(_, txn)| txn).collect());
    assert_eq!(grants, vec![1, 2], "sweeper must free the expired holder");
    let expirations = sim.read_node::<SwitchNode, _>(switch, |s| s.stats().lease_expirations);
    assert_eq!(expirations, 1);

    // txn 1's own release arrives in the same sweep window — the race.
    // Its credit was consumed by the sweeper, so it must be filtered,
    // NOT pop txn 2's live entry (which would grant txn 3 early).
    sim.inject(
        client,
        switch,
        NetLockMsg::Release(ReleaseRequest {
            lock,
            txn: TxnId(1),
            mode: LockMode::Exclusive,
            client: ClientAddr(client.0),
            priority: Priority(0),
        }),
    );
    sim.run_until(netlock_sim::SimTime(1_250_000));
    let grants: Vec<u64> =
        sim.read_node::<Recorder, _>(client, |r| r.0.iter().map(|&(_, txn)| txn).collect());
    assert_eq!(
        grants,
        vec![1, 2],
        "the stale release must not free the live holder's lock"
    );
    let filtered = sim.read_node::<SwitchNode, _>(switch, |s| s.stats().stale_releases_filtered);
    assert_eq!(filtered, 1, "the racing release must be filtered as stale");

    // Sanity: a *legitimate* release from txn 2 hands the lock to txn 3.
    sim.inject(
        client,
        switch,
        NetLockMsg::Release(ReleaseRequest {
            lock,
            txn: TxnId(2),
            mode: LockMode::Exclusive,
            client: ClientAddr(client.0),
            priority: Priority(0),
        }),
    );
    sim.run_until(netlock_sim::SimTime(1_350_000));
    let grants: Vec<u64> =
        sim.read_node::<Recorder, _>(client, |r| r.0.iter().map(|&(_, txn)| txn).collect());
    assert_eq!(grants, vec![1, 2, 3]);
}
