//! End-to-end gate for the multi-switch failover figure: the
//! replication sweep is oracle-clean, byte-identical across worker
//! counts (including oversubscribed), and shows the availability gap
//! the figure exists to plot.

use netlock_bench::failover::{render, run_sweep, Scale, FACTORS};
use netlock_core::prelude::*;

#[test]
fn failover_sweep_clean_and_byte_identical_at_1_2_8_workers() {
    let base = run_sweep(Scale::Quick, 1);
    for workers in [2usize, 8] {
        let other = run_sweep(Scale::Quick, workers);
        for (a, b) in base.iter().zip(&other) {
            assert_eq!(a.violations, 0, "factor {}: {}", a.replication, a.audit);
            assert_eq!(
                a.digest, b.digest,
                "factor {}: digest diverges at {workers} workers",
                a.replication
            );
            assert_eq!(
                a.audit, b.audit,
                "factor {}: audit diverges at {workers} workers",
                a.replication
            );
        }
    }
}

#[test]
fn failover_report_shows_availability_gap() {
    let runs = run_sweep(Scale::Quick, 2);
    let report = render(Scale::Quick, &runs);
    assert!(report.contains("crash_window_grants"), "{report}");
    assert!(report.contains("# timeline"), "{report}");
    let rows = report
        .lines()
        .filter(|l| FACTORS.iter().any(|f| l.starts_with(&format!("{f}\t2\t"))))
        .count();
    assert_eq!(rows, FACTORS.len(), "{report}");
    let partitions = FailoverConfig::default().partitions;
    let by_factor: Vec<u64> = runs
        .iter()
        .map(|r| r.crash_window_grants(partitions))
        .collect();
    assert!(
        by_factor[1] > by_factor[0] * 4 && by_factor[2] > by_factor[0] * 4,
        "replication must sustain the crash window: {by_factor:?}"
    );
    // Deeper chains never reduce safety: every verdict in the report is
    // CLEAN, so the gap is availability, not correctness.
    assert!(!report.contains("VIOLATED"), "{report}");
}
