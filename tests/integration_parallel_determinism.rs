//! Tier-1 contract for conservative *in-simulation* parallelism: a
//! partitioned cluster advanced by N worker threads must produce
//! byte-identical output for every N. This is stronger than the sweep
//! runner's determinism (`integration_determinism.rs`, which
//! parallelizes across independent simulations): here a *single*
//! scenario is split into per-rack logical processes that exchange
//! lookahead windows, and the TSV rows, per-rack stats and chaos-oracle
//! audit digests must not move by a byte between 1, 2 and 8 workers.

use netlock_bench::{fig09, TimeScale};
use netlock_core::prelude::*;
use netlock_proto::{LockId, LockMode};
use netlock_sim::{LinkConfig, SimDuration, SimTime};

fn tiny() -> TimeScale {
    TimeScale {
        warmup: SimDuration::from_millis(1),
        measure: SimDuration::from_millis(2),
    }
}

#[test]
fn fig09_cluster_tsv_identical_across_sim_worker_counts() {
    let baseline = fig09::render_cluster(tiny(), 2, 1);
    assert!(
        baseline
            .lines()
            .any(|l| !l.starts_with('#') && !l.is_empty()),
        "baseline cluster render produced no data rows"
    );
    for workers in [2, 8] {
        let out = fig09::render_cluster(tiny(), 2, workers);
        assert_eq!(
            out, baseline,
            "fig09 cluster output changed with {workers} simulation workers"
        );
    }
}

/// Builds a 2-rack cluster with micro clients, installs a per-rack
/// chaos plan (link faults + client crashes; no `Custom` actions), runs
/// it partitioned with `workers` threads, and returns each rack
/// oracle's audit digest plus its observed-fault count.
fn chaos_digests(workers: usize) -> Vec<(u64, u64)> {
    let cfg = RackConfig {
        seed: 21,
        lock_servers: 1,
        ..Default::default()
    };
    let cross = LinkConfig::with_delay(SimDuration::from_micros(10));
    let mut cluster = RackCluster::build(&cfg, 2, cross);
    let locks: Vec<LockId> = (0..16).map(LockId).collect();
    let stats: Vec<LockStats> = locks
        .iter()
        .map(|&lock| LockStats {
            lock,
            rate: 1.0,
            contention: 16,
            home_server: 0,
        })
        .collect();
    let alloc = knapsack_allocate(&stats, 10_000);
    for r in 0..2 {
        cluster.program(r, &alloc);
        for _ in 0..3 {
            cluster.add_micro_client(
                r,
                MicroClientConfig {
                    rate_rps: 100_000.0,
                    locks: locks.clone(),
                    mode: LockMode::Shared,
                    ..Default::default()
                },
            );
        }
    }
    let plans: Vec<_> = (0..2)
        .map(|r| generate_plan(90 + r as u64, &cluster.roles(r), &cluster_plan_config()))
        .collect();
    cluster.partition(workers);
    cluster.install_plans(&plans);
    let oracles = attach_rack_oracles(&mut cluster, &OracleConfig::default());
    run_cluster_chaos(&mut cluster, SimTime(50_000_000), &oracles);
    oracles
        .iter()
        .map(|o| {
            let o = o.lock().unwrap();
            (o.digest(), o.counts().faults)
        })
        .collect()
}

#[test]
fn chaos_oracle_digests_identical_across_sim_worker_counts() {
    let baseline = chaos_digests(1);
    assert!(
        baseline.iter().any(|&(_, faults)| faults > 0),
        "chaos plans injected no observable faults"
    );
    for workers in [2, 8] {
        assert_eq!(
            chaos_digests(workers),
            baseline,
            "chaos audit digests changed with {workers} simulation workers"
        );
    }
}
