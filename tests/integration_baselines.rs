//! Cross-system integration tests: the baselines behave per their
//! designs, and the comparative ordering the paper reports holds on a
//! common workload.

use netlock_baselines::{
    build_drtm, build_dslr, build_netchain, build_server_only, measure_drtm, measure_dslr,
    measure_netchain, DrtmClientConfig, DslrClientConfig, NcClientConfig, RdmaNicConfig,
};
use netlock_core::prelude::*;
use netlock_core::txn::SingleLockSource;
use netlock_proto::{LockId, LockMode};
use netlock_workloads::{TpccConfig, TpccSource};

fn micro_sources(n: usize, locks: u32, mode: LockMode) -> Vec<SingleLockSource> {
    (0..n)
        .map(|_| SingleLockSource {
            locks: (0..locks).map(LockId).collect(),
            mode,
            think: SimDuration::from_micros(5),
        })
        .collect()
}

fn tpcc_sources(n: usize) -> Vec<TpccSource> {
    let cfg = TpccConfig::low_contention(n as u32);
    (0..n).map(|_| TpccSource::new(cfg.clone())).collect()
}

const WARM: SimDuration = SimDuration(3_000_000);
const MEAS: SimDuration = SimDuration(15_000_000);

#[test]
fn dslr_respects_fcfs_and_nic_bound() {
    let mut rack = build_dslr(
        1,
        2,
        DslrClientConfig {
            workers: 16,
            ..Default::default()
        },
        RdmaNicConfig::default(),
        micro_sources(4, 512, LockMode::Exclusive),
    );
    let stats = measure_dslr(&mut rack, WARM, MEAS);
    assert!(stats.txns > 1_000, "txns = {}", stats.txns);
    // 2 NICs at 2.5 Mops, ≥2 atomics per lock: hard ceiling.
    assert!(
        stats.lock_rps() < 2.6e6,
        "DSLR cannot beat the atomics bound: {}",
        stats.lock_rps()
    );
}

#[test]
fn drtm_throughput_collapses_under_contention_vs_dslr() {
    // Single hot lock: DSLR queues fairly (bakery), DrTM burns retries.
    let dslr = {
        let mut rack = build_dslr(
            2,
            1,
            DslrClientConfig {
                workers: 16,
                ..Default::default()
            },
            RdmaNicConfig::default(),
            micro_sources(4, 1, LockMode::Exclusive),
        );
        measure_dslr(&mut rack, WARM, MEAS)
    };
    let drtm = {
        let mut rack = build_drtm(
            2,
            1,
            DrtmClientConfig {
                workers: 16,
                ..Default::default()
            },
            RdmaNicConfig::default(),
            micro_sources(4, 1, LockMode::Exclusive),
        );
        measure_drtm(&mut rack, WARM, MEAS)
    };
    // Blind retry wastes verbs and is deeply unfair; the bakery's FCFS
    // keeps the extreme tail bounded near the queue depth.
    assert!(drtm.retries > 0, "contention must cause CAS conflicts");
    let drtm_lat = drtm.txn_latency_summary();
    let dslr_lat = dslr.txn_latency_summary();
    let drtm_skew = drtm_lat.max_ns as f64 / drtm_lat.p50_ns.max(1) as f64;
    let dslr_skew = dslr_lat.max_ns as f64 / dslr_lat.p50_ns.max(1) as f64;
    assert!(
        drtm_skew > 2.0 * dslr_skew,
        "DrTM unfairness must dwarf DSLR's: DrTM skew {drtm_skew:.1} vs DSLR {dslr_skew:.1}"
    );
}

#[test]
fn netchain_penalizes_shared_workloads() {
    // All-shared traffic on few locks: NetChain (exclusive-only)
    // serializes what a real lock manager would run concurrently.
    let netchain = {
        let mut rack = build_netchain(
            3,
            100_000,
            NcClientConfig {
                workers: 16,
                ..Default::default()
            },
            micro_sources(4, 4, LockMode::Shared),
        );
        measure_netchain(&mut rack, WARM, MEAS)
    };
    // NetLock grants all shared requests immediately.
    let netlock = {
        let mut rack = Rack::build(RackConfig {
            seed: 3,
            lock_servers: 1,
            ..Default::default()
        });
        let stats: Vec<LockStats> = (0..4)
            .map(|l| LockStats {
                lock: LockId(l),
                rate: 1.0,
                contention: 128,
                home_server: 0,
            })
            .collect();
        rack.program(&knapsack_allocate(&stats, 1_000));
        for src in micro_sources(4, 4, LockMode::Shared) {
            rack.add_txn_client(
                TxnClientConfig {
                    workers: 16,
                    ..Default::default()
                },
                Box::new(src),
            );
        }
        warmup_and_measure(&mut rack, WARM, MEAS)
    };
    assert!(
        netlock.tps() > 2.0 * netchain.tps(),
        "shared-as-exclusive must cost NetChain: NetLock {} vs NetChain {}",
        netlock.tps(),
        netchain.tps()
    );
}

#[test]
fn tpcc_system_ordering_matches_paper() {
    // 6 clients, 2 servers, low contention — the paper's ordering:
    // NetLock > NetChain > DSLR > DrTM on transaction throughput.
    let clients = 6;
    let workers = 16;
    let netlock = {
        let spec = netlock_bench::TpccRackSpec {
            clients,
            lock_servers: 2,
            workers_per_client: workers,
            ..Default::default()
        };
        let mut rack = netlock_bench::build_netlock_tpcc(&spec);
        warmup_and_measure(&mut rack, WARM, MEAS)
    };
    let dslr = {
        let mut rack = build_dslr(
            4,
            2,
            DslrClientConfig {
                workers,
                ..Default::default()
            },
            RdmaNicConfig::default(),
            tpcc_sources(clients),
        );
        measure_dslr(&mut rack, WARM, MEAS)
    };
    let drtm = {
        let mut rack = build_drtm(
            4,
            2,
            DrtmClientConfig {
                workers,
                ..Default::default()
            },
            RdmaNicConfig::default(),
            tpcc_sources(clients),
        );
        measure_drtm(&mut rack, WARM, MEAS)
    };
    assert!(
        netlock.tps() > 2.0 * dslr.tps(),
        "NetLock {} must clearly beat DSLR {}",
        netlock.tps(),
        dslr.tps()
    );
    // At this scale both are near client-bound in low contention; the
    // decisive DrTM gap appears under contention (checked below) and in
    // the tail. Here we only require strict dominance.
    assert!(
        netlock.tps() > 1.2 * drtm.tps(),
        "NetLock {} must beat DrTM {}",
        netlock.tps(),
        drtm.tps()
    );
    // Tail latency: DrTM's blind retry gives the worst extreme tail.
    let drtm_tail = drtm.txn_latency_summary().p999_ns;
    let netlock_tail = netlock.txn_latency_summary().p999_ns;
    assert!(
        drtm_tail > netlock_tail,
        "DrTM tail {drtm_tail} should exceed NetLock tail {netlock_tail}"
    );
}

#[test]
fn high_contention_crushes_drtm() {
    // One warehouse per client: aborts and blind retries tank DrTM,
    // while NetLock's switch queues keep the pipeline moving (the
    // paper's 28–33× gaps live in this regime).
    let clients = 6;
    let workers = 16;
    let cfg = TpccConfig::high_contention(clients as u32);
    let netlock = {
        let spec = netlock_bench::TpccRackSpec {
            clients,
            lock_servers: 2,
            workers_per_client: workers,
            high_contention: true,
            ..Default::default()
        };
        let mut rack = netlock_bench::build_netlock_tpcc(&spec);
        warmup_and_measure(&mut rack, WARM, MEAS)
    };
    let drtm = {
        let sources: Vec<TpccSource> = (0..clients).map(|_| TpccSource::new(cfg.clone())).collect();
        let mut rack = build_drtm(
            4,
            2,
            DrtmClientConfig {
                workers,
                ..Default::default()
            },
            RdmaNicConfig::default(),
            sources,
        );
        measure_drtm(&mut rack, WARM, MEAS)
    };
    assert!(
        netlock.tps() > 2.5 * drtm.tps(),
        "high contention: NetLock {} vs DrTM {}",
        netlock.tps(),
        drtm.tps()
    );
    let aborts_visible = drtm.retries > 0;
    assert!(aborts_visible, "DrTM must be aborting/retrying here");
}

#[test]
fn server_only_is_cpu_bound() {
    let locks: Vec<LockId> = (0..2_048).map(LockId).collect();
    let mut rack = build_server_only(5, 1, 2, &locks);
    for _ in 0..6 {
        rack.add_micro_client(MicroClientConfig {
            rate_rps: 18e6,
            locks: locks.clone(),
            mode: LockMode::Exclusive,
            max_outstanding: 512,
            ..Default::default()
        });
    }
    let stats = warmup_and_measure(&mut rack, WARM, MEAS);
    // 2 cores × 222 ns/message ≈ 9 M messages/s ≈ 4.5 M grant+release
    // pairs: the offered 108 MRPS is irrelevant.
    let rps = stats.lock_rps();
    assert!(
        (2.0e6..5.5e6).contains(&rps),
        "server-only must sit at the CPU bound: {rps}"
    );
}
