//! Allocation-tracking integration test: installs the counting global
//! allocator and proves the per-packet hot paths are allocation-free
//! in steady state — the switch data plane processing every Algorithm 2
//! grant/release case into a reusable `ActionBuf`, and the server lock
//! table granting into its reusable out-buffer.
//!
//! These are the same claims `bench_sim` measures into
//! `BENCH_sim.json` (`allocs_per_packet`); here they are hard test
//! assertions, so a regression fails `cargo test`, not just CI's bench
//! smoke step.

use netlock_bench::{allocation_count, CountingAlloc};

/// Smallest allocation delta across up to 5 runs of `pass`. The
/// counting allocator is process-global, so a libtest watchdog thread
/// (or any other runtime thread) occasionally drops an allocation or
/// two inside the measured window — observed as a rare 2-alloc flake
/// on loaded hosts. A genuine per-packet allocation fires on *every*
/// pass (thousands of packets each), so `min == 0` keeps the
/// assertion's teeth while transient off-thread noise cannot fail it.
fn min_allocs_over_passes(mut pass: impl FnMut()) -> u64 {
    let mut min = u64::MAX;
    for _ in 0..5 {
        let before = allocation_count();
        pass();
        min = min.min(allocation_count() - before);
        if min == 0 {
            break;
        }
    }
    min
}
use netlock_proto::{
    ClientAddr, LockId, LockMode, LockRequest, NetLockMsg, Priority, ReleaseRequest, TenantId,
    TxnId,
};
use netlock_server::LockTable;
use netlock_switch::control::{apply_allocation, knapsack_allocate, LockStats};
use netlock_switch::shared_queue::SharedQueueLayout;
use netlock_switch::{ActionBuf, DataPlane};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn acquire(lock: u32, txn: u64, mode: LockMode) -> NetLockMsg {
    NetLockMsg::Acquire(LockRequest {
        lock: LockId(lock),
        mode,
        txn: TxnId(txn),
        client: ClientAddr(1),
        tenant: TenantId(0),
        priority: Priority(0),
        issued_at_ns: 0,
    })
}

fn release(lock: u32, txn: u64, mode: LockMode) -> NetLockMsg {
    NetLockMsg::Release(ReleaseRequest {
        lock: LockId(lock),
        txn: TxnId(txn),
        mode,
        client: ClientAddr(1),
        priority: Priority(0),
    })
}

fn contended_dp() -> DataPlane {
    let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::small(4, 4_096, 16));
    let stats: Vec<LockStats> = (0..16)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: 1.0,
            contention: 64,
            home_server: 0,
        })
        .collect();
    apply_allocation(&mut dp, &knapsack_allocate(&stats, 4_096 * 4));
    dp
}

/// Steady-state `DataPlane::process` performs zero heap allocation:
/// uncontended grants, queued waiters, exclusive handoffs and the X→S
/// shared cascade all run entirely in preallocated structures.
#[test]
fn dataplane_steady_state_is_allocation_free() {
    let mut dp = contended_dp();
    let mut out = ActionBuf::new();
    let mut txn = 0u64;
    // Warm-up: reach steady shape (intern tables, scratch buffers,
    // queue regions) across every case the loop below exercises.
    for _ in 0..2 {
        for lock in 0..16u32 {
            // Uncontended X, X→X handoff, X→S cascade, S→S release.
            dp.process(acquire(lock, txn, LockMode::Exclusive), 0, &mut out);
            dp.process(acquire(lock, txn + 1, LockMode::Exclusive), 0, &mut out);
            dp.process(release(lock, txn, LockMode::Exclusive), 0, &mut out);
            for k in 0..4 {
                dp.process(acquire(lock, txn + 2 + k, LockMode::Shared), 0, &mut out);
            }
            dp.process(release(lock, txn + 1, LockMode::Exclusive), 0, &mut out);
            for k in 0..4 {
                dp.process(release(lock, txn + 2 + k, LockMode::Shared), 0, &mut out);
            }
            txn += 6;
        }
    }
    let allocs = min_allocs_over_passes(|| {
        for _ in 0..100 {
            for lock in 0..16u32 {
                dp.process(acquire(lock, txn, LockMode::Exclusive), 0, &mut out);
                dp.process(acquire(lock, txn + 1, LockMode::Exclusive), 0, &mut out);
                dp.process(release(lock, txn, LockMode::Exclusive), 0, &mut out);
                for k in 0..4 {
                    dp.process(acquire(lock, txn + 2 + k, LockMode::Shared), 0, &mut out);
                }
                dp.process(release(lock, txn + 1, LockMode::Exclusive), 0, &mut out);
                for k in 0..4 {
                    dp.process(release(lock, txn + 2 + k, LockMode::Shared), 0, &mut out);
                }
                txn += 6;
            }
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state packet path allocated {allocs} times over 17600 packets"
    );
}

/// Steady-state `LockTable::release` into the reusable out-buffer is
/// allocation-free once holders/waiters reach steady capacity.
#[test]
fn lock_table_steady_state_is_allocation_free() {
    let mut table = LockTable::new();
    let mut grants: Vec<LockRequest> = Vec::new();
    let req = |lock: u32, txn: u64| LockRequest {
        lock: LockId(lock),
        mode: LockMode::Exclusive,
        txn: TxnId(txn),
        client: ClientAddr(1),
        tenant: TenantId(0),
        priority: Priority(0),
        issued_at_ns: txn,
    };
    let mut txn = 0u64;
    // Warm-up: a standing waiter per lock so every release promotes.
    for lock in 0..16u32 {
        table.acquire(req(lock, txn));
        table.acquire(req(lock, txn + 1));
        grants.clear();
        table.release(LockId(lock), TxnId(txn), &mut grants);
        table.acquire(req(lock, txn + 2));
        grants.clear();
        table.release(LockId(lock), TxnId(txn + 1), &mut grants);
        grants.clear();
        table.release(LockId(lock), TxnId(txn + 2), &mut grants);
        txn += 3;
    }
    let allocs = min_allocs_over_passes(|| {
        for _ in 0..1_000 {
            for lock in 0..16u32 {
                table.acquire(req(lock, txn));
                table.acquire(req(lock, txn + 1));
                grants.clear();
                table.release(LockId(lock), TxnId(txn), &mut grants);
                assert_eq!(grants.len(), 1);
                grants.clear();
                table.release(LockId(lock), TxnId(txn + 1), &mut grants);
                assert!(grants.is_empty());
                txn += 2;
            }
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state lock table allocated {allocs} times over 32000 ops"
    );
}

/// The aggregate population path is allocation-*light*, not
/// allocation-free: each quantum allocates the boxed request batch and
/// the grant-coalescing buffers, amortized over the hundreds of
/// requests the batch carries. Steady state must stay well under one
/// allocation per request — the per-packet paths inside (data plane,
/// release guard, action buffer) remain alloc-free as proven above.
#[test]
fn population_steady_state_allocates_sublinearly_in_requests() {
    use netlock_core::prelude::*;

    let mut rack = Rack::build(RackConfig {
        seed: 77,
        lock_servers: 1,
        engine: EngineSpec::Fcfs(netlock_switch::shared_queue::SharedQueueLayout::small(
            2, 16_384, 64,
        )),
        ..Default::default()
    });
    let stats: Vec<LockStats> = (0..64)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: 1.0,
            contention: 64,
            home_server: 0,
        })
        .collect();
    rack.program(&knapsack_allocate(&stats, 32_000));
    rack.add_population_client(PopulationConfig {
        tenants: vec![TenantSpec {
            virtual_clients: 100_000,
            rate_rps_per_client: 10.0,
            locks: (0..64).map(LockId).collect(),
            max_outstanding: 1 << 20,
            ..Default::default()
        }],
        ..Default::default()
    });
    // Warm-up: reach steady batch sizes, grown scratch buffers, grown
    // hash tables.
    rack.sim.run_for(SimDuration::from_millis(20));
    let issued_before = rack
        .sim
        .read_node::<PopulationClient, _>(rack.clients[0].0, |c| c.stats().issued);
    let allocs_before = allocation_count();
    rack.sim.run_for(SimDuration::from_millis(20));
    let allocs = allocation_count() - allocs_before;
    let issued = rack
        .sim
        .read_node::<PopulationClient, _>(rack.clients[0].0, |c| c.stats().issued)
        - issued_before;
    assert!(issued > 10_000, "scenario too small: {issued} requests");
    let per_request = allocs as f64 / issued as f64;
    assert!(
        per_request < 0.25,
        "{allocs} allocations over {issued} requests = {per_request:.3}/request"
    );
}
