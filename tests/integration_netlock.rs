//! End-to-end correctness of the NetLock rack: mutual exclusion,
//! shared-mode concurrency, FCFS ordering, and conservation of grants,
//! checked through the public API with a recording client.

use netlock_core::prelude::*;
use netlock_proto::{
    ClientAddr, GrantMsg, LockId, LockMode, LockRequest, NetLockMsg, Priority, ReleaseRequest,
    TenantId, TxnId,
};
use netlock_sim::{Context, Node, NodeId, Packet, SimTime};

/// A scripted client that issues a fixed acquire schedule and records
/// every (grant, release) interval for auditing.
struct AuditClient {
    switch: NodeId,
    /// (send_at, lock, mode, hold_ns)
    script: Vec<(u64, LockId, LockMode, u64)>,
    /// (lock, mode, grant_time, release_time) per grant.
    pub intervals: Vec<(LockId, LockMode, u64, u64)>,
    /// Grant order per lock, by txn id.
    pub grant_order: Vec<(LockId, TxnId)>,
    next: usize,
}

const TIMER_NEXT: u64 = 0;
const TIMER_RELEASE_BASE: u64 = 1 << 32;

impl AuditClient {
    fn new(switch: NodeId, script: Vec<(u64, LockId, LockMode, u64)>) -> AuditClient {
        AuditClient {
            switch,
            script,
            intervals: Vec::new(),
            grant_order: Vec::new(),
            next: 0,
        }
    }

    fn schedule_next(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        if let Some(&(at, _, _, _)) = self.script.get(self.next) {
            let delay = netlock_sim::SimDuration(at.saturating_sub(ctx.now().as_nanos()));
            ctx.set_timer(delay, TIMER_NEXT);
        }
    }
}

impl Node<NetLockMsg> for AuditClient {
    fn on_start(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        self.schedule_next(ctx);
    }

    fn on_packet(&mut self, pkt: Packet<NetLockMsg>, ctx: &mut Context<'_, NetLockMsg>) {
        if let NetLockMsg::Grant(GrantMsg {
            lock, txn, mode, ..
        }) = pkt.payload
        {
            let idx = txn.0 as usize;
            let hold = self.script[idx].3;
            self.grant_order.push((lock, txn));
            self.intervals.push((
                lock,
                mode,
                ctx.now().as_nanos(),
                ctx.now().as_nanos() + hold,
            ));
            ctx.set_timer(
                netlock_sim::SimDuration(hold),
                TIMER_RELEASE_BASE + idx as u64,
            );
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, NetLockMsg>) {
        if token == TIMER_NEXT {
            let idx = self.next;
            let (_, lock, mode, _) = self.script[idx];
            self.next += 1;
            let me = ctx.self_id();
            ctx.send(
                self.switch,
                NetLockMsg::Acquire(LockRequest {
                    lock,
                    mode,
                    txn: TxnId(idx as u64),
                    client: ClientAddr(me.0),
                    tenant: TenantId(0),
                    priority: Priority(0),
                    issued_at_ns: ctx.now().as_nanos(),
                }),
            );
            self.schedule_next(ctx);
        } else if token >= TIMER_RELEASE_BASE {
            let idx = (token - TIMER_RELEASE_BASE) as usize;
            let (_, lock, mode, _) = self.script[idx];
            let me = ctx.self_id();
            ctx.send(
                self.switch,
                NetLockMsg::Release(ReleaseRequest {
                    lock,
                    txn: TxnId(idx as u64),
                    mode,
                    client: ClientAddr(me.0),
                    priority: Priority(0),
                }),
            );
        }
    }
}

fn audit_rack(locks: u32, capacity: u32) -> Rack {
    let mut rack = Rack::build(RackConfig {
        seed: 5,
        lock_servers: 1,
        ..Default::default()
    });
    let stats: Vec<LockStats> = (0..locks)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: 1.0,
            contention: 64,
            home_server: 0,
        })
        .collect();
    rack.program(&knapsack_allocate(&stats, capacity));
    rack
}

/// Exclusive holds on one lock must never overlap, across clients.
#[test]
fn exclusive_holds_never_overlap() {
    let mut rack = audit_rack(4, 1_000);
    let switch = rack.switch;
    let mut clients = Vec::new();
    for c in 0..4 {
        // Dense schedule: everyone hammers lock 0 with 20 µs holds.
        let script: Vec<(u64, LockId, LockMode, u64)> = (0..50)
            .map(|i| {
                (
                    (i * 30_000 + c * 7_000) as u64,
                    LockId(0),
                    LockMode::Exclusive,
                    20_000,
                )
            })
            .collect();
        clients.push(
            rack.sim
                .add_node(Box::new(AuditClient::new(switch, script))),
        );
    }
    rack.sim.run_until(SimTime(50 * 30_000 * 10));
    let mut holds: Vec<(u64, u64)> = Vec::new();
    for &c in &clients {
        rack.sim.read_node::<AuditClient, _>(c, |a| {
            for &(_, mode, g, r) in &a.intervals {
                assert_eq!(mode, LockMode::Exclusive);
                holds.push((g, r));
            }
        });
    }
    assert!(
        holds.len() >= 150,
        "most acquires should complete: {}",
        holds.len()
    );
    holds.sort_unstable();
    for w in holds.windows(2) {
        assert!(
            w[1].0 >= w[0].1,
            "exclusive holds overlap: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
}

/// Shared holds are allowed to overlap each other but never an
/// exclusive hold.
#[test]
fn shared_overlap_but_exclude_writers() {
    let mut rack = audit_rack(2, 1_000);
    let switch = rack.switch;
    let mut clients = Vec::new();
    for c in 0..3 {
        let mode = if c == 0 {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        };
        let script: Vec<(u64, LockId, LockMode, u64)> = (0..40)
            .map(|i| ((i * 50_000 + c * 11_000) as u64, LockId(1), mode, 25_000))
            .collect();
        clients.push(
            rack.sim
                .add_node(Box::new(AuditClient::new(switch, script))),
        );
    }
    rack.sim.run_until(SimTime(40 * 50_000 * 10));
    let mut x_holds: Vec<(u64, u64)> = Vec::new();
    let mut s_holds: Vec<(u64, u64)> = Vec::new();
    for &c in &clients {
        rack.sim.read_node::<AuditClient, _>(c, |a| {
            for &(_, mode, g, r) in &a.intervals {
                match mode {
                    LockMode::Exclusive => x_holds.push((g, r)),
                    LockMode::Shared => s_holds.push((g, r)),
                }
            }
        });
    }
    assert!(!x_holds.is_empty() && !s_holds.is_empty());
    // No shared hold may overlap an exclusive hold.
    for &(xg, xr) in &x_holds {
        for &(sg, sr) in &s_holds {
            assert!(sr <= xg || sg >= xr, "S [{sg},{sr}] overlaps X [{xg},{xr}]");
        }
    }
    // Sanity: some shared holds actually overlapped each other.
    let mut sorted = s_holds.clone();
    sorted.sort_unstable();
    let overlapping = sorted.windows(2).filter(|w| w[1].0 < w[0].1).count();
    assert!(overlapping > 0, "shared mode should allow concurrency");
}

/// FCFS: grants for one lock follow issue order when requests are
/// spaced beyond network jitter.
#[test]
fn fcfs_grant_order() {
    let mut rack = audit_rack(1, 64);
    let switch = rack.switch;
    // One client issues ordered requests 40 µs apart; the lock is held
    // 200 µs each time, so a queue forms and drains in order.
    let script: Vec<(u64, LockId, LockMode, u64)> = (0..20)
        .map(|i| ((i * 40_000) as u64, LockId(0), LockMode::Exclusive, 200_000))
        .collect();
    let c = rack
        .sim
        .add_node(Box::new(AuditClient::new(switch, script)));
    rack.sim.run_until(SimTime(20 * 300_000 * 10));
    rack.sim.read_node::<AuditClient, _>(c, |a| {
        assert_eq!(a.grant_order.len(), 20, "all requests granted");
        for (i, &(_, txn)) in a.grant_order.iter().enumerate() {
            assert_eq!(txn, TxnId(i as u64), "grant {i} out of FCFS order");
        }
    });
}

/// Every grant is eventually matched by exactly one release and the
/// queues drain (conservation through the whole rack).
#[test]
fn grants_conserve_and_queues_drain() {
    // Capacity 512 = 8 locks × 64 slots: every lock is switch-resident.
    let mut rack = audit_rack(8, 512);
    let switch = rack.switch;
    let script: Vec<(u64, LockId, LockMode, u64)> = (0..100)
        .map(|i| {
            (
                (i * 10_000) as u64,
                LockId((i % 8) as u32),
                LockMode::Exclusive,
                5_000,
            )
        })
        .collect();
    let c = rack
        .sim
        .add_node(Box::new(AuditClient::new(switch, script)));
    rack.sim.run_until(SimTime(1_000_000_000));
    rack.sim.read_node::<AuditClient, _>(c, |a| {
        assert_eq!(a.intervals.len(), 100);
    });
    // After everything releases, all switch queues must be empty.
    rack.sim
        .read_node::<netlock_switch::SwitchNode, _>(switch, |s| {
            if let netlock_switch::Engine::Fcfs(q) = s.dataplane().engine() {
                for qid in 0..8 {
                    assert_eq!(q.cp_region(qid).count, 0, "queue {qid} not drained");
                }
            } else {
                panic!("expected FCFS engine");
            }
            let d = s.dataplane().stats();
            assert_eq!(d.grants_immediate + d.grants_on_release, 100);
        });
}

/// The same run twice gives bit-identical results (determinism across
/// the whole stack).
#[test]
fn end_to_end_determinism() {
    let run = || {
        let mut rack = audit_rack(4, 64);
        let switch = rack.switch;
        let script: Vec<(u64, LockId, LockMode, u64)> = (0..60)
            .map(|i| {
                (
                    (i * 7_000) as u64,
                    LockId((i % 4) as u32),
                    if i % 3 == 0 {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    },
                    9_000,
                )
            })
            .collect();
        let c = rack
            .sim
            .add_node(Box::new(AuditClient::new(switch, script)));
        rack.sim.run_until(SimTime(100_000_000));
        rack.sim
            .read_node::<AuditClient, _>(c, |a| a.intervals.clone())
    };
    assert_eq!(run(), run());
}
