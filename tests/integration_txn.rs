//! Transaction-IR integration: the declarative FCFS grant-path program
//! (`switch::txn::netlock`) is differential-tested against the real
//! `SharedQueue` admission path it models, and the lowered executor is
//! held to the same zero-allocation steady-state standard as the
//! hand-written data plane (`integration_alloc.rs`).
//!
//! The queue differential drives identical shared/exclusive request
//! sequences through `SharedQueue::enqueue` and the lowered
//! `TxnProgram`, then compares per-request outcomes (grant / queue /
//! full) and the final register state: occupancy, exclusive count,
//! arrival counter, tail position, and the per-slot modes.

use netlock_bench::{allocation_count, CountingAlloc};
use netlock_proto::{ClientAddr, LockMode, Priority, TenantId, TxnId};
use netlock_switch::analysis::layout::TofinoBudget;
use netlock_switch::control::{apply_allocation, knapsack_allocate, LockStats};
use netlock_switch::engine::{FcfsEngine, PassAllocator};
use netlock_switch::shared_queue::{EnqueueOutcome, SharedQueue, SharedQueueLayout};
use netlock_switch::slot::Slot;
use netlock_switch::txn::netlock::{
    fcfs_enqueue_program, ARR_COUNT, ARR_EXCL, ARR_REQ_COUNT, ARR_SLOTS, ARR_TAIL, EMIT_FULL,
    EMIT_GRANTED, EMIT_QUEUED,
};
use netlock_switch::txn::{LoweredTxn, TxnAction};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn slot_for(mode: LockMode, txn: u64) -> Slot {
    Slot {
        valid: true,
        mode,
        txn: TxnId(txn),
        client: ClientAddr(1),
        tenant: TenantId(0),
        priority: Priority(0),
        issued_at_ns: 0,
        granted: false,
        granted_at_ns: 0,
    }
}

fn outcome_of(actions: &[TxnAction]) -> EnqueueOutcome {
    assert_eq!(actions.len(), 1, "program must emit exactly one verdict");
    match actions[0].kind {
        EMIT_GRANTED => EnqueueOutcome::Granted,
        EMIT_QUEUED => EnqueueOutcome::Queued,
        EMIT_FULL => EnqueueOutcome::Full,
        other => panic!("unexpected emit kind {other}"),
    }
}

/// The transaction program and the real shared queue agree on every
/// admission decision and on the final register state, across random
/// enqueue-only request sequences at several capacities.
#[test]
fn txn_program_matches_shared_queue_admission() {
    let budget = TofinoBudget::tofino_single_direction();
    let mut rng = SmallRng::seed_from_u64(0x6e65_746c_6f63_6b00);
    for cap in 1u32..=6 {
        let program = fcfs_enqueue_program(cap);
        for trial in 0..32u64 {
            let mut lowered = LoweredTxn::compile(program.clone(), &budget).unwrap();
            let mut queue = SharedQueue::new(&SharedQueueLayout::small(1, 16, 4));
            queue.cp_set_region(0, 0, cap);
            let mut passes = PassAllocator::new();
            let mut actions = Vec::new();
            let requests = cap * 2; // overfill so Full paths are hit
            for txn in 0..u64::from(requests) {
                let mode = if rng.random::<bool>() {
                    LockMode::Exclusive
                } else {
                    LockMode::Shared
                };
                let mut pass = passes.begin(0);
                let real = queue.enqueue(&mut pass, 0, slot_for(mode, txn));
                actions.clear();
                let is_excl = u64::from(mode == LockMode::Exclusive);
                lowered.run(&[is_excl], &mut actions);
                assert_eq!(
                    outcome_of(&actions),
                    real,
                    "cap {cap} trial {trial}: verdict diverged at request {txn}"
                );
            }
            // Final-state comparison. No releases were issued, so the
            // real head is still 0 and `cp_entries` (head-first order)
            // lines up with slot offsets.
            let state = lowered.dump();
            let region = queue.cp_region(0);
            assert_eq!(state[ARR_COUNT][0] as u32, region.count, "cap {cap}");
            assert_eq!(state[ARR_EXCL][0] as u32, region.excl, "cap {cap}");
            assert_eq!(
                state[ARR_TAIL][0] as u32 % cap,
                region.tail,
                "cap {cap}: monotone txn tail must wrap to the real tail"
            );
            assert_eq!(state[ARR_REQ_COUNT][0], u64::from(requests));
            assert_eq!(queue.cp_take_req_count(0), u64::from(requests));
            for (offset, entry) in queue.cp_entries(0).into_iter().enumerate() {
                let want = if entry.valid {
                    // Slot encoding in the transaction: mode + 1.
                    1 + u64::from(entry.mode == LockMode::Exclusive)
                } else {
                    0
                };
                assert_eq!(
                    state[ARR_SLOTS][offset], want,
                    "cap {cap} trial {trial}: slot {offset} mode diverged"
                );
            }
        }
    }
}

/// The hook points hand out the same program the differential above
/// validated: per-queue from the data plane, per-capacity from the
/// engine.
#[test]
fn hook_points_expose_the_grant_path_program() {
    let mut dp = netlock_switch::DataPlane::new_fcfs(&SharedQueueLayout::small(2, 8, 4));
    let stats: Vec<LockStats> = (0..4)
        .map(|l| LockStats {
            lock: netlock_proto::LockId(l),
            rate: 1.0,
            contention: 4,
            home_server: 0,
        })
        .collect();
    apply_allocation(&mut dp, &knapsack_allocate(&stats, 16));
    let cap = match dp.engine() {
        netlock_switch::Engine::Fcfs(q) => q.cp_region(0).capacity(),
        netlock_switch::Engine::Priority(_) => unreachable!(),
    };
    let from_dp = dp.grant_path_txn(0).expect("region 0 has capacity");
    let from_engine = FcfsEngine::grant_txn_program(cap);
    assert_eq!(from_dp, from_engine);
    let budget = TofinoBudget::tofino_single_direction();
    netlock_switch::txn::verify(from_dp, &budget)
        .unwrap_or_else(|e| panic!("grant-path program must verify: {e}"));
}

/// Steady-state lowered execution of the grant-path transaction is
/// allocation-free: packets run entirely in the structures `compile`
/// preallocated, matching the hand-written data plane's bar.
#[test]
fn lowered_txn_steady_state_is_allocation_free() {
    let cap = 8u32;
    let budget = TofinoBudget::tofino_single_direction();
    let mut lowered = LoweredTxn::compile(fcfs_enqueue_program(cap), &budget).unwrap();
    let mut actions = Vec::new();
    // Warm-up: fill the region once (grant + queue paths) and overflow
    // it (full path), then reset — the action buffer reaches capacity.
    for txn in 0..u64::from(cap) * 2 {
        actions.clear();
        lowered.run(&[txn % 2], &mut actions);
    }
    lowered.cp_reset();
    let before = allocation_count();
    let mut packets = 0u64;
    for _ in 0..1_000 {
        for txn in 0..u64::from(cap) * 2 {
            actions.clear();
            lowered.run(&[txn % 2], &mut actions);
            packets += 1;
        }
        lowered.cp_reset();
    }
    let allocs = allocation_count() - before;
    assert_eq!(
        allocs, 0,
        "steady-state lowered transaction allocated {allocs} times over {packets} packets"
    );
}
