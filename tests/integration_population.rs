//! Integration gates for the aggregate client-population subsystem:
//! worker-count-independent flash-crowd TSVs, chaos-oracle conservation
//! over batched traffic, sabotage proving the oracle stays live when
//! the traffic arrives in batches, crash-exemption for aggregate
//! nodes, and the wall-clock advantage over per-client simulation.

use netlock_bench::chaos::{
    build_population_chaos_rack, run_chaos_seed, run_chaos_seed_with, ChaosWorkload, Sabotage,
};
use netlock_bench::flash_crowd::{self, FlashCrowdSpec};
use netlock_core::prelude::*;
use netlock_sim::{FaultAction, SimDuration};

/// The flash-crowd TSV is a pure function of the spec: partitioning
/// the racks across 1, 2 or 8 worker threads must not change a byte.
#[test]
fn flash_crowd_tsv_is_byte_identical_at_1_2_and_8_workers() {
    let spec = FlashCrowdSpec {
        virtual_clients: 80_000,
        racks: 8,
        ..FlashCrowdSpec::quick()
    };
    let one = flash_crowd::render(&spec, 1);
    assert!(one.lines().count() > spec.racks, "series rendered empty");
    assert_eq!(one, flash_crowd::render(&spec, 2), "2 workers diverged");
    assert_eq!(one, flash_crowd::render(&spec, 8), "8 workers diverged");
}

/// Seeded fault schedules over the population rack: every run clean
/// under the oracle — grant/release conservation holds even though
/// requests, grants and releases all travel as batches — and the runs
/// collectively exercise the fault machinery.
#[test]
fn population_chaos_seeds_stay_clean() {
    let mut lost = 0;
    let mut duplicated = 0;
    for seed in 0..8 {
        let r = run_chaos_seed(ChaosWorkload::Population, seed);
        assert!(
            r.is_clean(),
            "population/{seed} violated:\n{:?}",
            r.violations
        );
        assert!(r.plan_events > 0, "population/{seed} had no faults");
        assert!(r.grants > 0, "population/{seed} made no progress");
        lost += r.net_lost;
        duplicated += r.net_duplicated;
    }
    assert!(lost > 50, "schedules must drop packets: {lost}");
    assert!(
        duplicated > 50,
        "schedules must duplicate packets: {duplicated}"
    );
}

/// The population run's oracle audit log is a pure function of the
/// seed, on this thread and any other.
#[test]
fn population_chaos_audit_is_byte_identical_across_threads() {
    let here = run_chaos_seed(ChaosWorkload::Population, 5).audit;
    assert_eq!(
        here,
        run_chaos_seed(ChaosWorkload::Population, 5).audit,
        "replay diverged"
    );
    let threads: Vec<_> = (0..2)
        .map(|_| std::thread::spawn(|| run_chaos_seed(ChaosWorkload::Population, 5).audit))
        .collect();
    for t in threads {
        assert_eq!(
            here,
            t.join().expect("thread panicked"),
            "cross-thread run diverged"
        );
    }
}

/// Sabotage: with the switch's release guard off, duplicated releases
/// from the aggregate double-pop the exclusive tenant's FCFS queue.
/// Some probe seed must trip the oracle — batching the traffic must
/// not blind the conservation/mutual-exclusion checks.
#[test]
fn release_guard_sabotage_is_caught_under_population_traffic() {
    let sabotage = Sabotage {
        disable_release_guard: true,
        ..Default::default()
    };
    let mut caught = Vec::new();
    for seed in 0..12 {
        let r = run_chaos_seed_with(ChaosWorkload::Population, seed, sabotage);
        if !r.is_clean() {
            caught = r.violations;
            break;
        }
    }
    assert!(
        !caught.is_empty(),
        "no probe seed tripped the oracle with the release guard off"
    );
}

/// The plan generator never crashes an aggregate node — one `FailNode`
/// would atomically kill the whole virtual population — even when the
/// config allows client crashes. Its links may still fail.
#[test]
fn fault_plans_never_crash_aggregate_nodes() {
    let (rack, _alloc) = build_population_chaos_rack(1);
    let roles = RackRoles::of(&rack);
    assert!(!roles.aggregates.is_empty(), "rack has no aggregate node");
    let cfg = ChaosPlanConfig {
        start: SimDuration::from_millis(1),
        settle_by: SimDuration::from_millis(20),
        episodes: 12,
        max_episode: SimDuration::from_millis(3),
        switch_reboot: true,
        switch_outage_min: SimDuration::from_micros(2_500),
        server_restart: true,
        client_crash: true,
    };
    for seed in 0..16 {
        let plan = generate_plan(seed, &roles, &cfg);
        for ev in plan.events() {
            if let FaultAction::FailNode(id) = ev.action {
                assert!(
                    !roles.aggregates.contains(&id),
                    "seed {seed} crashes aggregate node {id:?}"
                );
            }
        }
    }
}

/// The headline perf gate, held far below the measured ratio so box
/// noise cannot flake it: the aggregate build of the 100K-client
/// shared-queue scenario must beat the equivalent 400-node individual
///-client build by at least 3x wall clock. The measured ratio on an
/// unloaded core is ~9-11x (see EXPERIMENTS.md).
#[test]
fn aggregate_population_beats_individual_clients_by_3x() {
    let (agg, ind, requests) =
        flash_crowd::speedup_point(100_000, 20.0, 400, SimDuration::from_millis(100), 90);
    assert!(
        requests > 100_000,
        "scenario too small: {requests} requests"
    );
    assert!(
        agg * 3.0 < ind,
        "aggregate {agg:.3}s vs individual {ind:.3}s: ratio {:.1}x below gate",
        ind / agg
    );
}
