//! Integration tests for switch–server memory management: the q1/q2
//! overflow protocol under live traffic, and lock migration (demote /
//! promote) between the switch and its servers.

use netlock_core::prelude::*;
use netlock_proto::{LockId, LockMode};
use netlock_server::ServerNode;
use netlock_sim::SimTime;
use netlock_switch::control::{plan_migration, MigrationOp};
use netlock_switch::directory::Residence;
use netlock_switch::SwitchNode;

fn rack_with(locks: u32, per_lock_slots: u32, capacity: u32) -> Rack {
    let mut rack = Rack::build(RackConfig {
        seed: 17,
        lock_servers: 2,
        ..Default::default()
    });
    let stats: Vec<LockStats> = (0..locks)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: (locks - l) as f64, // lock 0 hottest
            contention: per_lock_slots,
            home_server: (l as usize) % 2,
        })
        .collect();
    rack.program(&knapsack_allocate(&stats, capacity));
    rack
}

/// Tiny q1 regions force overflow; the q2 protocol must keep granting
/// every request exactly once and eventually drain.
#[test]
fn overflow_protocol_grants_everything_once() {
    // 2 locks × 2 slots each; 24 workers hammer them.
    let mut rack = rack_with(2, 2, 4);
    for _ in 0..3 {
        rack.add_txn_client(
            TxnClientConfig {
                workers: 8,
                ..Default::default()
            },
            Box::new(SingleLockSource {
                locks: vec![LockId(0), LockId(1)],
                mode: LockMode::Exclusive,
                think: SimDuration::from_micros(10),
            }),
        );
    }
    let stats = warmup_and_measure(
        &mut rack,
        SimDuration::from_millis(5),
        SimDuration::from_millis(30),
    );
    assert!(stats.txns > 300, "progress under overflow: {}", stats.txns);
    // The overflow path was actually exercised.
    let (buffered, pushed) = rack
        .lock_servers
        .iter()
        .map(|&s| {
            rack.sim
                .read_node::<ServerNode, _>(s, |n| (n.stats().q2_buffered, n.stats().q2_pushed))
        })
        .fold((0, 0), |acc, (b, p)| (acc.0 + b, acc.1 + p));
    assert!(buffered > 0, "q2 must have buffered overflow");
    assert!(pushed > 0, "q2 must have pushed back to q1");
}

/// Overflowed requests are not lost or duplicated: with a finite
/// scripted load, the number of grants equals the number of acquires.
#[test]
fn overflow_preserves_conservation() {
    let mut rack = rack_with(1, 2, 2);
    // A single closed-loop worker cycle cannot overflow; use many
    // workers and a finite measurement.
    rack.add_txn_client(
        TxnClientConfig {
            workers: 12,
            ..Default::default()
        },
        Box::new(SingleLockSource {
            locks: vec![LockId(0)],
            mode: LockMode::Exclusive,
            think: SimDuration::from_micros(5),
        }),
    );
    rack.sim
        .run_until(SimTime(SimDuration::from_millis(40).as_nanos()));
    let client_grants = rack.sim.read_node::<TxnClient, _>(rack.clients[0].0, |c| {
        c.stats().grants + c.stats().stale_grants
    });
    let switch_grants = rack.sim.read_node::<SwitchNode, _>(rack.switch, |s| {
        let d = s.dataplane().stats();
        d.grants_immediate + d.grants_on_release
    });
    // Every switch grant reached the client exactly once (closed rack,
    // no loss): the counts can differ only by in-flight messages.
    assert!(
        switch_grants.abs_diff(client_grants) <= 2,
        "switch granted {switch_grants}, client saw {client_grants}"
    );
}

/// Demoting a live lock moves it to its home server without losing
/// requests; promoting it back restores switch processing.
#[test]
fn migration_demote_then_promote() {
    let mut rack = rack_with(4, 16, 64);
    rack.add_txn_client(
        TxnClientConfig {
            workers: 6,
            ..Default::default()
        },
        Box::new(SingleLockSource {
            locks: (0..4).map(LockId).collect(),
            mode: LockMode::Exclusive,
            think: SimDuration::from_micros(5),
        }),
    );
    rack.sim.run_for(SimDuration::from_millis(5));

    // Target allocation: only locks 2 and 3 stay in the switch.
    let target_stats: Vec<LockStats> = (2..4)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: 10.0,
            contention: 16,
            home_server: (l as usize) % 2,
        })
        .collect();
    let target = knapsack_allocate(&target_stats, 64);
    let switch = rack.switch;
    let ops = rack
        .sim
        .read_node::<SwitchNode, _>(switch, |s| plan_migration(s.dataplane(), &target));
    assert!(ops.iter().any(|o| matches!(o, MigrationOp::Demote { .. })));
    // Drive the demotions the way the switch control plane would: mark
    // the lock draining, let traffic empty q1, then flip ownership and
    // inform the home server.
    for op in &ops {
        match *op {
            MigrationOp::Demote { lock } => {
                let (ready, home) = rack.sim.with_node::<SwitchNode, _>(switch, |s| {
                    let ready = s.dataplane_mut().begin_demote(lock);
                    let home = s
                        .dataplane()
                        .directory()
                        .get(lock)
                        .map(|e| e.home_server)
                        .unwrap_or(0);
                    (ready, home)
                });
                // Drain, then complete.
                rack.sim.run_for(SimDuration::from_millis(2));
                let done = rack.sim.with_node::<SwitchNode, _>(switch, |s| {
                    s.dataplane_mut().complete_demote(lock)
                });
                let _ = ready;
                if done.is_some() {
                    let server = rack.lock_servers[home];
                    rack.sim
                        .with_node::<ServerNode, _>(server, |n| n.own_lock(lock));
                }
            }
            MigrationOp::Promote { .. } => {}
        }
    }
    rack.sim.run_for(SimDuration::from_millis(5));

    // Locks 0 and 1 are now server-resident and traffic still flows.
    let res = rack.sim.read_node::<SwitchNode, _>(switch, |s| {
        (0..2)
            .map(|l| s.dataplane().directory().get(LockId(l)).unwrap().residence)
            .collect::<Vec<_>>()
    });
    for r in res {
        assert_eq!(r, Residence::Server, "hot locks demoted to servers");
    }
    let before = rack
        .sim
        .read_node::<TxnClient, _>(rack.clients[0].0, |c| c.stats().txns);
    rack.sim.run_for(SimDuration::from_millis(10));
    let after = rack
        .sim
        .read_node::<TxnClient, _>(rack.clients[0].0, |c| c.stats().txns);
    assert!(after > before + 100, "throughput continues after demotion");
}

/// The harvested data-plane statistics reflect live traffic and feed
/// back into an allocation that matches the real hot set.
#[test]
fn measured_stats_drive_reallocation() {
    let mut rack = rack_with(8, 8, 64);
    // Traffic only touches locks 0 and 1.
    rack.add_txn_client(
        TxnClientConfig {
            workers: 4,
            ..Default::default()
        },
        Box::new(SingleLockSource {
            locks: vec![LockId(0), LockId(1)],
            mode: LockMode::Exclusive,
            think: SimDuration::ZERO,
        }),
    );
    rack.sim.run_for(SimDuration::from_millis(10));
    let switch = rack.switch;
    let measured = rack.sim.with_node::<SwitchNode, _>(switch, |s| {
        netlock_switch::control::harvest_stats(s.dataplane_mut(), 0.01)
    });
    let hot: Vec<_> = measured.iter().filter(|m| m.rate > 0.0).collect();
    let hot_ids: Vec<LockId> = hot.iter().map(|m| m.lock).collect();
    assert!(hot_ids.contains(&LockId(0)) && hot_ids.contains(&LockId(1)));
    // Reallocate with a tiny budget: the measured-hot locks win it.
    let alloc = knapsack_allocate(&measured, 8);
    let winners: Vec<LockId> = alloc.in_switch.iter().map(|&(l, _, _)| l).collect();
    assert!(winners.contains(&LockId(0)) && winners.contains(&LockId(1)));
}

/// The switch's FCFS engine and a pure server deployment agree on the
/// workload outcome (same grants, just different locations).
#[test]
fn switch_and_server_paths_agree_on_totals() {
    let run = |capacity: u32| {
        let mut rack = rack_with(16, 8, capacity);
        for _ in 0..2 {
            rack.add_txn_client(
                TxnClientConfig {
                    workers: 4,
                    ..Default::default()
                },
                Box::new(SingleLockSource {
                    locks: (0..16).map(LockId).collect(),
                    mode: LockMode::Exclusive,
                    think: SimDuration::from_micros(20),
                }),
            );
        }
        warmup_and_measure(
            &mut rack,
            SimDuration::from_millis(5),
            SimDuration::from_millis(20),
        )
    };
    let in_switch = run(1_000);
    let on_server = run(0);
    assert!(in_switch.switch_share() > 0.99);
    assert_eq!(on_server.switch_share(), 0.0);
    // Same closed-loop workload: throughput within 25% (server path is
    // slightly slower per request but not qualitatively different at
    // this low load).
    let ratio = in_switch.tps() / on_server.tps();
    assert!(
        (0.8..1.6).contains(&ratio),
        "switch {} vs server {} tps (ratio {ratio})",
        in_switch.tps(),
        on_server.tps()
    );
}

/// The dynamic control loop (§4.3): with `auto_realloc` enabled, a
/// shifted hot set is measured and promoted into the switch without
/// any manual reprogramming.
#[test]
fn auto_reallocation_follows_the_workload() {
    use netlock_switch::AutoRealloc;

    let mut rack = Rack::build(RackConfig {
        seed: 23,
        lock_servers: 2,
        switch: netlock_switch::SwitchConfig {
            auto_realloc: Some(AutoRealloc {
                epoch: SimDuration::from_millis(5),
                switch_slots: 256,
                max_regions: 64,
                server_contention: 16,
            }),
            ..Default::default()
        },
        ..Default::default()
    });
    // Start with NOTHING in the switch: all locks default-route.
    rack.program(&knapsack_allocate(&[], 0));

    // Hot set: locks 100..108.
    rack.add_txn_client(
        TxnClientConfig {
            workers: 8,
            ..Default::default()
        },
        Box::new(SingleLockSource {
            locks: (100..108).map(LockId).collect(),
            mode: LockMode::Exclusive,
            think: SimDuration::from_micros(10),
        }),
    );
    rack.sim.run_for(SimDuration::from_millis(25));

    // The control loop must have promoted the measured-hot locks.
    let switch = rack.switch;
    let resident: Vec<LockId> = rack.sim.read_node::<SwitchNode, _>(switch, |s| {
        s.dataplane()
            .directory()
            .switch_resident()
            .into_iter()
            .map(|(l, _, _)| l)
            .collect()
    });
    let hot_in_switch = (100..108)
        .filter(|&l| resident.contains(&LockId(l)))
        .count();
    assert!(
        hot_in_switch >= 6,
        "auto-realloc must promote the hot set; resident = {resident:?}"
    );
    // And the switch now serves most grants.
    reset_clients(&mut rack);
    rack.sim.run_for(SimDuration::from_millis(10));
    let stats = collect(&rack, SimDuration::from_millis(10));
    assert!(
        stats.switch_share() > 0.8,
        "switch share after promotion: {}",
        stats.switch_share()
    );
    let migrations = rack
        .sim
        .read_node::<SwitchNode, _>(switch, |s| s.stats().migrations_done);
    let _ = migrations; // demotions may be zero here; promotions suffice
}

/// The paper's memory arithmetic (§5): 100K slots at 20 B ≈ 2 MB, "a
/// small portion of the tens of MB on-chip memory".
#[test]
fn memory_footprint_matches_paper() {
    use netlock_switch::shared_queue::{SharedQueue, SharedQueueLayout};
    let q = SharedQueue::new(&SharedQueueLayout::paper_default());
    let bytes = q.cp_memory_bytes();
    // 100K × 20 B = 2 MB of slots (+ region metadata).
    assert!(
        (2_000_000..2_500_000).contains(&bytes),
        "paper-default layout should be ≈2 MB: {bytes}"
    );
}

/// §4.5's skew claim: under a Zipf workload, a switch memory that can
/// only host the head of the popularity distribution still absorbs the
/// majority of requests — if (and only if) the allocator targets the
/// head.
#[test]
fn zipf_skew_rewards_popularity_aware_allocation() {
    use netlock_workloads::ZipfLockSource;

    let n_locks = 2_000usize;
    let head = 64usize;
    let probe = ZipfLockSource::new(0, n_locks, 0.99, LockMode::Exclusive, SimDuration::ZERO);
    let expected_share = probe.head_share(head);
    assert!(expected_share > 0.4);

    // Allocation hosting exactly the popularity head, 4 slots each.
    let head_stats: Vec<LockStats> = (0..head)
        .map(|k| LockStats {
            lock: LockId(k as u32),
            rate: 1.0 / (k + 1) as f64,
            contention: 4,
            home_server: 0,
        })
        .collect();
    let mut rack = Rack::build(RackConfig {
        seed: 61,
        lock_servers: 2,
        ..Default::default()
    });
    rack.program(&knapsack_allocate(&head_stats, (head * 4) as u32));
    for _ in 0..4 {
        rack.add_txn_client(
            TxnClientConfig {
                workers: 4,
                ..Default::default()
            },
            Box::new(ZipfLockSource::new(
                0,
                n_locks,
                0.99,
                LockMode::Exclusive,
                SimDuration::from_micros(5),
            )),
        );
    }
    let stats = warmup_and_measure(
        &mut rack,
        SimDuration::from_millis(3),
        SimDuration::from_millis(15),
    );
    // The measured switch share should track the analytic head share.
    assert!(
        (stats.switch_share() - expected_share).abs() < 0.12,
        "measured switch share {} vs Zipf head share {}",
        stats.switch_share(),
        expected_share
    );
}
