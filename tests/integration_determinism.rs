//! Tier-1 determinism contract for the parallel sweep runner: a
//! figure rendered with the same seed must be byte-identical no
//! matter how many worker threads execute the sweep. Each data point
//! builds its own seeded rack, so thread scheduling can only change
//! *when* a point runs, never *what* it computes — and the runner
//! reassembles rows in point-index order.

use netlock_bench::{fig08, fig09, fig10, Runner, TimeScale};
use netlock_sim::SimDuration;

fn tiny() -> TimeScale {
    TimeScale {
        warmup: SimDuration::from_millis(1),
        measure: SimDuration::from_millis(2),
    }
}

#[test]
fn fig09_tsv_identical_across_thread_counts() {
    let baseline = fig09::render(&Runner::with_threads(1), tiny());
    assert!(
        baseline
            .lines()
            .any(|l| !l.starts_with('#') && !l.is_empty()),
        "baseline render produced no data rows"
    );
    for threads in [2, 8] {
        let out = fig09::render(&Runner::with_threads(threads), tiny());
        assert_eq!(
            out, baseline,
            "fig09 output changed with {threads} worker threads"
        );
    }
}

#[test]
fn fig08_tsv_identical_across_thread_counts() {
    let baseline = fig08::render(&Runner::with_threads(1), tiny());
    for threads in [2, 8] {
        let out = fig08::render(&Runner::with_threads(threads), tiny());
        assert_eq!(
            out, baseline,
            "fig08 output changed with {threads} worker threads"
        );
    }
}

#[test]
fn fig10_rows_identical_across_thread_counts() {
    let baseline = fig10::run_comparison(&Runner::with_threads(1), 2, 2, false, tiny());
    for threads in [2, 8] {
        let out = fig10::run_comparison(&Runner::with_threads(threads), 2, 2, false, tiny());
        assert_eq!(out.len(), baseline.len());
        for (a, b) in out.iter().zip(baseline.iter()) {
            assert_eq!(a.system, b.system);
            assert_eq!(
                a.stats.txns, b.stats.txns,
                "fig10 {} txn count changed with {threads} worker threads",
                a.system
            );
            assert_eq!(a.stats.grants, b.stats.grants);
            assert_eq!(a.stats.retries, b.stats.retries);
        }
    }
}
