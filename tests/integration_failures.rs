//! Integration tests for failure handling (§4.5): transaction
//! failures via leases, switch failure with state loss, and lock-server
//! failover to a backup.

use netlock_core::prelude::*;
use netlock_proto::{
    ClientAddr, LockId, LockMode, LockRequest, NetLockMsg, Priority, TenantId, TxnId,
};
use netlock_server::ServerNode;
use netlock_switch::control::apply_allocation;
use netlock_switch::SwitchNode;

fn one_lock_rack() -> (Rack, Allocation) {
    let mut rack = Rack::build(RackConfig {
        seed: 51,
        lock_servers: 2,
        ..Default::default()
    });
    let stats: Vec<LockStats> = (0..64)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: 1.0,
            contention: 32,
            home_server: (l as usize) % 2,
        })
        .collect();
    let alloc = knapsack_allocate(&stats, 100_000);
    rack.program(&alloc);
    (rack, alloc)
}

/// A client that grabs a lock and never releases it ("crashed"
/// transaction). The lease sweeper must free the lock so others can
/// make progress.
#[test]
fn lease_expiry_recovers_crashed_holder() {
    let (mut rack, _alloc) = one_lock_rack();
    let switch = rack.switch;
    // Inject a poisoned acquire directly: txn 999 takes lock 0 and
    // vanishes.
    rack.sim.inject(
        NodeId_client(),
        switch,
        NetLockMsg::Acquire(LockRequest {
            lock: LockId(0),
            mode: LockMode::Exclusive,
            txn: TxnId(999),
            client: ClientAddr(NodeId_client().0),
            tenant: TenantId(0),
            priority: Priority(0),
            issued_at_ns: 0,
        }),
    );
    // A real client then wants the same lock.
    rack.add_txn_client(
        TxnClientConfig {
            workers: 1,
            retry_timeout: SimDuration::from_millis(50),
            ..Default::default()
        },
        Box::new(SingleLockSource {
            locks: vec![LockId(0)],
            mode: LockMode::Exclusive,
            think: SimDuration::from_micros(10),
        }),
    );
    // Default lease = 10 ms, sweep every 1 ms: within ~12 ms the stale
    // holder is force-released and the worker proceeds.
    rack.sim.run_for(SimDuration::from_millis(8));
    let stuck = rack
        .sim
        .read_node::<TxnClient, _>(rack.clients[0].0, |c| c.stats().txns);
    assert_eq!(stuck, 0, "lock is held by the crashed txn");
    rack.sim.run_for(SimDuration::from_millis(30));
    let after = rack
        .sim
        .read_node::<TxnClient, _>(rack.clients[0].0, |c| c.stats().txns);
    assert!(after > 100, "lease expiry must unstick the lock: {after}");
    let expirations = rack
        .sim
        .read_node::<SwitchNode, _>(switch, |s| s.stats().lease_expirations);
    assert!(expirations >= 1);
}

// The poisoned request needs a source node id; any client-addressable
// node works. Node 100 does not exist, so grants to it vanish — which
// is exactly a crashed client.
#[allow(non_snake_case)]
fn NodeId_client() -> netlock_sim::NodeId {
    netlock_sim::NodeId(100)
}

/// Switch failure wipes all state; after reactivation + reprogramming,
/// throughput returns and stranded holders expire.
#[test]
fn switch_failure_and_reactivation() {
    let (mut rack, alloc) = one_lock_rack();
    let switch = rack.switch;
    for _ in 0..3 {
        rack.add_txn_client(
            TxnClientConfig {
                workers: 4,
                retry_timeout: SimDuration::from_millis(5),
                ..Default::default()
            },
            Box::new(SingleLockSource {
                locks: (0..64).map(LockId).collect(),
                mode: LockMode::Exclusive,
                think: SimDuration::from_micros(20),
            }),
        );
    }
    rack.sim.run_for(SimDuration::from_millis(10));
    let healthy = txns_by_client(&rack).iter().sum::<u64>();
    assert!(healthy > 500);

    rack.sim.fail_node(switch);
    rack.sim.run_for(SimDuration::from_millis(10));
    let during = txns_by_client(&rack).iter().sum::<u64>() - healthy;
    assert!(
        during < healthy / 10,
        "outage must stop progress: {during} vs {healthy}"
    );

    rack.sim.revive_node(switch);
    rack.sim.with_node::<SwitchNode, _>(switch, |s| {
        s.reboot();
        s.dataplane_mut().set_default_servers(2);
        apply_allocation(s.dataplane_mut(), &alloc);
    });
    let before_recovery = txns_by_client(&rack).iter().sum::<u64>();
    rack.sim.run_for(SimDuration::from_millis(20));
    let recovered = txns_by_client(&rack).iter().sum::<u64>() - before_recovery;
    assert!(
        recovered > healthy / 2,
        "throughput must return after reactivation: {recovered} vs {healthy}"
    );
}

/// Lock-server failover: the failed server's locks move to the backup,
/// clients resubmit, and processing continues there.
#[test]
fn server_failover_moves_locks_to_backup() {
    let (mut rack, _alloc) = one_lock_rack();
    let switch = rack.switch;
    // Repoint every lock at server 1 *and* keep them out of the switch,
    // so the lock server is on the critical path.
    let server_locks: Vec<LockId> = (0..64).map(LockId).collect();
    rack.sim.with_node::<SwitchNode, _>(switch, |s| {
        for &lock in &server_locks {
            s.dataplane_mut()
                .directory_mut()
                .set_server_resident(lock, 0);
        }
    });
    let s0 = rack.lock_servers[0];
    let s1 = rack.lock_servers[1];
    rack.sim
        .with_node::<ServerNode, _>(s0, |n| server_locks.iter().for_each(|&l| n.own_lock(l)));

    rack.add_txn_client(
        TxnClientConfig {
            workers: 8,
            retry_timeout: SimDuration::from_millis(5),
            ..Default::default()
        },
        Box::new(SingleLockSource {
            locks: server_locks.clone(),
            mode: LockMode::Exclusive,
            think: SimDuration::from_micros(20),
        }),
    );
    rack.sim.run_for(SimDuration::from_millis(10));
    let healthy = txns_by_client(&rack)[0];
    assert!(healthy > 500);
    let s0_grants = rack
        .sim
        .read_node::<ServerNode, _>(s0, |n| n.stats().grants);
    assert!(s0_grants > 0, "server 0 was serving");

    // Server 0 dies; the control plane reassigns its locks to server 1,
    // which waits out the predecessor's leases before granting (§4.5).
    rack.sim.fail_node(s0);
    rack.sim.with_node::<SwitchNode, _>(switch, |s| {
        for &lock in &server_locks {
            s.dataplane_mut()
                .directory_mut()
                .set_server_resident(lock, 1);
        }
    });
    let grace_until = rack.sim.now().as_nanos() + SimDuration::from_millis(10).as_nanos();
    rack.sim.with_node::<ServerNode, _>(s1, |n| {
        server_locks.iter().for_each(|&l| n.own_lock(l));
        n.set_grace_until(grace_until);
    });
    // During the grace period nothing is granted by the backup.
    let at_failover = txns_by_client(&rack)[0];
    rack.sim.run_for(SimDuration::from_millis(8));
    let during_grace = txns_by_client(&rack)[0];
    assert!(
        during_grace - at_failover < 20,
        "grace period must defer grants: {at_failover} → {during_grace}"
    );

    rack.sim.run_for(SimDuration::from_millis(30));
    let after = txns_by_client(&rack)[0];
    assert!(
        after > healthy + 500,
        "backup server must take over: {healthy} → {after}"
    );
    let s1_grants = rack
        .sim
        .read_node::<ServerNode, _>(s1, |n| n.stats().grants);
    assert!(s1_grants > 0, "server 1 now grants");
}

/// Packet loss on the client→switch link is survived via retries.
#[test]
fn lossy_links_are_survivable() {
    let (mut rack, _alloc) = one_lock_rack();
    let switch = rack.switch;
    let client = rack.add_txn_client(
        TxnClientConfig {
            workers: 4,
            retry_timeout: SimDuration::from_millis(2),
            ..Default::default()
        },
        Box::new(SingleLockSource {
            locks: (0..64).map(LockId).collect(),
            mode: LockMode::Exclusive,
            think: SimDuration::from_micros(10),
        }),
    );
    // 20% loss client→switch.
    rack.sim.topology_mut_link_loss(client, switch, 0.2);
    rack.sim.run_for(SimDuration::from_millis(40));
    let (txns, retries) = rack
        .sim
        .read_node::<TxnClient, _>(client, |c| (c.stats().txns, c.stats().retries));
    assert!(retries > 10, "loss must trigger retries: {retries}");
    // Throughput degrades badly (lost releases strand locks until the
    // lease sweeper frees them) but the system keeps making progress.
    assert!(txns > 100, "progress despite 20% loss: {txns}");
}

/// Helper trait to keep the loss-injection call readable above.
trait LossHelper {
    fn topology_mut_link_loss(
        &mut self,
        src: netlock_sim::NodeId,
        dst: netlock_sim::NodeId,
        p: f64,
    );
}

impl LossHelper for netlock_sim::Simulator<NetLockMsg> {
    fn topology_mut_link_loss(
        &mut self,
        src: netlock_sim::NodeId,
        dst: netlock_sim::NodeId,
        p: f64,
    ) {
        let cfg = self.topology().link(src, dst).with_loss(p);
        self.topology_mut().set_link(src, dst, cfg);
    }
}

/// Backup-switch failover (§4.5): when the primary switch fails, the
/// control plane programs a backup switch with the same allocation and
/// repoints clients and servers at it — downtime is one retry timeout,
/// not a full reboot cycle.
#[test]
fn backup_switch_takes_over() {
    use netlock_switch::shared_queue::SharedQueueLayout;
    use netlock_switch::{DataPlane, SwitchConfig};

    let (mut rack, alloc) = one_lock_rack();
    let primary = rack.switch;
    // A standby switch, pre-programmed with the same allocation (its
    // queues start empty — leases cover any state lost on the primary).
    let backup = {
        let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::paper_default());
        dp.set_default_servers(rack.lock_servers.len());
        apply_allocation(&mut dp, &alloc);
        rack.sim.add_node(Box::new(netlock_switch::SwitchNode::new(
            dp,
            SwitchConfig::default(),
            rack.lock_servers.clone(),
        )))
    };
    let client = rack.add_txn_client(
        TxnClientConfig {
            workers: 8,
            retry_timeout: SimDuration::from_millis(5),
            ..Default::default()
        },
        Box::new(SingleLockSource {
            locks: (0..64).map(LockId).collect(),
            mode: LockMode::Exclusive,
            think: SimDuration::from_micros(20),
        }),
    );
    rack.sim.run_for(SimDuration::from_millis(10));
    let healthy = txns_by_client(&rack)[0];
    assert!(healthy > 500);

    // Primary dies; the control plane fails over.
    rack.sim.fail_node(primary);
    rack.sim
        .with_node::<TxnClient, _>(client, |c| c.set_switch(backup));
    for &s in &rack.lock_servers.clone() {
        rack.sim
            .with_node::<ServerNode, _>(s, |n| n.set_switch(backup));
    }
    rack.sim.run_for(SimDuration::from_millis(20));
    let after = txns_by_client(&rack)[0];
    // Unlike the reboot experiment (Fig. 15), throughput continues at
    // nearly the healthy rate: only the in-flight window is lost.
    assert!(
        after - healthy > 700,
        "backup must take over quickly: {healthy} → {after}"
    );
    let backup_grants = rack
        .sim
        .read_node::<netlock_switch::SwitchNode, _>(backup, |s| s.stats().grants_sent);
    assert!(backup_grants > 500, "grants now come from the backup");
}

/// Deadlock resolution (§4.5): two workers acquiring {A, B} in opposite
/// orders deadlock; leases expire the stuck holders, clients retry, and
/// both eventually commit. "Deadlocks ... resolved in the same way as
/// for transaction failures."
#[test]
fn deadlock_broken_by_leases() {
    use netlock_core::txn::{LockNeed, Transaction};

    let (mut rack, _alloc) = one_lock_rack();
    let a = LockNeed {
        lock: LockId(0),
        mode: LockMode::Exclusive,
    };
    let b = LockNeed {
        lock: LockId(1),
        mode: LockMode::Exclusive,
    };
    // Think long enough that A-then-B and B-then-A overlap and wedge.
    let think = SimDuration::from_millis(2);
    let fwd = move |_rng: &mut netlock_sim::SimRng| Transaction::new_ordered(vec![a, b], think);
    let rev = move |_rng: &mut netlock_sim::SimRng| Transaction::new_ordered(vec![b, a], think);
    let c1 = rack.add_txn_client(
        TxnClientConfig {
            workers: 1,
            retry_timeout: SimDuration::from_millis(100),
            ..Default::default()
        },
        Box::new(fwd),
    );
    let c2 = rack.add_txn_client(
        TxnClientConfig {
            workers: 1,
            retry_timeout: SimDuration::from_millis(100),
            ..Default::default()
        },
        Box::new(rev),
    );
    // Default lease 10 ms, sweep 1 ms: each deadlock costs ≤ ~11 ms,
    // then the lease breaks it. Over 300 ms both clients must commit
    // a meaningful number of transactions.
    rack.sim.run_for(SimDuration::from_millis(300));
    let t1 = rack.sim.read_node::<TxnClient, _>(c1, |c| c.stats().txns);
    let t2 = rack.sim.read_node::<TxnClient, _>(c2, |c| c.stats().txns);
    assert!(
        t1 > 5 && t2 > 5,
        "leases must keep breaking deadlocks: {t1} vs {t2}"
    );
    let expirations = rack
        .sim
        .read_node::<SwitchNode, _>(rack.switch, |s| s.stats().lease_expirations);
    assert!(expirations > 0, "the sweeper must have fired");
}

/// The restart-handback protocol (§4.5): after the original switch
/// restarts, new acquires queue at the original (grants suppressed)
/// while releases drain the backup; when the backup's queue for a lock
/// empties it hands the lock back, and the original grants its queued
/// run — no lock is ever granted by both switches at once.
#[test]
fn restart_handback_drains_backup_first() {
    use netlock_proto::{GrantMsg, LockRequest, NetLockMsg};
    use netlock_sim::{Context, Node, Packet, Simulator};
    use netlock_switch::control::{apply_allocation, knapsack_allocate, LockStats};
    use netlock_switch::shared_queue::SharedQueueLayout;
    use netlock_switch::{DataPlane, SwitchConfig, SwitchNode};

    /// Records grants; releases are injected explicitly by the test.
    struct Recorder(Vec<(u64, GrantMsg)>);
    impl Node<NetLockMsg> for Recorder {
        fn on_packet(&mut self, pkt: Packet<NetLockMsg>, ctx: &mut Context<'_, NetLockMsg>) {
            if let NetLockMsg::Grant(g) = pkt.payload {
                self.0.push((ctx.now().as_nanos(), g));
            }
        }
        fn on_timer(&mut self, _t: u64, _c: &mut Context<'_, NetLockMsg>) {}
    }

    let lock = LockId(0);
    let mk_dp = || {
        let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::small(2, 32, 4));
        apply_allocation(
            &mut dp,
            &knapsack_allocate(
                &[LockStats {
                    lock,
                    rate: 1.0,
                    contention: 16,
                    home_server: 0,
                }],
                16,
            ),
        );
        dp
    };
    let mut sim: Simulator<NetLockMsg> = Simulator::with_seed(9);
    let client = sim.add_node(Box::new(Recorder(Vec::new())));
    let original = sim.add_node(Box::new(SwitchNode::new(
        mk_dp(),
        SwitchConfig::default(),
        vec![],
    )));
    let backup = sim.add_node(Box::new(SwitchNode::new(
        mk_dp(),
        SwitchConfig::default(),
        vec![],
    )));

    let acq = |txn: u64| {
        NetLockMsg::Acquire(LockRequest {
            lock,
            mode: LockMode::Exclusive,
            txn: TxnId(txn),
            client: ClientAddr(client.0),
            tenant: TenantId(0),
            priority: Priority(0),
            issued_at_ns: 0,
        })
    };
    let rel = |txn: u64| {
        NetLockMsg::Release(netlock_proto::ReleaseRequest {
            lock,
            txn: TxnId(txn),
            mode: LockMode::Exclusive,
            client: ClientAddr(client.0),
            priority: Priority(0),
        })
    };

    // Failover phase: txns 1–3 queue at the backup; txn 1 is granted.
    for t in 1..=3 {
        sim.inject(client, backup, acq(t));
    }
    sim.run_for(SimDuration::from_millis(1));
    sim.read_node::<Recorder, _>(client, |r| assert_eq!(r.0.len(), 1));

    // The original restarts. Per §4.5: new requests queue at the
    // original with grants suppressed; the backup keeps granting its
    // queue until empty.
    sim.with_node::<SwitchNode, _>(original, |s| {
        s.dataplane_mut().begin_handback_suppression(lock);
    });
    sim.with_node::<SwitchNode, _>(backup, |s| {
        s.set_backup_handback(Some(original));
    });
    for t in 4..=5 {
        sim.inject(client, original, acq(t));
    }
    sim.run_for(SimDuration::from_millis(1));
    // Suppressed: still only the backup's grant.
    sim.read_node::<Recorder, _>(client, |r| {
        assert_eq!(r.0.len(), 1, "original must not grant while suppressed")
    });
    assert!(
        sim.read_node::<SwitchNode, _>(original, |s| { s.dataplane().handback_suppressed(lock) })
    );

    // Drain the backup: releases go to the backup; it grants 2, then 3,
    // then — once empty — hands the lock back to the original, which
    // grants txn 4 from its own queue.
    sim.inject(client, backup, rel(1));
    sim.run_for(SimDuration::from_millis(1));
    sim.inject(client, backup, rel(2));
    sim.run_for(SimDuration::from_millis(1));
    sim.inject(client, backup, rel(3));
    sim.run_for(SimDuration::from_millis(1));

    let grants: Vec<u64> =
        sim.read_node::<Recorder, _>(client, |r| r.0.iter().map(|(_, g)| g.txn.0).collect());
    assert_eq!(
        grants,
        vec![1, 2, 3, 4],
        "backup drains fully before the original grants"
    );
    assert!(
        !sim.read_node::<SwitchNode, _>(original, |s| { s.dataplane().handback_suppressed(lock) })
    );

    // The original is now the sole grantor: release 4 → grant 5 there.
    sim.inject(client, original, rel(4));
    sim.run_for(SimDuration::from_millis(1));
    let grants: Vec<u64> =
        sim.read_node::<Recorder, _>(client, |r| r.0.iter().map(|(_, g)| g.txn.0).collect());
    assert_eq!(grants, vec![1, 2, 3, 4, 5]);
}
