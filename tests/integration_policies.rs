//! Integration tests for policy support (§4.4): starvation freedom,
//! priority-based service differentiation, and per-tenant quotas —
//! exercised end-to-end through the public rack API.

use netlock_core::prelude::*;
use netlock_core::txn::TxnSource;
use netlock_proto::{LockId, LockMode, Priority, TenantId};
use netlock_switch::priority::PriorityLayout;
use netlock_switch::SwitchNode;

fn exclusive_source(locks: u32, think_us: u64) -> SingleLockSource {
    SingleLockSource {
        locks: (0..locks).map(LockId).collect(),
        mode: LockMode::Exclusive,
        think: SimDuration::from_micros(think_us),
    }
}

/// FCFS means no worker starves: with heavy contention on one lock,
/// every worker's per-lock wait stays bounded (no worker is locked out
/// while others recycle the lock).
#[test]
fn fcfs_prevents_starvation() {
    let mut rack = Rack::build(RackConfig {
        seed: 41,
        lock_servers: 1,
        ..Default::default()
    });
    rack.program(&knapsack_allocate(
        &[LockStats {
            lock: LockId(0),
            rate: 1.0,
            contention: 128,
            home_server: 0,
        }],
        256,
    ));
    for _ in 0..4 {
        rack.add_txn_client(
            TxnClientConfig {
                workers: 8,
                ..Default::default()
            },
            Box::new(exclusive_source(1, 10)),
        );
    }
    let stats = warmup_and_measure(
        &mut rack,
        SimDuration::from_millis(5),
        SimDuration::from_millis(40),
    );
    // 32 workers on one lock with ~10–17 µs per handoff: the queue is
    // ~32 deep, so waits are bounded near 32 × handoff. A starving
    // worker would show up as a max far beyond that.
    let lat = stats.lock_latency_summary();
    assert!(lat.count > 1_000);
    assert!(
        lat.max_ns < 8 * lat.p50_ns.max(1),
        "FCFS keeps the worst wait near the queue depth: {lat:?}"
    );
    // Per-client fairness: all four clients complete similar work.
    let counts = txns_by_client(&rack);
    let min = *counts.iter().min().unwrap() as f64;
    let max = *counts.iter().max().unwrap() as f64;
    assert!(
        max / min.max(1.0) < 1.5,
        "FCFS shares the lock evenly: {counts:?}"
    );
}

/// With the priority engine, a high-priority tenant overtakes queued
/// low-priority work.
#[test]
fn priorities_differentiate_service() {
    let locks = 8u32;
    let mut rack = Rack::build(RackConfig {
        seed: 43,
        lock_servers: 1,
        engine: EngineSpec::Priority(PriorityLayout::new(2, 64, locks as usize)),
        ..Default::default()
    });
    rack.program_priority(&(0..locks).map(LockId).collect::<Vec<_>>());
    for tenant in [1u16, 1, 2, 2] {
        let mut src = exclusive_source(locks, 20);
        let prio = if tenant == 1 {
            Priority(1)
        } else {
            Priority(0)
        };
        rack.add_txn_client(
            TxnClientConfig {
                workers: 8,
                ..Default::default()
            },
            Box::new(move |rng: &mut netlock_sim::SimRng| {
                src.next_txn(rng)
                    .with_tenant(TenantId(tenant))
                    .with_priority(prio)
            }),
        );
    }
    rack.sim.run_for(SimDuration::from_millis(3));
    reset_clients(&mut rack);
    rack.sim.run_for(SimDuration::from_millis(25));
    let counts = txns_by_client(&rack);
    let low: u64 = counts[0] + counts[1];
    let high: u64 = counts[2] + counts[3];
    assert!(
        high as f64 > 1.3 * low as f64,
        "high-priority tenant must dominate: high {high} vs low {low}"
    );
}

/// Per-tenant token-bucket quotas rebalance an asymmetric client mix.
#[test]
fn quotas_enforce_isolation() {
    let run = |isolate: bool| -> (u64, u64) {
        let locks = 16u32;
        let mut rack = Rack::build(RackConfig {
            seed: 44,
            lock_servers: 1,
            ..Default::default()
        });
        let stats: Vec<LockStats> = (0..locks)
            .map(|l| LockStats {
                lock: LockId(l),
                rate: 1.0,
                contention: 64,
                home_server: 0,
            })
            .collect();
        rack.program(&knapsack_allocate(&stats, 2_000));
        if isolate {
            let switch = rack.switch;
            rack.sim.with_node::<SwitchNode, _>(switch, |s| {
                s.dataplane_mut()
                    .set_tenant_meter(TenantId(1), 120_000, 32, 0);
                s.dataplane_mut()
                    .set_tenant_meter(TenantId(2), 120_000, 32, 0);
            });
        }
        // Tenant 1: 6 clients; tenant 2: 2 clients.
        for tenant in [1u16, 1, 1, 1, 1, 1, 2, 2] {
            let mut src = exclusive_source(locks, 20);
            rack.add_txn_client(
                TxnClientConfig {
                    workers: 4,
                    retry_timeout: SimDuration::from_millis(2),
                    ..Default::default()
                },
                Box::new(move |rng: &mut netlock_sim::SimRng| {
                    src.next_txn(rng).with_tenant(TenantId(tenant))
                }),
            );
        }
        rack.sim.run_for(SimDuration::from_millis(3));
        reset_clients(&mut rack);
        rack.sim.run_for(SimDuration::from_millis(25));
        let counts = txns_by_client(&rack);
        (
            counts[..6].iter().sum::<u64>(),
            counts[6..].iter().sum::<u64>(),
        )
    };
    let (t1_free, t2_free) = run(false);
    let (t1_iso, t2_iso) = run(true);
    // Unisolated: 3× the clients → roughly 3× the throughput.
    assert!(
        t1_free as f64 > 2.0 * t2_free as f64,
        "without quotas the big tenant wins: {t1_free} vs {t2_free}"
    );
    // Isolated: the ratio must compress toward equality.
    let r_free = t1_free as f64 / t2_free.max(1) as f64;
    let r_iso = t1_iso as f64 / t2_iso.max(1) as f64;
    assert!(
        r_iso < r_free / 1.5,
        "quotas must compress the gap: {r_free:.2} → {r_iso:.2}"
    );
}

/// Quota drops are visible in the switch counters (the meter is really
/// the thing doing the throttling).
#[test]
fn quota_drops_are_counted() {
    let mut rack = Rack::build(RackConfig {
        seed: 45,
        lock_servers: 1,
        ..Default::default()
    });
    rack.program(&knapsack_allocate(
        &[LockStats {
            lock: LockId(0),
            rate: 1.0,
            contention: 64,
            home_server: 0,
        }],
        64,
    ));
    let switch = rack.switch;
    rack.sim.with_node::<SwitchNode, _>(switch, |s| {
        s.dataplane_mut()
            .set_tenant_meter(TenantId(7), 10_000, 4, 0);
    });
    rack.add_micro_client(MicroClientConfig {
        rate_rps: 1_000_000.0,
        locks: vec![LockId(0)],
        mode: LockMode::Shared,
        tenant: TenantId(7),
        // Open-loop: dropped requests never complete, so an unbounded
        // window is needed to keep offering load past the quota.
        max_outstanding: usize::MAX,
        ..Default::default()
    });
    rack.sim.run_for(SimDuration::from_millis(10));
    let drops = rack
        .sim
        .read_node::<SwitchNode, _>(switch, |s| s.dataplane().stats().quota_drops);
    assert!(drops > 5_000, "1 MRPS against a 10 KRPS quota: {drops}");
}
