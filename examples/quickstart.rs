//! Quickstart: build a NetLock rack, run a small workload, inspect
//! the results.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use netlock_core::prelude::*;
use netlock_proto::{LockId, LockMode};

fn main() {
    // A rack: one ToR lock switch, two lock servers (Figure 2 of the
    // paper). The switch's shared queue has the paper's 100K slots.
    let mut rack = Rack::build(RackConfig {
        seed: 7,
        lock_servers: 2,
        ..Default::default()
    });

    // 1024 lock objects. Tell the control plane each lock's expected
    // request rate and contention; Algorithm 3 (fractional knapsack)
    // decides which locks live in switch memory and how many queue
    // slots each gets. Here everything fits.
    let locks: Vec<LockId> = (0..1024).map(LockId).collect();
    let stats: Vec<LockStats> = locks
        .iter()
        .map(|&lock| LockStats {
            lock,
            rate: 1.0,
            contention: 32,
            home_server: (lock.0 as usize) % 2,
        })
        .collect();
    let allocation = knapsack_allocate(&stats, 100_000);
    println!(
        "allocation: {} locks in switch ({} slots), {} on servers",
        allocation.in_switch.len(),
        allocation.slots_used(),
        allocation.in_server.len()
    );
    rack.program(&allocation);

    // Eight closed-loop clients, each running 8 transaction workers.
    // Every transaction takes one exclusive lock, holds it for 5 µs of
    // "execution", then releases.
    for _ in 0..8 {
        rack.add_txn_client(
            TxnClientConfig {
                workers: 8,
                ..Default::default()
            },
            Box::new(SingleLockSource {
                locks: locks.clone(),
                mode: LockMode::Exclusive,
                think: SimDuration::from_micros(5),
            }),
        );
    }

    // Warm up for 2 ms of simulated time, then measure 20 ms.
    let stats = warmup_and_measure(
        &mut rack,
        SimDuration::from_millis(2),
        SimDuration::from_millis(20),
    );

    let lat = stats.lock_latency_summary();
    println!("transactions committed : {}", stats.txns);
    println!("transaction throughput : {:.2} KTPS", stats.tps() / 1e3);
    println!(
        "lock throughput        : {:.2} MRPS",
        stats.lock_rps() / 1e6
    );
    println!(
        "lock grant latency     : avg {:.1} µs, p50 {:.1} µs, p99 {:.1} µs",
        lat.avg_us(),
        lat.p50_us(),
        lat.p99_us()
    );
    println!(
        "grants from switch     : {:.1}% (rest from lock servers)",
        stats.switch_share() * 100.0
    );
    assert!(stats.txns > 0, "the rack must make progress");
}
