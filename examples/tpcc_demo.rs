//! TPC-C demo: run the paper's transaction workload against NetLock
//! and against a traditional server-only centralized lock manager, and
//! print the side-by-side results for both contention settings.
//!
//! ```text
//! cargo run --release --example tpcc_demo
//! ```

use netlock_core::prelude::*;
use netlock_server::ServerConfig;
use netlock_workloads::{hot_lock_stats, TpccConfig, TpccSource};

const CLIENTS: usize = 6;
const WORKERS: usize = 8;
const LOCK_SERVERS: usize = 2;

fn tpcc_cfg(high_contention: bool) -> TpccConfig {
    if high_contention {
        TpccConfig::high_contention(CLIENTS as u32)
    } else {
        TpccConfig::low_contention(CLIENTS as u32)
    }
}

/// Build a rack; `switch_slots = 0` disables switch offload entirely
/// (the server-only baseline).
fn build(high_contention: bool, switch_slots: u32) -> Rack {
    let mut rack = Rack::build(RackConfig {
        seed: 21,
        lock_servers: LOCK_SERVERS,
        server: ServerConfig {
            // TPC-C table management costs more than the microbenchmark
            // fast path (see DESIGN.md / EXPERIMENTS.md calibration).
            service: SimDuration::from_nanos(1_500),
            ..Default::default()
        },
        ..Default::default()
    });
    let cfg = tpcc_cfg(high_contention);
    let stats = hot_lock_stats(&cfg, (CLIENTS * WORKERS) as u32, LOCK_SERVERS);
    rack.program(&knapsack_allocate_bounded(&stats, switch_slots, 10_000));
    for _ in 0..CLIENTS {
        rack.add_txn_client(
            TxnClientConfig {
                workers: WORKERS,
                ..Default::default()
            },
            Box::new(TpccSource::new(cfg.clone())),
        );
    }
    rack
}

fn run(high_contention: bool, switch_slots: u32) -> RunStats {
    let mut rack = build(high_contention, switch_slots);
    warmup_and_measure(
        &mut rack,
        SimDuration::from_millis(5),
        SimDuration::from_millis(25),
    )
}

fn main() {
    println!("TPC-C on NetLock vs a server-only centralized lock manager");
    println!("({CLIENTS} clients x {WORKERS} workers, {LOCK_SERVERS} lock servers)\n");
    println!("setting      system       txn_ktps  lock_mrps  avg_lat_us  p99_lat_us  switch%");
    for high in [false, true] {
        let setting = if high { "high-cont " } else { "low-cont  " };
        for (name, slots) in [("NetLock    ", 100_000u32), ("server-only", 0)] {
            let stats = run(high, slots);
            let lat = stats.txn_latency_summary();
            println!(
                "{setting}  {name}  {:>8.1}  {:>9.2}  {:>10.1}  {:>10.1}  {:>6.1}",
                stats.tps() / 1e3,
                stats.lock_rps() / 1e6,
                lat.avg_us(),
                lat.p99_us(),
                stats.switch_share() * 100.0
            );
        }
    }
    println!("\nNetLock keeps the hot TPC-C rows (warehouses, districts, stock");
    println!("buckets) in switch memory via the knapsack allocator; the");
    println!("server-only deployment funnels everything through server CPUs.");
}
