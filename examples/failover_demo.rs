//! Failover demo (§4.5 / §6.5): a switch failure loses every register,
//! clients ride it out with retries and leases, and the control plane
//! reprograms the reactivated switch.
//!
//! ```text
//! cargo run --release --example failover_demo
//! ```

use netlock_core::prelude::*;
use netlock_proto::{LockId, LockMode};
use netlock_switch::control::apply_allocation;
use netlock_switch::SwitchNode;

fn main() {
    let mut rack = Rack::build(RackConfig {
        seed: 99,
        lock_servers: 2,
        ..Default::default()
    });
    let locks: Vec<LockId> = (0..256).map(LockId).collect();
    let stats: Vec<LockStats> = locks
        .iter()
        .map(|&lock| LockStats {
            lock,
            rate: 1.0,
            contention: 32,
            home_server: (lock.0 as usize) % 2,
        })
        .collect();
    let allocation = knapsack_allocate(&stats, 100_000);
    rack.program(&allocation);
    for _ in 0..4 {
        rack.add_txn_client(
            TxnClientConfig {
                workers: 8,
                retry_timeout: SimDuration::from_millis(5),
                ..Default::default()
            },
            Box::new(SingleLockSource {
                locks: locks.clone(),
                mode: LockMode::Exclusive,
                think: SimDuration::from_micros(50),
            }),
        );
    }

    let interval = SimDuration::from_millis(10);
    let mut last = 0u64;
    let mut sample = |rack: &mut Rack, label: &str| {
        rack.sim.run_for(interval);
        let total: u64 = txns_by_client(rack).iter().sum();
        let tps = (total - last) as f64 / interval.as_secs_f64();
        println!(
            "t={:>5.0}ms  {:>9.0} TPS  {label}",
            rack.sim.now().as_secs_f64() * 1e3,
            tps
        );
        last = total;
    };

    println!("healthy operation:");
    for _ in 0..3 {
        sample(&mut rack, "");
    }

    println!("\n!! switch stops (all register state lost)");
    let switch = rack.switch;
    rack.sim.fail_node(switch);
    for _ in 0..3 {
        sample(&mut rack, "<- outage: packets to the switch are dropped");
    }

    println!("\n!! switch reactivated; control plane reprograms the directory");
    rack.sim.revive_node(switch);
    rack.sim.with_node::<SwitchNode, _>(switch, |s| {
        s.reboot();
        s.dataplane_mut().set_default_servers(2);
        apply_allocation(s.dataplane_mut(), &allocation);
    });
    for _ in 0..4 {
        sample(
            &mut rack,
            "<- clients' retries re-acquire; throughput recovers",
        );
    }

    let retries: u64 = rack
        .clients
        .iter()
        .map(|&(id, _)| {
            rack.sim
                .read_node::<netlock_core::prelude::TxnClient, _>(id, |c| c.stats().retries)
        })
        .sum();
    println!("\ntotal acquire retransmissions during the run: {retries}");
}
