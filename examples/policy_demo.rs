//! Policy demo: the two §4.4 policies that decentralized lock managers
//! cannot provide — service differentiation with priorities and
//! performance isolation with per-tenant quotas.
//!
//! ```text
//! cargo run --release --example policy_demo
//! ```

use netlock_core::prelude::*;
use netlock_proto::{LockId, LockMode, Priority, TenantId};
use netlock_switch::priority::PriorityLayout;
use netlock_switch::SwitchNode;

const LOCKS: u32 = 16;

fn lock_set() -> Vec<LockId> {
    (0..LOCKS).map(LockId).collect()
}

fn source(think_us: u64) -> SingleLockSource {
    SingleLockSource {
        locks: lock_set(),
        mode: LockMode::Exclusive,
        think: SimDuration::from_micros(think_us),
    }
}

/// Two tenants contend for the same exclusive locks; tenant B runs at
/// high priority. Returns (tenant_a_tps, tenant_b_tps).
fn differentiation(differentiate: bool) -> (f64, f64) {
    let mut rack = Rack::build(RackConfig {
        seed: 31,
        lock_servers: 1,
        engine: EngineSpec::Priority(PriorityLayout::new(2, 64, LOCKS as usize)),
        ..Default::default()
    });
    rack.program_priority(&lock_set());
    let a_prio = if differentiate {
        Priority(1)
    } else {
        Priority(0)
    };
    for _ in 0..3 {
        let mut src = source(20);
        rack.add_txn_client(
            TxnClientConfig {
                workers: 8,
                ..Default::default()
            },
            Box::new(move |rng: &mut netlock_sim::SimRng| {
                use netlock_core::txn::TxnSource;
                src.next_txn(rng)
                    .with_tenant(TenantId(1))
                    .with_priority(a_prio)
            }),
        );
    }
    for _ in 0..3 {
        let mut src = source(20);
        rack.add_txn_client(
            TxnClientConfig {
                workers: 8,
                ..Default::default()
            },
            Box::new(move |rng: &mut netlock_sim::SimRng| {
                use netlock_core::txn::TxnSource;
                src.next_txn(rng)
                    .with_tenant(TenantId(2))
                    .with_priority(Priority(0))
            }),
        );
    }
    let measure = SimDuration::from_millis(20);
    rack.sim.run_for(SimDuration::from_millis(2));
    reset_clients(&mut rack);
    rack.sim.run_for(measure);
    let counts = txns_by_client(&rack);
    let secs = measure.as_secs_f64();
    (
        (0..3).map(|i| counts[i]).sum::<u64>() as f64 / secs,
        (3..6).map(|i| counts[i]).sum::<u64>() as f64 / secs,
    )
}

/// Tenant 1 has 4 clients, tenant 2 has 1; quotas cap each tenant at
/// half the lock rate. Returns (tenant1_tps, tenant2_tps).
fn isolation(isolate: bool) -> (f64, f64) {
    let mut rack = Rack::build(RackConfig {
        seed: 32,
        lock_servers: 1,
        ..Default::default()
    });
    let stats: Vec<LockStats> = lock_set()
        .iter()
        .map(|&lock| LockStats {
            lock,
            rate: 1.0,
            contention: 48,
            home_server: 0,
        })
        .collect();
    rack.program(&knapsack_allocate(&stats, 100_000));
    if isolate {
        // Each tenant gets half of roughly the unisolated lock rate.
        let switch = rack.switch;
        rack.sim.with_node::<SwitchNode, _>(switch, |s| {
            s.dataplane_mut()
                .set_tenant_meter(TenantId(1), 150_000, 32, 0);
            s.dataplane_mut()
                .set_tenant_meter(TenantId(2), 150_000, 32, 0);
        });
    }
    for tenant in [1u16, 1, 1, 1, 2] {
        let mut src = source(20);
        rack.add_txn_client(
            TxnClientConfig {
                workers: 8,
                retry_timeout: SimDuration::from_millis(2),
                ..Default::default()
            },
            Box::new(move |rng: &mut netlock_sim::SimRng| {
                use netlock_core::txn::TxnSource;
                src.next_txn(rng).with_tenant(TenantId(tenant))
            }),
        );
    }
    let measure = SimDuration::from_millis(20);
    rack.sim.run_for(SimDuration::from_millis(2));
    reset_clients(&mut rack);
    rack.sim.run_for(measure);
    let counts = txns_by_client(&rack);
    let secs = measure.as_secs_f64();
    (
        (0..4).map(|i| counts[i]).sum::<u64>() as f64 / secs,
        counts[4] as f64 / secs,
    )
}

fn main() {
    println!("== Service differentiation (two equal tenants, B = high priority) ==");
    let (a, b) = differentiation(false);
    println!("  without: tenant A {a:.0} TPS, tenant B {b:.0} TPS");
    let (a, b) = differentiation(true);
    println!("  with   : tenant A {a:.0} TPS, tenant B {b:.0} TPS  <- B prioritized");

    println!();
    println!("== Performance isolation (tenant1: 4 clients, tenant2: 1 client) ==");
    let (t1, t2) = isolation(false);
    println!("  without: tenant 1 {t1:.0} TPS, tenant 2 {t2:.0} TPS");
    let (t1, t2) = isolation(true);
    println!("  with   : tenant 1 {t1:.0} TPS, tenant 2 {t2:.0} TPS  <- equal shares enforced");
}
