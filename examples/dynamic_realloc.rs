//! Dynamic memory reallocation demo (§4.3): the switch control plane
//! measures per-lock rates and contention every epoch, reruns the
//! knapsack allocation, and migrates locks between switch and servers —
//! watch the switch's share of grants follow a shifting hot set.
//!
//! ```text
//! cargo run --release --example dynamic_realloc
//! ```

use netlock_core::prelude::*;
use netlock_proto::{LockId, LockMode};
use netlock_switch::{AutoRealloc, SwitchNode};

fn main() {
    let mut rack = Rack::build(RackConfig {
        seed: 77,
        lock_servers: 2,
        switch: netlock_switch::SwitchConfig {
            auto_realloc: Some(AutoRealloc {
                epoch: SimDuration::from_millis(5),
                switch_slots: 512,
                max_regions: 128,
                server_contention: 16,
            }),
            ..Default::default()
        },
        ..Default::default()
    });
    // Nothing pre-programmed: the control loop discovers everything.
    rack.program(&knapsack_allocate(&[], 0));

    // Phase 1 workload: locks 0..16 are hot.
    let client = rack.add_txn_client(
        TxnClientConfig {
            workers: 8,
            ..Default::default()
        },
        Box::new(SingleLockSource {
            locks: (0..16).map(LockId).collect(),
            mode: LockMode::Exclusive,
            think: SimDuration::from_micros(10),
        }),
    );

    let report = |rack: &mut Rack, label: &str| {
        let switch = rack.switch;
        let (resident, migrations) = rack.sim.read_node::<SwitchNode, _>(switch, |s| {
            (
                s.dataplane()
                    .directory()
                    .switch_resident()
                    .iter()
                    .map(|&(l, _, _)| l.0)
                    .collect::<Vec<_>>(),
                s.stats().migrations_done,
            )
        });
        println!(
            "t={:>3.0}ms  {label:<28} switch-resident: {:?} (migrations so far: {migrations})",
            rack.sim.now().as_secs_f64() * 1e3,
            resident
        );
    };

    report(&mut rack, "start (empty switch)");
    rack.sim.run_for(SimDuration::from_millis(15));
    report(&mut rack, "after 3 epochs, hot = 0..16");

    // The workload shifts: locks 100..116 become hot instead.
    rack.sim.with_node::<TxnClient, _>(client, |_| {});
    // (Closed-loop sources cannot be swapped mid-run; add a second
    // client for the new hot set and let the old one idle by giving it
    // nothing to contend on — in a real system the tenant's access
    // pattern simply changes.)
    let _client2 = rack.add_txn_client(
        TxnClientConfig {
            workers: 16,
            ..Default::default()
        },
        Box::new(SingleLockSource {
            locks: (100..116).map(LockId).collect(),
            mode: LockMode::Exclusive,
            think: SimDuration::from_micros(10),
        }),
    );
    rack.sim.run_for(SimDuration::from_millis(25));
    report(&mut rack, "after the hot set shifted");

    reset_clients(&mut rack);
    rack.sim.run_for(SimDuration::from_millis(10));
    let stats = collect(&rack, SimDuration::from_millis(10));
    println!(
        "\nsteady state: {:.0}% of grants served by the switch data plane",
        stats.switch_share() * 100.0
    );
    assert!(stats.switch_share() > 0.5);
}
