//! Nodes and the effect context they run in.
//!
//! A simulation is a set of nodes (clients, the lock switch, lock servers)
//! exchanging messages over links. Nodes are written in the event-driven,
//! poll-style idiom: a node never blocks, it reacts to a packet or a timer
//! and emits effects (sends, new timers) through the [`Context`].

use std::any::Any;

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifier of a node inside one simulator instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index form for vector-backed tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A message in flight between two nodes.
///
/// Deliberately minimal: a `Packet` is the payload of every `Deliver`
/// slot in the calendar queue, so each field here is paid for in every
/// queued event's footprint and memmove. Receivers that care about
/// send time carry a timestamp inside `M` (as the NetLock requests do
/// with `issued_at_ns`).
#[derive(Clone, Debug)]
pub struct Packet<M> {
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Application payload.
    pub payload: M,
}

/// Object-safe downcast support so harnesses can inspect concrete nodes.
pub trait AsAny: Any {
    /// Upcast to [`Any`] for downcasting by the harness.
    fn as_any(&self) -> &dyn Any;
    /// Mutable upcast to [`Any`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A simulated network endpoint.
///
/// Implementations must be deterministic: all randomness comes from the
/// [`Context`]'s RNG, all time from [`Context::now`].
///
/// `Send` is a supertrait so a partitioned simulator can advance its
/// logical processes on worker threads (see `Simulator::partition`);
/// nodes still only ever run on one thread at a time.
pub trait Node<M>: AsAny + Send {
    /// A packet addressed to this node has arrived.
    fn on_packet(&mut self, pkt: Packet<M>, ctx: &mut Context<'_, M>);

    /// A timer set earlier by this node has fired. `token` is the value
    /// passed to [`Context::set_timer`]; the node defines its meaning.
    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, M>);

    /// Called once when the node is installed, with its assigned id.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Human-readable name for traces.
    fn name(&self) -> &str {
        "node"
    }
}

/// An effect emitted by a node during a callback, applied by the simulator
/// after the callback returns.
#[derive(Debug)]
pub(crate) enum Effect<M> {
    Send {
        dst: NodeId,
        payload: M,
        extra_delay: SimDuration,
    },
    Timer {
        delay: SimDuration,
        token: u64,
    },
}

/// The execution context handed to a node callback.
///
/// Collects effects; the simulator turns them into future events once the
/// callback returns, which keeps dispatch free of re-entrancy.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) self_id: NodeId,
    pub(crate) effects: &'a mut Vec<Effect<M>>,
    pub(crate) rng: &'a mut SimRng,
}

impl<'a, M> Context<'a, M> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    #[inline]
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Deterministic RNG shared by the simulation.
    #[inline]
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Send `payload` to `dst`; it arrives after the link delay.
    #[inline]
    pub fn send(&mut self, dst: NodeId, payload: M) {
        self.effects.push(Effect::Send {
            dst,
            payload,
            extra_delay: SimDuration::ZERO,
        });
    }

    /// Send `payload` to `dst` with `extra_delay` added on top of the link
    /// delay (models local processing / NIC serialization at the sender).
    #[inline]
    pub fn send_after(&mut self, dst: NodeId, payload: M, extra_delay: SimDuration) {
        self.effects.push(Effect::Send {
            dst,
            payload,
            extra_delay,
        });
    }

    /// Arrange for [`Node::on_timer`] to be called on this node after
    /// `delay`, with the given token. Timers are not cancellable; stale
    /// timers should be recognized and ignored by the node.
    #[inline]
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.effects.push(Effect::Timer { delay, token });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_collects_effects() {
        let mut effects: Vec<Effect<u32>> = Vec::new();
        let mut rng = SimRng::new(1);
        let mut ctx = Context {
            now: SimTime(5),
            self_id: NodeId(0),
            effects: &mut effects,
            rng: &mut rng,
        };
        ctx.send(NodeId(1), 10);
        ctx.send_after(NodeId(2), 11, SimDuration(7));
        ctx.set_timer(SimDuration(3), 99);
        assert_eq!(ctx.now(), SimTime(5));
        assert_eq!(ctx.self_id(), NodeId(0));
        assert_eq!(effects.len(), 3);
        match &effects[1] {
            Effect::Send {
                dst, extra_delay, ..
            } => {
                assert_eq!(*dst, NodeId(2));
                assert_eq!(*extra_delay, SimDuration(7));
            }
            other => panic!("unexpected effect {other:?}"),
        }
        match &effects[2] {
            Effect::Timer { delay, token } => {
                assert_eq!(*delay, SimDuration(3));
                assert_eq!(*token, 99);
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(3).index(), 3);
        assert_eq!(format!("{}", NodeId(3)), "n3");
    }
}
