//! The event loop.
//!
//! [`Simulator`] owns the nodes, the topology, the clock and the pending
//! event queue. Events at equal timestamps are dispatched in insertion
//! order (FIFO), which — together with integer time and seeded RNG — makes
//! every run bit-for-bit reproducible.
//!
//! The queue is the calendar queue of [`crate::queue::EventQueue`]:
//! `O(1)` scheduling for near-future events instead of a global binary
//! heap's `O(log n)`, with identical `(time, seq)` pop order.

use std::collections::HashMap;

use crate::fault::{FaultAction, FaultPlan, RunOutcome};
use crate::link::{LinkConfig, Topology};
use crate::node::{Context, Effect, Node, NodeId, Packet};
use crate::queue::EventQueue;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// One queued event. `Deliver` is the hot variant and bounds the slot
/// size of every calendar-queue entry; `Fault` boxes its action (which
/// embeds a full `LinkConfig`) so the rare chaos events don't inflate
/// the per-slot footprint of the millions of packet events around them.
pub(crate) enum EventKind<M> {
    Deliver(Packet<M>),
    Timer { node: NodeId, token: u64 },
    Fault(Box<FaultAction>),
}

/// Run statistics maintained by the simulator itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Packets delivered to a node.
    pub packets_delivered: u64,
    /// Packets dropped by link loss.
    pub packets_lost: u64,
    /// Extra packet copies scheduled by link duplication faults.
    pub packets_duplicated: u64,
    /// Packets whose jittered arrival overtook an earlier send on the
    /// same directed link.
    pub packets_reordered: u64,
    /// Packets dropped because the destination node was removed/failed.
    pub packets_to_dead_node: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Fault-plan events applied.
    pub faults_applied: u64,
    /// Events pushed into the pending queue (packets and timers,
    /// including ones later dropped at a dead node).
    pub events_scheduled: u64,
    /// Events popped from the pending queue.
    pub events_fired: u64,
    /// High-water mark of the pending-event queue.
    pub max_queue_depth: u64,
}

impl SimStats {
    /// Fold another stats block into this one. Counters add; the queue
    /// high-water mark takes the max (each logical process of a
    /// partitioned run has its own queue, so depths don't add). The
    /// `delivered + timers + faults + to_dead == events_fired` partition
    /// of fired events is preserved: it holds per block, and every term
    /// is summed.
    pub fn merge(&mut self, other: &SimStats) {
        self.packets_delivered += other.packets_delivered;
        self.packets_lost += other.packets_lost;
        self.packets_duplicated += other.packets_duplicated;
        self.packets_reordered += other.packets_reordered;
        self.packets_to_dead_node += other.packets_to_dead_node;
        self.timers_fired += other.timers_fired;
        self.faults_applied += other.faults_applied;
        self.events_scheduled += other.events_scheduled;
        self.events_fired += other.events_fired;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
    }
}

/// Per-directed-link fault counters, exposed via
/// [`Simulator::link_counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Packets dropped on this link (Bernoulli or Gilbert–Elliott).
    pub lost: u64,
    /// Extra copies scheduled on this link.
    pub duplicated: u64,
    /// Packets that overtook an earlier send on this link.
    pub reordered: u64,
}

/// Mutable per-directed-link channel state (Gilbert–Elliott state plus
/// reorder tracking). Only allocated for links that see faults.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct LinkState {
    ge_bad: bool,
    last_arrival: SimTime,
    counters: LinkCounters,
}

/// Observer hook: receives a [`TapEvent`] for every packet-level event.
/// Installed with [`Simulator::set_tap`]; used by safety oracles and
/// chaos harnesses to audit the run without perturbing it. `Send` so a
/// tap installed on a logical process of a partitioned simulator can run
/// on a worker thread (each LP's tap sees only that LP's events, in that
/// LP's deterministic order).
pub type Tap<M> = Box<dyn FnMut(TapEvent<'_, M>) + Send>;

/// Compile-time tap strategy for the dispatch loop.
///
/// The run loops are generic over this trait so the untapped
/// configuration (every figure bench) monomorphizes to code with *zero*
/// tap branches or `Option` dances, while tapped runs (chaos/oracle)
/// route through the installed boxed closure with identical `TapEvent`
/// semantics. Emission sites guard with `if T::ENABLED`, which the
/// compiler folds away for [`NoTap`].
trait TapHook<M> {
    /// Whether this strategy observes events at all.
    const ENABLED: bool;
    /// Deliver one observation.
    fn emit(&mut self, ev: TapEvent<'_, M>);
}

/// The no-observer strategy: everything folds to nothing.
struct NoTap;

impl<M> TapHook<M> for NoTap {
    const ENABLED: bool = false;
    #[inline(always)]
    fn emit(&mut self, _ev: TapEvent<'_, M>) {}
}

/// The installed-observer strategy: forwards to the boxed tap closure.
struct DynTap<'a, M>(&'a mut dyn FnMut(TapEvent<'_, M>));

impl<M> TapHook<M> for DynTap<'_, M> {
    const ENABLED: bool = true;
    #[inline]
    fn emit(&mut self, ev: TapEvent<'_, M>) {
        (self.0)(ev)
    }
}

/// Hard node-count capacity of one simulator.
///
/// Per-hop link resolution uses a dense `n * n * sizeof(LinkConfig)`
/// table, so node count is a quadratic memory cost; 512 nodes keep the
/// table comfortably in cache while covering every rack/cluster layout
/// here (tens of nodes per rack). [`Simulator::add_node`] rejects the
/// 513th node with an actionable error: large client populations belong
/// in aggregate population nodes (netlock-core's `population` module,
/// ~100K virtual clients per node), not in per-client sim nodes.
pub const MAX_NODES: usize = 512;

/// One packet-level observation delivered to the tap.
#[derive(Debug)]
pub enum TapEvent<'a, M> {
    /// A node emitted a packet (observed before loss/duplication).
    Sent {
        /// Emission time.
        at: SimTime,
        /// Sending node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// The payload.
        payload: &'a M,
    },
    /// The packet was dropped by link loss.
    Lost {
        /// Emission time (the drop is decided at send).
        at: SimTime,
        /// Sending node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// The payload.
        payload: &'a M,
    },
    /// An extra copy of the packet was scheduled.
    Duplicated {
        /// Emission time.
        at: SimTime,
        /// Sending node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// The payload.
        payload: &'a M,
    },
    /// A packet is about to be dispatched to a live destination.
    Delivered {
        /// Delivery time.
        at: SimTime,
        /// The packet.
        pkt: &'a Packet<M>,
    },
    /// A packet reached a dead node and was discarded.
    DeliveredToDead {
        /// Delivery time.
        at: SimTime,
        /// The packet.
        pkt: &'a Packet<M>,
    },
    /// A fault-plan action fired.
    Fault {
        /// Firing time.
        at: SimTime,
        /// The action applied (for `Custom`, applied by the harness).
        action: FaultAction,
    },
}

/// A deterministic discrete-event simulator over message type `M`.
pub struct Simulator<M> {
    pub(crate) now: SimTime,
    pub(crate) seq: u64,
    pub(crate) queue: EventQueue<EventKind<M>>,
    pub(crate) nodes: Vec<Option<Box<dyn Node<M>>>>,
    pub(crate) alive: Vec<bool>,
    pub(crate) topology: Topology,
    pub(crate) rng: SimRng,
    effects: Vec<Effect<M>>,
    pub(crate) stats: SimStats,
    pub(crate) link_states: HashMap<(NodeId, NodeId), LinkState>,
    pub(crate) tap: Option<Tap<M>>,
    pub(crate) pending_custom: Option<(SimTime, u64)>,
    /// Dense resolved `(src, dst)` link table (row-major, `links_n`
    /// wide), rebuilt lazily when `topology.version()` or the node
    /// count diverges from the values it was built at.
    links: Vec<LinkConfig>,
    links_version: u64,
    links_n: usize,
    /// Reusable buffer for same-timestamp runs drained by `run_until`.
    burst: Vec<(SimTime, u64, EventKind<M>)>,
    /// Events popped into the current burst but not yet dispatched;
    /// added to `queue.len()` so `max_queue_depth` accounting matches
    /// the one-pop-per-step reference exactly.
    burst_pending: u64,
    /// Which logical process this simulator is, when it acts as one
    /// partition of a larger simulation (0 for a standalone simulator).
    pub(crate) lp: u32,
    /// `node index -> owning LP`, shared by every LP of one partitioned
    /// simulation. `None` for a standalone (unpartitioned) simulator,
    /// which is the only per-send cost the serial fast path pays.
    pub(crate) lp_of: Option<std::sync::Arc<[u32]>>,
    /// Per-destination-LP mailboxes: packets bound for a remote LP are
    /// diverted here (tagged with this LP's send `seq`) instead of the
    /// local queue, and exchanged at conservative window boundaries.
    pub(crate) outboxes: Vec<Vec<(SimTime, u64, Packet<M>)>>,
    /// Present when this simulator has been split into logical
    /// processes via [`Simulator::partition`]; the public API then
    /// delegates to the LPs it owns.
    pub(crate) par: Option<Box<crate::par::ParState<M>>>,
}

impl<M: Clone + Send + 'static> Simulator<M> {
    /// A simulator with the given topology and RNG seed.
    pub fn new(topology: Topology, seed: u64) -> Simulator<M> {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            queue: EventQueue::new(),
            nodes: Vec::new(),
            alive: Vec::new(),
            topology,
            rng: SimRng::new(seed),
            effects: Vec::new(),
            stats: SimStats::default(),
            link_states: HashMap::new(),
            tap: None,
            pending_custom: None,
            links: Vec::new(),
            links_version: u64::MAX,
            links_n: usize::MAX,
            burst: Vec::new(),
            burst_pending: 0,
            lp: 0,
            lp_of: None,
            outboxes: Vec::new(),
            par: None,
        }
    }

    /// A simulator with default intra-rack links.
    pub fn with_seed(seed: u64) -> Simulator<M> {
        Simulator::new(Topology::new(LinkConfig::default()), seed)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Simulator-level statistics. For a partitioned simulator this is
    /// the pre-partition baseline merged with every LP's stats: counters
    /// sum, `max_queue_depth` takes the max across LPs.
    pub fn stats(&self) -> SimStats {
        let mut out = self.stats;
        if let Some(par) = &self.par {
            for lp in &par.lps {
                out.merge(&lp.stats);
            }
        }
        out
    }

    /// Per-directed-link fault counters, sorted by `(src, dst)` so the
    /// output is deterministic. Only links that saw at least one loss,
    /// duplication or reorder (or carry fault state) appear. Partitioned:
    /// each directed link's state lives in the sender's LP, so merging
    /// the LPs never double-counts a link.
    pub fn link_counters(&self) -> Vec<((NodeId, NodeId), LinkCounters)> {
        let mut out: Vec<_> = self
            .link_states
            .iter()
            .map(|(k, v)| (*k, v.counters))
            .collect();
        if let Some(par) = &self.par {
            for lp in &par.lps {
                out.extend(lp.link_states.iter().map(|(k, v)| (*k, v.counters)));
            }
        }
        out.sort_by_key(|&((s, d), _)| (s.0, d.0));
        out
    }

    /// Install a packet-level observer. Replaces any previous tap.
    /// Panics on a partitioned simulator — use
    /// [`Simulator::set_lp_tap`] to observe one logical process.
    pub fn set_tap(&mut self, tap: Tap<M>) {
        assert!(
            self.par.is_none(),
            "set_tap on a partitioned simulator: install per-LP taps via set_lp_tap"
        );
        self.tap = Some(tap);
    }

    /// Install a packet-level observer on one logical process of a
    /// partitioned simulator. The tap sees only that LP's events, in
    /// that LP's deterministic order, regardless of worker count. On an
    /// unpartitioned simulator `lp` must be 0 and this is
    /// [`Simulator::set_tap`] (the whole simulation is one LP).
    pub fn set_lp_tap(&mut self, lp: usize, tap: Tap<M>) {
        match &mut self.par {
            Some(par) => par.lps[lp].tap = Some(tap),
            None => {
                assert_eq!(lp, 0, "unpartitioned simulator has only LP 0");
                self.tap = Some(tap);
            }
        }
    }

    /// Remove the packet-level observer.
    pub fn clear_tap(&mut self) {
        self.tap = None;
    }

    /// Schedule one fault action as a first-class simulator event.
    /// (The one allocation per fault event keeps the boxed action out
    /// of the hot packet slots; fault events are rare by construction.)
    ///
    /// Partitioned routing: link-config actions replicate to every LP
    /// (each applies the change to its own topology clone at the same
    /// instant, keeping all sender-side link views identical), node
    /// actions go to the node's owner LP, and `Custom` panics — chaos
    /// recovery drives a single-LP simulation.
    pub fn schedule_fault(&mut self, at: SimTime, action: FaultAction) {
        assert!(at >= self.now, "fault scheduled in the past");
        if self.par.is_some() {
            crate::par::schedule_fault_partitioned(self, at, action);
            return;
        }
        self.push(at, EventKind::Fault(Box::new(action)));
    }

    /// Install every event of a [`FaultPlan`]. Events are sorted by
    /// firing time (stable at ties) before insertion.
    pub fn install_plan(&mut self, plan: &FaultPlan) {
        for ev in plan.sorted_events() {
            self.schedule_fault(ev.at, ev.action);
        }
    }

    /// Mutable access to the topology (reconfigurable mid-run).
    /// Panics once partitioned: the LPs hold topology clones, so direct
    /// mutation would desynchronize them — reconfigure before
    /// [`Simulator::partition`] or via a fault plan.
    pub fn topology_mut(&mut self) -> &mut Topology {
        assert!(
            self.par.is_none(),
            "topology_mut on a partitioned simulator: mutate before partition() or via fault plan"
        );
        &mut self.topology
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Install a node; returns its id. The node's
    /// [`Node::on_start`] runs immediately at the current time.
    pub fn add_node(&mut self, node: Box<dyn Node<M>>) -> NodeId {
        assert!(
            self.par.is_none(),
            "add_node on a partitioned simulator: add every node before partition()"
        );
        assert!(
            self.nodes.len() < MAX_NODES,
            "simulator is full: {MAX_NODES} nodes (the dense (src,dst) link table is \
             O(n^2) and caps the topology at {MAX_NODES}). Per-node state for large \
             client counts does not scale anyway — model big populations with one \
             aggregate population node per ~100K virtual clients \
             (netlock-core's `population` module) instead of one node per client."
        );
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        self.alive.push(true);
        // Run on_start with effect collection.
        let mut node = self.nodes[id.index()].take().expect("just inserted");
        let mut effects = std::mem::take(&mut self.effects);
        {
            let mut ctx = Context {
                now: self.now,
                self_id: id,
                effects: &mut effects,
                rng: &mut self.rng,
            };
            node.on_start(&mut ctx);
        }
        self.nodes[id.index()] = Some(node);
        if let Some(mut t) = self.tap.take() {
            self.apply_effects(id, &mut effects, &mut DynTap(&mut *t));
            self.tap = Some(t);
        } else {
            self.apply_effects(id, &mut effects, &mut NoTap);
        }
        self.effects = effects;
        id
    }

    /// Mark a node as failed: pending and future packets/timers for it are
    /// silently dropped. The node object is retained for inspection.
    pub fn fail_node(&mut self, id: NodeId) {
        if let Some(par) = &mut self.par {
            let lp = par.owner_of(id);
            par.lps[lp].alive[id.index()] = false;
            return;
        }
        self.alive[id.index()] = false;
    }

    /// Revive a failed node. Events scheduled while it was down stay lost;
    /// new traffic flows again. (The node keeps whatever state it had —
    /// callers that model state loss must reset the node themselves.)
    pub fn revive_node(&mut self, id: NodeId) {
        if let Some(par) = &mut self.par {
            let lp = par.owner_of(id);
            par.lps[lp].alive[id.index()] = true;
            return;
        }
        self.alive[id.index()] = true;
    }

    /// Whether a node is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        if let Some(par) = &self.par {
            let lp = par.owner_of(id);
            return par.lps[lp].alive[id.index()];
        }
        self.alive[id.index()]
    }

    /// Inspect or mutate a concrete node (panics if the type is wrong).
    pub fn with_node<T: 'static, R>(&mut self, id: NodeId, f: impl FnOnce(&mut T) -> R) -> R {
        if let Some(par) = &mut self.par {
            let lp = par.owner_of(id);
            return par.lps[lp].with_node(id, f);
        }
        let node = self.nodes[id.index()]
            .as_mut()
            .expect("node is being dispatched");
        let any = node.as_any_mut();
        let t = any
            .downcast_mut::<T>()
            .expect("with_node called with wrong concrete type");
        f(t)
    }

    /// Read-only variant of [`Simulator::with_node`].
    pub fn read_node<T: 'static, R>(&self, id: NodeId, f: impl FnOnce(&T) -> R) -> R {
        if let Some(par) = &self.par {
            let lp = par.owner_of(id);
            return par.lps[lp].read_node(id, f);
        }
        let node = self.nodes[id.index()]
            .as_ref()
            .expect("node is being dispatched");
        let t = node
            .as_any()
            .downcast_ref::<T>()
            .expect("read_node called with wrong concrete type");
        f(t)
    }

    /// Inject a packet from outside the simulation (e.g. a harness kicking
    /// off a run). Delivered after the link delay from `src` to `dst`.
    /// Partitioned: scheduled directly in the destination's owner LP
    /// (all LP clocks agree between runs, and the LP's topology clone
    /// resolves the same link).
    pub fn inject(&mut self, src: NodeId, dst: NodeId, payload: M) {
        if let Some(par) = &mut self.par {
            let lp = par.owner_of(dst);
            par.lps[lp].inject(src, dst, payload);
            return;
        }
        let link = self.link_for(src, dst);
        let at = self.now + link.delay;
        self.push_deliver(at, Packet { src, dst, payload });
    }

    /// Schedule a timer on a node from outside the simulation.
    pub fn inject_timer(&mut self, node: NodeId, delay: SimDuration, token: u64) {
        if let Some(par) = &mut self.par {
            let lp = par.owner_of(node);
            par.lps[lp].inject_timer(node, delay, token);
            return;
        }
        let at = self.now + delay;
        self.push(at, EventKind::Timer { node, token });
    }

    /// Number of node slots (installed nodes) in this simulator.
    pub fn node_count(&self) -> usize {
        if let Some(par) = &self.par {
            return par.lps[0].nodes.len();
        }
        self.nodes.len()
    }

    /// Timestamp of the earliest pending event without dispatching it,
    /// via the calendar queue's [`EventQueue::peek_at`]. The conservative
    /// window loop uses this to compute the global lower bound on
    /// next-event time.
    pub fn next_event_at(&mut self) -> Option<SimTime> {
        if let Some(par) = &mut self.par {
            let mut min: Option<SimTime> = None;
            for lp in &mut par.lps {
                let t = lp.queue.peek_at();
                min = match (min, t) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            return min;
        }
        self.queue.peek_at()
    }

    /// Resolve the link config for one directed hop via the dense
    /// table, rebuilding it if the topology or node count changed.
    #[inline]
    fn link_for(&mut self, src: NodeId, dst: NodeId) -> LinkConfig {
        // `add_node` enforces n <= MAX_NODES, so the dense table always
        // applies — there is no silent hash-lookup slow path.
        let n = self.nodes.len();
        if self.links_version != self.topology.version() || self.links_n != n {
            self.topology.resolve_dense(n, &mut self.links);
            self.links_version = self.topology.version();
            self.links_n = n;
        }
        let (s, d) = (src.index(), dst.index());
        if s < n && d < n {
            self.links[s * n + d]
        } else {
            // Traffic to ids outside the node table (it drops at
            // delivery as dead-node) still resolves consistently.
            self.topology.link(src, dst)
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, seq, kind);
        self.stats.events_scheduled += 1;
        let depth = self.queue.len() as u64 + self.burst_pending;
        if depth > self.stats.max_queue_depth {
            self.stats.max_queue_depth = depth;
        }
    }

    /// Queue one delivery, diverting it to the destination LP's mailbox
    /// when this simulator is a logical process and the destination
    /// lives elsewhere. The diverted entry consumes a send `seq` (the
    /// deterministic mailbox merge key); `events_scheduled` is counted
    /// at the receiver when the mailbox is flushed into its queue. A
    /// standalone simulator pays one `Option` test here and nothing
    /// else.
    #[inline]
    fn push_deliver(&mut self, at: SimTime, pkt: Packet<M>) {
        if let Some(map) = &self.lp_of {
            if let Some(&dst_lp) = map.get(pkt.dst.index()) {
                if dst_lp != self.lp {
                    let seq = self.seq;
                    self.seq += 1;
                    self.outboxes[dst_lp as usize].push((at, seq, pkt));
                    return;
                }
            }
        }
        self.push(at, EventKind::Deliver(pkt));
    }

    /// Merge one window's worth of cross-LP arrivals into the local
    /// queue. Entries are sorted by `(at, seq, src_lp)` — a total order
    /// (seqs are unique per sender) independent of the order worker
    /// threads appended them — then pushed, which assigns fresh local
    /// seqs in merge order and counts them as scheduled here.
    pub(crate) fn flush_remote(&mut self, inbox: &mut Vec<(SimTime, u64, u32, Packet<M>)>) {
        inbox.sort_unstable_by_key(|&(at, seq, src_lp, _)| (at, seq, src_lp));
        for (at, _seq, _src_lp, pkt) in inbox.drain(..) {
            self.push(at, EventKind::Deliver(pkt));
        }
    }

    fn apply_effects<T: TapHook<M>>(
        &mut self,
        from: NodeId,
        effects: &mut Vec<Effect<M>>,
        tap: &mut T,
    ) {
        for eff in effects.drain(..) {
            match eff {
                Effect::Send {
                    dst,
                    payload,
                    extra_delay,
                } => {
                    self.transmit(tap, from, dst, payload, extra_delay);
                }
                Effect::Timer { delay, token } => {
                    let at = self.now + delay;
                    self.push(at, EventKind::Timer { node: from, token });
                }
            }
        }
    }

    /// Send one packet over the `(src, dst)` link, applying the link's
    /// loss (Bernoulli or Gilbert–Elliott), jitter and duplication.
    ///
    /// RNG draw order is fixed and conditional, so fault-free links draw
    /// exactly as before faults existed (byte-compatibility): GE
    /// transition + state loss (iff `ge` set), else Bernoulli loss (iff
    /// `loss > 0`), then jitter (iff `jitter > 0`), then duplication
    /// (iff `duplicate > 0`), then the duplicate's jitter.
    fn transmit<T: TapHook<M>>(
        &mut self,
        tap: &mut T,
        src: NodeId,
        dst: NodeId,
        payload: M,
        extra_delay: SimDuration,
    ) {
        let link = self.link_for(src, dst);
        if T::ENABLED {
            tap.emit(TapEvent::Sent {
                at: self.now,
                src,
                dst,
                payload: &payload,
            });
        }
        let faulty = link.faults.any();
        if !faulty && link.loss == 0.0 {
            // Healthy link (the overwhelmingly common case): no RNG
            // draws, no per-link state, one queue push.
            let at = self.now + link.delay + extra_delay;
            self.push_deliver(at, Packet { src, dst, payload });
            return;
        }
        // Loss: Gilbert–Elliott channel if configured, else Bernoulli.
        // RNG draw order stays fixed and conditional, so fault-free
        // links draw exactly as before faults existed: GE transition +
        // state loss (iff `ge` set), else Bernoulli loss (iff
        // `loss > 0`), then jitter (iff `jitter > 0`), then duplication
        // (iff `duplicate > 0`), then the duplicate's jitter.
        let lost = if let Some(ge) = link.faults.ge {
            let state = self.link_states.entry((src, dst)).or_default();
            let bad = state.ge_bad;
            let p_flip = if bad { ge.to_good } else { ge.to_bad };
            let flipped = self.rng.chance(p_flip);
            if flipped {
                state.ge_bad = !bad;
            }
            let p_loss = if bad ^ flipped {
                ge.loss_bad
            } else {
                ge.loss_good
            };
            self.rng.chance(p_loss)
        } else {
            link.loss > 0.0 && self.rng.chance(link.loss)
        };
        if lost {
            self.stats.packets_lost += 1;
            self.link_states
                .entry((src, dst))
                .or_default()
                .counters
                .lost += 1;
            if T::ENABLED {
                tap.emit(TapEvent::Lost {
                    at: self.now,
                    src,
                    dst,
                    payload: &payload,
                });
            }
            return;
        }
        let jitter = link.faults.jitter.as_nanos();
        let base = self.now + link.delay + extra_delay;
        let at = if jitter > 0 {
            base + SimDuration(self.rng.next_below(jitter + 1))
        } else {
            base
        };
        let duplicated = link.faults.duplicate > 0.0 && self.rng.chance(link.faults.duplicate);
        let dup_at = if duplicated {
            if jitter > 0 {
                Some(base + SimDuration(self.rng.next_below(jitter + 1)))
            } else {
                Some(base)
            }
        } else {
            None
        };
        if faulty {
            // One resolved entry per send covers both the reorder
            // accounting and the duplication counter. A plain-lossy
            // (non-faulty) link never reaches this block, so it still
            // only materializes link state on an actual loss.
            let state = self.link_states.entry((src, dst)).or_default();
            // Reorder accounting: a packet overtakes when it is scheduled
            // to arrive before the latest already-scheduled arrival on
            // this directed link.
            for &t_arr in [Some(at), dup_at].iter().flatten() {
                if t_arr < state.last_arrival {
                    state.counters.reordered += 1;
                    self.stats.packets_reordered += 1;
                } else {
                    state.last_arrival = t_arr;
                }
            }
            if dup_at.is_some() {
                state.counters.duplicated += 1;
            }
        }
        if let Some(dup_at) = dup_at {
            self.stats.packets_duplicated += 1;
            if T::ENABLED {
                tap.emit(TapEvent::Duplicated {
                    at: self.now,
                    src,
                    dst,
                    payload: &payload,
                });
            }
            self.push_deliver(
                dup_at,
                Packet {
                    src,
                    dst,
                    payload: payload.clone(),
                },
            );
        }
        self.push_deliver(at, Packet { src, dst, payload });
    }

    fn apply_fault<T: TapHook<M>>(&mut self, action: FaultAction, tap: &mut T) {
        self.stats.faults_applied += 1;
        if T::ENABLED {
            tap.emit(TapEvent::Fault {
                at: self.now,
                action,
            });
        }
        match action {
            FaultAction::SetDefaultLink(cfg) => self.topology.set_default(cfg),
            FaultAction::SetLink { src, dst, cfg } => self.topology.set_link(src, dst, cfg),
            FaultAction::ClearLink { src, dst } => self.topology.clear_link(src, dst),
            FaultAction::FailNode(id) => self.fail_node(id),
            FaultAction::ReviveNode(id) => self.revive_node(id),
            FaultAction::Custom(token) => self.pending_custom = Some((self.now, token)),
        }
    }

    /// Advance the clock to `at` and dispatch one already-popped event.
    fn dispatch<T: TapHook<M>>(&mut self, at: SimTime, kind: EventKind<M>, tap: &mut T) {
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.stats.events_fired += 1;
        let node_id = match &kind {
            EventKind::Deliver(pkt) => pkt.dst,
            EventKind::Timer { node, .. } => *node,
            EventKind::Fault(action) => {
                let action = **action;
                self.apply_fault(action, tap);
                return;
            }
        };
        if node_id.index() >= self.nodes.len() || !self.alive[node_id.index()] {
            self.stats.packets_to_dead_node += 1;
            if T::ENABLED {
                if let EventKind::Deliver(pkt) = &kind {
                    tap.emit(TapEvent::DeliveredToDead { at: self.now, pkt });
                }
            }
            return;
        }
        if T::ENABLED {
            if let EventKind::Deliver(pkt) = &kind {
                tap.emit(TapEvent::Delivered { at: self.now, pkt });
            }
        }
        let mut node = self.nodes[node_id.index()]
            .take()
            .expect("re-entrant dispatch");
        let mut effects = std::mem::take(&mut self.effects);
        {
            let mut ctx = Context {
                now: self.now,
                self_id: node_id,
                effects: &mut effects,
                rng: &mut self.rng,
            };
            match kind {
                EventKind::Deliver(pkt) => {
                    self.stats.packets_delivered += 1;
                    node.on_packet(pkt, &mut ctx)
                }
                EventKind::Timer { token, .. } => {
                    self.stats.timers_fired += 1;
                    node.on_timer(token, &mut ctx)
                }
                EventKind::Fault(_) => unreachable!("fault handled above"),
            }
        }
        self.nodes[node_id.index()] = Some(node);
        self.apply_effects(node_id, &mut effects, tap);
        self.effects = effects;
    }

    /// Process the next event. Returns `false` when the queue is empty.
    /// Panics on a partitioned simulator: single-stepping has no
    /// well-defined global order across logical processes — use
    /// [`Simulator::run_until`].
    pub fn step(&mut self) -> bool {
        assert!(
            self.par.is_none(),
            "step on a partitioned simulator: use run_until"
        );
        let Some((at, _seq, kind)) = self.queue.pop() else {
            return false;
        };
        if let Some(mut t) = self.tap.take() {
            self.dispatch(at, kind, &mut DynTap(&mut *t));
            self.tap = Some(t);
        } else {
            self.dispatch(at, kind, &mut NoTap);
        }
        true
    }

    /// Run until the clock reaches `deadline` (events at exactly `deadline`
    /// are processed) or the queue empties. The clock is advanced to
    /// `deadline` on return so subsequent scheduling is relative to it.
    /// [`FaultAction::Custom`] events encountered here are dropped —
    /// chaos harnesses use [`Simulator::run_until_fault`] instead.
    ///
    /// Internally this drains the queue in same-timestamp bursts via
    /// [`EventQueue::pop_run`]: one fused cursor scan yields the whole
    /// run, which is then dispatched in the identical `(at, seq)` FIFO
    /// order the one-pop-per-step loop would produce (events a dispatch
    /// schedules at the *same* instant carry higher `seq` than the rest
    /// of the burst, so picking them up in the next `pop_run` round
    /// preserves the order; see `tests/prop_spine.rs`).
    pub fn run_until(&mut self, deadline: SimTime) {
        if self.par.is_some() {
            let mut par = self.par.take().expect("just checked");
            crate::par::run_windows(&mut par, deadline);
            self.par = Some(par);
            if self.now < deadline {
                self.now = deadline;
            }
            return;
        }
        if let Some(mut t) = self.tap.take() {
            self.drain_until(deadline, &mut DynTap(&mut *t));
            self.tap = Some(t);
        } else {
            self.drain_until(deadline, &mut NoTap);
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    fn drain_until<T: TapHook<M>>(&mut self, deadline: SimTime, tap: &mut T) {
        let mut burst = std::mem::take(&mut self.burst);
        debug_assert!(burst.is_empty());
        loop {
            if self.queue.pop_run(deadline, &mut burst) == 0 {
                break;
            }
            self.burst_pending = burst.len() as u64;
            for (at, _seq, kind) in burst.drain(..) {
                self.burst_pending -= 1;
                self.dispatch(at, kind, tap);
            }
            self.pending_custom = None;
        }
        self.burst = burst;
    }

    /// Like [`Simulator::run_until`], but pauses when a
    /// [`FaultAction::Custom`] fires, returning
    /// [`RunOutcome::CustomFault`] so the caller can apply the
    /// domain-specific fault and resume with another call.
    ///
    /// This path dispatches strictly one event at a time (fused
    /// pop-if-due, no burst batching) so a `Custom` fault pauses with
    /// every later same-instant event still queued, exactly as before.
    pub fn run_until_fault(&mut self, deadline: SimTime) -> RunOutcome {
        if self.par.is_some() {
            // Custom faults cannot be scheduled on a partitioned
            // simulator (schedule_fault panics), so this can only ever
            // reach the deadline.
            self.run_until(deadline);
            return RunOutcome::ReachedDeadline;
        }
        if let Some((at, token)) = self.pending_custom.take() {
            return RunOutcome::CustomFault { at, token };
        }
        let paused = if let Some(mut t) = self.tap.take() {
            let p = self.drain_until_fault(deadline, &mut DynTap(&mut *t));
            self.tap = Some(t);
            p
        } else {
            self.drain_until_fault(deadline, &mut NoTap)
        };
        if let Some(outcome) = paused {
            return outcome;
        }
        if self.now < deadline {
            self.now = deadline;
        }
        RunOutcome::ReachedDeadline
    }

    fn drain_until_fault<T: TapHook<M>>(
        &mut self,
        deadline: SimTime,
        tap: &mut T,
    ) -> Option<RunOutcome> {
        loop {
            let (at, _seq, kind) = self.queue.pop_due(deadline)?;
            self.dispatch(at, kind, tap);
            if let Some((at, token)) = self.pending_custom.take() {
                return Some(RunOutcome::CustomFault { at, token });
            }
        }
    }

    /// Run for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Drain the queue completely (only safe for workloads that quiesce).
    pub fn run_to_quiescence(&mut self, max_events: u64) -> bool {
        for _ in 0..max_events {
            if !self.step() {
                return true;
            }
        }
        false
    }

    /// Number of events waiting in the queue. Partitioned: the sum over
    /// all LP queues plus any cross-LP packets staged in mailboxes.
    pub fn pending_events(&self) -> usize {
        if let Some(par) = &self.par {
            return par.pending_events();
        }
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every packet back to its sender after a fixed delay.
    struct Echo {
        received: Vec<(SimTime, u32)>,
    }

    impl Node<u32> for Echo {
        fn on_packet(&mut self, pkt: Packet<u32>, ctx: &mut Context<'_, u32>) {
            self.received.push((ctx.now(), pkt.payload));
            if pkt.payload < 100 {
                ctx.send(pkt.src, pkt.payload + 1);
            }
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_, u32>) {}
    }

    struct TimerNode {
        fired: Vec<(SimTime, u64)>,
    }

    impl Node<u32> for TimerNode {
        fn on_packet(&mut self, _pkt: Packet<u32>, _ctx: &mut Context<'_, u32>) {}
        fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, u32>) {
            self.fired.push((ctx.now(), token));
            if token < 3 {
                ctx.set_timer(SimDuration(10), token + 1);
            }
        }
    }

    fn sim() -> Simulator<u32> {
        let mut topo = Topology::new(LinkConfig::with_delay(SimDuration(100)));
        topo.set_default(LinkConfig::with_delay(SimDuration(100)));
        Simulator::new(topo, 1)
    }

    #[test]
    fn ping_pong_advances_time() {
        let mut s = sim();
        let a = s.add_node(Box::new(Echo { received: vec![] }));
        let b = s.add_node(Box::new(Echo { received: vec![] }));
        s.inject(a, b, 0);
        s.run_until(SimTime(1_000));
        // Packet 0 arrives at b at t=100, 1 at a at t=200, ...
        s.read_node::<Echo, _>(b, |n| {
            assert_eq!(n.received[0], (SimTime(100), 0));
            assert_eq!(n.received[1], (SimTime(300), 2));
        });
        s.read_node::<Echo, _>(a, |n| {
            assert_eq!(n.received[0], (SimTime(200), 1));
        });
    }

    #[test]
    fn node_capacity_is_enforced_with_actionable_error() {
        let mut s = sim();
        for _ in 0..MAX_NODES {
            s.add_node(Box::new(Echo { received: vec![] }));
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.add_node(Box::new(Echo { received: vec![] }));
        }))
        .expect_err("node 513 must be rejected");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(msg.contains("simulator is full"), "got: {msg}");
        assert!(
            msg.contains("population"),
            "error must point at aggregate population nodes: {msg}"
        );
    }

    #[test]
    fn chained_timers_fire_in_order() {
        let mut s = sim();
        let t = s.add_node(Box::new(TimerNode { fired: vec![] }));
        s.inject_timer(t, SimDuration(5), 1);
        s.run_until(SimTime(1_000));
        s.read_node::<TimerNode, _>(t, |n| {
            assert_eq!(
                n.fired,
                vec![(SimTime(5), 1), (SimTime(15), 2), (SimTime(25), 3),]
            );
        });
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut s = sim();
        s.run_until(SimTime(500));
        assert_eq!(s.now(), SimTime(500));
    }

    #[test]
    fn failed_node_drops_packets() {
        let mut s = sim();
        let a = s.add_node(Box::new(Echo { received: vec![] }));
        let b = s.add_node(Box::new(Echo { received: vec![] }));
        s.fail_node(b);
        s.inject(a, b, 0);
        s.run_until(SimTime(1_000));
        s.read_node::<Echo, _>(b, |n| assert!(n.received.is_empty()));
        assert_eq!(s.stats().packets_to_dead_node, 1);
        // Revive: new packets flow again (payload >= 100 stops the echo).
        s.revive_node(b);
        s.inject(a, b, 100);
        s.run_until(SimTime(2_000));
        s.read_node::<Echo, _>(b, |n| assert_eq!(n.received.len(), 1));
    }

    #[test]
    fn lossy_link_drops_deterministically() {
        let mut s = sim();
        let a = s.add_node(Box::new(Echo { received: vec![] }));
        let b = s.add_node(Box::new(Echo { received: vec![] }));
        s.topology_mut().set_link(
            b,
            a,
            LinkConfig::with_delay(SimDuration(100)).with_loss(1.0),
        );
        // a -> b delivered; echo b -> a always lost.
        s.inject(a, b, 0);
        s.run_until(SimTime(10_000));
        s.read_node::<Echo, _>(a, |n| assert!(n.received.is_empty()));
        assert_eq!(s.stats().packets_lost, 1);
    }

    #[test]
    fn same_time_events_fifo() {
        // Two packets injected at the same instant arrive in injection order.
        struct Rec {
            got: Vec<u32>,
        }
        impl Node<u32> for Rec {
            fn on_packet(&mut self, pkt: Packet<u32>, _ctx: &mut Context<'_, u32>) {
                self.got.push(pkt.payload);
            }
            fn on_timer(&mut self, _t: u64, _c: &mut Context<'_, u32>) {}
        }
        let mut s = sim();
        let r = s.add_node(Box::new(Rec { got: vec![] }));
        let x = s.add_node(Box::new(Echo { received: vec![] }));
        for i in 0..10 {
            s.inject(x, r, i);
        }
        s.run_until(SimTime(1_000));
        s.read_node::<Rec, _>(r, |n| {
            assert_eq!(n.got, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = |seed: u64| {
            let mut s: Simulator<u32> = Simulator::with_seed(seed);
            let a = s.add_node(Box::new(Echo { received: vec![] }));
            let b = s.add_node(Box::new(Echo { received: vec![] }));
            s.topology_mut()
                .set_default(LinkConfig::with_delay(SimDuration(50)).with_loss(0.3));
            s.inject(a, b, 0);
            s.run_until(SimTime(100_000));
            s.read_node::<Echo, _>(b, |n| n.received.clone())
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn quiescence_detection() {
        let mut s = sim();
        let a = s.add_node(Box::new(Echo { received: vec![] }));
        let b = s.add_node(Box::new(Echo { received: vec![] }));
        s.inject(a, b, 95); // bounces until payload hits 100
        assert!(s.run_to_quiescence(1_000));
        assert!(s.pending_events() == 0);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::node::{Context, Node, Packet};

    struct Counter(u64);
    impl Node<u32> for Counter {
        fn on_packet(&mut self, _pkt: Packet<u32>, _ctx: &mut Context<'_, u32>) {}
        fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_, u32>) {
            self.0 += 1;
            // Perpetual ticking: quiescence is never reached.
            ctx.set_timer(SimDuration(100), 0);
        }
    }

    #[test]
    fn quiescence_budget_exhaustion_reports_false() {
        let mut s: Simulator<u32> = Simulator::with_seed(1);
        let n = s.add_node(Box::new(Counter(0)));
        s.inject_timer(n, SimDuration(1), 0);
        assert!(!s.run_to_quiescence(50), "perpetual timer cannot quiesce");
        s.read_node::<Counter, _>(n, |c| assert_eq!(c.0, 50));
    }

    #[test]
    fn inject_timer_fires_at_requested_delay() {
        let mut s: Simulator<u32> = Simulator::with_seed(2);
        struct Once(Option<SimTime>);
        impl Node<u32> for Once {
            fn on_packet(&mut self, _p: Packet<u32>, _c: &mut Context<'_, u32>) {}
            fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_, u32>) {
                self.0 = Some(ctx.now());
            }
        }
        let n = s.add_node(Box::new(Once(None)));
        s.inject_timer(n, SimDuration(12_345), 7);
        s.run_until(SimTime(100_000));
        s.read_node::<Once, _>(n, |o| assert_eq!(o.0, Some(SimTime(12_345))));
    }

    #[test]
    fn stats_count_deliveries_and_timers() {
        let mut s: Simulator<u32> = Simulator::with_seed(3);
        let n = s.add_node(Box::new(Counter(0)));
        s.inject_timer(n, SimDuration(1), 0);
        s.run_until(SimTime(450));
        // A timer-only run delivers no packets: `packets_delivered`
        // counts Deliver events only, not everything dispatched.
        assert_eq!(s.stats().packets_delivered, 0);
        assert!(s.stats().timers_fired >= 4);
        assert_eq!(s.stats().packets_lost, 0);
    }

    #[test]
    fn every_fired_event_is_counted_once() {
        // Mixed packets + timers + a dead-node drop: every popped event
        // lands in exactly one bucket, so the buckets sum to
        // events_fired.
        struct PingTimer {
            peer: NodeId,
            left: u32,
        }
        impl Node<u32> for PingTimer {
            fn on_packet(&mut self, _p: Packet<u32>, ctx: &mut Context<'_, u32>) {
                if self.left > 0 {
                    self.left -= 1;
                    ctx.send(self.peer, self.left);
                    ctx.set_timer(SimDuration(7), 1);
                }
            }
            fn on_timer(&mut self, _t: u64, _c: &mut Context<'_, u32>) {}
        }
        let mut s: Simulator<u32> = Simulator::with_seed(5);
        let a = s.add_node(Box::new(PingTimer {
            peer: NodeId(1),
            left: 20,
        }));
        let b = s.add_node(Box::new(PingTimer { peer: a, left: 20 }));
        s.inject(b, a, 0);
        // One packet into the void: dispatched, counted as dead-node.
        s.inject(a, NodeId(99), 7);
        s.run_until(SimTime(1_000_000));
        let st = s.stats();
        assert!(st.packets_delivered > 0 && st.timers_fired > 0);
        assert_eq!(st.packets_to_dead_node, 1);
        assert_eq!(
            st.packets_delivered + st.timers_fired + st.faults_applied + st.packets_to_dead_node,
            st.events_fired,
            "stats buckets must partition events_fired: {st:?}"
        );
    }

    #[test]
    fn pending_events_visible() {
        let mut s: Simulator<u32> = Simulator::with_seed(4);
        let n = s.add_node(Box::new(Counter(0)));
        s.inject_timer(n, SimDuration(1_000), 0);
        s.inject_timer(n, SimDuration(2_000), 0);
        assert_eq!(s.pending_events(), 2);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{FaultAction, FaultPlan, RunOutcome};
    use crate::link::{GeParams, LinkFaults};

    /// Sends `total` sequence-numbered packets to `dst`, one per `gap`.
    struct Flood {
        dst: NodeId,
        total: u32,
        sent: u32,
        gap: SimDuration,
    }
    impl Node<u32> for Flood {
        fn on_packet(&mut self, _p: Packet<u32>, _c: &mut Context<'_, u32>) {}
        fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_, u32>) {
            if self.sent < self.total {
                ctx.send(self.dst, self.sent);
                self.sent += 1;
                ctx.set_timer(self.gap, 0);
            }
        }
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.set_timer(self.gap, 0);
        }
    }

    struct Rec {
        got: Vec<u32>,
    }
    impl Node<u32> for Rec {
        fn on_packet(&mut self, pkt: Packet<u32>, _ctx: &mut Context<'_, u32>) {
            self.got.push(pkt.payload);
        }
        fn on_timer(&mut self, _t: u64, _c: &mut Context<'_, u32>) {}
    }

    fn flood_sim(seed: u64, total: u32, faults: LinkFaults) -> (Simulator<u32>, NodeId, NodeId) {
        let mut s: Simulator<u32> = Simulator::with_seed(seed);
        let r = s.add_node(Box::new(Rec { got: vec![] }));
        let f = s.add_node(Box::new(Flood {
            dst: r,
            total,
            sent: 0,
            gap: SimDuration(1_000),
        }));
        let cfg = LinkConfig::with_delay(SimDuration(500)).with_faults(faults);
        s.topology_mut().set_link(f, r, cfg);
        (s, f, r)
    }

    #[test]
    fn ge_losses_cluster_into_bursts() {
        let faults = LinkFaults {
            ge: Some(GeParams::bursty(0.05, 0.25, 1.0)),
            ..LinkFaults::NONE
        };
        let (mut s, f, r) = flood_sim(11, 400, faults);
        s.run_until(SimTime(1_000_000));
        let got = s.read_node::<Rec, _>(r, |n| n.got.clone());
        let lost = 400 - got.len() as u64;
        assert!(lost > 0, "GE channel must drop packets");
        assert_eq!(s.stats().packets_lost, lost);
        let per_link = s.link_counters();
        let entry = per_link.iter().find(|((a, b), _)| (*a, *b) == (f, r));
        assert_eq!(entry.expect("link counters recorded").1.lost, lost);
        // Burstiness: with loss_bad = 1 every bad-state packet drops, so
        // some run of >= 2 consecutive sequence numbers must be missing.
        let mut missing_run = 0u32;
        let mut best = 0u32;
        let present: std::collections::HashSet<u32> = got.iter().copied().collect();
        for i in 0..400 {
            if present.contains(&i) {
                missing_run = 0;
            } else {
                missing_run += 1;
                best = best.max(missing_run);
            }
        }
        assert!(best >= 2, "losses should cluster, longest run {best}");
        // Mean loss rate stays near the stationary bad fraction (~1/6),
        // nowhere near loss_bad itself.
        assert!(lost < 200, "loss rate should be far below loss_bad");
    }

    #[test]
    fn duplication_delivers_twice_and_counts() {
        let faults = LinkFaults {
            duplicate: 1.0,
            ..LinkFaults::NONE
        };
        let (mut s, f, r) = flood_sim(5, 10, faults);
        s.run_until(SimTime(1_000_000));
        let got = s.read_node::<Rec, _>(r, |n| n.got.clone());
        assert_eq!(got.len(), 20, "every packet delivered twice");
        assert_eq!(s.stats().packets_duplicated, 10);
        let per_link = s.link_counters();
        let entry = per_link.iter().find(|((a, b), _)| (*a, *b) == (f, r));
        assert_eq!(entry.expect("counters").1.duplicated, 10);
        // With zero jitter the original precedes its duplicate (FIFO at
        // equal timestamps), so the sequence is 0,0,1,1,...
        for i in 0..10u32 {
            assert_eq!(got[2 * i as usize], i);
            assert_eq!(got[2 * i as usize + 1], i);
        }
    }

    #[test]
    fn jitter_reorders_back_to_back_sends() {
        let faults = LinkFaults {
            jitter: SimDuration(10_000),
            ..LinkFaults::NONE
        };
        let (mut s, _f, r) = flood_sim(7, 100, faults);
        s.run_until(SimTime(10_000_000));
        let got = s.read_node::<Rec, _>(r, |n| n.got.clone());
        assert_eq!(got.len(), 100, "jitter never loses packets");
        assert!(
            got.windows(2).any(|w| w[0] > w[1]),
            "10us jitter over 1us spacing must reorder"
        );
        assert!(s.stats().packets_reordered > 0);
    }

    #[test]
    fn fault_plan_flaps_link_and_pauses_on_custom() {
        let plan = FaultPlan::new()
            .with(
                SimTime(10_000),
                FaultAction::SetDefaultLink(
                    LinkConfig::with_delay(SimDuration(500)).with_loss(1.0),
                ),
            )
            .with(SimTime(20_000), FaultAction::Custom(42))
            .with(
                SimTime(30_000),
                FaultAction::SetDefaultLink(LinkConfig::with_delay(SimDuration(500))),
            );
        let mut s: Simulator<u32> = Simulator::with_seed(3);
        let r = s.add_node(Box::new(Rec { got: vec![] }));
        let f = s.add_node(Box::new(Flood {
            dst: r,
            total: 50,
            sent: 0,
            gap: SimDuration(1_000),
        }));
        s.topology_mut()
            .set_default(LinkConfig::with_delay(SimDuration(500)));
        s.install_plan(&plan);
        let outcome = s.run_until_fault(SimTime(100_000));
        assert_eq!(
            outcome,
            RunOutcome::CustomFault {
                at: SimTime(20_000),
                token: 42
            }
        );
        assert_eq!(s.now(), SimTime(20_000));
        let outcome = s.run_until_fault(SimTime(100_000));
        assert_eq!(outcome, RunOutcome::ReachedDeadline);
        let got = s.read_node::<Rec, _>(r, |n| n.got.clone());
        // Packets sent in [10us, 30us) are all lost; the rest arrive.
        assert!(got.len() < 50 && !got.is_empty());
        assert_eq!(s.stats().packets_lost, 50 - got.len() as u64);
        assert_eq!(s.stats().faults_applied, 3);
        // Sends outside the flap window are unaffected.
        assert!(got.contains(&0) && got.contains(&49));
        let _ = f;
    }

    #[test]
    fn fail_and_revive_via_plan() {
        let plan = FaultPlan::new()
            .with(SimTime(5_500), FaultAction::FailNode(NodeId(0)))
            .with(SimTime(15_500), FaultAction::ReviveNode(NodeId(0)));
        let mut s: Simulator<u32> = Simulator::with_seed(9);
        let r = s.add_node(Box::new(Rec { got: vec![] }));
        let _f = s.add_node(Box::new(Flood {
            dst: r,
            total: 30,
            sent: 0,
            gap: SimDuration(1_000),
        }));
        s.install_plan(&plan);
        s.run_until(SimTime(100_000));
        assert!(s.is_alive(r));
        let got = s.read_node::<Rec, _>(r, |n| n.got.clone());
        assert!(s.stats().packets_to_dead_node > 0);
        assert_eq!(got.len() as u64 + s.stats().packets_to_dead_node, 30);
    }

    #[test]
    fn tap_observes_sends_losses_and_deliveries() {
        use std::sync::{Arc, Mutex};
        let counts = Arc::new(Mutex::new((0u64, 0u64, 0u64, 0u64)));
        let c2 = Arc::clone(&counts);
        let faults = LinkFaults {
            duplicate: 1.0,
            ..LinkFaults::NONE
        };
        let (mut s, _f, _r) = flood_sim(5, 10, faults);
        s.set_tap(Box::new(move |ev| {
            let mut c = c2.lock().unwrap();
            match ev {
                TapEvent::Sent { .. } => c.0 += 1,
                TapEvent::Lost { .. } => c.1 += 1,
                TapEvent::Duplicated { .. } => c.2 += 1,
                TapEvent::Delivered { .. } => c.3 += 1,
                _ => {}
            }
        }));
        s.run_until(SimTime(1_000_000));
        let c = counts.lock().unwrap();
        assert_eq!(c.0, 10, "one Sent per logical send");
        assert_eq!(c.1, 0);
        assert_eq!(c.2, 10);
        assert_eq!(c.3, 20, "original + duplicate deliveries");
    }

    #[test]
    fn faulty_run_is_deterministic() {
        let run = |seed: u64| {
            let faults = LinkFaults {
                duplicate: 0.2,
                jitter: SimDuration(5_000),
                ge: Some(GeParams::bursty(0.1, 0.3, 0.9)),
            };
            let (mut s, _f, r) = flood_sim(seed, 200, faults);
            s.run_until(SimTime(10_000_000));
            (
                s.read_node::<Rec, _>(r, |n| n.got.clone()),
                s.stats().packets_lost,
                s.stats().packets_duplicated,
                s.stats().packets_reordered,
            )
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21).0, run(22).0, "different seed, different trace");
    }
}
