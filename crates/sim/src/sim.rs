//! The event loop.
//!
//! [`Simulator`] owns the nodes, the topology, the clock and the pending
//! event queue. Events at equal timestamps are dispatched in insertion
//! order (FIFO), which — together with integer time and seeded RNG — makes
//! every run bit-for-bit reproducible.
//!
//! The queue is the calendar queue of [`crate::queue::EventQueue`]:
//! `O(1)` scheduling for near-future events instead of a global binary
//! heap's `O(log n)`, with identical `(time, seq)` pop order.

use crate::link::{LinkConfig, Topology};
use crate::node::{Context, Effect, Node, NodeId, Packet};
use crate::queue::EventQueue;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

enum EventKind<M> {
    Deliver(Packet<M>),
    Timer { node: NodeId, token: u64 },
}

/// Run statistics maintained by the simulator itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimStats {
    /// Packets delivered to a node.
    pub packets_delivered: u64,
    /// Packets dropped by link loss.
    pub packets_lost: u64,
    /// Packets dropped because the destination node was removed/failed.
    pub packets_to_dead_node: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Events pushed into the pending queue (packets and timers,
    /// including ones later dropped at a dead node).
    pub events_scheduled: u64,
    /// Events popped from the pending queue.
    pub events_fired: u64,
    /// High-water mark of the pending-event queue.
    pub max_queue_depth: u64,
}

/// A deterministic discrete-event simulator over message type `M`.
pub struct Simulator<M> {
    now: SimTime,
    seq: u64,
    queue: EventQueue<EventKind<M>>,
    nodes: Vec<Option<Box<dyn Node<M>>>>,
    alive: Vec<bool>,
    topology: Topology,
    rng: SimRng,
    effects: Vec<Effect<M>>,
    stats: SimStats,
}

impl<M: 'static> Simulator<M> {
    /// A simulator with the given topology and RNG seed.
    pub fn new(topology: Topology, seed: u64) -> Simulator<M> {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            queue: EventQueue::new(),
            nodes: Vec::new(),
            alive: Vec::new(),
            topology,
            rng: SimRng::new(seed),
            effects: Vec::new(),
            stats: SimStats::default(),
        }
    }

    /// A simulator with default intra-rack links.
    pub fn with_seed(seed: u64) -> Simulator<M> {
        Simulator::new(Topology::new(LinkConfig::default()), seed)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Simulator-level statistics.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Mutable access to the topology (reconfigurable mid-run).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Install a node; returns its id. The node's
    /// [`Node::on_start`] runs immediately at the current time.
    pub fn add_node(&mut self, node: Box<dyn Node<M>>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        self.alive.push(true);
        // Run on_start with effect collection.
        let mut node = self.nodes[id.index()].take().expect("just inserted");
        let mut effects = std::mem::take(&mut self.effects);
        {
            let mut ctx = Context {
                now: self.now,
                self_id: id,
                effects: &mut effects,
                rng: &mut self.rng,
            };
            node.on_start(&mut ctx);
        }
        self.nodes[id.index()] = Some(node);
        self.apply_effects(id, &mut effects);
        self.effects = effects;
        id
    }

    /// Mark a node as failed: pending and future packets/timers for it are
    /// silently dropped. The node object is retained for inspection.
    pub fn fail_node(&mut self, id: NodeId) {
        self.alive[id.index()] = false;
    }

    /// Revive a failed node. Events scheduled while it was down stay lost;
    /// new traffic flows again. (The node keeps whatever state it had —
    /// callers that model state loss must reset the node themselves.)
    pub fn revive_node(&mut self, id: NodeId) {
        self.alive[id.index()] = true;
    }

    /// Whether a node is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.alive[id.index()]
    }

    /// Inspect or mutate a concrete node (panics if the type is wrong).
    pub fn with_node<T: 'static, R>(&mut self, id: NodeId, f: impl FnOnce(&mut T) -> R) -> R {
        let node = self.nodes[id.index()]
            .as_mut()
            .expect("node is being dispatched");
        let any = node.as_any_mut();
        let t = any
            .downcast_mut::<T>()
            .expect("with_node called with wrong concrete type");
        f(t)
    }

    /// Read-only variant of [`Simulator::with_node`].
    pub fn read_node<T: 'static, R>(&self, id: NodeId, f: impl FnOnce(&T) -> R) -> R {
        let node = self.nodes[id.index()]
            .as_ref()
            .expect("node is being dispatched");
        let t = node
            .as_any()
            .downcast_ref::<T>()
            .expect("read_node called with wrong concrete type");
        f(t)
    }

    /// Inject a packet from outside the simulation (e.g. a harness kicking
    /// off a run). Delivered after the link delay from `src` to `dst`.
    pub fn inject(&mut self, src: NodeId, dst: NodeId, payload: M) {
        let link = self.topology.link(src, dst);
        let at = self.now + link.delay;
        self.push(
            at,
            EventKind::Deliver(Packet {
                src,
                dst,
                sent_at: self.now,
                payload,
            }),
        );
    }

    /// Schedule a timer on a node from outside the simulation.
    pub fn inject_timer(&mut self, node: NodeId, delay: SimDuration, token: u64) {
        let at = self.now + delay;
        self.push(at, EventKind::Timer { node, token });
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, seq, kind);
        self.stats.events_scheduled += 1;
        let depth = self.queue.len() as u64;
        if depth > self.stats.max_queue_depth {
            self.stats.max_queue_depth = depth;
        }
    }

    fn apply_effects(&mut self, from: NodeId, effects: &mut Vec<Effect<M>>) {
        for eff in effects.drain(..) {
            match eff {
                Effect::Send {
                    dst,
                    payload,
                    extra_delay,
                } => {
                    let link = self.topology.link(from, dst);
                    if link.loss > 0.0 && self.rng.chance(link.loss) {
                        self.stats.packets_lost += 1;
                        continue;
                    }
                    let at = self.now + link.delay + extra_delay;
                    self.push(
                        at,
                        EventKind::Deliver(Packet {
                            src: from,
                            dst,
                            sent_at: self.now,
                            payload,
                        }),
                    );
                }
                Effect::Timer { delay, token } => {
                    let at = self.now + delay;
                    self.push(at, EventKind::Timer { node: from, token });
                }
            }
        }
    }

    /// Process the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, _seq, kind)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.stats.events_fired += 1;
        let node_id = match &kind {
            EventKind::Deliver(pkt) => pkt.dst,
            EventKind::Timer { node, .. } => *node,
        };
        if node_id.index() >= self.nodes.len() || !self.alive[node_id.index()] {
            self.stats.packets_to_dead_node += 1;
            return true;
        }
        let mut node = self.nodes[node_id.index()]
            .take()
            .expect("re-entrant dispatch");
        let mut effects = std::mem::take(&mut self.effects);
        {
            let mut ctx = Context {
                now: self.now,
                self_id: node_id,
                effects: &mut effects,
                rng: &mut self.rng,
            };
            match kind {
                EventKind::Deliver(pkt) => node.on_packet(pkt, &mut ctx),
                EventKind::Timer { token, .. } => {
                    self.stats.timers_fired += 1;
                    node.on_timer(token, &mut ctx)
                }
            }
        }
        self.nodes[node_id.index()] = Some(node);
        self.stats.packets_delivered += 1;
        self.apply_effects(node_id, &mut effects);
        self.effects = effects;
        true
    }

    /// Run until the clock reaches `deadline` (events at exactly `deadline`
    /// are processed) or the queue empties. The clock is advanced to
    /// `deadline` on return so subsequent scheduling is relative to it.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(head_at) = self.queue.peek_at() {
            if head_at > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Drain the queue completely (only safe for workloads that quiesce).
    pub fn run_to_quiescence(&mut self, max_events: u64) -> bool {
        for _ in 0..max_events {
            if !self.step() {
                return true;
            }
        }
        false
    }

    /// Number of events waiting in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every packet back to its sender after a fixed delay.
    struct Echo {
        received: Vec<(SimTime, u32)>,
    }

    impl Node<u32> for Echo {
        fn on_packet(&mut self, pkt: Packet<u32>, ctx: &mut Context<'_, u32>) {
            self.received.push((ctx.now(), pkt.payload));
            if pkt.payload < 100 {
                ctx.send(pkt.src, pkt.payload + 1);
            }
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_, u32>) {}
    }

    struct TimerNode {
        fired: Vec<(SimTime, u64)>,
    }

    impl Node<u32> for TimerNode {
        fn on_packet(&mut self, _pkt: Packet<u32>, _ctx: &mut Context<'_, u32>) {}
        fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, u32>) {
            self.fired.push((ctx.now(), token));
            if token < 3 {
                ctx.set_timer(SimDuration(10), token + 1);
            }
        }
    }

    fn sim() -> Simulator<u32> {
        let mut topo = Topology::new(LinkConfig::with_delay(SimDuration(100)));
        topo.set_default(LinkConfig::with_delay(SimDuration(100)));
        Simulator::new(topo, 1)
    }

    #[test]
    fn ping_pong_advances_time() {
        let mut s = sim();
        let a = s.add_node(Box::new(Echo { received: vec![] }));
        let b = s.add_node(Box::new(Echo { received: vec![] }));
        s.inject(a, b, 0);
        s.run_until(SimTime(1_000));
        // Packet 0 arrives at b at t=100, 1 at a at t=200, ...
        s.read_node::<Echo, _>(b, |n| {
            assert_eq!(n.received[0], (SimTime(100), 0));
            assert_eq!(n.received[1], (SimTime(300), 2));
        });
        s.read_node::<Echo, _>(a, |n| {
            assert_eq!(n.received[0], (SimTime(200), 1));
        });
    }

    #[test]
    fn chained_timers_fire_in_order() {
        let mut s = sim();
        let t = s.add_node(Box::new(TimerNode { fired: vec![] }));
        s.inject_timer(t, SimDuration(5), 1);
        s.run_until(SimTime(1_000));
        s.read_node::<TimerNode, _>(t, |n| {
            assert_eq!(
                n.fired,
                vec![(SimTime(5), 1), (SimTime(15), 2), (SimTime(25), 3),]
            );
        });
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut s = sim();
        s.run_until(SimTime(500));
        assert_eq!(s.now(), SimTime(500));
    }

    #[test]
    fn failed_node_drops_packets() {
        let mut s = sim();
        let a = s.add_node(Box::new(Echo { received: vec![] }));
        let b = s.add_node(Box::new(Echo { received: vec![] }));
        s.fail_node(b);
        s.inject(a, b, 0);
        s.run_until(SimTime(1_000));
        s.read_node::<Echo, _>(b, |n| assert!(n.received.is_empty()));
        assert_eq!(s.stats().packets_to_dead_node, 1);
        // Revive: new packets flow again (payload >= 100 stops the echo).
        s.revive_node(b);
        s.inject(a, b, 100);
        s.run_until(SimTime(2_000));
        s.read_node::<Echo, _>(b, |n| assert_eq!(n.received.len(), 1));
    }

    #[test]
    fn lossy_link_drops_deterministically() {
        let mut s = sim();
        let a = s.add_node(Box::new(Echo { received: vec![] }));
        let b = s.add_node(Box::new(Echo { received: vec![] }));
        s.topology_mut().set_link(
            b,
            a,
            LinkConfig {
                delay: SimDuration(100),
                loss: 1.0,
            },
        );
        // a -> b delivered; echo b -> a always lost.
        s.inject(a, b, 0);
        s.run_until(SimTime(10_000));
        s.read_node::<Echo, _>(a, |n| assert!(n.received.is_empty()));
        assert_eq!(s.stats().packets_lost, 1);
    }

    #[test]
    fn same_time_events_fifo() {
        // Two packets injected at the same instant arrive in injection order.
        struct Rec {
            got: Vec<u32>,
        }
        impl Node<u32> for Rec {
            fn on_packet(&mut self, pkt: Packet<u32>, _ctx: &mut Context<'_, u32>) {
                self.got.push(pkt.payload);
            }
            fn on_timer(&mut self, _t: u64, _c: &mut Context<'_, u32>) {}
        }
        let mut s = sim();
        let r = s.add_node(Box::new(Rec { got: vec![] }));
        let x = s.add_node(Box::new(Echo { received: vec![] }));
        for i in 0..10 {
            s.inject(x, r, i);
        }
        s.run_until(SimTime(1_000));
        s.read_node::<Rec, _>(r, |n| {
            assert_eq!(n.got, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = |seed: u64| {
            let mut s: Simulator<u32> = Simulator::with_seed(seed);
            let a = s.add_node(Box::new(Echo { received: vec![] }));
            let b = s.add_node(Box::new(Echo { received: vec![] }));
            s.topology_mut().set_default(LinkConfig {
                delay: SimDuration(50),
                loss: 0.3,
            });
            s.inject(a, b, 0);
            s.run_until(SimTime(100_000));
            s.read_node::<Echo, _>(b, |n| n.received.clone())
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn quiescence_detection() {
        let mut s = sim();
        let a = s.add_node(Box::new(Echo { received: vec![] }));
        let b = s.add_node(Box::new(Echo { received: vec![] }));
        s.inject(a, b, 95); // bounces until payload hits 100
        assert!(s.run_to_quiescence(1_000));
        assert!(s.pending_events() == 0);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::node::{Context, Node, Packet};

    struct Counter(u64);
    impl Node<u32> for Counter {
        fn on_packet(&mut self, _pkt: Packet<u32>, _ctx: &mut Context<'_, u32>) {}
        fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_, u32>) {
            self.0 += 1;
            // Perpetual ticking: quiescence is never reached.
            ctx.set_timer(SimDuration(100), 0);
        }
    }

    #[test]
    fn quiescence_budget_exhaustion_reports_false() {
        let mut s: Simulator<u32> = Simulator::with_seed(1);
        let n = s.add_node(Box::new(Counter(0)));
        s.inject_timer(n, SimDuration(1), 0);
        assert!(!s.run_to_quiescence(50), "perpetual timer cannot quiesce");
        s.read_node::<Counter, _>(n, |c| assert_eq!(c.0, 50));
    }

    #[test]
    fn inject_timer_fires_at_requested_delay() {
        let mut s: Simulator<u32> = Simulator::with_seed(2);
        struct Once(Option<SimTime>);
        impl Node<u32> for Once {
            fn on_packet(&mut self, _p: Packet<u32>, _c: &mut Context<'_, u32>) {}
            fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_, u32>) {
                self.0 = Some(ctx.now());
            }
        }
        let n = s.add_node(Box::new(Once(None)));
        s.inject_timer(n, SimDuration(12_345), 7);
        s.run_until(SimTime(100_000));
        s.read_node::<Once, _>(n, |o| assert_eq!(o.0, Some(SimTime(12_345))));
    }

    #[test]
    fn stats_count_deliveries_and_timers() {
        let mut s: Simulator<u32> = Simulator::with_seed(3);
        let n = s.add_node(Box::new(Counter(0)));
        s.inject_timer(n, SimDuration(1), 0);
        s.run_until(SimTime(450));
        // Timer events are dispatched through the same counter.
        assert!(s.stats().packets_delivered >= 4);
        assert_eq!(s.stats().packets_lost, 0);
    }

    #[test]
    fn pending_events_visible() {
        let mut s: Simulator<u32> = Simulator::with_seed(4);
        let n = s.add_node(Box::new(Counter(0)));
        s.inject_timer(n, SimDuration(1_000), 0);
        s.inject_timer(n, SimDuration(2_000), 0);
        assert_eq!(s.pending_events(), 2);
    }
}
