//! Log-bucketed latency histogram (HDR-histogram style).
//!
//! Values are recorded in nanoseconds. Buckets are arranged as log2 tiers
//! with `SUB_BITS` linear sub-buckets per tier, giving a bounded relative
//! error (< 1/2^SUB_BITS) at every magnitude — accurate enough for the
//! microsecond-to-millisecond latencies the experiments report, with O(1)
//! record and O(buckets) quantile queries.

/// Linear sub-buckets per power-of-two tier (2^6 = 64 → <1.6% error).
const SUB_BITS: u32 = 6;
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Tiers cover values up to 2^40 ns ≈ 18 minutes, far beyond any sim run.
const TIERS: usize = 41;

/// A fixed-size log-bucketed histogram of `u64` values.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; TIERS * SUB_COUNT],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        // Tier 0 holds values < SUB_COUNT exactly (one value per sub-bucket).
        let v = value;
        let msb = 63u32.saturating_sub(v.leading_zeros()); // floor(log2(v)), 0 for v=0
        if msb < SUB_BITS {
            return v as usize;
        }
        let tier = (msb - SUB_BITS + 1) as usize;
        let shifted = (v >> (msb - SUB_BITS)) as usize - SUB_COUNT; // [0, SUB_COUNT)
        let tier = tier.min(TIERS - 1);
        tier * SUB_COUNT + shifted.min(SUB_COUNT - 1)
    }

    #[inline]
    fn bucket_low(idx: usize) -> u64 {
        let tier = idx / SUB_COUNT;
        let sub = (idx % SUB_COUNT) as u64;
        if tier == 0 {
            sub
        } else {
            (SUB_COUNT as u64 + sub) << (tier - 1)
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record `n` occurrences of a value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_of(value)] += n;
        self.total += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of recorded values, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]` (lower bucket bound; 0 if empty).
    ///
    /// `q = 0.5` is the median, `q = 0.99` the 99th percentile.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample (1-based), at least 1.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                // Clamp to observed extremes so tiny histograms read sanely.
                return Self::bucket_low(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Cumulative-distribution points `(value_ns, cum_fraction)` for every
    /// non-empty bucket, suitable for plotting a latency CDF.
    pub fn cdf_points(&self) -> Vec<(u64, f64)> {
        let mut pts = Vec::new();
        if self.total == 0 {
            return pts;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            pts.push((Self::bucket_low(idx), seen as f64 / self.total as f64));
        }
        pts
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram{{n={}, mean={:.1}, p50={}, p99={}, max={}}}",
            self.total,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.cdf_points().is_empty());
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.quantile(1.0), 63);
        // Sub-SUB_COUNT values land in exact buckets.
        assert_eq!(h.quantile(0.5), 31);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = Histogram::new();
        // Deterministic spread over several magnitudes.
        let mut vals: Vec<u64> = (0..10_000u64).map(|i| 100 + i * 137).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for &q in &[0.1, 0.5, 0.9, 0.99, 0.999] {
            let exact = vals[((q * vals.len() as f64).ceil() as usize - 1).min(vals.len() - 1)];
            let approx = h.quantile(q);
            let rel = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(rel < 0.04, "q={q}: exact={exact} approx={approx} rel={rel}");
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn record_n_matches_loop() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(1234, 7);
        a.record_n(99, 0);
        for _ in 0..7 {
            b.record(1234);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(100);
        b.record(10_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 100);
        assert_eq!(a.max(), 10_000);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(5);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn cdf_points_monotone_and_complete() {
        let mut h = Histogram::new();
        for v in [5u64, 50, 500, 5_000, 50_000] {
            h.record(v);
        }
        let pts = h.cdf_points();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) > 0);
    }
}
