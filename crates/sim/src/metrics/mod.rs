//! Measurement utilities: latency histograms, counters, time series.

mod histogram;
mod series;

pub use histogram::Histogram;
pub use series::{IntervalCounter, TimeSeries};

/// A summary of one latency distribution, in nanoseconds, as the paper
/// reports it (average / median / 99% / 99.9%).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Mean latency (ns).
    pub avg_ns: f64,
    /// Median latency (ns).
    pub p50_ns: u64,
    /// 99th percentile latency (ns).
    pub p99_ns: u64,
    /// 99.9th percentile latency (ns).
    pub p999_ns: u64,
    /// Maximum observed latency (ns).
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarize a histogram.
    pub fn from_histogram(h: &Histogram) -> LatencySummary {
        LatencySummary {
            count: h.count(),
            avg_ns: h.mean(),
            p50_ns: h.quantile(0.5),
            p99_ns: h.quantile(0.99),
            p999_ns: h.quantile(0.999),
            max_ns: h.max(),
        }
    }

    /// Mean in microseconds (convenience for reporting).
    pub fn avg_us(&self) -> f64 {
        self.avg_ns / 1e3
    }

    /// Median in microseconds.
    pub fn p50_us(&self) -> f64 {
        self.p50_ns as f64 / 1e3
    }

    /// 99th percentile in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.p99_ns as f64 / 1e3
    }

    /// 99.9th percentile in microseconds.
    pub fn p999_us(&self) -> f64 {
        self.p999_ns as f64 / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_from_histogram() {
        let mut h = Histogram::new();
        for v in [1_000u64, 2_000, 3_000, 100_000] {
            h.record(v);
        }
        let s = LatencySummary::from_histogram(&h);
        assert_eq!(s.count, 4);
        assert!((s.avg_ns - 26_500.0).abs() < 1.0);
        assert!(s.p99_ns >= s.p50_ns);
        assert!(s.p999_ns >= s.p99_ns);
        assert!(s.max_ns >= s.p999_ns);
        assert!((s.avg_us() - 26.5).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = LatencySummary::from_histogram(&Histogram::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_ns, 0);
    }
}
