//! Time-series recorder for throughput-over-time figures.

use crate::time::{SimDuration, SimTime};

/// A sequence of `(time, value)` samples, e.g. per-interval throughput.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> TimeSeries {
        TimeSeries { points: Vec::new() }
    }

    /// Append a sample. Times should be non-decreasing; the recorder does
    /// not reorder.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t, v));
    }

    /// All recorded samples in insertion order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the sample values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64
    }
}

/// Converts interval event counts into a rate series.
///
/// The harness increments [`IntervalCounter::add`] as events complete and
/// calls [`IntervalCounter::roll`] at each sampling boundary; each roll
/// emits one `(interval_end, events_per_second)` point.
#[derive(Clone, Debug)]
pub struct IntervalCounter {
    interval: SimDuration,
    window_start: SimTime,
    count: u64,
    series: TimeSeries,
}

impl IntervalCounter {
    /// A counter that reports rates over windows of length `interval`.
    pub fn new(start: SimTime, interval: SimDuration) -> IntervalCounter {
        assert!(!interval.is_zero(), "sampling interval must be non-zero");
        IntervalCounter {
            interval,
            window_start: start,
            count: 0,
            series: TimeSeries::new(),
        }
    }

    /// Record `n` events in the current window.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Close every window that ends at or before `now`, appending one rate
    /// point per window (empty windows yield 0-rate points).
    pub fn roll(&mut self, now: SimTime) {
        while self.window_start + self.interval <= now {
            let end = self.window_start + self.interval;
            let rate = self.count as f64 / self.interval.as_secs_f64();
            self.series.push(end, rate);
            self.count = 0;
            self.window_start = end;
        }
    }

    /// The rate series accumulated so far.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Consume and return the series.
    pub fn into_series(self) -> TimeSeries {
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_basics() {
        let mut s = TimeSeries::new();
        assert!(s.is_empty());
        s.push(SimTime(1), 2.0);
        s.push(SimTime(2), 4.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.points()[1], (SimTime(2), 4.0));
    }

    #[test]
    fn interval_counter_emits_rates() {
        let mut c = IntervalCounter::new(SimTime::ZERO, SimDuration::from_secs(1));
        c.add(10);
        c.roll(SimTime(SimDuration::from_secs(1).as_nanos()));
        assert_eq!(c.series().len(), 1);
        assert_eq!(c.series().points()[0].1, 10.0);
    }

    #[test]
    fn interval_counter_fills_empty_windows() {
        let mut c = IntervalCounter::new(SimTime::ZERO, SimDuration::from_millis(100));
        c.add(5);
        // Jump three windows ahead: first has the 5 events, next two are 0.
        c.roll(SimTime(SimDuration::from_millis(300).as_nanos()));
        let pts = c.series().points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].1, 50.0);
        assert_eq!(pts[1].1, 0.0);
        assert_eq!(pts[2].1, 0.0);
    }

    #[test]
    fn roll_before_boundary_is_noop() {
        let mut c = IntervalCounter::new(SimTime::ZERO, SimDuration::from_secs(1));
        c.add(3);
        c.roll(SimTime(10));
        assert!(c.series().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_rejected() {
        let _ = IntervalCounter::new(SimTime::ZERO, SimDuration::ZERO);
    }
}
