//! Timed fault injection.
//!
//! A [`FaultPlan`] is an ordered schedule of [`FaultEvent`]s that the
//! simulator executes as first-class events, interleaved with packet and
//! timer delivery at the exact nanosecond they are due. Generic actions
//! (link reconfiguration, node kill/revive) are applied by the simulator
//! itself; [`FaultAction::Custom`] hands control back to the harness via
//! [`crate::Simulator::run_until_fault`] so domain-specific faults
//! (switch reboot + reprogram, server restart with state loss) can be
//! applied with full knowledge of the protocol stack.
//!
//! Because the plan is data — `(SimTime, FaultAction)` pairs — any run is
//! reproducible from `(seed, plan)` alone.

use crate::link::LinkConfig;
use crate::node::NodeId;
use crate::time::SimTime;

/// One fault to apply at a scheduled instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultAction {
    /// Replace the global default link (e.g. rack-wide loss burst).
    SetDefaultLink(LinkConfig),
    /// Override one directed link (e.g. flap or degrade a single cable).
    SetLink {
        /// Source node of the directed link.
        src: NodeId,
        /// Destination node of the directed link.
        dst: NodeId,
        /// New configuration for the link.
        cfg: LinkConfig,
    },
    /// Remove a directed-link override, restoring the fallback config.
    ClearLink {
        /// Source node of the directed link.
        src: NodeId,
        /// Destination node of the directed link.
        dst: NodeId,
    },
    /// Kill a node: all packets/timers to it are dropped until revived.
    FailNode(NodeId),
    /// Revive a failed node (its state is whatever it had; callers that
    /// model state loss reset the node via a `Custom` action instead).
    ReviveNode(NodeId),
    /// Domain-specific fault: the simulator pauses and returns
    /// [`crate::RunOutcome::CustomFault`] with this token so the harness
    /// can mutate nodes (reboot a switch, wipe a server, ...).
    Custom(u64),
}

/// A fault action bound to its firing time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Absolute simulation time at which the action fires.
    pub at: SimTime,
    /// What to do.
    pub action: FaultAction,
}

/// An ordered schedule of fault events.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Append an event. Events may be added in any order; the plan is
    /// sorted (stably, preserving insertion order at equal times) when
    /// installed into a simulator.
    pub fn push(&mut self, at: SimTime, action: FaultAction) -> &mut Self {
        self.events.push(FaultEvent { at, action });
        self
    }

    /// Builder-style [`FaultPlan::push`].
    pub fn with(mut self, at: SimTime, action: FaultAction) -> Self {
        self.push(at, action);
        self
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events sorted by firing time (stable: insertion order breaks
    /// ties), as installed into the simulator queue.
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.at);
        evs
    }
}

/// Why [`crate::Simulator::run_until_fault`] returned.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RunOutcome {
    /// The deadline was reached (or the queue emptied); no custom fault
    /// is pending.
    ReachedDeadline,
    /// A [`FaultAction::Custom`] fired. The clock stands at `at`; the
    /// harness should apply the domain fault and call
    /// [`crate::Simulator::run_until_fault`] again to continue.
    CustomFault {
        /// Time at which the fault fired.
        at: SimTime,
        /// The token passed to [`FaultAction::Custom`].
        token: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_stably() {
        let plan = FaultPlan::new()
            .with(SimTime(200), FaultAction::Custom(1))
            .with(SimTime(100), FaultAction::Custom(2))
            .with(SimTime(200), FaultAction::Custom(3));
        let sorted = plan.sorted_events();
        assert_eq!(sorted[0].action, FaultAction::Custom(2));
        assert_eq!(sorted[1].action, FaultAction::Custom(1));
        assert_eq!(sorted[2].action, FaultAction::Custom(3));
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }
}
