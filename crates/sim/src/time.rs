//! Virtual time for the discrete-event simulator.
//!
//! All simulation time is tracked in integer nanoseconds from the start of
//! the run. Integer time keeps the simulator deterministic: two events
//! scheduled for the same instant are ordered by their insertion sequence
//! number, never by floating-point noise.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in nanoseconds since the simulation epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the epoch (truncating).
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Saturates at zero if `earlier` is in the future, which makes it safe
    /// to use with leases that may have been refreshed concurrently.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add that never wraps past [`SimTime::MAX`].
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from a float number of seconds (rounding to nanoseconds).
    ///
    /// Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Length in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in whole microseconds (truncating).
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in seconds as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this is the zero duration.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime(100) + SimDuration(50);
        assert_eq!(t, SimTime(150));
        assert_eq!(t - SimTime(100), SimDuration(50));
        assert_eq!(SimTime(10).since(SimTime(50)), SimDuration::ZERO);
        assert_eq!(SimTime(50).since(SimTime(10)), SimDuration(40));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration(1)), SimTime::MAX);
        assert_eq!(
            SimDuration(u64::MAX).saturating_mul(2),
            SimDuration(u64::MAX)
        );
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![SimTime(3), SimTime(1), SimTime(2)];
        v.sort();
        assert_eq!(v, vec![SimTime(1), SimTime(2), SimTime(3)]);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration(500)), "500ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }
}
