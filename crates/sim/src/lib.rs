//! # netlock-sim
//!
//! Deterministic discrete-event simulation substrate for the NetLock
//! reproduction.
//!
//! The NetLock paper evaluates on a Barefoot Tofino switch, DPDK lock
//! servers and RDMA NICs. This crate provides the laptop-scale stand-in:
//! a single-threaded, integer-time, seeded event simulator in the
//! event-driven style of `smoltcp` — nodes never block; they react to
//! packets and timers and emit effects.
//!
//! Guarantees:
//! - **Determinism.** Integer nanosecond clock, FIFO tie-breaking for
//!   same-instant events, and all randomness drawn from a seeded
//!   [`SimRng`]. A run is a pure function of `(topology, nodes, seed)`.
//! - **Explicit hops.** The ToR switch is a node; there is no hidden
//!   routing. Links add a fixed one-way delay and optional loss.
//! - **Measurement built in.** Log-bucketed latency [`Histogram`]s,
//!   rate [`IntervalCounter`]s and [`TimeSeries`] cover everything the
//!   paper's figures report.
//!
//! ```
//! use netlock_sim::{Simulator, Node, Packet, Context, SimTime, SimDuration};
//!
//! struct Printer;
//! impl Node<&'static str> for Printer {
//!     fn on_packet(&mut self, pkt: Packet<&'static str>, ctx: &mut Context<'_, &'static str>) {
//!         assert_eq!(pkt.payload, "hello");
//!         assert!(ctx.now() > SimTime::ZERO);
//!     }
//!     fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_, &'static str>) {}
//! }
//!
//! let mut sim = Simulator::with_seed(42);
//! let a = sim.add_node(Box::new(Printer));
//! let b = sim.add_node(Box::new(Printer));
//! sim.inject(a, b, "hello");
//! sim.run_for(SimDuration::from_millis(1));
//! assert_eq!(sim.stats().packets_delivered, 1);
//! ```

#![warn(missing_docs)]

pub mod fasthash;
pub mod fault;
mod link;
pub mod metrics;
mod node;
mod par;
pub mod queue;
mod rng;
mod sim;
mod time;

pub use fasthash::{FastBuildHasher, FastHashMap, FastHashSet, FastHasher};
pub use fault::{FaultAction, FaultEvent, FaultPlan, RunOutcome};
pub use link::{GeParams, LinkConfig, LinkFaults, Topology};
pub use metrics::{Histogram, IntervalCounter, LatencySummary, TimeSeries};
pub use node::{AsAny, Context, Node, NodeId, Packet};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use sim::{LinkCounters, SimStats, Simulator, Tap, TapEvent, MAX_NODES};
pub use time::{SimDuration, SimTime};
