//! Link/topology model.
//!
//! The rack network is modeled as point-to-point links with a fixed one-way
//! propagation + serialization delay and an optional loss probability. The
//! lock switch is itself a node, so "client → server through the ToR" is
//! expressed by wiring client→switch and switch→server links; the model does
//! not hide any hop.

use std::collections::HashMap;

use crate::node::NodeId;
use crate::time::SimDuration;

/// Gilbert–Elliott two-state burst-loss parameters. The channel flips
/// between a *good* and a *bad* state per packet; each state has its own
/// drop probability, so losses cluster into bursts instead of the
/// memoryless Bernoulli pattern of [`LinkConfig::loss`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeParams {
    /// Probability of transitioning good → bad on a packet.
    pub to_bad: f64,
    /// Probability of transitioning bad → good on a packet.
    pub to_good: f64,
    /// Drop probability while in the good state (usually ~0).
    pub loss_good: f64,
    /// Drop probability while in the bad state (usually near 1).
    pub loss_bad: f64,
}

impl GeParams {
    /// A bursty channel: mostly clean, but bursts of `loss_bad` losses
    /// with mean burst length `1/to_good` packets.
    pub fn bursty(to_bad: f64, to_good: f64, loss_bad: f64) -> GeParams {
        GeParams {
            to_bad,
            to_good,
            loss_good: 0.0,
            loss_bad,
        }
    }
}

/// Fault-injection parameters of a link, all off by default. Kept
/// separate from the base delay/loss so the common healthy-link path
/// can skip fault processing entirely.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct LinkFaults {
    /// Probability that a packet is delivered twice (default 0). The
    /// duplicate takes an independent jitter draw, so it may arrive
    /// before or after the original.
    pub duplicate: f64,
    /// Bound of uniform extra delay added per packet (default 0).
    /// Non-zero jitter reorders packets that were sent close together.
    pub jitter: SimDuration,
    /// Optional Gilbert–Elliott burst-loss channel (overrides the plain
    /// Bernoulli `loss` when set).
    pub ge: Option<GeParams>,
}

impl LinkFaults {
    /// No faults at all (the default).
    pub const NONE: LinkFaults = LinkFaults {
        duplicate: 0.0,
        jitter: SimDuration(0),
        ge: None,
    };

    /// Whether any fault processing is required for this link.
    pub fn any(&self) -> bool {
        self.duplicate > 0.0 || self.jitter.as_nanos() > 0 || self.ge.is_some()
    }
}

/// Per-link parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkConfig {
    /// One-way delay applied to every packet on the link.
    pub delay: SimDuration,
    /// Probability that a packet is dropped in flight (default 0).
    pub loss: f64,
    /// Fault-injection behaviour (burst loss, duplication, jitter).
    pub faults: LinkFaults,
}

impl LinkConfig {
    /// A lossless link with the given one-way delay.
    pub fn with_delay(delay: SimDuration) -> LinkConfig {
        LinkConfig {
            delay,
            loss: 0.0,
            faults: LinkFaults::NONE,
        }
    }

    /// A copy of this link with Bernoulli loss probability `loss`.
    pub fn with_loss(self, loss: f64) -> LinkConfig {
        LinkConfig { loss, ..self }
    }

    /// A copy of this link with the given fault parameters.
    pub fn with_faults(self, faults: LinkFaults) -> LinkConfig {
        LinkConfig { faults, ..self }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            // Intra-rack one-way hop: ~1.2 us (cable + NIC + switch port).
            delay: SimDuration::from_nanos(1_200),
            loss: 0.0,
            faults: LinkFaults::NONE,
        }
    }
}

/// The set of links. Lookups fall back to per-node defaults, then the
/// global default, so dense racks don't need O(n^2) configuration.
///
/// Every mutator bumps a version counter; the simulator uses it to
/// invalidate its dense resolved `(src, dst)` table (see
/// [`Topology::resolve_dense`]) so the fallback chain is walked once
/// per mutation, not once per transmitted packet.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    default: LinkConfig,
    per_node: HashMap<NodeId, LinkConfig>,
    per_pair: HashMap<(NodeId, NodeId), LinkConfig>,
    version: u64,
}

impl Topology {
    /// A topology where every link uses `default`.
    pub fn new(default: LinkConfig) -> Topology {
        Topology {
            default,
            per_node: HashMap::new(),
            per_pair: HashMap::new(),
            version: 0,
        }
    }

    /// Override the link used for packets leaving `src` (any destination).
    pub fn set_node_egress(&mut self, src: NodeId, cfg: LinkConfig) {
        self.per_node.insert(src, cfg);
        self.version += 1;
    }

    /// Override a specific directed link.
    pub fn set_link(&mut self, src: NodeId, dst: NodeId, cfg: LinkConfig) {
        self.per_pair.insert((src, dst), cfg);
        self.version += 1;
    }

    /// Remove a directed-link override, restoring the per-node or
    /// global default. Used by fault plans to end a link fault episode.
    pub fn clear_link(&mut self, src: NodeId, dst: NodeId) {
        self.per_pair.remove(&(src, dst));
        self.version += 1;
    }

    /// The configuration used for a packet from `src` to `dst`.
    pub fn link(&self, src: NodeId, dst: NodeId) -> LinkConfig {
        if let Some(cfg) = self.per_pair.get(&(src, dst)) {
            return *cfg;
        }
        if let Some(cfg) = self.per_node.get(&src) {
            return *cfg;
        }
        self.default
    }

    /// The global default link.
    pub fn default_link(&self) -> LinkConfig {
        self.default
    }

    /// Replace the global default link.
    pub fn set_default(&mut self, cfg: LinkConfig) {
        self.default = cfg;
        self.version += 1;
    }

    /// Monotone counter bumped by every mutator. Two equal versions on
    /// the same instance mean every `link()` answer is unchanged.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Resolve the full fallback chain for an `n`-node rack into a
    /// row-major `n * n` table (`table[src * n + dst]`), reusing the
    /// caller's buffer. One indexed load then answers any `link()`
    /// query for in-range ids.
    pub fn resolve_dense(&self, n: usize, table: &mut Vec<LinkConfig>) {
        table.clear();
        table.reserve(n * n);
        for src in 0..n {
            let row = self
                .per_node
                .get(&NodeId(src as u32))
                .copied()
                .unwrap_or(self.default);
            for _ in 0..n {
                table.push(row);
            }
        }
        for (&(src, dst), cfg) in &self.per_pair {
            let (s, d) = (src.index(), dst.index());
            if s < n && d < n {
                table[s * n + d] = *cfg;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_precedence() {
        let mut t = Topology::new(LinkConfig::with_delay(SimDuration(100)));
        t.set_node_egress(NodeId(1), LinkConfig::with_delay(SimDuration(200)));
        t.set_link(
            NodeId(1),
            NodeId(2),
            LinkConfig::with_delay(SimDuration(300)),
        );

        // pair overrides node overrides default
        assert_eq!(t.link(NodeId(1), NodeId(2)).delay, SimDuration(300));
        assert_eq!(t.link(NodeId(1), NodeId(3)).delay, SimDuration(200));
        assert_eq!(t.link(NodeId(0), NodeId(2)).delay, SimDuration(100));
    }

    #[test]
    fn default_is_intra_rack_scale() {
        let t = Topology::default();
        let d = t.default_link().delay;
        assert!(d.as_nanos() > 0 && d.as_nanos() < 10_000);
        assert_eq!(t.default_link().loss, 0.0);
    }

    #[test]
    fn set_default_applies() {
        let mut t = Topology::default();
        t.set_default(LinkConfig::with_delay(SimDuration(5)).with_loss(0.5));
        assert_eq!(t.link(NodeId(9), NodeId(8)).delay, SimDuration(5));
        assert_eq!(t.link(NodeId(9), NodeId(8)).loss, 0.5);
    }

    #[test]
    fn clear_link_restores_fallback() {
        let mut t = Topology::new(LinkConfig::with_delay(SimDuration(100)));
        t.set_link(
            NodeId(1),
            NodeId(2),
            LinkConfig::with_delay(SimDuration(300)),
        );
        assert_eq!(t.link(NodeId(1), NodeId(2)).delay, SimDuration(300));
        t.clear_link(NodeId(1), NodeId(2));
        assert_eq!(t.link(NodeId(1), NodeId(2)).delay, SimDuration(100));
    }

    #[test]
    fn dense_resolution_matches_fallback_chain() {
        let mut t = Topology::new(LinkConfig::with_delay(SimDuration(100)));
        t.set_node_egress(NodeId(1), LinkConfig::with_delay(SimDuration(200)));
        t.set_link(
            NodeId(1),
            NodeId(2),
            LinkConfig::with_delay(SimDuration(300)),
        );
        // Out-of-range override must not corrupt (or panic on) a
        // smaller dense table.
        t.set_link(
            NodeId(9),
            NodeId(0),
            LinkConfig::with_delay(SimDuration(999)),
        );
        let n = 4;
        let mut table = Vec::new();
        t.resolve_dense(n, &mut table);
        assert_eq!(table.len(), n * n);
        for s in 0..n {
            for d in 0..n {
                assert_eq!(
                    table[s * n + d],
                    t.link(NodeId(s as u32), NodeId(d as u32)),
                    "dense table diverges from link() at ({s}, {d})"
                );
            }
        }
    }

    #[test]
    fn version_bumps_on_every_mutator() {
        let mut t = Topology::default();
        let v0 = t.version();
        t.set_default(LinkConfig::default());
        t.set_node_egress(NodeId(0), LinkConfig::default());
        t.set_link(NodeId(0), NodeId(1), LinkConfig::default());
        t.clear_link(NodeId(0), NodeId(1));
        assert_eq!(t.version(), v0 + 4);
        // Reads don't bump.
        let _ = t.link(NodeId(0), NodeId(1));
        assert_eq!(t.version(), v0 + 4);
    }

    #[test]
    fn faults_default_off() {
        let cfg = LinkConfig::default();
        assert!(!cfg.faults.any());
        let bursty = cfg.with_faults(LinkFaults {
            ge: Some(GeParams::bursty(0.01, 0.2, 0.9)),
            ..LinkFaults::NONE
        });
        assert!(bursty.faults.any());
        assert_eq!(bursty.delay, cfg.delay);
    }
}
