//! Link/topology model.
//!
//! The rack network is modeled as point-to-point links with a fixed one-way
//! propagation + serialization delay and an optional loss probability. The
//! lock switch is itself a node, so "client → server through the ToR" is
//! expressed by wiring client→switch and switch→server links; the model does
//! not hide any hop.

use std::collections::HashMap;

use crate::node::NodeId;
use crate::time::SimDuration;

/// Per-link parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkConfig {
    /// One-way delay applied to every packet on the link.
    pub delay: SimDuration,
    /// Probability that a packet is dropped in flight (default 0).
    pub loss: f64,
}

impl LinkConfig {
    /// A lossless link with the given one-way delay.
    pub fn with_delay(delay: SimDuration) -> LinkConfig {
        LinkConfig { delay, loss: 0.0 }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            // Intra-rack one-way hop: ~1.2 us (cable + NIC + switch port).
            delay: SimDuration::from_nanos(1_200),
            loss: 0.0,
        }
    }
}

/// The set of links. Lookups fall back to per-node defaults, then the
/// global default, so dense racks don't need O(n^2) configuration.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    default: LinkConfig,
    per_node: HashMap<NodeId, LinkConfig>,
    per_pair: HashMap<(NodeId, NodeId), LinkConfig>,
}

impl Topology {
    /// A topology where every link uses `default`.
    pub fn new(default: LinkConfig) -> Topology {
        Topology {
            default,
            per_node: HashMap::new(),
            per_pair: HashMap::new(),
        }
    }

    /// Override the link used for packets leaving `src` (any destination).
    pub fn set_node_egress(&mut self, src: NodeId, cfg: LinkConfig) {
        self.per_node.insert(src, cfg);
    }

    /// Override a specific directed link.
    pub fn set_link(&mut self, src: NodeId, dst: NodeId, cfg: LinkConfig) {
        self.per_pair.insert((src, dst), cfg);
    }

    /// The configuration used for a packet from `src` to `dst`.
    pub fn link(&self, src: NodeId, dst: NodeId) -> LinkConfig {
        if let Some(cfg) = self.per_pair.get(&(src, dst)) {
            return *cfg;
        }
        if let Some(cfg) = self.per_node.get(&src) {
            return *cfg;
        }
        self.default
    }

    /// The global default link.
    pub fn default_link(&self) -> LinkConfig {
        self.default
    }

    /// Replace the global default link.
    pub fn set_default(&mut self, cfg: LinkConfig) {
        self.default = cfg;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_precedence() {
        let mut t = Topology::new(LinkConfig::with_delay(SimDuration(100)));
        t.set_node_egress(NodeId(1), LinkConfig::with_delay(SimDuration(200)));
        t.set_link(
            NodeId(1),
            NodeId(2),
            LinkConfig::with_delay(SimDuration(300)),
        );

        // pair overrides node overrides default
        assert_eq!(t.link(NodeId(1), NodeId(2)).delay, SimDuration(300));
        assert_eq!(t.link(NodeId(1), NodeId(3)).delay, SimDuration(200));
        assert_eq!(t.link(NodeId(0), NodeId(2)).delay, SimDuration(100));
    }

    #[test]
    fn default_is_intra_rack_scale() {
        let t = Topology::default();
        let d = t.default_link().delay;
        assert!(d.as_nanos() > 0 && d.as_nanos() < 10_000);
        assert_eq!(t.default_link().loss, 0.0);
    }

    #[test]
    fn set_default_applies() {
        let mut t = Topology::default();
        t.set_default(LinkConfig {
            delay: SimDuration(5),
            loss: 0.5,
        });
        assert_eq!(t.link(NodeId(9), NodeId(8)).delay, SimDuration(5));
        assert_eq!(t.link(NodeId(9), NodeId(8)).loss, 0.5);
    }
}
