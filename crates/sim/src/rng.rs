//! Deterministic random number generation.
//!
//! Every stochastic element of the simulation (arrival jitter, workload
//! sampling, packet loss) draws from a [`SimRng`] derived from the run's
//! seed, so a run is exactly reproducible from `(config, seed)`.

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

/// A seedable RNG used throughout the simulation.
///
/// Wraps [`SmallRng`] (deterministic for a given seed across runs on the
/// same rand version) and adds the handful of distributions the workloads
/// need so that callers do not reach for external distribution crates.
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive a child RNG for a component, decorrelated from siblings.
    ///
    /// Components should each own a fork keyed by a stable identifier so
    /// adding a new component does not perturb the random streams of the
    /// existing ones.
    pub fn fork(&mut self, key: u64) -> SimRng {
        // SplitMix64 finalizer over (next, key): cheap and well-mixed.
        let mut z = self.inner.next_u64() ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Uniform `u64` in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below bound must be > 0");
        self.inner.random_range(0..bound)
    }

    /// Uniform `usize` in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "index bound must be > 0");
        self.inner.random_range(0..bound)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for Poisson inter-arrival times in open-loop load generation.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean >= 0.0);
        if mean == 0.0 {
            return 0.0;
        }
        // Inverse-CDF sampling; clamp u away from 0 to keep ln finite.
        let u = self.unit().max(1e-18);
        -mean * u.ln()
    }

    /// Poisson-distributed count with the given mean.
    ///
    /// Used by aggregate population nodes to draw per-quantum arrival
    /// counts for tens of thousands of virtual clients in one call.
    /// Small means use Knuth's product method, chunked so the running
    /// product never underflows; large means (where the exact method
    /// would cost O(mean) uniform draws per sample) switch to a
    /// Box-Muller normal approximation `N(mean, mean)`, whose relative
    /// error at mean > 256 is far below the shot noise of the process
    /// being modeled. Deterministic for a given RNG state.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean > 256.0 {
            let u1 = self.unit().max(1e-18);
            let u2 = self.unit();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let x = (mean + mean.sqrt() * z).round();
            return if x <= 0.0 { 0 } else { x as u64 };
        }
        let mut count = 0u64;
        let mut remaining = mean;
        while remaining > 0.0 {
            let chunk = remaining.min(16.0);
            remaining -= chunk;
            let limit = (-chunk).exp();
            let mut p = 1.0;
            loop {
                p *= self.unit();
                if p <= limit {
                    break;
                }
                count += 1;
            }
        }
        count
    }

    /// Raw uniform `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SimRng{..}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be decorrelated");
    }

    #[test]
    fn forks_are_deterministic_and_decorrelated() {
        let mut root1 = SimRng::new(7);
        let mut root2 = SimRng::new(7);
        let mut f1 = root1.fork(100);
        let mut f2 = root2.fork(100);
        for _ in 0..50 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
        let mut root3 = SimRng::new(7);
        let mut g = root3.fork(101);
        let same = (0..32).filter(|_| f1.next_u64() == g.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
            assert!(r.index(5) < 5);
        }
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::new(4);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn exponential_mean_roughly_matches() {
        let mut r = SimRng::new(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(10.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean was {mean}");
    }

    #[test]
    fn exponential_zero_mean_is_zero() {
        let mut r = SimRng::new(8);
        assert_eq!(r.exponential(0.0), 0.0);
    }

    #[test]
    fn poisson_mean_roughly_matches_small_and_large() {
        let mut r = SimRng::new(9);
        for target in [0.5, 4.0, 40.0, 2_000.0] {
            let n = 5_000;
            let mean: f64 = (0..n).map(|_| r.poisson(target) as f64).sum::<f64>() / n as f64;
            // Standard error of the sample mean is sqrt(target / n).
            let tol = 6.0 * (target / n as f64).sqrt() + 1e-9;
            assert!(
                (mean - target).abs() < tol,
                "poisson({target}): sample mean {mean}, tol {tol}"
            );
        }
    }

    #[test]
    fn poisson_zero_and_negative_mean_are_zero() {
        let mut r = SimRng::new(10);
        assert_eq!(r.poisson(0.0), 0);
        assert_eq!(r.poisson(-3.0), 0);
    }

    #[test]
    fn poisson_is_deterministic() {
        let mut a = SimRng::new(11);
        let mut b = SimRng::new(11);
        for _ in 0..200 {
            assert_eq!(a.poisson(17.3), b.poisson(17.3));
            assert_eq!(a.poisson(1_000.0), b.poisson(1_000.0));
        }
    }
}
