//! Conservative parallel execution of a partitioned simulation.
//!
//! [`Simulator::partition`] splits a fully-built simulator into
//! per-partition **logical processes** (LPs): each LP is itself a
//! `Simulator` owning its partition's nodes, its own calendar queue and
//! a forked RNG stream. The LPs are synchronized by conservative time
//! windows in the classic null-message-free CMB style:
//!
//! 1. compute the global lower bound `B` on next-event time across all
//!    LP queues (after merging staged cross-LP packets),
//! 2. advance every LP independently to `B + L - 1` inclusive, where
//!    `L` — the **lookahead** — is the minimum link delay between any
//!    two nodes in different LPs,
//! 3. exchange the packets each LP emitted toward other LPs through
//!    per-destination mailboxes, and repeat.
//!
//! Step 2 is safe because an event dispatched at time `t ≥ B` can only
//! produce a cross-LP arrival at `t + delay ≥ B + L`, i.e. strictly
//! after the window; no LP can ever receive a packet "from the past".
//! This is the *conservative* scheme: nothing is ever executed
//! speculatively, so there is no rollback machinery and — crucially for
//! this codebase — results are **byte-identical for every worker
//! count**, because the partitioned execution (per-LP queues, per-LP
//! `seq` counters, per-LP forked RNG streams, deterministic mailbox
//! merge order) is defined independently of how LPs are mapped onto
//! threads. An optimistic (Time Warp) scheme could expose more
//! parallelism on low-lookahead topologies, but its commit order would
//! have to be re-serialized to keep taps and oracles deterministic,
//! which forfeits most of the win; with link delays ≥ 1.2 µs against a
//! nanosecond event grain, conservative windows are already hundreds of
//! events deep.
//!
//! Mailbox merge order: a staged packet is keyed `(at, seq, src_lp)`
//! where `seq` is the *sender's* send sequence. Per-sender seqs are
//! unique, so the key is a total order; the receiving LP sorts and
//! re-enqueues under fresh local seqs, making the merged order a pure
//! function of the traffic, not of thread scheduling.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use crate::fault::FaultAction;
use crate::node::{NodeId, Packet};
use crate::sim::{EventKind, Simulator};
use crate::time::SimTime;

/// A cross-LP packet staged for delivery:
/// `(arrival time, sender send-seq, source LP, packet)`.
type Staged<M> = (SimTime, u64, u32, Packet<M>);

/// The partitioned-run state hung off a [`Simulator`] after
/// [`Simulator::partition`]. The outer simulator keeps its
/// pre-partition stats as a frozen baseline and delegates everything
/// else to the LPs in here.
pub(crate) struct ParState<M> {
    /// The logical processes, indexed by LP id.
    pub(crate) lps: Vec<Simulator<M>>,
    /// `node index -> owning LP` (shared with every LP).
    pub(crate) map: Arc<[u32]>,
    /// Worker threads to advance LPs with (1 = serial window loop).
    pub(crate) workers: usize,
    /// Minimum cross-LP link delay in nanoseconds (`u64::MAX` when no
    /// cross-LP node pair exists, which makes every window unbounded).
    pub(crate) lookahead: u64,
    /// Per-destination-LP staging area for cross-LP packets emitted in
    /// the previous window; flushed into the owner's queue (sorted by
    /// `(at, seq, src_lp)`) at the start of the next window.
    pub(crate) staged: Vec<Vec<Staged<M>>>,
    /// Faults validated since partitioning; gives rejection diagnostics
    /// a stable index ("fault #3 is Custom(7)") to point at.
    pub(crate) faults_validated: u64,
}

impl<M> ParState<M> {
    /// Owning LP of a node id; ids outside the partition map fall back
    /// to LP 0 (they address no real node and drop as dead there).
    pub(crate) fn owner_of(&self, id: NodeId) -> usize {
        self.map.get(id.index()).copied().unwrap_or(0) as usize
    }

    /// Events pending across all LP queues, outboxes and mailboxes.
    pub(crate) fn pending_events(&self) -> usize {
        let mut n = 0;
        for lp in &self.lps {
            n += lp.queue.len();
            for ob in &lp.outboxes {
                n += ob.len();
            }
        }
        for s in &self.staged {
            n += s.len();
        }
        n
    }
}

/// Validate a fault action against the partition: link reconfigurations
/// must never shrink a cross-LP delay below the lookahead (the safety
/// argument of the window loop depends on it), and `Custom` faults —
/// which pause the run for harness intervention — are not supported on
/// a partitioned simulator.
fn validate_fault(lookahead: u64, map: &[u32], action: &FaultAction, idx: u64) {
    match action {
        FaultAction::SetDefaultLink(cfg) => {
            assert!(
                lookahead == u64::MAX || cfg.delay.as_nanos() >= lookahead,
                "fault #{idx}: SetDefaultLink delay {} ns below partition lookahead {} ns",
                cfg.delay.as_nanos(),
                lookahead
            );
        }
        FaultAction::SetLink { src, dst, cfg } => {
            let slp = map.get(src.index()).copied().unwrap_or(0);
            let dlp = map.get(dst.index()).copied().unwrap_or(0);
            assert!(
                slp == dlp || cfg.delay.as_nanos() >= lookahead,
                "fault #{idx}: SetLink {src}->{dst} delay {} ns below partition lookahead {} ns",
                cfg.delay.as_nanos(),
                lookahead
            );
        }
        FaultAction::Custom(token) => {
            panic!(
                "partitioned simulator does not support Custom faults: \
                 fault #{idx} is Custom({token}); Custom faults pause the run \
                 for single-LP harness recovery — use in-protocol recovery \
                 (FailNode/ReviveNode plus control-plane messages) instead"
            )
        }
        FaultAction::ClearLink { .. } | FaultAction::FailNode(_) | FaultAction::ReviveNode(_) => {}
    }
}

/// Route one fault onto a partitioned simulator's LPs. Link-config
/// actions replicate to every LP (each applies the change to its own
/// topology clone at the same instant, keeping all sender-side link
/// views identical — `faults_applied` therefore counts each such action
/// once per LP); node fail/revive goes only to the node's owner.
pub(crate) fn schedule_fault_partitioned<M: Clone + Send + 'static>(
    sim: &mut Simulator<M>,
    at: SimTime,
    action: FaultAction,
) {
    let par = sim.par.as_mut().expect("caller checked partitioned");
    let idx = par.faults_validated;
    par.faults_validated += 1;
    validate_fault(par.lookahead, &par.map, &action, idx);
    match action {
        FaultAction::FailNode(id) | FaultAction::ReviveNode(id) => {
            let lp = par.owner_of(id);
            par.lps[lp].push(at, EventKind::Fault(Box::new(action)));
        }
        _ => {
            for lp in &mut par.lps {
                lp.push(at, EventKind::Fault(Box::new(action)));
            }
        }
    }
}

impl<M: Clone + Send + 'static> Simulator<M> {
    /// Split this simulator into logical processes for conservative
    /// parallel execution.
    ///
    /// `lp_of[i]` names the LP owning node `i` (LP ids must be dense:
    /// `0..=max`). `workers` is the number of threads used to advance
    /// LPs inside [`Simulator::run_until`]; it affects wall-clock speed
    /// only — **results are byte-identical for every worker count**,
    /// because the partitioned execution order is fully determined by
    /// the partition itself. With a single LP (`max(lp_of) == 0`) this
    /// is a no-op and the serial fused-burst fast path is kept.
    ///
    /// The lookahead is derived from the topology: the minimum
    /// `link(src, dst).delay` over all node pairs in different LPs.
    /// Events within a window stay ≥ one lookahead away from any
    /// cross-LP consequence, which is what makes windowed parallel
    /// execution exact rather than approximate. Fault plans may
    /// reconfigure links mid-run, but never below that lookahead
    /// (asserted), and `Custom` faults are rejected.
    ///
    /// Call after the simulation is fully built: `add_node`,
    /// `topology_mut` and `set_tap` panic once partitioned (use
    /// [`Simulator::set_lp_tap`] for per-LP observers). Pre-scheduled
    /// events, link fault state and node liveness migrate to their
    /// owning LPs; each LP's RNG is forked from the parent seed by LP
    /// id, so node randomness is independent of both worker count and
    /// the pre-partition draw position of other LPs' nodes.
    ///
    /// # Panics
    /// If already partitioned, a global tap is installed, a `Custom`
    /// fault is pending or queued, `lp_of` does not cover every node,
    /// or a cross-LP link has zero delay.
    pub fn partition(&mut self, lp_of: Vec<u32>, workers: usize) {
        assert!(self.par.is_none(), "partition called twice");
        assert!(
            self.tap.is_none(),
            "partition with a global tap installed: partition first, then set_lp_tap"
        );
        assert!(
            self.pending_custom.is_none(),
            "partition with a pending Custom fault"
        );
        assert_eq!(
            lp_of.len(),
            self.nodes.len(),
            "lp_of must assign every node to an LP"
        );
        let k = lp_of.iter().copied().max().map_or(0, |m| m as usize + 1);
        if k <= 1 {
            return; // one LP: the serial fast path IS the execution
        }
        let n = self.nodes.len();

        // Lookahead: min link delay over all cross-LP node pairs.
        let mut lookahead = u64::MAX;
        for (si, &slp) in lp_of.iter().enumerate() {
            for (di, &dlp) in lp_of.iter().enumerate() {
                if slp != dlp {
                    let d = self
                        .topology
                        .link(NodeId(si as u32), NodeId(di as u32))
                        .delay
                        .as_nanos();
                    lookahead = lookahead.min(d);
                }
            }
        }
        assert!(
            lookahead > 0,
            "cross-LP links must have positive delay for conservative windows"
        );

        let map: Arc<[u32]> = lp_of.into();
        let mut lps: Vec<Simulator<M>> = (0..k)
            .map(|i| {
                let mut lp = Simulator::new(self.topology.clone(), 0);
                lp.rng = self.rng.fork(i as u64);
                lp.now = self.now;
                lp.seq = self.seq; // migrated events keep seqs < this
                lp.lp = i as u32;
                lp.lp_of = Some(map.clone());
                lp.outboxes = (0..k).map(|_| Vec::new()).collect();
                lp.nodes = Vec::with_capacity(n);
                lp.alive = vec![false; n];
                lp
            })
            .collect();

        // Node table: full length in every LP (so NodeId indexing works
        // unchanged), with only the owner holding the node itself.
        let nodes = std::mem::take(&mut self.nodes);
        let alive = std::mem::take(&mut self.alive);
        for (i, node) in nodes.into_iter().enumerate() {
            let owner = map[i] as usize;
            for (j, lp) in lps.iter_mut().enumerate() {
                if j != owner {
                    lp.nodes.push(None);
                }
            }
            lps[owner].alive[i] = alive[i];
            lps[owner].nodes.push(node);
        }

        // Per-link fault state lives where the sends happen: the
        // sender's LP.
        for ((src, dst), st) in std::mem::take(&mut self.link_states) {
            let owner = map.get(src.index()).copied().unwrap_or(0) as usize;
            lps[owner].link_states.insert((src, dst), st);
        }

        // Migrate pending events to their owners, preserving the
        // original seqs (all below the LP's starting seq, so relative
        // order with future pushes is unchanged). These were already
        // counted in the outer baseline stats, so they go through the
        // raw queue, not `push`.
        let mut fault_idx = 0u64;
        while let Some((at, seq, kind)) = self.queue.pop() {
            match kind {
                EventKind::Deliver(pkt) => {
                    let owner = map.get(pkt.dst.index()).copied().unwrap_or(0) as usize;
                    lps[owner].queue.push(at, seq, EventKind::Deliver(pkt));
                }
                EventKind::Timer { node, token } => {
                    let owner = map.get(node.index()).copied().unwrap_or(0) as usize;
                    lps[owner]
                        .queue
                        .push(at, seq, EventKind::Timer { node, token });
                }
                EventKind::Fault(action) => {
                    validate_fault(lookahead, &map, &action, fault_idx);
                    fault_idx += 1;
                    match *action {
                        FaultAction::FailNode(id) | FaultAction::ReviveNode(id) => {
                            let owner = map.get(id.index()).copied().unwrap_or(0) as usize;
                            lps[owner].queue.push(at, seq, EventKind::Fault(action));
                        }
                        other => {
                            for lp in lps.iter_mut() {
                                lp.queue.push(at, seq, EventKind::Fault(Box::new(other)));
                            }
                        }
                    }
                }
            }
        }
        for lp in lps.iter_mut() {
            lp.stats.max_queue_depth = lp.queue.len() as u64;
        }

        self.par = Some(Box::new(ParState {
            lps,
            map,
            workers: workers.max(1),
            lookahead,
            staged: (0..k).map(|_| Vec::new()).collect(),
            faults_validated: fault_idx,
        }));
    }

    /// Number of logical processes this simulator runs as (1 when
    /// unpartitioned or partitioned onto a single LP).
    pub fn partitions(&self) -> usize {
        self.par.as_ref().map_or(1, |p| p.lps.len())
    }
}

/// Advance a partitioned simulation to `deadline` (inclusive) through
/// conservative windows.
pub(crate) fn run_windows<M: Clone + Send + 'static>(par: &mut ParState<M>, deadline: SimTime) {
    if par.workers <= 1 || par.lps.len() == 1 {
        run_windows_serial(par, deadline);
    } else {
        run_windows_parallel(par, deadline);
    }
}

/// The reference window loop: same schedule as the parallel one, no
/// threads. This is what `workers == 1` runs, and what the parallel
/// loop must match byte-for-byte.
fn run_windows_serial<M: Clone + Send + 'static>(par: &mut ParState<M>, deadline: SimTime) {
    let k = par.lps.len();
    loop {
        // Merge last window's cross-LP packets, then find the global
        // lower bound on next-event time.
        let mut bound = u64::MAX;
        for i in 0..k {
            if !par.staged[i].is_empty() {
                let mut inbox = std::mem::take(&mut par.staged[i]);
                par.lps[i].flush_remote(&mut inbox);
                par.staged[i] = inbox;
            }
            if let Some(t) = par.lps[i].queue.peek_at() {
                bound = bound.min(t.as_nanos());
            }
        }
        let stop = bound > deadline.as_nanos();
        let target = if stop {
            deadline
        } else {
            SimTime(
                bound
                    .saturating_add(par.lookahead - 1)
                    .min(deadline.as_nanos()),
            )
        };
        for lp in par.lps.iter_mut() {
            lp.run_until(target);
        }
        for src in 0..k {
            let src_lp = par.lps[src].lp;
            for dst in 0..k {
                if par.lps[src].outboxes[dst].is_empty() {
                    continue;
                }
                let mut out = std::mem::take(&mut par.lps[src].outboxes[dst]);
                par.staged[dst].extend(out.drain(..).map(|(at, seq, pkt)| (at, seq, src_lp, pkt)));
                par.lps[src].outboxes[dst] = out;
            }
        }
        if stop {
            break;
        }
    }
}

/// The threaded window loop: persistent scoped workers own contiguous
/// chunks of LPs and synchronize per window with three barriers —
/// (A) flush mailboxes + contribute to the shared bound, (B) one worker
/// turns the bound into the window target, (C) advance + stage
/// outboxes. Executes the exact schedule of [`run_windows_serial`]:
/// which thread advances an LP is invisible to the result.
fn run_windows_parallel<M: Clone + Send + 'static>(par: &mut ParState<M>, deadline: SimTime) {
    /// `target` sentinel: past the deadline, this is the last window.
    const STOP: u64 = u64::MAX;
    let k = par.lps.len();
    let w = par.workers.min(k);
    let lookahead = par.lookahead;

    let staged: Vec<Mutex<Vec<Staged<M>>>> = par
        .staged
        .iter_mut()
        .map(|v| Mutex::new(std::mem::take(v)))
        .collect();
    let bound = AtomicU64::new(u64::MAX);
    let target = AtomicU64::new(0);

    let chunk_size = k.div_ceil(w);
    let mut chunks: Vec<(usize, &mut [Simulator<M>])> = Vec::with_capacity(w);
    let mut rest: &mut [Simulator<M>] = &mut par.lps;
    let mut base = 0;
    while !rest.is_empty() {
        let take = chunk_size.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        chunks.push((base, head));
        base += take;
        rest = tail;
    }
    let barrier = Barrier::new(chunks.len());

    std::thread::scope(|scope| {
        for (base, chunk) in chunks {
            let staged = &staged;
            let bound = &bound;
            let target = &target;
            let barrier = &barrier;
            scope.spawn(move || {
                let mut inbox: Vec<Staged<M>> = Vec::new();
                loop {
                    // Phase A: merge mailboxes, contribute to the bound.
                    let mut local_min = u64::MAX;
                    for (off, lp) in chunk.iter_mut().enumerate() {
                        {
                            let mut g = staged[base + off].lock().unwrap();
                            if !g.is_empty() {
                                std::mem::swap(&mut *g, &mut inbox);
                            }
                        }
                        if !inbox.is_empty() {
                            lp.flush_remote(&mut inbox);
                        }
                        if let Some(t) = lp.queue.peek_at() {
                            local_min = local_min.min(t.as_nanos());
                        }
                    }
                    bound.fetch_min(local_min, Ordering::SeqCst);
                    barrier.wait();
                    // Phase B: one worker computes the window target and
                    // resets the bound for the next window.
                    if base == 0 {
                        let b = bound.swap(u64::MAX, Ordering::SeqCst);
                        let t = if b > deadline.as_nanos() {
                            STOP
                        } else {
                            b.saturating_add(lookahead - 1).min(deadline.as_nanos())
                        };
                        target.store(t, Ordering::SeqCst);
                    }
                    barrier.wait();
                    // Phase C: advance, then stage cross-LP sends. The
                    // per-mailbox append order across workers is
                    // arbitrary; the receiver's sort by (at, seq,
                    // src_lp) erases it.
                    let t = target.load(Ordering::SeqCst);
                    let adv = if t == STOP { deadline } else { SimTime(t) };
                    for lp in chunk.iter_mut() {
                        lp.run_until(adv);
                        let src_lp = lp.lp;
                        for (dst, ob) in lp.outboxes.iter_mut().enumerate() {
                            if ob.is_empty() {
                                continue;
                            }
                            let mut g = staged[dst].lock().unwrap();
                            g.extend(ob.drain(..).map(|(at, seq, pkt)| (at, seq, src_lp, pkt)));
                        }
                    }
                    if t == STOP {
                        break;
                    }
                    barrier.wait();
                }
            });
        }
    });

    for (slot, m) in par.staged.iter_mut().zip(staged) {
        *slot = m.into_inner().unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, RunOutcome};
    use crate::link::{LinkConfig, LinkFaults, Topology};
    use crate::node::{Context, Node};
    use crate::time::SimDuration;

    /// Records arrivals; bounces the payload back, incremented, until
    /// it reaches `limit`. RNG-free, so behavior is identical under any
    /// partitioning.
    struct Echo {
        received: Vec<(SimTime, u32)>,
        limit: u32,
    }
    impl Node<u32> for Echo {
        fn on_packet(&mut self, pkt: Packet<u32>, ctx: &mut Context<'_, u32>) {
            self.received.push((ctx.now(), pkt.payload));
            if pkt.payload < self.limit {
                ctx.send(pkt.src, pkt.payload + 1);
            }
        }
        fn on_timer(&mut self, _t: u64, _c: &mut Context<'_, u32>) {}
    }

    /// Forwards every packet around a ring until the payload hits zero,
    /// and ticks a local timer a few times.
    struct Ring {
        next: NodeId,
        got: Vec<(SimTime, u32)>,
        ticks: u32,
    }
    impl Node<u32> for Ring {
        fn on_packet(&mut self, pkt: Packet<u32>, ctx: &mut Context<'_, u32>) {
            self.got.push((ctx.now(), pkt.payload));
            if pkt.payload > 0 {
                ctx.send(self.next, pkt.payload - 1);
            }
        }
        fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, u32>) {
            self.ticks += 1;
            if token < 5 {
                ctx.set_timer(SimDuration(700), token + 1);
            }
        }
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.set_timer(SimDuration(700), 0);
        }
    }

    fn ring_sim(n: usize, seed: u64) -> Simulator<u32> {
        let topo = Topology::new(LinkConfig::with_delay(SimDuration(1_000)));
        let mut s: Simulator<u32> = Simulator::new(topo, seed);
        for i in 0..n {
            s.add_node(Box::new(Ring {
                next: NodeId(((i + 1) % n) as u32),
                got: vec![],
                ticks: 0,
            }));
        }
        s
    }

    fn ring_trace(s: &Simulator<u32>, n: usize) -> Vec<Vec<(SimTime, u32)>> {
        (0..n)
            .map(|i| s.read_node::<Ring, _>(NodeId(i as u32), |r| r.got.clone()))
            .collect()
    }

    #[test]
    fn cross_lp_ping_pong_matches_unpartitioned() {
        let run = |part: bool| {
            let topo = Topology::new(LinkConfig::with_delay(SimDuration(1_000)));
            let mut s: Simulator<u32> = Simulator::new(topo, 7);
            let a = s.add_node(Box::new(Echo {
                received: vec![],
                limit: 40,
            }));
            let b = s.add_node(Box::new(Echo {
                received: vec![],
                limit: 40,
            }));
            if part {
                s.partition(vec![0, 1], 1);
                assert_eq!(s.partitions(), 2);
            }
            s.inject(a, b, 0);
            s.run_until(SimTime(200_000));
            (
                s.read_node::<Echo, _>(a, |n| n.received.clone()),
                s.read_node::<Echo, _>(b, |n| n.received.clone()),
                s.stats().packets_delivered,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn worker_count_is_invisible_to_results() {
        let n = 8;
        let run = |workers: usize| {
            let mut s = ring_sim(n, 11);
            // 4 LPs of 2 nodes each.
            s.partition((0..n as u32).map(|i| i / 2).collect(), workers);
            assert_eq!(s.partitions(), 4);
            for i in 0..n {
                s.inject(NodeId(i as u32), NodeId(((i + 3) % n) as u32), 50);
            }
            s.run_until(SimTime(500_000));
            (ring_trace(&s, n), s.stats())
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
        assert_eq!(one, run(8));
        assert!(one.1.packets_delivered > 100);
    }

    #[test]
    fn stats_invariant_holds_across_lps() {
        let n = 6;
        let mut s = ring_sim(n, 3);
        s.partition(vec![0, 0, 1, 1, 2, 2], 2);
        // Traffic to a node that is failed mid-run + one id in the void.
        s.schedule_fault(SimTime(5_000), FaultAction::FailNode(NodeId(3)));
        s.inject(NodeId(0), NodeId(99), 1);
        for i in 0..n {
            s.inject(NodeId(i as u32), NodeId(((i + 1) % n) as u32), 30);
        }
        s.run_until(SimTime(300_000));
        let st = s.stats();
        assert!(st.packets_to_dead_node > 0);
        assert_eq!(
            st.packets_delivered + st.timers_fired + st.faults_applied + st.packets_to_dead_node,
            st.events_fired,
            "stats buckets must partition events_fired: {st:?}"
        );
        assert!(!s.is_alive(NodeId(3)));
        assert_eq!(s.pending_events(), 0);
    }

    #[test]
    fn link_faults_replicate_and_stay_deterministic() {
        let run = |workers: usize| {
            let n = 4;
            let mut s = ring_sim(n, 21);
            s.partition(vec![0, 0, 1, 1], workers);
            // Degrade one cross-LP link (delay stays >= lookahead), then
            // restore it; also fail and revive a node.
            let cfg = LinkConfig::with_delay(SimDuration(1_500)).with_faults(LinkFaults {
                jitter: SimDuration(400),
                duplicate: 0.5,
                ..LinkFaults::NONE
            });
            let plan = FaultPlan::new()
                .with(
                    SimTime(2_000),
                    FaultAction::SetLink {
                        src: NodeId(1),
                        dst: NodeId(2),
                        cfg,
                    },
                )
                .with(
                    SimTime(40_000),
                    FaultAction::ClearLink {
                        src: NodeId(1),
                        dst: NodeId(2),
                    },
                )
                .with(SimTime(10_000), FaultAction::FailNode(NodeId(3)))
                .with(SimTime(20_000), FaultAction::ReviveNode(NodeId(3)));
            s.install_plan(&plan);
            for i in 0..n {
                s.inject(NodeId(i as u32), NodeId(((i + 1) % n) as u32), 200);
            }
            assert_eq!(
                s.run_until_fault(SimTime(400_000)),
                RunOutcome::ReachedDeadline
            );
            (ring_trace(&s, n), s.stats(), s.link_counters())
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
        // The SetLink + ClearLink replicated to both LPs; the node
        // fail/revive fired once each: 2*2 + 2 = 6.
        assert_eq!(one.1.faults_applied, 6);
        assert!(one.1.packets_duplicated > 0);
    }

    #[test]
    fn per_lp_taps_observe_disjoint_events() {
        use std::sync::{Arc as StdArc, Mutex as StdMutex};
        let n = 4;
        let mut s = ring_sim(n, 5);
        s.partition(vec![0, 0, 1, 1], 2);
        let counts: StdArc<StdMutex<[u64; 2]>> = StdArc::new(StdMutex::new([0, 0]));
        for lp in 0..2 {
            let c = StdArc::clone(&counts);
            s.set_lp_tap(
                lp,
                Box::new(move |ev| {
                    if let crate::sim::TapEvent::Delivered { .. } = ev {
                        c.lock().unwrap()[lp] += 1;
                    }
                }),
            );
        }
        s.inject(NodeId(0), NodeId(2), 20);
        s.run_until(SimTime(100_000));
        let c = *counts.lock().unwrap();
        let st = s.stats();
        assert_eq!(c[0] + c[1], st.packets_delivered);
        assert!(c[0] > 0 && c[1] > 0, "both LPs deliver: {c:?}");
    }

    #[test]
    fn single_lp_partition_is_a_no_op() {
        let mut s = ring_sim(4, 2);
        s.partition(vec![0; 4], 8);
        assert_eq!(s.partitions(), 1);
        s.inject(NodeId(0), NodeId(1), 5);
        s.run_until(SimTime(50_000));
        assert!(s.stats().packets_delivered > 0);
        // step() stays callable — a one-LP map keeps the serial path
        // (a genuinely partitioned simulator panics here).
        let _ = s.step();
    }

    #[test]
    fn pending_events_counts_queues_and_mailboxes() {
        let mut s = ring_sim(4, 2);
        s.partition(vec![0, 0, 1, 1], 1);
        s.inject(NodeId(0), NodeId(2), 0); // cross-LP, scheduled in LP 1
        s.inject_timer(NodeId(1), SimDuration(10), 0);
        assert_eq!(s.pending_events(), 2 + 4 /* on_start timers */);
    }

    #[test]
    #[should_panic(expected = "fault #0 is Custom(7)")]
    fn custom_fault_rejected_when_partitioned() {
        let mut s = ring_sim(2, 1);
        s.partition(vec![0, 1], 1);
        s.schedule_fault(SimTime(1_000), FaultAction::Custom(7));
    }

    #[test]
    #[should_panic(expected = "fault #2 is Custom(9)")]
    fn custom_fault_rejection_names_index_and_kind() {
        // The diagnostic must point at *which* plan entry is offending,
        // counting every fault validated since partitioning.
        let mut s = ring_sim(2, 1);
        s.partition(vec![0, 1], 1);
        s.schedule_fault(SimTime(500), FaultAction::FailNode(NodeId(0)));
        s.schedule_fault(SimTime(900), FaultAction::ReviveNode(NodeId(0)));
        s.schedule_fault(SimTime(1_000), FaultAction::Custom(9));
    }

    #[test]
    #[should_panic(expected = "fault #1 is Custom(3)")]
    fn queued_custom_fault_rejected_at_partition_time() {
        // A Custom fault scheduled *before* partition() is caught while
        // migrating the queue, with the same indexed diagnostic.
        let mut s = ring_sim(2, 1);
        s.schedule_fault(SimTime(400), FaultAction::FailNode(NodeId(0)));
        s.schedule_fault(SimTime(800), FaultAction::Custom(3));
        s.partition(vec![0, 1], 1);
    }

    #[test]
    #[should_panic(expected = "set_tap on a partitioned simulator")]
    fn global_tap_rejected_when_partitioned() {
        let mut s = ring_sim(2, 1);
        s.partition(vec![0, 1], 1);
        s.set_tap(Box::new(|_| {}));
    }

    #[test]
    #[should_panic(expected = "add_node on a partitioned simulator")]
    fn add_node_rejected_when_partitioned() {
        let mut s = ring_sim(2, 1);
        s.partition(vec![0, 1], 1);
        s.add_node(Box::new(Echo {
            received: vec![],
            limit: 0,
        }));
    }

    #[test]
    #[should_panic(expected = "below partition lookahead")]
    fn shrinking_cross_lp_delay_rejected() {
        let mut s = ring_sim(2, 1);
        s.partition(vec![0, 1], 1);
        s.schedule_fault(
            SimTime(1_000),
            FaultAction::SetLink {
                src: NodeId(0),
                dst: NodeId(1),
                cfg: LinkConfig::with_delay(SimDuration(10)),
            },
        );
    }
}
