//! Deterministic fast hashing for simulator-internal hot maps.
//!
//! `std::collections::HashMap`'s default `RandomState` both seeds
//! itself from the OS (different table layout every process — harmless
//! for value lookups but a needless source of nondeterminism) and runs
//! SipHash-1-3, which costs tens of nanoseconds per small key. Maps on
//! the per-request fast path — the switch's release guard is hit twice
//! per lock request — want a fixed, cheap mix instead. [`FastHasher`]
//! is the Fx-style multiply-xor hash: word-at-a-time, one multiply per
//! word, fully deterministic. It is *not* DoS-resistant, which is fine
//! for keys the simulation itself generates.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier (golden-ratio derived, same constant rustc
/// uses for its interner tables).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher: `state = (state.rotl(5) ^ word) * SEED` per
/// input word. Deterministic across processes and platforms.
#[derive(Default)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One xor-shift-multiply finalizer: the raw Fx state leaves
        // sequential keys clustered in the top bits, and hashbrown
        // steers on exactly those (control-byte h2 = top 7 bits).
        (self.state ^ (self.state >> 32)).wrapping_mul(SEED)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// Deterministic builder for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// `HashMap` with the deterministic Fx-style hasher. Drop-in for hot
/// simulator maps; construct with `FastHashMap::default()`.
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// `HashSet` with the deterministic Fx-style hasher.
pub type FastHashSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_builders() {
        let mut a = FastHashMap::default();
        let mut b = FastHashMap::default();
        for i in 0u64..1000 {
            a.insert((i, i * 3), i);
            b.insert((i, i * 3), i);
        }
        assert_eq!(a, b);
        // Same iteration order too: identical hasher state, identical
        // insert order, identical table layout.
        let va: Vec<_> = a.iter().collect();
        let vb: Vec<_> = b.iter().collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn distributes_sequential_keys() {
        // Sequential u64 keys must not collapse onto a few buckets:
        // count distinct top-7-bit prefixes of the hash.
        use std::hash::BuildHasher;
        let bh = FastBuildHasher::default();
        let mut buckets = FastHashSet::default();
        for i in 0u64..128 {
            buckets.insert(bh.hash_one((0u32, i)) >> 57);
        }
        assert!(
            buckets.len() > 70,
            "only {} distinct buckets",
            buckets.len()
        );
    }

    #[test]
    fn odd_length_byte_tails_differ() {
        use std::hash::Hasher;
        let mut a = FastHasher::default();
        a.write(b"abcdefghi");
        let mut b = FastHasher::default();
        b.write(b"abcdefghj");
        assert_ne!(a.finish(), b.finish());
    }
}
