//! The pending-event queue: a self-tuning calendar queue (bucketed
//! timing wheel) with an overflow heap.
//!
//! The simulator's hot path is `push` + `pop` of one event per
//! dispatched packet or timer — hundreds of thousands to millions of
//! operations per figure point. A global `BinaryHeap` pays
//! `O(log n)` comparisons on every operation over the *whole* pending
//! set; the calendar queue instead hashes each event into a
//! fixed-width time bucket (`O(1)` insert for anything within the
//! wheel horizon) and only keeps a heap over the *current bucket*,
//! whose occupancy is a small slice of the pending set.
//!
//! A calendar queue is only as good as its bucket width: too wide and
//! every pending event piles into one bucket (the structure degrades
//! to a heap plus bookkeeping); too narrow and the horizon shrinks
//! until everything lands in the overflow heap. Both failure modes
//! showed up in the PR 2 microbench, so the width is no longer a
//! compile-time constant. The queue samples the push-time delay
//! distribution (`at - last_pop`) and every [`RETUNE_PERIOD`] pushes
//! recomputes the bucket-width exponent so that the pending set
//! spreads at a few events per bucket; when the exponent moves by two
//! or more (hysteresis against thrash) the wheel is rebuilt at the new
//! width. Sparse wheels are cheap to walk: an occupancy bitmap lets
//! the cursor jump straight to the next non-empty bucket instead of
//! sweeping empties one at a time.
//!
//! Ordering contract (identical to the heap it replaces): events pop
//! in ascending `(at, seq)` order, so same-instant events are FIFO by
//! insertion sequence and runs remain bit-for-bit deterministic —
//! retuning moves events between tiers but never reorders keys. The
//! equivalence tests at the bottom of this file (and the property
//! tests in `tests/prop_queue.rs`) check the contract against a
//! reference `BinaryHeap` on randomized and adversarial schedules.
//!
//! Layout:
//! - `due`: the drained contents of the cursor's bucket, sorted once
//!   (descending, popped from the back) instead of heapified — a
//!   bucket holds only a handful of events, so one small sort beats
//!   per-event heap sifts.
//! - `late`: a small heap for events at or before the cursor's bucket
//!   that arrive *after* it was drained (late pushes at the current
//!   instant land here even if the cursor has run ahead — see
//!   `push`); almost always empty on the hot path.
//! - `ring`: `N_BUCKETS` unsorted `Vec`s, each covering `2^shift` ns;
//!   an event within the wheel horizon is appended to its bucket.
//! - `overflow`: a heap for events beyond the horizon (client retry
//!   timeouts, lease expiries — rare relative to per-packet traffic).
//!   Events migrate from `overflow` into the wheel as the cursor
//!   advances.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Initial bucket width exponent: each bucket spans `2^shift` ns
/// (≈4.1 µs before the first retune).
const INITIAL_SHIFT: u32 = 12;
/// Bounds for the tuned exponent. `0` is a 1 ns bucket; `40` (≈18
/// minutes per bucket) is far beyond any delay the racks schedule.
const MIN_SHIFT: u32 = 0;
const MAX_SHIFT: u32 = 40;
/// Number of wheel buckets (must be a power of two). Horizon:
/// `N_BUCKETS << shift`.
const N_BUCKETS: usize = 4_096;
/// Words in the occupancy bitmap (64 buckets per word).
const N_WORDS: usize = N_BUCKETS / 64;
/// Pushes between width recomputations. Large enough that the stats
/// smooth over bursts, small enough to adapt within one warmup.
const RETUNE_PERIOD: u32 = 4_096;
/// Width-formula numerator: the pending set spreads at roughly one
/// event per occupied bucket, so a drain is an append of one or two
/// entries and the sort is a no-op.
const WIDTH_NUMERATOR: u64 = 2;

struct Entry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A monotone priority queue over `(SimTime, seq)` keys.
///
/// "Monotone" is the one extra constraint over a general heap: a push
/// must not be earlier than the last popped timestamp (discrete-event
/// simulation never schedules into the past; [`crate::Simulator`]
/// debug-asserts this). Same-instant pushes after a pop are allowed
/// and ordered by `seq`.
pub struct EventQueue<T> {
    /// Current bucket width exponent (buckets span `2^shift` ns).
    shift: u32,
    /// Absolute bucket index (`at >> shift`) of the cursor.
    cur_abs: u64,
    /// The cursor bucket's drained events, sorted descending by
    /// `(at, seq)` and popped from the back.
    due: Vec<Entry<T>>,
    /// Events at `abs <= cur_abs` that arrived after the cursor's
    /// bucket was drained. Usually empty.
    late: BinaryHeap<Reverse<Entry<T>>>,
    /// The wheel: bucket `abs & (N_BUCKETS-1)` holds events for the
    /// unique `abs` in `(cur_abs, cur_abs + N_BUCKETS)` mapping to it.
    ring: Box<[Vec<Entry<T>>]>,
    /// One bit per ring bucket: set iff the bucket is non-empty. Lets
    /// `seek` jump over runs of empty buckets in O(words scanned).
    occupied: [u64; N_WORDS],
    /// Total events stored in `ring`.
    ring_len: usize,
    /// Events at or beyond the wheel horizon.
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    /// Timestamp of the most recent pop — the "now" that push delays
    /// are measured against, and the anchor the wheel is rebuilt at.
    last_pop_at: u64,
    /// Sum of `at - last_pop_at` over pushes since the last retune.
    delay_sum: u64,
    /// Pushes since the last retune.
    pushes_since_retune: u32,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue with the cursor at time zero.
    pub fn new() -> EventQueue<T> {
        let mut ring = Vec::with_capacity(N_BUCKETS);
        ring.resize_with(N_BUCKETS, Vec::new);
        EventQueue {
            shift: INITIAL_SHIFT,
            cur_abs: 0,
            due: Vec::new(),
            late: BinaryHeap::new(),
            ring: ring.into_boxed_slice(),
            occupied: [0; N_WORDS],
            ring_len: 0,
            overflow: BinaryHeap::new(),
            last_pop_at: 0,
            delay_sum: 0,
            pushes_since_retune: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.due.len() + self.late.len() + self.ring_len + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert an event. `seq` must be unique per queue (the simulator
    /// uses a monotone counter); it breaks ties among equal `at`.
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) {
        self.delay_sum = self
            .delay_sum
            .saturating_add(at.0.saturating_sub(self.last_pop_at));
        self.pushes_since_retune += 1;
        if self.pushes_since_retune == RETUNE_PERIOD {
            self.maybe_retune();
        }
        self.place(Entry { at, seq, item });
    }

    /// Remove and return the earliest event as `(at, seq, item)`.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        // Inlined so the unbounded deadline constant-folds: the three
        // `> deadline` early-outs in `pop_due` vanish and this compiles
        // to the same code the standalone pop had before the fusion.
        self.pop_due(SimTime(u64::MAX))
    }

    /// Fused peek-then-pop: remove and return the earliest event iff
    /// it is due at or before `deadline`.
    ///
    /// This is the run-loop primitive. The split `peek_at()` + `pop()`
    /// pair pays the cursor `seek` and the due/late head comparison
    /// twice per dispatched event; fusing them does both exactly once
    /// while popping in the identical ascending `(at, seq)` order.
    pub fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, u64, T)> {
        self.seek();
        let from_late = match (self.due.last(), self.late.peek()) {
            (Some(d), Some(Reverse(l))) => {
                if d.at.min(l.at) > deadline {
                    return None;
                }
                l < d
            }
            (None, Some(Reverse(l))) => {
                if l.at > deadline {
                    return None;
                }
                true
            }
            (Some(d), None) => {
                if d.at > deadline {
                    return None;
                }
                false
            }
            (None, None) => return None,
        };
        let e = if from_late {
            self.late.pop().expect("peeked").0
        } else {
            self.due.pop().expect("peeked")
        };
        self.last_pop_at = e.at.0;
        Some((e.at, e.seq, e.item))
    }

    /// Drain the maximal run of events sharing the earliest pending
    /// timestamp into `out` (appended in ascending `(at, seq)` order),
    /// provided that timestamp is at or before `deadline`. Returns the
    /// number of events appended (0 if nothing is due).
    ///
    /// Completeness: after `seek`, `due` and `late` together hold
    /// *every* pending event whose bucket index is `<= cur_abs` — ring
    /// events are strictly later buckets and overflow events are beyond
    /// the horizon (admitted by `seek`). The head timestamp's bucket is
    /// `<= cur_abs`, so the whole same-instant run is already resident
    /// in those two tiers and one interleaved drain (by `seq`) yields
    /// it without touching the cursor again.
    pub fn pop_run(&mut self, deadline: SimTime, out: &mut Vec<(SimTime, u64, T)>) -> usize {
        self.seek();
        let head_at = match (self.due.last(), self.late.peek()) {
            (Some(d), Some(Reverse(l))) => d.at.min(l.at),
            (Some(d), None) => d.at,
            (None, Some(Reverse(l))) => l.at,
            (None, None) => return 0,
        };
        if head_at > deadline {
            return 0;
        }
        let start = out.len();
        loop {
            let from_late = match (self.due.last(), self.late.peek()) {
                (Some(d), Some(Reverse(l))) => l < d,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (None, None) => break,
            };
            if from_late {
                if self.late.peek().expect("matched above").0.at != head_at {
                    break;
                }
                let e = self.late.pop().expect("peeked").0;
                out.push((e.at, e.seq, e.item));
            } else {
                if self.due.last().expect("matched above").at != head_at {
                    break;
                }
                let e = self.due.pop().expect("peeked");
                out.push((e.at, e.seq, e.item));
            }
        }
        self.last_pop_at = head_at.0;
        out.len() - start
    }

    /// Timestamp of the earliest event without removing it.
    ///
    /// Takes `&mut self` because it may advance the cursor; the
    /// logical contents are unchanged.
    pub fn peek_at(&mut self) -> Option<SimTime> {
        self.seek();
        match (self.due.last(), self.late.peek()) {
            (Some(d), Some(Reverse(l))) => Some(d.at.min(l.at)),
            (Some(d), None) => Some(d.at),
            (None, Some(Reverse(l))) => Some(l.at),
            (None, None) => None,
        }
    }

    /// Route one entry to the tier its bucket index demands.
    ///
    /// `abs <= cur_abs` happens when the cursor ran ahead hunting
    /// for the next event (peek/pop across empty buckets) and a
    /// same-instant event is then scheduled: it must still pop
    /// before everything in later buckets, so it joins `late`.
    fn place(&mut self, entry: Entry<T>) {
        let abs = entry.at.0 >> self.shift;
        if abs <= self.cur_abs {
            self.late.push(Reverse(entry));
        } else if abs - self.cur_abs < N_BUCKETS as u64 {
            let bucket = (abs & (N_BUCKETS as u64 - 1)) as usize;
            self.occupied[bucket >> 6] |= 1 << (bucket & 63);
            self.ring[bucket].push(entry);
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse(entry));
        }
    }

    /// Advance the cursor until the due/late tier holds the earliest
    /// event (no-op if it already does, or if the queue is empty).
    ///
    /// A non-empty `due` or `late` always holds the global minimum:
    /// their events are at `abs <= cur_abs`, every ring event is at
    /// `abs > cur_abs`, and every overflow event is beyond the ring.
    fn seek(&mut self) {
        while self.due.is_empty() && self.late.is_empty() {
            if self.ring_len == 0 {
                // Everything pending (if anything) is in overflow:
                // jump the cursor straight to its earliest bucket
                // instead of sweeping up to N_BUCKETS empty slots.
                let Some(Reverse(head)) = self.overflow.peek() else {
                    return;
                };
                self.cur_abs = self.cur_abs.max(head.at.0 >> self.shift);
                self.admit_overflow();
            } else {
                // Any ring event precedes any overflow event (the
                // overflow invariant: `abs >= cur_abs + N_BUCKETS`),
                // so jump straight to the next occupied bucket.
                self.cur_abs += self.next_occupied_delta();
                let bucket = (self.cur_abs & (N_BUCKETS as u64 - 1)) as usize;
                self.occupied[bucket >> 6] &= !(1 << (bucket & 63));
                self.ring_len -= self.ring[bucket].len();
                // One small sort per bucket beats a heap sift per
                // event: `due` is empty here, so this is the whole
                // bucket, typically a handful of events.
                self.due.append(&mut self.ring[bucket]);
                self.due.sort_unstable_by(|a, b| b.cmp(a));
                self.admit_overflow();
            }
        }
    }

    /// Distance (in buckets) from the cursor to the next occupied ring
    /// bucket. Caller guarantees `ring_len > 0`; the result is in
    /// `[1, N_BUCKETS - 1]` because a ring event's `abs` never shares
    /// the cursor's residue (`abs - cur_abs` is in `[1, N_BUCKETS)`).
    fn next_occupied_delta(&self) -> u64 {
        let cur_bucket = (self.cur_abs & (N_BUCKETS as u64 - 1)) as usize;
        let start = (cur_bucket + 1) & (N_BUCKETS - 1);
        let (word, bit) = (start >> 6, start & 63);
        let masked = self.occupied[word] & (!0u64 << bit);
        let found = if masked != 0 {
            (word << 6) + masked.trailing_zeros() as usize
        } else {
            let mut found = None;
            for step in 1..=N_WORDS {
                let w = (word + step) & (N_WORDS - 1);
                if self.occupied[w] != 0 {
                    found = Some((w << 6) + self.occupied[w].trailing_zeros() as usize);
                    break;
                }
            }
            found.expect("ring_len > 0 implies an occupied bucket")
        };
        (found.wrapping_sub(cur_bucket) & (N_BUCKETS - 1)) as u64
    }

    /// Move overflow events that now fall within the wheel horizon
    /// into the wheel (or `current` if they are due already).
    fn admit_overflow(&mut self) {
        while let Some(Reverse(head)) = self.overflow.peek() {
            let abs = head.at.0 >> self.shift;
            if abs > self.cur_abs && abs - self.cur_abs >= N_BUCKETS as u64 {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked");
            if abs <= self.cur_abs {
                self.late.push(Reverse(e));
            } else {
                let bucket = (abs & (N_BUCKETS as u64 - 1)) as usize;
                self.occupied[bucket >> 6] |= 1 << (bucket & 63);
                self.ring[bucket].push(e);
                self.ring_len += 1;
            }
        }
    }

    /// Recompute the bucket-width exponent from the sampled delay
    /// distribution; rebuild the wheel if it moved meaningfully.
    ///
    /// Width target: `len` pending events spread over a window of
    /// roughly `2 * avg_delay` should occupy buckets at a few events
    /// each, i.e. `width ≈ WIDTH_NUMERATOR * avg_delay / len`. The
    /// two-step hysteresis keeps a noisy boundary workload from
    /// rebuilding every period.
    fn maybe_retune(&mut self) {
        let avg_delay = self.delay_sum / u64::from(RETUNE_PERIOD);
        self.delay_sum = 0;
        self.pushes_since_retune = 0;
        let len = self.len() as u64;
        let width = (avg_delay.saturating_mul(WIDTH_NUMERATOR) / len.max(1)).max(1);
        let desired = (63 - width.leading_zeros()).clamp(MIN_SHIFT, MAX_SHIFT);
        if desired.abs_diff(self.shift) >= 2 {
            self.rebuild(desired);
        }
    }

    /// Re-key every pending event at a new bucket width, anchoring the
    /// cursor at the last popped timestamp. Order is unaffected: the
    /// pop order is derived from `(at, seq)` keys, not tier placement.
    fn rebuild(&mut self, shift: u32) {
        let mut stash: Vec<Entry<T>> = Vec::with_capacity(self.len());
        stash.append(&mut self.due);
        stash.extend(self.late.drain().map(|Reverse(e)| e));
        for bucket in self.ring.iter_mut() {
            stash.append(bucket);
        }
        stash.extend(self.overflow.drain().map(|Reverse(e)| e));
        self.ring_len = 0;
        self.occupied = [0; N_WORDS];
        self.shift = shift;
        self.cur_abs = self.last_pop_at >> shift;
        for entry in stash {
            self.place(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: a plain binary heap over the same keys.
    struct RefQueue {
        heap: BinaryHeap<Reverse<Entry<u64>>>,
    }

    impl RefQueue {
        fn new() -> RefQueue {
            RefQueue {
                heap: BinaryHeap::new(),
            }
        }
        fn push(&mut self, at: SimTime, seq: u64) {
            self.heap.push(Reverse(Entry { at, seq, item: seq }));
        }
        fn pop(&mut self) -> Option<(SimTime, u64)> {
            self.heap.pop().map(|Reverse(e)| (e.at, e.seq))
        }
    }

    fn drain_equal(mut q: EventQueue<u64>, mut r: RefQueue) {
        loop {
            let got = q.pop();
            let want = r.pop();
            match (got, want) {
                (None, None) => break,
                (Some((at, seq, item)), Some((rat, rseq))) => {
                    assert_eq!((at, seq), (rat, rseq));
                    assert_eq!(item, seq, "payload follows its key");
                }
                (got, want) => panic!("length mismatch: {got:?} vs {want:?}"),
            }
        }
        assert!(q.is_empty());
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q: EventQueue<u64> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_at(), None);
    }

    #[test]
    fn fifo_at_same_timestamp() {
        // Adversarial: every event at the same instant — pure seq order.
        let mut q = EventQueue::new();
        let mut r = RefQueue::new();
        for seq in 0..1_000u64 {
            q.push(SimTime(77), seq, seq);
            r.push(SimTime(77), seq);
        }
        drain_equal(q, r);
    }

    #[test]
    fn spans_buckets_and_overflow() {
        // Timestamps straddling bucket edges, the wheel horizon, and
        // far-future overflow; interleaved duplicate instants.
        let mut q = EventQueue::new();
        let mut r = RefQueue::new();
        let horizon = (N_BUCKETS as u64) << INITIAL_SHIFT;
        let times = [
            0,
            1,
            (1 << INITIAL_SHIFT) - 1,
            1 << INITIAL_SHIFT,
            (1 << INITIAL_SHIFT) + 1,
            3 << INITIAL_SHIFT,
            horizon - 1,
            horizon,
            horizon + 1,
            7 * horizon,
            7 * horizon,
            u64::MAX >> 1,
        ];
        for (seq, &t) in times.iter().enumerate() {
            q.push(SimTime(t), seq as u64, seq as u64);
            r.push(SimTime(t), seq as u64);
        }
        drain_equal(q, r);
    }

    #[test]
    fn randomized_interleaved_push_pop() {
        // Deterministic xorshift; monotone schedule: each push is at or
        // after the last popped time, as the simulator guarantees.
        let mut q = EventQueue::new();
        let mut r = RefQueue::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut rnd = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut now = 0u64;
        for (seq, round) in (0u64..).zip(0..10_000) {
            // Delays spanning sub-bucket, multi-bucket and overflow
            // ranges, with a bias toward the hot (small-delay) case.
            let delay = match rnd() % 10 {
                0..=5 => rnd() % 4_096,
                6..=7 => rnd() % (64 << INITIAL_SHIFT),
                8 => rnd() % ((2 * N_BUCKETS as u64) << INITIAL_SHIFT),
                _ => 0, // same-instant
            };
            q.push(SimTime(now + delay), seq, seq);
            r.push(SimTime(now + delay), seq);
            if round % 3 != 0 {
                let got = q.pop();
                let want = r.pop().map(|(at, s)| (at, s, s));
                assert_eq!(got, want);
                if let Some((at, _, _)) = got {
                    now = at.0;
                }
            }
        }
        drain_equal(q, r);
    }

    #[test]
    fn retune_mid_stream_preserves_order() {
        // Enough pushes to cross several RETUNE_PERIOD boundaries with
        // a delay mix that swings the width formula both narrower and
        // wider than INITIAL_SHIFT, forcing mid-stream rebuilds.
        let mut x = 0xDEADBEEFCAFEF00Du64;
        let mut rnd = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut q = EventQueue::new();
        let mut r = RefQueue::new();
        let mut now = 0u64;
        for seq in 0..(6 * u64::from(RETUNE_PERIOD)) {
            let delay = match seq % 7 {
                0..=4 => rnd() % 256,
                5 => rnd() % (1 << 20),
                _ => rnd() % (1 << 30),
            };
            q.push(SimTime(now + delay), seq, seq);
            r.push(SimTime(now + delay), seq);
            if seq % 2 == 1 {
                let got = q.pop();
                let want = r.pop().map(|(at, s)| (at, s, s));
                assert_eq!(got, want);
                if let Some((at, _, _)) = got {
                    now = at.0;
                }
            }
        }
        drain_equal(q, r);
    }

    #[test]
    fn peek_at_matches_reference_heap() {
        // peek_at must always agree with the reference heap's minimum,
        // never change the logical contents, and be stable across
        // repeated calls — under the same monotone randomized schedule
        // as the pop equivalence test (cursor hops, late pushes,
        // overflow admissions and mid-stream retunes included).
        let mut q = EventQueue::new();
        let mut r = RefQueue::new();
        let mut x = 0xA076_1D64_78BD_642Fu64;
        let mut rnd = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut now = 0u64;
        for (seq, round) in (0u64..).zip(0..10_000) {
            let delay = match rnd() % 10 {
                0..=5 => rnd() % 4_096,
                6..=7 => rnd() % (64 << INITIAL_SHIFT),
                8 => rnd() % ((2 * N_BUCKETS as u64) << INITIAL_SHIFT),
                _ => 0,
            };
            q.push(SimTime(now + delay), seq, seq);
            r.push(SimTime(now + delay), seq);
            let want = r.heap.peek().map(|Reverse(e)| e.at);
            let len_before = q.len();
            assert_eq!(q.peek_at(), want);
            assert_eq!(q.peek_at(), want, "peek is idempotent");
            assert_eq!(q.len(), len_before, "peek removes nothing");
            if round % 3 != 0 {
                let got = q.pop();
                let want = r.pop().map(|(at, s)| (at, s, s));
                assert_eq!(got, want, "pop after peek is unperturbed");
                if let Some((at, _, _)) = got {
                    now = at.0;
                }
                assert_eq!(q.peek_at(), r.heap.peek().map(|Reverse(e)| e.at));
            }
        }
        drain_equal(q, r);
    }

    #[test]
    fn push_behind_cursor_after_peek() {
        // peek_at advances the cursor across empty buckets; a
        // subsequent same-instant push must still pop first.
        let mut q = EventQueue::new();
        q.push(SimTime(100 << INITIAL_SHIFT), 0, 0);
        assert_eq!(q.peek_at(), Some(SimTime(100 << INITIAL_SHIFT)));
        // The harness injects at a time long passed by the cursor.
        q.push(SimTime(5), 1, 1);
        assert_eq!(q.pop(), Some((SimTime(5), 1, 1)));
        assert_eq!(q.pop(), Some((SimTime(100 << INITIAL_SHIFT), 0, 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_due_respects_deadline() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), 0, 0);
        q.push(SimTime(20), 1, 1);
        // Not due yet: nothing comes out, nothing is lost.
        assert_eq!(q.pop_due(SimTime(9)), None);
        assert_eq!(q.len(), 2);
        // Due exactly at the deadline.
        assert_eq!(q.pop_due(SimTime(10)), Some((SimTime(10), 0, 0)));
        assert_eq!(q.pop_due(SimTime(10)), None);
        assert_eq!(q.pop_due(SimTime(u64::MAX)), Some((SimTime(20), 1, 1)));
        assert_eq!(q.pop_due(SimTime(u64::MAX)), None);
    }

    #[test]
    fn pop_run_drains_same_instant_in_seq_order() {
        let mut q = EventQueue::new();
        // A run at t=50 split across due and late tiers: push one far
        // event, peek to run the cursor ahead, then push the rest of
        // the run behind the cursor (they land in `late`).
        q.push(SimTime(50), 0, 0);
        q.push(SimTime(900 << INITIAL_SHIFT), 1, 1);
        assert_eq!(q.peek_at(), Some(SimTime(50)));
        q.push(SimTime(50), 2, 2);
        q.push(SimTime(50), 3, 3);
        q.push(SimTime(60), 4, 4);
        let mut out = Vec::new();
        // Deadline before the head: no drain.
        assert_eq!(q.pop_run(SimTime(49), &mut out), 0);
        assert!(out.is_empty());
        // Drains exactly the t=50 run, FIFO by seq, not the t=60 event.
        assert_eq!(q.pop_run(SimTime(100), &mut out), 3);
        let got: Vec<_> = out.iter().map(|&(at, seq, _)| (at.0, seq)).collect();
        assert_eq!(got, vec![(50, 0), (50, 2), (50, 3)]);
        out.clear();
        assert_eq!(q.pop_run(SimTime(100), &mut out), 1);
        assert_eq!(out[0].0, SimTime(60));
        out.clear();
        // Far event beyond the deadline stays put.
        assert_eq!(q.pop_run(SimTime(100), &mut out), 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_run_matches_pop_sequence() {
        // Two identically-seeded queues: draining via pop_run yields
        // the exact (at, seq) sequence of one-at-a-time pops.
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let mut rnd = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for seq in 0..5_000u64 {
            // Coarse timestamps force heavy same-instant runs.
            let at = SimTime((rnd() % 64) * 1_000);
            a.push(at, seq, seq);
            b.push(at, seq, seq);
        }
        let mut from_pop = Vec::new();
        while let Some((at, seq, _)) = a.pop() {
            from_pop.push((at, seq));
        }
        let mut from_runs = Vec::new();
        let mut buf = Vec::new();
        while b.pop_run(SimTime(u64::MAX), &mut buf) > 0 {
            from_runs.extend(buf.drain(..).map(|(at, seq, _)| (at, seq)));
        }
        assert_eq!(from_pop, from_runs);
        assert!(b.is_empty());
    }

    #[test]
    fn len_tracks_all_tiers() {
        let mut q = EventQueue::new();
        q.push(SimTime(0), 0, 0); // current
        q.push(SimTime(2 << INITIAL_SHIFT), 1, 1); // ring
        q.push(SimTime((N_BUCKETS as u64 + 10) << INITIAL_SHIFT), 2, 2); // overflow
        assert_eq!(q.len(), 3);
        q.pop();
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }
}
