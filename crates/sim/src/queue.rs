//! The pending-event queue: a calendar queue (bucketed timing wheel)
//! with an overflow heap.
//!
//! The simulator's hot path is `push` + `pop` of one event per
//! dispatched packet or timer — hundreds of thousands to millions of
//! operations per figure point. A global `BinaryHeap` pays
//! `O(log n)` comparisons on every operation over the *whole* pending
//! set; the calendar queue instead hashes each event into a
//! fixed-width time bucket (`O(1)` insert for anything within the
//! wheel horizon) and only keeps a heap over the *current bucket*,
//! whose occupancy is a small slice of the pending set.
//!
//! Ordering contract (identical to the heap it replaces): events pop
//! in ascending `(at, seq)` order, so same-instant events are FIFO by
//! insertion sequence and runs remain bit-for-bit deterministic. The
//! equivalence tests at the bottom of this file (and the property
//! tests in `tests/prop_queue.rs`) check the contract against a
//! reference `BinaryHeap` on randomized and adversarial schedules.
//!
//! Layout:
//! - `current`: a small heap holding every pending event in the
//!   cursor's bucket *or earlier* (late pushes at the current instant
//!   land here even if the cursor has run ahead — see `push`).
//! - `ring`: `N_BUCKETS` unsorted `Vec`s, each covering `2^SHIFT` ns;
//!   an event within the wheel horizon is appended to its bucket.
//! - `overflow`: a heap for events beyond the horizon (client retry
//!   timeouts, lease expiries — rare relative to per-packet traffic).
//!   Events migrate from `overflow` into the wheel as the cursor
//!   advances.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Bucket width exponent: each bucket spans `2^SHIFT` ns (≈4.1 µs).
const SHIFT: u32 = 12;
/// Number of wheel buckets (must be a power of two). Horizon:
/// `N_BUCKETS << SHIFT` ≈ 16.8 ms of simulated time.
const N_BUCKETS: usize = 4_096;

struct Entry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A monotone priority queue over `(SimTime, seq)` keys.
///
/// "Monotone" is the one extra constraint over a general heap: a push
/// must not be earlier than the last popped timestamp (discrete-event
/// simulation never schedules into the past; [`crate::Simulator`]
/// debug-asserts this). Same-instant pushes after a pop are allowed
/// and ordered by `seq`.
pub struct EventQueue<T> {
    /// Absolute bucket index (`at >> SHIFT`) of the cursor.
    cur_abs: u64,
    /// Events at `abs <= cur_abs`, popped in `(at, seq)` order.
    current: BinaryHeap<Reverse<Entry<T>>>,
    /// The wheel: bucket `abs & (N_BUCKETS-1)` holds events for the
    /// unique `abs` in `(cur_abs, cur_abs + N_BUCKETS)` mapping to it.
    ring: Box<[Vec<Entry<T>>]>,
    /// Total events stored in `ring`.
    ring_len: usize,
    /// Events at or beyond the wheel horizon.
    overflow: BinaryHeap<Reverse<Entry<T>>>,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue with the cursor at time zero.
    pub fn new() -> EventQueue<T> {
        let mut ring = Vec::with_capacity(N_BUCKETS);
        ring.resize_with(N_BUCKETS, Vec::new);
        EventQueue {
            cur_abs: 0,
            current: BinaryHeap::new(),
            ring: ring.into_boxed_slice(),
            ring_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.current.len() + self.ring_len + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert an event. `seq` must be unique per queue (the simulator
    /// uses a monotone counter); it breaks ties among equal `at`.
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) {
        let abs = at.0 >> SHIFT;
        let entry = Entry { at, seq, item };
        // `abs <= cur_abs` happens when the cursor ran ahead hunting
        // for the next event (peek/pop across empty buckets) and a
        // same-instant event is then scheduled: it must still pop
        // before everything in later buckets, so it joins `current`.
        if abs <= self.cur_abs {
            self.current.push(Reverse(entry));
        } else if abs - self.cur_abs < N_BUCKETS as u64 {
            self.ring[(abs & (N_BUCKETS as u64 - 1)) as usize].push(entry);
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse(entry));
        }
    }

    /// Remove and return the earliest event as `(at, seq, item)`.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.seek();
        self.current.pop().map(|Reverse(e)| (e.at, e.seq, e.item))
    }

    /// Timestamp of the earliest event without removing it.
    ///
    /// Takes `&mut self` because it may advance the cursor; the
    /// logical contents are unchanged.
    pub fn peek_at(&mut self) -> Option<SimTime> {
        self.seek();
        self.current.peek().map(|Reverse(e)| e.at)
    }

    /// Advance the cursor until `current` holds the earliest event
    /// (no-op if it already does, or if the queue is empty).
    fn seek(&mut self) {
        while self.current.is_empty() {
            if self.ring_len == 0 {
                // Everything pending (if anything) is in overflow:
                // jump the cursor straight to its earliest bucket
                // instead of sweeping up to N_BUCKETS empty slots.
                let Some(Reverse(head)) = self.overflow.peek() else {
                    return;
                };
                self.cur_abs = self.cur_abs.max(head.at.0 >> SHIFT);
                self.admit_overflow();
            } else {
                self.cur_abs += 1;
                let bucket = (self.cur_abs & (N_BUCKETS as u64 - 1)) as usize;
                self.ring_len -= self.ring[bucket].len();
                for e in self.ring[bucket].drain(..) {
                    self.current.push(Reverse(e));
                }
                self.admit_overflow();
            }
        }
    }

    /// Move overflow events that now fall within the wheel horizon
    /// into the wheel (or `current` if they are due already).
    fn admit_overflow(&mut self) {
        while let Some(Reverse(head)) = self.overflow.peek() {
            let abs = head.at.0 >> SHIFT;
            if abs > self.cur_abs && abs - self.cur_abs >= N_BUCKETS as u64 {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked");
            if abs <= self.cur_abs {
                self.current.push(Reverse(e));
            } else {
                self.ring[(abs & (N_BUCKETS as u64 - 1)) as usize].push(e);
                self.ring_len += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: a plain binary heap over the same keys.
    struct RefQueue {
        heap: BinaryHeap<Reverse<Entry<u64>>>,
    }

    impl RefQueue {
        fn new() -> RefQueue {
            RefQueue {
                heap: BinaryHeap::new(),
            }
        }
        fn push(&mut self, at: SimTime, seq: u64) {
            self.heap.push(Reverse(Entry { at, seq, item: seq }));
        }
        fn pop(&mut self) -> Option<(SimTime, u64)> {
            self.heap.pop().map(|Reverse(e)| (e.at, e.seq))
        }
    }

    fn drain_equal(mut q: EventQueue<u64>, mut r: RefQueue) {
        loop {
            let got = q.pop();
            let want = r.pop();
            match (got, want) {
                (None, None) => break,
                (Some((at, seq, item)), Some((rat, rseq))) => {
                    assert_eq!((at, seq), (rat, rseq));
                    assert_eq!(item, seq, "payload follows its key");
                }
                (got, want) => panic!("length mismatch: {got:?} vs {want:?}"),
            }
        }
        assert!(q.is_empty());
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q: EventQueue<u64> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_at(), None);
    }

    #[test]
    fn fifo_at_same_timestamp() {
        // Adversarial: every event at the same instant — pure seq order.
        let mut q = EventQueue::new();
        let mut r = RefQueue::new();
        for seq in 0..1_000u64 {
            q.push(SimTime(77), seq, seq);
            r.push(SimTime(77), seq);
        }
        drain_equal(q, r);
    }

    #[test]
    fn spans_buckets_and_overflow() {
        // Timestamps straddling bucket edges, the wheel horizon, and
        // far-future overflow; interleaved duplicate instants.
        let mut q = EventQueue::new();
        let mut r = RefQueue::new();
        let horizon = (N_BUCKETS as u64) << SHIFT;
        let times = [
            0,
            1,
            (1 << SHIFT) - 1,
            1 << SHIFT,
            (1 << SHIFT) + 1,
            3 << SHIFT,
            horizon - 1,
            horizon,
            horizon + 1,
            7 * horizon,
            7 * horizon,
            u64::MAX >> 1,
        ];
        for (seq, &t) in times.iter().enumerate() {
            q.push(SimTime(t), seq as u64, seq as u64);
            r.push(SimTime(t), seq as u64);
        }
        drain_equal(q, r);
    }

    #[test]
    fn randomized_interleaved_push_pop() {
        // Deterministic xorshift; monotone schedule: each push is at or
        // after the last popped time, as the simulator guarantees.
        let mut q = EventQueue::new();
        let mut r = RefQueue::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut rnd = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut now = 0u64;
        for (seq, round) in (0u64..).zip(0..10_000) {
            // Delays spanning sub-bucket, multi-bucket and overflow
            // ranges, with a bias toward the hot (small-delay) case.
            let delay = match rnd() % 10 {
                0..=5 => rnd() % 4_096,
                6..=7 => rnd() % (64 << SHIFT),
                8 => rnd() % ((2 * N_BUCKETS as u64) << SHIFT),
                _ => 0, // same-instant
            };
            q.push(SimTime(now + delay), seq, seq);
            r.push(SimTime(now + delay), seq);
            if round % 3 != 0 {
                let got = q.pop();
                let want = r.pop().map(|(at, s)| (at, s, s));
                assert_eq!(got, want);
                if let Some((at, _, _)) = got {
                    now = at.0;
                }
            }
        }
        drain_equal(q, r);
    }

    #[test]
    fn push_behind_cursor_after_peek() {
        // peek_at advances the cursor across empty buckets; a
        // subsequent same-instant push must still pop first.
        let mut q = EventQueue::new();
        q.push(SimTime(100 << SHIFT), 0, 0);
        assert_eq!(q.peek_at(), Some(SimTime(100 << SHIFT)));
        // The harness injects at a time long passed by the cursor.
        q.push(SimTime(5), 1, 1);
        assert_eq!(q.pop(), Some((SimTime(5), 1, 1)));
        assert_eq!(q.pop(), Some((SimTime(100 << SHIFT), 0, 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn len_tracks_all_tiers() {
        let mut q = EventQueue::new();
        q.push(SimTime(0), 0, 0); // current
        q.push(SimTime(2 << SHIFT), 1, 1); // ring
        q.push(SimTime((N_BUCKETS as u64 + 10) << SHIFT), 2, 2); // overflow
        assert_eq!(q.len(), 3);
        q.pop();
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }
}
