//! Property tests for the calendar queue: pop order must equal a
//! reference binary heap over `(time, seq)` on arbitrary monotone
//! schedules — the determinism contract the whole simulator rests on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;

use netlock_sim::{EventQueue, SimTime};

/// One scripted operation: push an event `delay` ns after the last
/// popped time (`true`) or pop (`false`).
fn ops() -> impl Strategy<Value = Vec<(bool, u64)>> {
    prop::collection::vec(
        (
            any::<bool>(),
            prop_oneof![
                // Hot path: sub-bucket and few-bucket delays.
                0u64..20_000,
                // Cross-bucket, still inside the wheel horizon.
                0u64..2_000_000,
                // Beyond the horizon (overflow heap).
                0u64..200_000_000,
            ],
        ),
        1..400,
    )
}

proptest! {
    /// Interleaved pushes and pops drain in exactly the reference
    /// heap's `(at, seq)` order.
    #[test]
    fn matches_reference_heap(script in ops()) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut r: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for (push, delay) in script {
            if push {
                let at = SimTime(now + delay);
                q.push(at, seq, seq);
                r.push(Reverse((at, seq)));
                seq += 1;
            } else {
                let got = q.pop().map(|(at, s, _)| (at, s));
                let want = r.pop().map(|Reverse(k)| k);
                prop_assert_eq!(got, want);
                if let Some((at, _)) = got {
                    now = at.0;
                }
            }
        }
        while let Some(Reverse((at, s))) = r.pop() {
            prop_assert_eq!(q.pop(), Some((at, s, s)));
        }
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.pop(), None);
    }

    /// `peek_at` never changes what pops next, even when it advances
    /// the internal cursor and pushes land at the current instant.
    #[test]
    fn peek_is_transparent(script in ops()) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut r: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for (push, delay) in script {
            prop_assert_eq!(q.peek_at(), r.peek().map(|Reverse((at, _))| *at));
            if push {
                let at = SimTime(now + delay);
                q.push(at, seq, seq);
                r.push(Reverse((at, seq)));
                seq += 1;
            } else {
                let got = q.pop().map(|(at, s, _)| (at, s));
                prop_assert_eq!(got, r.pop().map(|Reverse(k)| k));
                if let Some((at, _)) = got {
                    now = at.0;
                }
            }
        }
    }
}
