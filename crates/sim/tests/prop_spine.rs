//! Property tests for the simulator spine overhaul: the fused
//! `pop_due`/`pop_run` queue primitives and the burst-draining
//! `run_until` loop must reproduce the one-pop-per-step reference
//! behavior exactly — same `(at, seq)` pop sequence, same node
//! observations, same final `SimStats` — on random schedules with
//! heavy same-timestamp bursts.

use proptest::prelude::*;

use netlock_sim::{
    Context, EventQueue, LinkConfig, Node, NodeId, Packet, SimDuration, SimTime, Simulator,
    Topology,
};

/// Push scripts with coarse timestamps so many events collide on the
/// same instant (the case the burst drain exists for).
fn bursty_script() -> impl Strategy<Value = Vec<(bool, u64)>> {
    prop::collection::vec(
        (
            any::<bool>(),
            prop_oneof![
                // Heavy collisions: a handful of distinct instants.
                (0u64..8).prop_map(|k| k * 1_000),
                // Mixed spread, still collision-prone after rounding.
                (0u64..2_000).prop_map(|k| k * 512),
                // Far future (overflow tier).
                (0u64..40).prop_map(|k| k * 50_000_000),
            ],
        ),
        1..400,
    )
}

proptest! {
    /// Draining through `pop_run` yields the exact `(at, seq)` sequence
    /// of one-at-a-time `pop` calls, under interleaved monotone pushes.
    #[test]
    fn pop_run_equals_pop_sequence(script in bursty_script()) {
        let mut a: EventQueue<u64> = EventQueue::new();
        let mut b: EventQueue<u64> = EventQueue::new();
        // Burst buffer for queue B, refilled one same-instant run at a
        // time — the shape of the simulator's run loop.
        let mut buf: Vec<(SimTime, u64, u64)> = Vec::new();
        let mut next = 0usize;
        let mut seq = 0u64;
        let mut now = 0u64;
        for (push, delay) in script {
            if push {
                let at = SimTime(now + delay);
                a.push(at, seq, seq);
                b.push(at, seq, seq);
                seq += 1;
            } else {
                let want = a.pop().map(|(at, s, _)| (at, s));
                if next == buf.len() {
                    buf.clear();
                    next = 0;
                    b.pop_run(SimTime(u64::MAX), &mut buf);
                }
                let got = if next < buf.len() {
                    let (at, s, _) = buf[next];
                    next += 1;
                    Some((at, s))
                } else {
                    None
                };
                prop_assert_eq!(got, want);
                if let Some((at, _)) = want {
                    now = at.0;
                }
            }
        }
        // Drain the rest of both queues the same two ways.
        loop {
            let want = a.pop().map(|(at, s, _)| (at, s));
            if next == buf.len() {
                buf.clear();
                next = 0;
                b.pop_run(SimTime(u64::MAX), &mut buf);
            }
            let got = if next < buf.len() {
                let (at, s, _) = buf[next];
                next += 1;
                Some((at, s))
            } else {
                None
            };
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
        prop_assert!(b.is_empty());
    }

    /// `pop_due(deadline)` pops exactly when the reference
    /// `peek_at() <= deadline` allows, and never loses an event.
    #[test]
    fn pop_due_equals_peek_then_pop(script in bursty_script()) {
        let mut a: EventQueue<u64> = EventQueue::new();
        let mut b: EventQueue<u64> = EventQueue::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for (push, delay) in script {
            if push {
                let at = SimTime(now + delay);
                a.push(at, seq, seq);
                b.push(at, seq, seq);
                seq += 1;
            } else {
                // A random-ish deadline derived from the script value.
                let deadline = SimTime(now + (delay / 2));
                let want = match a.peek_at() {
                    Some(at) if at <= deadline => a.pop(),
                    _ => None,
                };
                let got = b.pop_due(deadline);
                prop_assert_eq!(got, want);
                if let Some((at, _, _)) = want {
                    now = at.0;
                }
            }
        }
        prop_assert_eq!(a.len(), b.len());
    }
}

/// Fans out bursts: every receipt at payload `p > 0` sends `p % 3 + 1`
/// copies of `p - 1` to the peer over equal-delay links, so whole
/// generations land on the same instant; occasional zero-delay timers
/// schedule more work *at the instant being drained*.
struct BurstNode {
    peer: NodeId,
    log: Vec<(u64, u32)>,
}

impl Node<u32> for BurstNode {
    fn on_packet(&mut self, pkt: Packet<u32>, ctx: &mut Context<'_, u32>) {
        self.log.push((ctx.now().0, pkt.payload));
        if pkt.payload > 0 {
            for _ in 0..(pkt.payload % 3 + 1) {
                ctx.send(self.peer, pkt.payload - 1);
            }
            if pkt.payload.is_multiple_of(4) {
                ctx.set_timer(SimDuration(0), u64::from(pkt.payload));
            }
        }
    }
    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, u32>) {
        self.log.push((ctx.now().0, 1_000_000 + token as u32));
        if token > 2 {
            ctx.set_timer(SimDuration(5), token / 2);
        }
    }
}

fn burst_sim(seed: u64, loss: f64, payloads: &[u32]) -> Simulator<u32> {
    let mut topo = Topology::new(LinkConfig::with_delay(SimDuration(1_000)).with_loss(loss));
    topo.set_default(LinkConfig::with_delay(SimDuration(1_000)).with_loss(loss));
    let mut s: Simulator<u32> = Simulator::new(topo, seed);
    let a = s.add_node(Box::new(BurstNode {
        peer: NodeId(1),
        log: vec![],
    }));
    let b = s.add_node(Box::new(BurstNode {
        peer: a,
        log: vec![],
    }));
    for &p in payloads {
        // Same-instant injections to both nodes: the run starts on a
        // multi-event burst.
        s.inject(a, b, p);
        s.inject(b, a, p);
    }
    s
}

fn logs(s: &mut Simulator<u32>) -> Vec<Vec<(u64, u32)>> {
    (0..2u32)
        .map(|i| s.read_node::<BurstNode, _>(NodeId(i), |n| n.log.clone()))
        .collect()
}

proptest! {
    /// The burst-draining `run_until` produces node observation logs
    /// and final `SimStats` identical to the one-pop-per-step `step()`
    /// reference loop on the same seeded workload.
    #[test]
    fn run_until_equals_step_loop(
        seed in any::<u64>(),
        loss_pct in 0u32..40,
        payloads in prop::collection::vec(0u32..6, 1..6),
    ) {
        let loss = f64::from(loss_pct) / 100.0;
        let mut fused = burst_sim(seed, loss, &payloads);
        fused.run_until(SimTime(100_000_000));

        let mut reference = burst_sim(seed, loss, &payloads);
        while reference.step() {}

        prop_assert_eq!(logs(&mut fused), logs(&mut reference));
        prop_assert_eq!(fused.stats(), reference.stats());
    }
}
