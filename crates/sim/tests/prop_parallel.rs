//! Property tests for conservative parallel partitioning: on random
//! multi-LP topologies with cross-partition traffic, the windowed
//! multi-LP execution must deliver exactly the reference one-queue
//! execution's packets and timers (same per-node `(time, payload)`
//! multisets — same-instant interleaving may legally differ, so logs
//! are compared sorted), the worker count must be completely invisible
//! (exact log and stats equality between 1, 2 and 4 workers), and the
//! `delivered + timers + faults + to_dead == events_fired` partition of
//! fired events must survive the per-LP stats merge.

use proptest::prelude::*;

use netlock_sim::{
    Context, LinkConfig, Node, NodeId, Packet, SimDuration, SimTime, Simulator, Topology,
};

/// Forwards `payload - 1` to a payload-selected peer; every 4th value
/// also arms a timer. Everything the node *generates* depends only on
/// the payload received, never on receipt order, so per-node delivery
/// multisets are comparable between executions that interleave
/// same-instant events differently.
struct FanNode {
    peers: Vec<NodeId>,
    log: Vec<(u64, u32)>,
}

impl Node<u32> for FanNode {
    fn on_packet(&mut self, pkt: Packet<u32>, ctx: &mut Context<'_, u32>) {
        self.log.push((ctx.now().0, pkt.payload));
        if pkt.payload > 0 {
            let peer = self.peers[pkt.payload as usize % self.peers.len()];
            ctx.send(peer, pkt.payload - 1);
            if pkt.payload.is_multiple_of(4) {
                ctx.set_timer(SimDuration(500), u64::from(pkt.payload));
            }
        }
    }
    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, u32>) {
        self.log.push((ctx.now().0, 1_000_000 + token as u32));
    }
}

/// A random multi-LP scenario: LP sizes, the uniform cross-LP link
/// delay (the lookahead), and the injection script.
#[derive(Clone, Debug)]
struct Scenario {
    lp_sizes: Vec<usize>,
    cross_delay: u64,
    injections: Vec<(usize, usize, u32)>,
    seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        prop::collection::vec(1usize..3, 2..5),
        2_000u64..50_000,
        prop::collection::vec((0usize..8, 0usize..8, 0u32..8), 1..24),
        any::<u64>(),
    )
        .prop_map(|(lp_sizes, cross_delay, injections, seed)| Scenario {
            lp_sizes,
            cross_delay,
            injections,
            seed,
        })
}

/// Build the scenario's simulator; returns `(sim, lp_of)`. Every node's
/// peer list crosses LP boundaries (the next node cyclically, plus a
/// fixed far node), so windows genuinely exchange mailbox traffic.
fn build(sc: &Scenario) -> (Simulator<u32>, Vec<u32>) {
    let n: usize = sc.lp_sizes.iter().sum();
    let mut topo = Topology::new(LinkConfig::with_delay(SimDuration(1_000)));
    let mut lp_of = Vec::with_capacity(n);
    for (lp, &size) in sc.lp_sizes.iter().enumerate() {
        for _ in 0..size {
            lp_of.push(lp as u32);
        }
    }
    let cross = LinkConfig::with_delay(SimDuration(sc.cross_delay));
    for a in 0..n {
        for b in 0..n {
            if lp_of[a] != lp_of[b] {
                topo.set_link(NodeId(a as u32), NodeId(b as u32), cross);
            }
        }
    }
    let mut sim: Simulator<u32> = Simulator::new(topo, sc.seed);
    for i in 0..n {
        let peers = vec![
            NodeId(((i + 1) % n) as u32),
            NodeId(((i + n / 2) % n) as u32),
        ];
        sim.add_node(Box::new(FanNode { peers, log: vec![] }));
    }
    for &(src, dst, payload) in &sc.injections {
        let (src, dst) = (src % n, dst % n);
        if src != dst {
            sim.inject(NodeId(src as u32), NodeId(dst as u32), payload);
        }
    }
    (sim, lp_of)
}

fn logs(sim: &Simulator<u32>, n: usize) -> Vec<Vec<(u64, u32)>> {
    (0..n as u32)
        .map(|i| sim.read_node::<FanNode, _>(NodeId(i), |node| node.log.clone()))
        .collect()
}

fn sorted_logs(sim: &Simulator<u32>, n: usize) -> Vec<Vec<(u64, u32)>> {
    let mut all = logs(sim, n);
    for log in &mut all {
        log.sort_unstable();
    }
    all
}

const DEADLINE: SimTime = SimTime(20_000_000);

proptest! {
    /// Windowed multi-LP execution delivers the same per-node
    /// `(time, payload)` multisets as the plain one-queue reference.
    #[test]
    fn partitioned_matches_one_queue_reference(sc in scenario()) {
        let n: usize = sc.lp_sizes.iter().sum();

        let (mut reference, _) = build(&sc);
        reference.run_until(DEADLINE);

        let (mut partitioned, lp_of) = build(&sc);
        partitioned.partition(lp_of, 1);
        partitioned.run_until(DEADLINE);

        prop_assert_eq!(sorted_logs(&partitioned, n), sorted_logs(&reference, n));
        let (p, r) = (partitioned.stats(), reference.stats());
        prop_assert_eq!(p.packets_delivered, r.packets_delivered);
        prop_assert_eq!(p.timers_fired, r.timers_fired);
        prop_assert_eq!(p.packets_lost, r.packets_lost);
        prop_assert_eq!(p.packets_to_dead_node, r.packets_to_dead_node);
        prop_assert_eq!(p.events_fired, r.events_fired);
    }

    /// The worker count maps logical processes to threads and nothing
    /// else: logs (order included) and merged stats are exactly equal
    /// between 1, 2 and 4 workers. The fired-event partition invariant
    /// holds on the merged stats.
    #[test]
    fn worker_count_is_invisible(sc in scenario()) {
        let n: usize = sc.lp_sizes.iter().sum();
        let mut runs = Vec::new();
        for workers in [1usize, 2, 4] {
            let (mut sim, lp_of) = build(&sc);
            sim.partition(lp_of, workers);
            sim.run_until(DEADLINE);
            let stats = sim.stats();
            prop_assert_eq!(
                stats.packets_delivered
                    + stats.timers_fired
                    + stats.faults_applied
                    + stats.packets_to_dead_node,
                stats.events_fired,
                "fired-event partition invariant at {} workers",
                workers
            );
            runs.push((logs(&sim, n), stats));
        }
        prop_assert_eq!(&runs[0], &runs[1]);
        prop_assert_eq!(&runs[0], &runs[2]);
    }
}
