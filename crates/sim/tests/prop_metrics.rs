//! Property tests for the measurement substrate: the log-bucketed
//! histogram must track exact statistics within its design error bound,
//! and merging must equal recording into one histogram.

use proptest::prelude::*;

use netlock_sim::Histogram;

proptest! {
    /// Quantiles stay within the bucket relative-error bound (<1.6% for
    /// 64 sub-buckets) against exact order statistics.
    #[test]
    fn quantiles_bounded_error(mut values in prop::collection::vec(1u64..10_000_000_000, 1..2000)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for &q in &[0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let exact = values[rank.min(values.len() - 1)];
            let approx = h.quantile(q);
            let rel = (approx as f64 - exact as f64).abs() / exact as f64;
            prop_assert!(rel < 0.04, "q={} exact={} approx={} rel={}", q, exact, approx, rel);
        }
    }

    /// count/mean/min/max are exact, not approximated.
    #[test]
    fn moments_exact(values in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-6);
    }

    /// merge(a, b) ≡ record everything into one histogram.
    #[test]
    fn merge_is_union(
        a in prop::collection::vec(0u64..1_000_000_000, 0..300),
        b in prop::collection::vec(0u64..1_000_000_000, 0..300),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for &v in &a { ha.record(v); hu.record(v); }
        for &v in &b { hb.record(v); hu.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.min(), hu.min());
        prop_assert_eq!(ha.max(), hu.max());
        for &q in &[0.25, 0.5, 0.75, 0.99] {
            prop_assert_eq!(ha.quantile(q), hu.quantile(q));
        }
    }

    /// The CDF is monotone and ends at 1.
    #[test]
    fn cdf_monotone(values in prop::collection::vec(0u64..u64::MAX / 2, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let pts = h.cdf_points();
        prop_assert!(!pts.is_empty());
        for w in pts.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
        prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}
