//! CCSynch-style queue delegation (Fatourou & Kallimanis): ops enter a
//! combining queue in FIFO order; whichever waiting thread holds the
//! combiner role applies a *bounded* batch from the queue head, then
//! releases the role so a successor takes over. Bounding the batch keeps
//! any one thread from combining forever (the fairness knob the original
//! CCSynch turns with its `h` parameter).
//!
//! The classic algorithm threads per-thread nodes through an MPSC
//! pointer queue with an unconditional swap. Safe Rust gets the same
//! shape from a fixed ring of op cells: publishers claim a slot with one
//! `fetch_add` (the swap), write their op, and flag it ready; the
//! combiner walks slots in claim order — the linearization order is the
//! ring order, so FIFO fairness across threads is preserved. Each cell
//! is a tiny per-slot `Mutex` touched only by its publisher and the
//! current combiner, with an `AtomicU8` state machine
//! (`EMPTY → READY → DONE`) carrying the cross-thread edges.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

use netlock_proto::LockRequest;
use netlock_server::{LockTable, TableAcquire};

use crate::{apply_sequential, wait_step, ConcurrentLockTable, LockOp, OpResponse};

/// Nothing in the slot; the next claimant of this index may write.
const EMPTY: u8 = 0;
/// A publisher has claimed the slot and is writing its op.
const WRITING: u8 = 1;
/// The op is complete in the cell; the combiner may apply it.
const READY: u8 = 2;
/// The response is complete in the cell; the publisher may take it.
const DONE: u8 = 3;

#[derive(Default)]
struct Cell {
    op: Option<LockOp>,
    grants: Vec<LockRequest>,
    acquired: Option<TableAcquire>,
    apply_seq: u64,
}

struct Slot {
    state: AtomicU8,
    cell: Mutex<Cell>,
}

struct Inner {
    table: LockTable,
    /// Next ring index to combine (claim order = linearization order).
    head: u64,
    seq: u64,
}

/// The CCSynch-style delegation backend.
pub struct CcSynch {
    slots: Box<[Slot]>,
    thread_slots: usize,
    mask: u64,
    /// Next ring index to claim.
    tail: AtomicU64,
    inner: Mutex<Inner>,
    cs_spins: u32,
    /// Max ops one combiner applies before handing off the role.
    combine_bound: usize,
}

impl CcSynch {
    /// Default combining bound per pass (CCSynch's `h`).
    pub const DEFAULT_COMBINE_BOUND: usize = 64;

    /// A table for up to `thread_slots` threads, burning `cs_spins`
    /// rounds of serial work per op (see [`crate::apply_sequential`]).
    pub fn new(thread_slots: usize, cs_spins: u32) -> CcSynch {
        Self::with_combine_bound(thread_slots, cs_spins, Self::DEFAULT_COMBINE_BOUND)
    }

    /// As [`CcSynch::new`] with an explicit per-pass combining bound.
    pub fn with_combine_bound(thread_slots: usize, cs_spins: u32, combine_bound: usize) -> CcSynch {
        assert!(thread_slots > 0, "need at least one thread slot");
        assert!(combine_bound > 0, "combining bound must be positive");
        // 2x threads, power of two: each thread has at most one op in
        // flight, so claimants rarely wait on a predecessor's slot
        // reclaim. The ring CAN still wrap onto the combiner's own
        // uncollected response mid-pass — `combine` bails out on a
        // DONE head slot for exactly that case.
        let cap = (2 * thread_slots).next_power_of_two();
        CcSynch {
            slots: (0..cap)
                .map(|_| Slot {
                    state: AtomicU8::new(EMPTY),
                    cell: Mutex::new(Cell::default()),
                })
                .collect(),
            thread_slots,
            mask: cap as u64 - 1,
            tail: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                table: LockTable::new(),
                head: 0,
                seq: 0,
            }),
            cs_spins,
            combine_bound,
        }
    }

    /// Apply up to `combine_bound` ready ops from the queue head,
    /// returning how many were applied. Runs with the table lock held.
    /// Slots are processed strictly in claim order; a claimed-but-
    /// unwritten head slot is waited for (its publisher is between
    /// `fetch_add` and `READY`, a handful of instructions plus one
    /// uncontended mutex). A DONE head slot is a previous lap's
    /// response the ring has wrapped onto before its publisher
    /// collected it — and when the pass is long enough, that publisher
    /// can be *this thread* (we served our own op earlier in the pass,
    /// then head wrapped around to our slot's next lap). Waiting for
    /// READY there deadlocks: the new claimant waits for EMPTY, the
    /// collector is us. Bail out instead; the caller's completion loop
    /// collects its own response, freeing the slot.
    fn combine(&self, inner: &mut Inner) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let mut combined = 0usize;
        while inner.head < tail && combined < self.combine_bound {
            let slot = &self.slots[(inner.head & self.mask) as usize];
            let mut iter = 0u32;
            loop {
                match slot.state.load(Ordering::Acquire) {
                    READY => break,
                    DONE => return combined,
                    _ => wait_step(&mut iter),
                }
            }
            let mut cell = slot.cell.lock().expect("slot cell poisoned");
            let op = cell.op.take().expect("ready slot without op");
            let mut grants = std::mem::take(&mut cell.grants);
            cell.acquired = apply_sequential(&mut inner.table, &op, &mut grants, self.cs_spins);
            cell.grants = grants;
            cell.apply_seq = inner.seq;
            inner.seq += 1;
            drop(cell);
            slot.state.store(DONE, Ordering::Release);
            inner.head += 1;
            combined += 1;
        }
        combined
    }
}

impl ConcurrentLockTable for CcSynch {
    fn thread_slots(&self) -> usize {
        self.thread_slots
    }

    fn run(&self, _tid: usize, op: LockOp, grants: Vec<LockRequest>) -> OpResponse {
        // Claim a ring index — the MPSC "swap". FIFO order across all
        // threads is fixed here, before any waiting.
        let idx = self.tail.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(idx & self.mask) as usize];
        // Wait for the slot's previous lap to be fully reclaimed (rare:
        // only when a past publisher hasn't collected its response yet).
        let mut iter = 0u32;
        loop {
            if slot
                .state
                .compare_exchange(EMPTY, WRITING, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
            wait_step(&mut iter);
        }
        {
            let mut cell = slot.cell.lock().expect("slot cell poisoned");
            cell.op = Some(op);
            cell.grants = grants;
        }
        slot.state.store(READY, Ordering::Release);
        // Wait for completion, volunteering as combiner when the role
        // is free — bounded combining means our op is served within
        // ceil(queue_len / bound) passes even if we never win the lock.
        let mut iter = 0u32;
        loop {
            if slot.state.load(Ordering::Acquire) == DONE {
                let mut cell = slot.cell.lock().expect("slot cell poisoned");
                let resp = OpResponse {
                    acquired: cell.acquired,
                    apply_seq: cell.apply_seq,
                    grants: std::mem::take(&mut cell.grants),
                };
                drop(cell);
                slot.state.store(EMPTY, Ordering::Release);
                return resp;
            }
            let progressed = match self.inner.try_lock() {
                Ok(mut inner) => self.combine(&mut inner) > 0,
                Err(_) => false,
            };
            if !progressed {
                // Combiner busy, or the pass bailed on an unreclaimed
                // slot owned by a descheduled peer: let it run.
                wait_step(&mut iter);
            }
        }
    }

    fn name(&self) -> &'static str {
        "ccsynch"
    }

    fn into_table(self) -> LockTable {
        self.inner
            .into_inner()
            .expect("lock-table mutex poisoned")
            .table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_matches_sequential() {
        crate::tests::single_thread_matches_sequential(CcSynch::new(1, 0));
    }

    #[test]
    fn multi_thread_linearizes() {
        crate::tests::multi_thread_linearizes(CcSynch::new(4, 0), 4);
    }

    #[test]
    fn tiny_combine_bound_still_completes() {
        // Bound of 1: the combiner role must hand off constantly and
        // every op still completes in FIFO order.
        crate::tests::multi_thread_linearizes(CcSynch::with_combine_bound(3, 0, 1), 3);
    }

    #[test]
    fn combine_bails_on_wrapped_done_slot() {
        // Regression: the ring wraps onto a DONE slot whose response
        // hasn't been collected — when the collector is the combiner
        // itself (it served its own op earlier in the same pass),
        // waiting for READY deadlocks both threads. Wedge the exact
        // state by hand: head points at a physical slot still DONE
        // from the previous lap. combine() must return without
        // applying anything, not spin.
        let cc = CcSynch::with_combine_bound(1, 0, 64);
        assert_eq!(cc.slots.len(), 2);
        cc.slots[0].state.store(DONE, Ordering::Release);
        cc.tail.store(3, Ordering::Release);
        let mut inner = cc.inner.lock().expect("inner");
        inner.head = 2; // 2 & mask == slot 0, which is DONE
        assert_eq!(cc.combine(&mut inner), 0);
    }

    #[test]
    fn long_combine_pass_wraps_ring_without_wedging() {
        // Stress the wrap path end to end: a tiny ring (2 threads ->
        // 4 slots) with a combining bound far past the ring capacity,
        // hammering one hot lock so the combiner's pass keeps running
        // while the peer laps the ring. Pre-fix this wedged within a
        // few thousand ops on contended schedules.
        let cc = CcSynch::with_combine_bound(2, 0, 1024);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let cc = &cc;
                s.spawn(move || {
                    let mut buf = Vec::new();
                    for i in 0..30_000u64 {
                        let txn = (t << 32) | i;
                        let r = cc.run(
                            t as usize,
                            LockOp::Acquire(crate::tests::req(
                                0,
                                netlock_proto::LockMode::Shared,
                                txn,
                            )),
                            buf,
                        );
                        assert!(r.acquired.is_some(), "shared acquire must grant");
                        buf = cc
                            .run(
                                t as usize,
                                LockOp::Release {
                                    lock: netlock_proto::LockId(0),
                                    txn: netlock_proto::TxnId(txn),
                                },
                                r.grants,
                            )
                            .grants;
                    }
                });
            }
        });
    }

    #[test]
    fn fifo_linearization_single_thread() {
        // One thread: apply_seq must equal submission order exactly
        // (the ring IS the linearization).
        let cc = CcSynch::new(1, 0);
        let mut buf = Vec::new();
        for i in 0..100u64 {
            let r = cc.run(
                0,
                LockOp::Acquire(crate::tests::req(
                    (i % 4) as u32,
                    netlock_proto::LockMode::Shared,
                    i,
                )),
                buf,
            );
            assert_eq!(r.apply_seq, i);
            buf = r.grants;
        }
    }
}
