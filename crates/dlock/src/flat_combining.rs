//! Flat combining (Hendler, Incze, Shavit, Tzafrir): a publication
//! list of per-thread records plus one table lock. A thread publishes
//! its op in its own record and then either (a) observes the op
//! completed by someone else, or (b) wins the table lock and becomes
//! the *combiner*, draining every pending record through the sequential
//! table before releasing it.
//!
//! Why this beats the mutex under contention: the lock changes hands
//! once per *batch* instead of once per op, so the handoff cost (cache
//! miss on the lock word, table working set migrating between cores)
//! amortizes over every combined op, and the table stays hot in the
//! combiner's cache.
//!
//! This implementation stays within safe Rust: each record's op/response
//! cell is a tiny per-record `Mutex` (only its owner and the current
//! combiner ever touch it, so it is effectively uncontended) and the
//! `pending` flag is an `AtomicBool` carrying the publish/complete
//! edges.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use netlock_proto::LockRequest;
use netlock_server::{LockTable, TableAcquire};

use crate::{apply_sequential, wait_step, ConcurrentLockTable, LockOp, OpResponse};

/// Per-record op/response cell. `op` is `Some` between publish and
/// combine; the response fields are valid once `pending` drops back to
/// `false`.
#[derive(Default)]
struct Cell {
    op: Option<LockOp>,
    grants: Vec<LockRequest>,
    acquired: Option<TableAcquire>,
    apply_seq: u64,
}

/// One publication record, owned by one thread slot.
struct Record {
    /// `true` from publish until the combiner has written the response.
    pending: AtomicBool,
    cell: Mutex<Cell>,
}

struct Inner {
    table: LockTable,
    seq: u64,
}

/// The flat-combining backend.
pub struct FlatCombining {
    records: Box<[Record]>,
    inner: Mutex<Inner>,
    cs_spins: u32,
}

impl FlatCombining {
    /// A table for up to `thread_slots` threads, burning `cs_spins`
    /// rounds of serial work per op (see [`crate::apply_sequential`]).
    pub fn new(thread_slots: usize, cs_spins: u32) -> FlatCombining {
        assert!(thread_slots > 0, "need at least one thread slot");
        FlatCombining {
            records: (0..thread_slots)
                .map(|_| Record {
                    pending: AtomicBool::new(false),
                    cell: Mutex::new(Cell::default()),
                })
                .collect(),
            inner: Mutex::new(Inner {
                table: LockTable::new(),
                seq: 0,
            }),
            cs_spins,
        }
    }

    /// Drain every pending record through the table. Runs with the
    /// table lock held; repeats until a scan finds nothing pending, so
    /// ops published while combining are picked up in the same session
    /// (bounded in practice by each thread having one op in flight).
    fn combine(&self, inner: &mut Inner) {
        loop {
            let mut combined = false;
            for rec in self.records.iter() {
                if !rec.pending.load(Ordering::Acquire) {
                    continue;
                }
                let mut cell = rec.cell.lock().expect("record cell poisoned");
                // The owner sets `pending` only after writing `op`, so a
                // pending record always carries one.
                let op = cell.op.take().expect("pending record without op");
                let mut grants = std::mem::take(&mut cell.grants);
                cell.acquired = apply_sequential(&mut inner.table, &op, &mut grants, self.cs_spins);
                cell.grants = grants;
                cell.apply_seq = inner.seq;
                inner.seq += 1;
                drop(cell);
                rec.pending.store(false, Ordering::Release);
                combined = true;
            }
            if !combined {
                return;
            }
        }
    }
}

impl ConcurrentLockTable for FlatCombining {
    fn thread_slots(&self) -> usize {
        self.records.len()
    }

    fn run(&self, tid: usize, op: LockOp, grants: Vec<LockRequest>) -> OpResponse {
        let rec = &self.records[tid];
        {
            let mut cell = rec.cell.lock().expect("record cell poisoned");
            cell.op = Some(op);
            cell.grants = grants;
        }
        rec.pending.store(true, Ordering::Release);
        let mut iter = 0u32;
        loop {
            if !rec.pending.load(Ordering::Acquire) {
                // Someone combined our op; the cell now holds the
                // response.
                let mut cell = rec.cell.lock().expect("record cell poisoned");
                return OpResponse {
                    acquired: cell.acquired,
                    apply_seq: cell.apply_seq,
                    grants: std::mem::take(&mut cell.grants),
                };
            }
            if let Ok(mut inner) = self.inner.try_lock() {
                // We won the table lock: combine everything pending —
                // including our own record, so the next loop iteration
                // returns.
                self.combine(&mut inner);
            } else {
                wait_step(&mut iter);
            }
        }
    }

    fn name(&self) -> &'static str {
        "flat_combining"
    }

    fn into_table(self) -> LockTable {
        self.inner
            .into_inner()
            .expect("lock-table mutex poisoned")
            .table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_matches_sequential() {
        crate::tests::single_thread_matches_sequential(FlatCombining::new(1, 0));
    }

    #[test]
    fn multi_thread_linearizes() {
        crate::tests::multi_thread_linearizes(FlatCombining::new(4, 0), 4);
    }

    #[test]
    fn combiner_serves_peers() {
        // Two threads hammer one exclusive lock, adopting any grants
        // promoted by their releases; after a final drain the table
        // must be completely idle (grant/release conservation through
        // the combiner).
        use netlock_proto::{LockId, TxnId};
        let fc = FlatCombining::new(2, 0);
        let leftovers: Vec<(LockId, TxnId)> = std::thread::scope(|s| {
            let fc = &fc;
            let handles: Vec<_> = (0..2usize)
                .map(|tid| {
                    s.spawn(move || {
                        let mut buf = Vec::new();
                        let mut held: Vec<(LockId, TxnId)> = Vec::new();
                        for i in 0..500u64 {
                            let txn = ((tid as u64) << 32) | i;
                            let r = fc.run(
                                tid,
                                LockOp::Acquire(crate::tests::req(
                                    0,
                                    netlock_proto::LockMode::Exclusive,
                                    txn,
                                )),
                                buf,
                            );
                            if r.acquired == Some(TableAcquire::Granted) {
                                held.push((LockId(0), TxnId(txn)));
                            }
                            held.extend(r.grants.iter().map(|g| (g.lock, g.txn)));
                            buf = r.grants;
                            if let Some((lock, txn)) = held.pop() {
                                let r = fc.run(tid, LockOp::Release { lock, txn }, buf);
                                held.extend(r.grants.iter().map(|g| (g.lock, g.txn)));
                                buf = r.grants;
                            }
                        }
                        held
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut queue = leftovers;
        let mut buf = Vec::new();
        while let Some((lock, txn)) = queue.pop() {
            let r = fc.run(0, LockOp::Release { lock, txn }, buf);
            queue.extend(r.grants.iter().map(|g| (g.lock, g.txn)));
            buf = r.grants;
        }
        let table = fc.into_table();
        assert!(table.get(LockId(0)).is_none_or(|st| st.is_idle()));
    }
}
