//! The baseline backend: one big `std::sync::Mutex` around the
//! sequential table. Every thread locks, applies its own op, unlocks —
//! the textbook server design the delegation backends are measured
//! against. Under hot-key contention the lock (and the table's cache
//! lines) ping-pong between cores on every op.

use std::sync::Mutex;

use netlock_proto::LockRequest;
use netlock_server::LockTable;

use crate::{apply_sequential, ConcurrentLockTable, LockOp, OpResponse};

struct Inner {
    table: LockTable,
    seq: u64,
}

/// `Mutex<LockTable>` — the lock-handoff baseline.
pub struct MutexTable {
    inner: Mutex<Inner>,
    thread_slots: usize,
    cs_spins: u32,
}

impl MutexTable {
    /// A table for up to `thread_slots` threads, burning `cs_spins`
    /// rounds of serial work per op (see [`crate::apply_sequential`]).
    pub fn new(thread_slots: usize, cs_spins: u32) -> MutexTable {
        assert!(thread_slots > 0, "need at least one thread slot");
        MutexTable {
            inner: Mutex::new(Inner {
                table: LockTable::new(),
                seq: 0,
            }),
            thread_slots,
            cs_spins,
        }
    }
}

impl ConcurrentLockTable for MutexTable {
    fn thread_slots(&self) -> usize {
        self.thread_slots
    }

    fn run(&self, tid: usize, op: LockOp, mut grants: Vec<LockRequest>) -> OpResponse {
        debug_assert!(tid < self.thread_slots);
        let mut inner = self.inner.lock().expect("lock-table mutex poisoned");
        let acquired = apply_sequential(&mut inner.table, &op, &mut grants, self.cs_spins);
        let apply_seq = inner.seq;
        inner.seq += 1;
        OpResponse {
            acquired,
            apply_seq,
            grants,
        }
    }

    fn name(&self) -> &'static str {
        "mutex"
    }

    fn into_table(self) -> LockTable {
        self.inner
            .into_inner()
            .expect("lock-table mutex poisoned")
            .table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_matches_sequential() {
        crate::tests::single_thread_matches_sequential(MutexTable::new(1, 0));
    }

    #[test]
    fn multi_thread_linearizes() {
        crate::tests::multi_thread_linearizes(MutexTable::new(4, 0), 4);
    }
}
