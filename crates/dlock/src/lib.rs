//! # netlock-dlock
//!
//! Real-threads delegation/combining backends over the *actual*
//! [`netlock_server::LockTable`].
//!
//! The simulator's server model ([`netlock_server::CoreModel`]) charges a
//! literature constant per request (222 ns/message ≈ the paper's 18 MRPS
//! per 8-core server). This crate exists to *measure* that number on real
//! cores instead of assuming it: each backend drives the same sequential
//! `LockTable` the simulation uses — correctness is shared, not
//! re-implemented — while varying only the concurrency-control strategy
//! threads use to reach it:
//!
//! - [`MutexTable`] — the baseline: one `std::sync::Mutex` around the
//!   table. Every thread takes the lock, applies its own op, releases.
//!   Under contention the lock bounces between cores and so does the
//!   table's working set.
//! - [`FlatCombining`] — publication-list combining (Hendler et al.):
//!   each thread publishes its op in a per-thread record; whichever
//!   thread gets the table lock becomes the *combiner* and drains every
//!   pending record through the table. Threads whose ops were combined
//!   never touch the shared lock at all, and the table stays hot in the
//!   combiner's cache.
//! - [`CcSynch`] — CCSynch-style queue delegation: ops enter an MPSC
//!   combining ring in FIFO order; the combiner applies a bounded batch
//!   per pass and then hands the role to a waiting thread, so no thread
//!   combines unboundedly.
//!
//! All three implement [`ConcurrentLockTable`]; the `dlock_bench` binary
//! (in `netlock-bench`) sweeps threads × critical-section length ×
//! contention over them, and the property tests prove every backend's
//! grant/release history linearizes to the sequential table (checked by
//! the `netlock-core` lock-safety oracle).
//!
//! The crate is `forbid(unsafe_code)`-compatible: cross-thread op slots
//! are small per-slot `Mutex`es (uncontended in steady state — only a
//! publisher and the current combiner ever touch one), with `AtomicBool`
//! / `AtomicU8` flags carrying the acquire/release edges.

pub mod ccsynch;
pub mod flat_combining;
pub mod mutex_table;

pub use ccsynch::CcSynch;
pub use flat_combining::FlatCombining;
pub use mutex_table::MutexTable;

use netlock_proto::{LockId, LockRequest, TxnId};
use netlock_server::{LockTable, TableAcquire};

/// One lock-table operation, as a lock server would see it arrive off
/// the wire.
#[derive(Clone, Copy, Debug)]
pub enum LockOp {
    /// Acquire (shared or exclusive, FCFS).
    Acquire(LockRequest),
    /// Release a held `(lock, txn)`; stale pairs are ignored by the
    /// table exactly as in the simulation.
    Release {
        /// The lock being released.
        lock: LockId,
        /// The releasing transaction.
        txn: TxnId,
    },
}

/// The outcome of one [`LockOp`], as produced by whichever thread
/// applied it to the sequential table.
#[derive(Debug)]
pub struct OpResponse {
    /// `Some` for acquires (granted or queued), `None` for releases.
    pub acquired: Option<TableAcquire>,
    /// Position of this op in the backend's linearization order: the
    /// table applies ops one at a time, and `apply_seq` is the 0-based
    /// index of this op in that total order. The equivalence tests
    /// replay the ops sorted by `apply_seq` through a fresh sequential
    /// table and require identical outcomes.
    pub apply_seq: u64,
    /// Requests promoted from the wait queue by this op, in grant
    /// order. The buffer is the one the caller passed to
    /// [`ConcurrentLockTable::run`], cleared and refilled — steady
    /// state does not allocate.
    pub grants: Vec<LockRequest>,
}

/// A lock table safe to drive from many real threads at once.
///
/// `run` is the whole interface: submit one op on behalf of thread
/// `tid`, get its outcome back. Implementations differ only in *who*
/// applies the op to the underlying sequential [`LockTable`] — the
/// calling thread (mutex) or a combiner acting for many callers
/// (delegation).
pub trait ConcurrentLockTable: Sync {
    /// Number of thread slots this instance was built for. `tid`
    /// arguments to [`ConcurrentLockTable::run`] must be below this.
    fn thread_slots(&self) -> usize;

    /// Execute `op` for thread `tid` and return its outcome. `grants`
    /// is a reusable out-buffer (cleared by the backend, returned in
    /// the response) so the steady-state path allocates nothing.
    ///
    /// Blocks until the op has been applied; ops from different
    /// threads may be applied in any order, but the order is total and
    /// exposed via [`OpResponse::apply_seq`].
    fn run(&self, tid: usize, op: LockOp, grants: Vec<LockRequest>) -> OpResponse;

    /// Short stable name for reports (`mutex`, `flat_combining`,
    /// `ccsynch`).
    fn name(&self) -> &'static str;

    /// Tear down and return the underlying sequential table (for
    /// post-run inspection). Requires all worker threads to be done —
    /// ownership enforces that.
    fn into_table(self) -> LockTable
    where
        Self: Sized;
}

/// Apply one op to the sequential table, then burn `cs_spins` rounds of
/// serial work — the "critical-section length" axis of the bench: extra
/// per-op processing a real server would do while the table entry is
/// hot (lease bookkeeping, payload copies). The work is a data-dependent
/// multiply chain so the optimizer cannot delete it.
///
/// `grants` is cleared first; promotions are appended in grant order.
#[inline]
pub fn apply_sequential(
    table: &mut LockTable,
    op: &LockOp,
    grants: &mut Vec<LockRequest>,
    cs_spins: u32,
) -> Option<TableAcquire> {
    grants.clear();
    let out = match *op {
        LockOp::Acquire(req) => Some(table.acquire(req)),
        LockOp::Release { lock, txn } => {
            table.release(lock, txn, grants);
            None
        }
    };
    spin_work(cs_spins);
    out
}

/// Serial busy-work of `spins` dependent multiply-adds (~1 cycle-ish
/// each). Used both for critical-section padding and think time.
#[inline]
pub fn spin_work(spins: u32) {
    let mut x = 0x9E37_79B9u64;
    for i in 0..spins {
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
    }
    std::hint::black_box(x);
}

/// One bounded wait step for spin loops: a few pause instructions, then
/// a scheduler yield every 64th call. The yield matters on hosts with
/// fewer cores than threads (CI smoke runs): a combiner that lost the
/// CPU makes no progress while its peers spin, so waiting threads must
/// donate their timeslice.
#[inline]
pub(crate) fn wait_step(iter: &mut u32) {
    *iter += 1;
    if (*iter).is_multiple_of(64) {
        std::thread::yield_now();
    } else {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_proto::{ClientAddr, LockMode, Priority, TenantId};

    pub(crate) fn req(lock: u32, mode: LockMode, txn: u64) -> LockRequest {
        LockRequest {
            lock: LockId(lock),
            mode,
            txn: TxnId(txn),
            client: ClientAddr(txn as u32),
            tenant: TenantId(0),
            priority: Priority(0),
            issued_at_ns: txn,
        }
    }

    /// Exercise one backend single-threaded through a fixed script and
    /// compare against the sequential table op by op.
    pub(crate) fn single_thread_matches_sequential<T: ConcurrentLockTable>(backend: T) {
        let mut reference = LockTable::new();
        let script: Vec<LockOp> = vec![
            LockOp::Acquire(req(1, LockMode::Exclusive, 1)),
            LockOp::Acquire(req(1, LockMode::Exclusive, 2)),
            LockOp::Acquire(req(2, LockMode::Shared, 3)),
            LockOp::Acquire(req(2, LockMode::Shared, 4)),
            LockOp::Release {
                lock: LockId(1),
                txn: TxnId(1),
            },
            LockOp::Acquire(req(2, LockMode::Exclusive, 5)),
            LockOp::Release {
                lock: LockId(2),
                txn: TxnId(3),
            },
            LockOp::Release {
                lock: LockId(2),
                txn: TxnId(4),
            },
            // Stale release: the table must ignore it in both worlds.
            LockOp::Release {
                lock: LockId(9),
                txn: TxnId(9),
            },
        ];
        let mut buf = Vec::new();
        let mut ref_grants = Vec::new();
        for (i, op) in script.iter().enumerate() {
            let resp = backend.run(0, *op, buf);
            let want = apply_sequential(&mut reference, op, &mut ref_grants, 0);
            assert_eq!(resp.acquired, want, "op {i} outcome diverged");
            assert_eq!(resp.grants, ref_grants, "op {i} grants diverged");
            assert_eq!(resp.apply_seq, i as u64, "op {i} sequence diverged");
            buf = resp.grants;
        }
        let table = backend.into_table();
        assert_eq!(table.len(), reference.len());
    }

    /// Hammer one backend from several real threads and check the
    /// merged history linearizes: apply_seqs form a permutation and the
    /// replay in that order reproduces every outcome.
    pub(crate) fn multi_thread_linearizes<T: ConcurrentLockTable>(backend: T, threads: usize) {
        type LogEntry = (u64, LockOp, Option<TableAcquire>, Vec<LockRequest>);
        let per_thread = 200usize;
        let logs: Vec<Vec<LogEntry>> = std::thread::scope(|s| {
            let backend = &backend;
            let handles: Vec<_> = (0..threads)
                .map(|tid| {
                    s.spawn(move || {
                        let mut log = Vec::with_capacity(per_thread);
                        let mut buf = Vec::new();
                        for i in 0..per_thread {
                            let txn = ((tid as u64) << 32) | i as u64;
                            // Alternate acquire / release of the
                            // previous acquire on a tiny hot lock
                            // space to force real interleaving.
                            let op = if i % 2 == 0 {
                                LockOp::Acquire(req(
                                    (i as u32 / 2) % 3,
                                    if i % 4 == 0 {
                                        LockMode::Exclusive
                                    } else {
                                        LockMode::Shared
                                    },
                                    txn,
                                ))
                            } else {
                                LockOp::Release {
                                    lock: LockId(((i as u32) / 2) % 3),
                                    txn: TxnId(txn - 1),
                                }
                            };
                            let resp = backend.run(tid, op, buf);
                            log.push((resp.apply_seq, op, resp.acquired, resp.grants.clone()));
                            buf = resp.grants;
                        }
                        log
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut merged: Vec<_> = logs.into_iter().flatten().collect();
        merged.sort_by_key(|(seq, _, _, _)| *seq);
        let total = threads * per_thread;
        assert_eq!(merged.len(), total);
        for (i, (seq, _, _, _)) in merged.iter().enumerate() {
            assert_eq!(*seq, i as u64, "apply_seq not a permutation");
        }
        let mut reference = LockTable::new();
        let mut ref_grants = Vec::new();
        for (seq, op, acquired, grants) in &merged {
            let want = apply_sequential(&mut reference, op, &mut ref_grants, 0);
            assert_eq!(*acquired, want, "seq {seq} outcome diverged");
            assert_eq!(grants, &ref_grants, "seq {seq} grants diverged");
        }
    }
}
