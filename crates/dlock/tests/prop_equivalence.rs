//! Property-based equivalence of the concurrent backends against the
//! sequential `LockTable`, checked two ways:
//!
//! 1. **Linearization replay.** Random multi-threaded op schedules run
//!    through each [`ConcurrentLockTable`] backend on real threads; the
//!    per-op `apply_seq` values must form a permutation of the op count,
//!    and replaying the ops in that order through a fresh sequential
//!    table must reproduce every outcome (grant/queue verdicts and
//!    promotion lists) byte for byte.
//! 2. **Oracle audit.** The linearized grant/release history is
//!    synthesized into the wire events the simulation's lock-safety
//!    oracle (`netlock_core::oracle`) watches — Acquire sent, Grant
//!    delivered, Release sent — and the oracle must find no mutual-
//!    exclusion or conservation violation. This ties the real-threads
//!    backends to the exact safety checker the chaos suite trusts.
//!
//! A separate property pins the single-threaded case: one thread's
//! schedule through any backend must match the sequential table op for
//! op, including `apply_seq == submission index`.

use netlock_core::oracle::{Oracle, OracleConfig};
use netlock_dlock::{
    apply_sequential, CcSynch, ConcurrentLockTable, FlatCombining, LockOp, MutexTable,
};
use netlock_proto::{
    ClientAddr, GrantMsg, Grantor, LockId, LockMode, LockRequest, NetLockMsg, Priority,
    ReleaseRequest, TenantId, TxnId,
};
use netlock_server::{LockTable, TableAcquire};
use netlock_sim::{NodeId, Packet, SimTime, TapEvent};
use proptest::{any, prop, prop_oneof, proptest, ProptestConfig, Strategy};

/// A thread's schedule entry, fixed before the run. Releases refer to
/// the thread's own earlier acquire by index; at runtime the release
/// may be stale (the acquire still queued) — the table ignores it, and
/// the replay must agree.
#[derive(Clone, Copy, Debug)]
enum PlannedOp {
    Acquire { lock: u32, exclusive: bool },
    ReleaseEarlier { back: usize },
}

#[derive(Clone, Debug)]
struct Schedule {
    threads: Vec<Vec<PlannedOp>>,
}

fn schedule_strategy(max_threads: usize) -> impl Strategy<Value = Schedule> {
    (1usize..=max_threads)
        .prop_flat_map(|threads| {
            let op = prop_oneof![
                (0u32..5, any::<bool>())
                    .prop_map(|(lock, exclusive)| PlannedOp::Acquire { lock, exclusive }),
                (1usize..8).prop_map(|back| PlannedOp::ReleaseEarlier { back }),
            ];
            prop::collection::vec(prop::collection::vec(op, 1..40), threads..threads + 1)
        })
        .prop_map(|threads| Schedule { threads })
}

/// The log of one executed op: linearization position, the concrete op,
/// and the backend's response.
type OpLog = (u64, LockOp, Option<TableAcquire>, Vec<LockRequest>);

fn make_req(tid: usize, i: usize, lock: u32, exclusive: bool) -> LockRequest {
    let txn = ((tid as u64 + 1) << 32) | i as u64;
    LockRequest {
        lock: LockId(lock),
        mode: if exclusive {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        },
        txn: TxnId(txn),
        client: ClientAddr(tid as u32 + 1),
        tenant: TenantId(0),
        priority: Priority(0),
        issued_at_ns: txn,
    }
}

/// Run `schedule` through `backend` on real threads and return the
/// merged, linearization-sorted op log.
fn execute<T: ConcurrentLockTable>(backend: &T, schedule: &Schedule) -> Vec<OpLog> {
    let logs: Vec<Vec<OpLog>> = std::thread::scope(|s| {
        let handles: Vec<_> = schedule
            .threads
            .iter()
            .enumerate()
            .map(|(tid, plan)| {
                s.spawn(move || {
                    let mut log: Vec<OpLog> = Vec::with_capacity(plan.len());
                    let mut acquires: Vec<LockRequest> = Vec::new();
                    let mut buf = Vec::new();
                    for (i, planned) in plan.iter().enumerate() {
                        let op = match *planned {
                            PlannedOp::Acquire { lock, exclusive } => {
                                let req = make_req(tid, i, lock, exclusive);
                                acquires.push(req);
                                LockOp::Acquire(req)
                            }
                            PlannedOp::ReleaseEarlier { back } => {
                                if acquires.is_empty() {
                                    // Nothing acquired yet: a stale
                                    // release of a never-used lock.
                                    LockOp::Release {
                                        lock: LockId(99),
                                        txn: TxnId(u64::MAX),
                                    }
                                } else {
                                    let idx = acquires.len().saturating_sub(back);
                                    let req = acquires[idx];
                                    LockOp::Release {
                                        lock: req.lock,
                                        txn: req.txn,
                                    }
                                }
                            }
                        };
                        let resp = backend.run(tid, op, buf);
                        log.push((resp.apply_seq, op, resp.acquired, resp.grants.clone()));
                        buf = resp.grants;
                    }
                    log
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut merged: Vec<OpLog> = logs.into_iter().flatten().collect();
    merged.sort_by_key(|(seq, _, _, _)| *seq);
    merged
}

/// Replay the linearized log through a fresh sequential table; panic on
/// any divergence. Returns the replay table for end-state checks.
fn assert_replay_matches(merged: &[OpLog]) -> LockTable {
    for (i, (seq, _, _, _)) in merged.iter().enumerate() {
        assert_eq!(
            *seq,
            i as u64,
            "apply_seq values are not a permutation of 0..{}",
            merged.len()
        );
    }
    let mut table = LockTable::new();
    let mut grants = Vec::new();
    for (seq, op, acquired, got_grants) in merged {
        let want = apply_sequential(&mut table, op, &mut grants, 0);
        assert_eq!(*acquired, want, "seq {seq}: verdict diverged for {op:?}");
        assert_eq!(
            got_grants, &grants,
            "seq {seq}: promotion list diverged for {op:?}"
        );
    }
    table
}

/// Feed the linearized history to the lock-safety oracle as synthesized
/// wire traffic and require a clean audit.
///
/// Time is `apply_seq`-derived so ordering is exact; the lease window is
/// effectively infinite (no hold ever expires, so mutual exclusion is
/// checked in its strictest form) and the leak/wedge windows are huge
/// (a schedule may legitimately end with locks held or requests
/// queued).
fn assert_oracle_clean(merged: &[OpLog]) {
    let mut oracle = Oracle::new(OracleConfig {
        lease_ns: u64::MAX / 4,
        leak_after_ns: u64::MAX / 4,
        wedge_after_ns: u64::MAX / 4,
    });
    let manager = NodeId(0);
    // Client node ids mirror ClientAddr (tid + 1); register every one
    // that appears so the oracle can track its grants.
    for (_, op, _, _) in merged {
        if let LockOp::Acquire(req) = op {
            oracle.register_client(NodeId(req.client.0));
        }
    }
    // Replay through a shadow table to know which releases actually
    // removed a holder (stale releases are ignored by the table and
    // must not be fed to the oracle as wire releases — a real server
    // would not send a release for a lock it was never granted).
    let mut shadow = LockTable::new();
    let mut shadow_grants = Vec::new();
    for (seq, op, acquired, grants) in merged {
        let at = SimTime((seq + 1) * 1_000);
        match op {
            LockOp::Acquire(req) => {
                let payload = NetLockMsg::Acquire(*req);
                oracle.observe(&TapEvent::Sent {
                    at,
                    src: NodeId(req.client.0),
                    dst: manager,
                    payload: &payload,
                });
                shadow.acquire(*req);
                if *acquired == Some(TableAcquire::Granted) {
                    deliver_grant(&mut oracle, at, req);
                }
            }
            LockOp::Release { lock, txn } => {
                let held = shadow
                    .get(*lock)
                    .is_some_and(|st| st.holders().iter().any(|h| h.txn == *txn));
                shadow.release(*lock, *txn, &mut shadow_grants);
                shadow_grants.clear();
                if held {
                    // The holder's own client sends the release.
                    let client = ClientAddr((txn.0 >> 32) as u32);
                    let rel = ReleaseRequest {
                        lock: *lock,
                        txn: *txn,
                        mode: LockMode::Exclusive,
                        client,
                        priority: Priority(0),
                    };
                    let payload = NetLockMsg::Release(rel);
                    oracle.observe(&TapEvent::Sent {
                        at,
                        src: NodeId(client.0),
                        dst: manager,
                        payload: &payload,
                    });
                }
                for granted in grants {
                    deliver_grant(&mut oracle, at, granted);
                }
            }
        }
    }
    oracle.finish(((merged.len() as u64) + 2) * 1_000);
    assert!(
        oracle.is_clean(),
        "oracle violations on linearized history: {:?}",
        oracle.violations()
    );
}

fn deliver_grant(oracle: &mut Oracle, at: SimTime, req: &LockRequest) {
    let grant = GrantMsg {
        lock: req.lock,
        txn: req.txn,
        mode: req.mode,
        client: req.client,
        priority: req.priority,
        grantor: Grantor::Server,
        issued_at_ns: req.issued_at_ns,
    };
    let pkt = Packet {
        src: NodeId(0),
        dst: NodeId(req.client.0),
        payload: NetLockMsg::Grant(grant),
    };
    oracle.observe(&TapEvent::Delivered { at, pkt: &pkt });
}

fn check_backend<T: ConcurrentLockTable>(backend: T, schedule: &Schedule) {
    let merged = execute(&backend, schedule);
    let replay = assert_replay_matches(&merged);
    assert_oracle_clean(&merged);
    // End state: the backend's table and the replay table agree on
    // every touched lock.
    let table = backend.into_table();
    assert_eq!(table.len(), replay.len(), "touched-lock count diverged");
    let mut locks = Vec::new();
    table.touched_locks(&mut locks);
    for lock in locks {
        let got = table.get(lock).expect("touched lock has state");
        let want = replay.get(lock).expect("replay table has same locks");
        let got_holders: Vec<(TxnId, LockMode)> =
            got.holders().iter().map(|h| (h.txn, h.mode)).collect();
        let want_holders: Vec<(TxnId, LockMode)> =
            want.holders().iter().map(|h| (h.txn, h.mode)).collect();
        assert_eq!(got_holders, want_holders, "holders diverged on {lock:?}");
        let got_waiters: Vec<TxnId> = got.waiters().map(|r| r.txn).collect();
        let want_waiters: Vec<TxnId> = want.waiters().map(|r| r.txn).collect();
        assert_eq!(got_waiters, want_waiters, "waiters diverged on {lock:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mutex_backend_linearizes_and_audits_clean(schedule in schedule_strategy(4)) {
        let threads = schedule.threads.len();
        check_backend(MutexTable::new(threads, 0), &schedule);
    }

    #[test]
    fn flat_combining_linearizes_and_audits_clean(schedule in schedule_strategy(4)) {
        let threads = schedule.threads.len();
        check_backend(FlatCombining::new(threads, 0), &schedule);
    }

    #[test]
    fn ccsynch_linearizes_and_audits_clean(schedule in schedule_strategy(4)) {
        let threads = schedule.threads.len();
        check_backend(CcSynch::new(threads, 0), &schedule);
    }

    #[test]
    fn ccsynch_tiny_bound_linearizes(schedule in schedule_strategy(3)) {
        let threads = schedule.threads.len();
        check_backend(CcSynch::with_combine_bound(threads, 0, 1), &schedule);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Single-threaded schedules: every backend must match the
    /// sequential table op for op, with `apply_seq` equal to the
    /// submission index (no reordering is possible, and none may be
    /// invented).
    #[test]
    fn single_thread_exact_sequential_match(schedule in schedule_strategy(1)) {
        for which in 0..3usize {
            let plan = &schedule.threads[0];
            let mut reference = LockTable::new();
            let mut ref_grants = Vec::new();
            let backend: Box<dyn ConcurrentLockTable> = match which {
                0 => Box::new(MutexTable::new(1, 0)),
                1 => Box::new(FlatCombining::new(1, 0)),
                _ => Box::new(CcSynch::new(1, 0)),
            };
            let mut acquires: Vec<LockRequest> = Vec::new();
            let mut buf = Vec::new();
            for (i, planned) in plan.iter().enumerate() {
                let op = match *planned {
                    PlannedOp::Acquire { lock, exclusive } => {
                        let req = make_req(0, i, lock, exclusive);
                        acquires.push(req);
                        LockOp::Acquire(req)
                    }
                    PlannedOp::ReleaseEarlier { back } => {
                        if acquires.is_empty() {
                            LockOp::Release { lock: LockId(99), txn: TxnId(u64::MAX) }
                        } else {
                            let idx = acquires.len().saturating_sub(back);
                            let req = acquires[idx];
                            LockOp::Release { lock: req.lock, txn: req.txn }
                        }
                    }
                };
                let resp = backend.run(0, op, buf);
                let want = apply_sequential(&mut reference, &op, &mut ref_grants, 0);
                assert_eq!(resp.acquired, want, "backend {which} op {i}: verdict diverged");
                assert_eq!(resp.grants, ref_grants, "backend {which} op {i}: grants diverged");
                assert_eq!(resp.apply_seq, i as u64, "backend {which} op {i}: reordered");
                buf = resp.grants;
            }
        }
    }
}
