//! Property tests for the wire codec: every valid header round-trips
//! bit-exactly, and the decoder never panics on arbitrary bytes.

use bytes::Bytes;
use proptest::prelude::*;

use netlock_proto::{
    ClientAddr, DecodeError, LockHeader, LockId, LockMode, LockOp, Priority, TenantId, TxnId,
    HEADER_LEN,
};

fn arb_header() -> impl Strategy<Value = LockHeader> {
    (
        prop_oneof![
            Just(LockOp::Acquire),
            Just(LockOp::Release),
            Just(LockOp::Grant),
            Just(LockOp::QueueSpace),
            Just(LockOp::Push),
        ],
        any::<u32>(),
        any::<u64>(),
        any::<u32>(),
        prop_oneof![Just(LockMode::Shared), Just(LockMode::Exclusive)],
        any::<u8>(),
        any::<u16>(),
        any::<u64>(),
        any::<u16>(),
    )
        .prop_map(
            |(op, lock, txn, client, mode, priority, tenant, ts, flags)| LockHeader {
                op,
                lock: LockId(lock),
                txn: TxnId(txn),
                client: ClientAddr(client),
                mode,
                priority: Priority(priority),
                tenant: TenantId(tenant),
                timestamp_ns: ts,
                flags,
            },
        )
}

proptest! {
    /// encode → decode is the identity for every representable header.
    #[test]
    fn roundtrip(h in arb_header()) {
        let mut buf = h.encode();
        prop_assert_eq!(buf.len(), HEADER_LEN);
        let d = LockHeader::decode(&mut buf).unwrap();
        prop_assert_eq!(h, d);
    }

    /// The decoder returns an error — never panics, never wraps — on
    /// arbitrary byte soup.
    #[test]
    fn decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..100)) {
        let mut b = Bytes::from(bytes);
        let _ = LockHeader::decode(&mut b); // must not panic
    }

    /// Truncation at any point of a valid header is detected.
    #[test]
    fn truncation_detected(h in arb_header(), cut in 0usize..HEADER_LEN) {
        let full = h.encode();
        let mut short = full.slice(0..cut);
        prop_assert_eq!(
            LockHeader::decode(&mut short),
            Err(DecodeError::Truncated { have: cut })
        );
    }

    /// Single-byte corruption of the magic/version/op/mode fields is
    /// rejected, not misinterpreted (structural fields are validated).
    #[test]
    fn header_field_corruption_rejected(h in arb_header(), v in any::<u8>()) {
        // Corrupt the version byte (offset 2) to a non-VERSION value.
        prop_assume!(v != netlock_proto::VERSION);
        let mut raw = h.encode().to_vec();
        raw[2] = v;
        let mut b = Bytes::from(raw);
        prop_assert_eq!(LockHeader::decode(&mut b), Err(DecodeError::BadVersion(v)));
    }
}

mod msg_codec {
    use super::*;
    use netlock_proto::{
        decode_msg, encode_msg, GrantMsg, Grantor, LockRequest, NetLockMsg, ReleaseRequest,
    };

    fn arb_request() -> impl Strategy<Value = LockRequest> {
        (
            any::<u32>(),
            any::<bool>(),
            any::<u64>(),
            any::<u32>(),
            any::<u16>(),
            any::<u8>(),
            any::<u64>(),
        )
            .prop_map(
                |(lock, shared, txn, client, tenant, prio, ts)| LockRequest {
                    lock: LockId(lock),
                    mode: if shared {
                        LockMode::Shared
                    } else {
                        LockMode::Exclusive
                    },
                    txn: TxnId(txn),
                    client: ClientAddr(client),
                    tenant: TenantId(tenant),
                    priority: Priority(prio),
                    issued_at_ns: ts,
                },
            )
    }

    fn arb_msg() -> impl Strategy<Value = NetLockMsg> {
        prop_oneof![
            arb_request().prop_map(NetLockMsg::Acquire),
            (arb_request(), any::<bool>())
                .prop_map(|(req, buffer_only)| NetLockMsg::Forwarded { req, buffer_only }),
            arb_request().prop_map(|r| NetLockMsg::Release(ReleaseRequest {
                lock: r.lock,
                txn: r.txn,
                mode: r.mode,
                client: r.client,
                priority: r.priority,
            })),
            (arb_request(), any::<bool>()).prop_map(|(r, sw)| NetLockMsg::Grant(GrantMsg {
                lock: r.lock,
                txn: r.txn,
                mode: r.mode,
                client: r.client,
                priority: r.priority,
                grantor: if sw { Grantor::Switch } else { Grantor::Server },
                issued_at_ns: r.issued_at_ns,
            })),
            (any::<u32>(), any::<u32>()).prop_map(|(lock, space)| NetLockMsg::QueueSpace {
                lock: LockId(lock),
                space,
            }),
            (any::<u32>(), prop::collection::vec(arb_request(), 0..20)).prop_map(|(lock, reqs)| {
                NetLockMsg::Push {
                    lock: LockId(lock),
                    reqs: reqs.into(),
                }
            }),
            (any::<u32>(), prop::collection::vec(arb_request(), 0..20)).prop_map(|(lock, reqs)| {
                NetLockMsg::CtrlPromoteReady {
                    lock: LockId(lock),
                    reqs: reqs.into(),
                }
            }),
            any::<u32>().prop_map(|lock| NetLockMsg::CtrlDemote { lock: LockId(lock) }),
            any::<u32>().prop_map(|lock| NetLockMsg::CtrlPromote { lock: LockId(lock) }),
        ]
    }

    proptest! {
        /// Every message the deployment can exchange survives the wire.
        #[test]
        fn full_message_roundtrip(msg in arb_msg()) {
            let mut wire = encode_msg(&msg);
            let out = decode_msg(&mut wire).unwrap();
            prop_assert_eq!(msg, out);
            prop_assert_eq!(wire.len(), 0);
        }

        /// The message decoder is total over arbitrary bytes.
        #[test]
        fn msg_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
            let mut b = Bytes::from(bytes);
            let _ = decode_msg(&mut b);
        }
    }
}
