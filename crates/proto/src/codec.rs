//! Full wire framing for every NetLock message.
//!
//! [`crate::LockHeader`] covers the per-request header the switch
//! parses; deployments also exchange compound messages (push batches,
//! migration transfers) between switch and servers. This module frames
//! the complete [`NetLockMsg`] set so any message can cross a real
//! wire: a 1-byte message tag, a 2-byte element count where a message
//! carries a request list, then fixed-size encoded records.
//!
//! The simulator passes typed messages for speed; this codec is
//! round-trip property-tested against the typed form, proving the types
//! carry exactly what the wire can.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::header::{
    DecodeError, LockHeader, LockOp, FLAG_BUFFER_ONLY, FLAG_FROM_SWITCH, HEADER_LEN,
};
use crate::ids::LockId;
use crate::messages::{GrantMsg, Grantor, LockRequest, NetLockMsg, ReleaseRequest};

/// Message tags on the wire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
enum Tag {
    Acquire = 1,
    Release = 2,
    Grant = 3,
    Forwarded = 4,
    QueueSpace = 5,
    Push = 6,
    DbFetch = 7,
    DbReply = 8,
    CtrlDemote = 9,
    CtrlPromote = 10,
    CtrlPromoteReady = 11,
    CtrlHandback = 12,
    ChainOp = 13,
    ChainAck = 14,
    CtrlChainPing = 15,
    CtrlChainConfig = 16,
    CtrlChainReset = 17,
    CtrlPartitionMap = 18,
    AcquireBatch = 19,
    ReleaseBatch = 20,
    GrantBatch = 21,
}

impl Tag {
    fn from_u8(v: u8) -> Option<Tag> {
        Some(match v {
            1 => Tag::Acquire,
            2 => Tag::Release,
            3 => Tag::Grant,
            4 => Tag::Forwarded,
            5 => Tag::QueueSpace,
            6 => Tag::Push,
            7 => Tag::DbFetch,
            8 => Tag::DbReply,
            9 => Tag::CtrlDemote,
            10 => Tag::CtrlPromote,
            11 => Tag::CtrlPromoteReady,
            12 => Tag::CtrlHandback,
            13 => Tag::ChainOp,
            14 => Tag::ChainAck,
            15 => Tag::CtrlChainPing,
            16 => Tag::CtrlChainConfig,
            17 => Tag::CtrlChainReset,
            18 => Tag::CtrlPartitionMap,
            19 => Tag::AcquireBatch,
            20 => Tag::ReleaseBatch,
            21 => Tag::GrantBatch,
            _ => return None,
        })
    }
}

fn put_request(buf: &mut BytesMut, req: &LockRequest, flags: u16) {
    let mut h = req.to_header();
    h.flags = flags;
    h.encode_into(buf);
}

fn get_request(buf: &mut impl Buf) -> Result<(LockRequest, u16), DecodeError> {
    let h = LockHeader::decode(buf)?;
    let req = LockRequest::from_header(&h).ok_or(DecodeError::BadOp(h.op.to_u8()))?;
    Ok((req, h.flags))
}

fn put_release(buf: &mut BytesMut, rel: &ReleaseRequest) {
    let h = LockHeader {
        op: LockOp::Release,
        lock: rel.lock,
        txn: rel.txn,
        client: rel.client,
        mode: rel.mode,
        priority: rel.priority,
        tenant: crate::ids::TenantId(0),
        timestamp_ns: 0,
        flags: 0,
    };
    h.encode_into(buf);
}

fn get_release(buf: &mut impl Buf) -> Result<ReleaseRequest, DecodeError> {
    let h = LockHeader::decode(buf)?;
    Ok(ReleaseRequest {
        lock: h.lock,
        txn: h.txn,
        mode: h.mode,
        client: h.client,
        priority: h.priority,
    })
}

fn put_grant(buf: &mut BytesMut, g: &GrantMsg) {
    let h = LockHeader {
        op: LockOp::Grant,
        lock: g.lock,
        txn: g.txn,
        client: g.client,
        mode: g.mode,
        priority: g.priority,
        tenant: crate::ids::TenantId(0),
        timestamp_ns: g.issued_at_ns,
        flags: match g.grantor {
            Grantor::Switch => FLAG_FROM_SWITCH,
            Grantor::Server => 0,
        },
    };
    h.encode_into(buf);
}

fn get_grant(buf: &mut impl Buf) -> Result<GrantMsg, DecodeError> {
    let h = LockHeader::decode(buf)?;
    Ok(GrantMsg {
        lock: h.lock,
        txn: h.txn,
        mode: h.mode,
        client: h.client,
        priority: h.priority,
        grantor: if h.flags & FLAG_FROM_SWITCH != 0 {
            Grantor::Switch
        } else {
            Grantor::Server
        },
        issued_at_ns: h.timestamp_ns,
    })
}

/// Encode any NetLock message to its wire form.
pub fn encode_msg(msg: &NetLockMsg) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + HEADER_LEN);
    encode_into(msg, &mut buf);
    buf.freeze()
}

fn encode_into(msg: &NetLockMsg, buf: &mut BytesMut) {
    match msg {
        NetLockMsg::Acquire(req) => {
            buf.put_u8(Tag::Acquire as u8);
            put_request(buf, req, 0);
        }
        NetLockMsg::Release(rel) => {
            buf.put_u8(Tag::Release as u8);
            put_release(buf, rel);
        }
        NetLockMsg::Grant(g) => {
            buf.put_u8(Tag::Grant as u8);
            put_grant(buf, g);
        }
        NetLockMsg::Forwarded { req, buffer_only } => {
            buf.put_u8(Tag::Forwarded as u8);
            put_request(buf, req, if *buffer_only { FLAG_BUFFER_ONLY } else { 0 });
        }
        NetLockMsg::QueueSpace { lock, space } => {
            buf.put_u8(Tag::QueueSpace as u8);
            buf.put_u32(lock.0);
            buf.put_u32(*space);
        }
        NetLockMsg::Push { lock, reqs } => {
            buf.put_u8(Tag::Push as u8);
            buf.put_u32(lock.0);
            buf.put_u16(reqs.len() as u16);
            for r in reqs {
                put_request(buf, r, 0);
            }
        }
        NetLockMsg::DbFetch { grant } => {
            buf.put_u8(Tag::DbFetch as u8);
            put_grant(buf, grant);
        }
        NetLockMsg::DbReply { grant } => {
            buf.put_u8(Tag::DbReply as u8);
            put_grant(buf, grant);
        }
        NetLockMsg::CtrlDemote { lock } => {
            buf.put_u8(Tag::CtrlDemote as u8);
            buf.put_u32(lock.0);
        }
        NetLockMsg::CtrlPromote { lock } => {
            buf.put_u8(Tag::CtrlPromote as u8);
            buf.put_u32(lock.0);
        }
        NetLockMsg::CtrlPromoteReady { lock, reqs } => {
            buf.put_u8(Tag::CtrlPromoteReady as u8);
            buf.put_u32(lock.0);
            buf.put_u16(reqs.len() as u16);
            for r in reqs {
                put_request(buf, r, 0);
            }
        }
        NetLockMsg::CtrlHandback { lock } => {
            buf.put_u8(Tag::CtrlHandback as u8);
            buf.put_u32(lock.0);
        }
        NetLockMsg::ChainOp {
            partition,
            seq,
            stamp_ns,
            op,
        } => {
            buf.put_u8(Tag::ChainOp as u8);
            buf.put_u16(*partition);
            buf.put_u64(*seq);
            buf.put_u64(*stamp_ns);
            encode_into(op, buf);
        }
        NetLockMsg::ChainAck { partition, seq } => {
            buf.put_u8(Tag::ChainAck as u8);
            buf.put_u16(*partition);
            buf.put_u64(*seq);
        }
        NetLockMsg::CtrlChainPing {
            partition,
            member,
            epoch,
        } => {
            buf.put_u8(Tag::CtrlChainPing as u8);
            buf.put_u16(*partition);
            buf.put_u16(*member);
            buf.put_u32(*epoch);
        }
        NetLockMsg::CtrlChainConfig {
            partition,
            epoch,
            members,
        } => {
            buf.put_u8(Tag::CtrlChainConfig as u8);
            buf.put_u16(*partition);
            buf.put_u32(*epoch);
            buf.put_u16(members.len() as u16);
            for m in members {
                buf.put_u32(*m);
            }
        }
        NetLockMsg::CtrlChainReset { partition, epoch } => {
            buf.put_u8(Tag::CtrlChainReset as u8);
            buf.put_u16(*partition);
            buf.put_u32(*epoch);
        }
        NetLockMsg::CtrlPartitionMap { version, heads } => {
            buf.put_u8(Tag::CtrlPartitionMap as u8);
            buf.put_u32(*version);
            buf.put_u16(heads.len() as u16);
            for h in heads {
                buf.put_u32(*h);
            }
        }
        // Aggregate-population bursts: a u32 count (one quantum can
        // carry far more than the u16 bound of the server-push lists),
        // then fixed-size records.
        NetLockMsg::AcquireBatch(reqs) => {
            buf.put_u8(Tag::AcquireBatch as u8);
            buf.put_u32(reqs.len() as u32);
            for r in reqs {
                put_request(buf, r, 0);
            }
        }
        NetLockMsg::ReleaseBatch(rels) => {
            buf.put_u8(Tag::ReleaseBatch as u8);
            buf.put_u32(rels.len() as u32);
            for r in rels {
                put_release(buf, r);
            }
        }
        NetLockMsg::GrantBatch(grants) => {
            buf.put_u8(Tag::GrantBatch as u8);
            buf.put_u32(grants.len() as u32);
            for g in grants {
                put_grant(buf, g);
            }
        }
    }
}

fn need(buf: &impl Buf, n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::Truncated {
            have: buf.remaining(),
        })
    } else {
        Ok(())
    }
}

/// Decode a wire message.
pub fn decode_msg(buf: &mut impl Buf) -> Result<NetLockMsg, DecodeError> {
    need(buf, 1)?;
    let raw = buf.get_u8();
    let tag = Tag::from_u8(raw).ok_or(DecodeError::BadOp(raw))?;
    Ok(match tag {
        Tag::Acquire => NetLockMsg::Acquire(get_request(buf)?.0),
        Tag::Release => NetLockMsg::Release(get_release(buf)?),
        Tag::Grant => NetLockMsg::Grant(get_grant(buf)?),
        Tag::Forwarded => {
            let (req, flags) = get_request(buf)?;
            NetLockMsg::Forwarded {
                req,
                buffer_only: flags & FLAG_BUFFER_ONLY != 0,
            }
        }
        Tag::QueueSpace => {
            need(buf, 8)?;
            NetLockMsg::QueueSpace {
                lock: LockId(buf.get_u32()),
                space: buf.get_u32(),
            }
        }
        Tag::Push => {
            need(buf, 6)?;
            let lock = LockId(buf.get_u32());
            let n = buf.get_u16() as usize;
            let mut reqs = Vec::with_capacity(n);
            for _ in 0..n {
                reqs.push(get_request(buf)?.0);
            }
            NetLockMsg::Push {
                lock,
                reqs: reqs.into(),
            }
        }
        Tag::DbFetch => NetLockMsg::DbFetch {
            grant: get_grant(buf)?,
        },
        Tag::DbReply => NetLockMsg::DbReply {
            grant: get_grant(buf)?,
        },
        Tag::CtrlDemote => {
            need(buf, 4)?;
            NetLockMsg::CtrlDemote {
                lock: LockId(buf.get_u32()),
            }
        }
        Tag::CtrlPromote => {
            need(buf, 4)?;
            NetLockMsg::CtrlPromote {
                lock: LockId(buf.get_u32()),
            }
        }
        Tag::CtrlPromoteReady => {
            need(buf, 6)?;
            let lock = LockId(buf.get_u32());
            let n = buf.get_u16() as usize;
            let mut reqs = Vec::with_capacity(n);
            for _ in 0..n {
                reqs.push(get_request(buf)?.0);
            }
            NetLockMsg::CtrlPromoteReady {
                lock,
                reqs: reqs.into(),
            }
        }
        Tag::CtrlHandback => {
            need(buf, 4)?;
            NetLockMsg::CtrlHandback {
                lock: LockId(buf.get_u32()),
            }
        }
        Tag::ChainOp => {
            need(buf, 18)?;
            let partition = buf.get_u16();
            let seq = buf.get_u64();
            let stamp_ns = buf.get_u64();
            let op = Box::new(decode_msg(buf)?);
            NetLockMsg::ChainOp {
                partition,
                seq,
                stamp_ns,
                op,
            }
        }
        Tag::ChainAck => {
            need(buf, 10)?;
            NetLockMsg::ChainAck {
                partition: buf.get_u16(),
                seq: buf.get_u64(),
            }
        }
        Tag::CtrlChainPing => {
            need(buf, 8)?;
            NetLockMsg::CtrlChainPing {
                partition: buf.get_u16(),
                member: buf.get_u16(),
                epoch: buf.get_u32(),
            }
        }
        Tag::CtrlChainConfig => {
            need(buf, 8)?;
            let partition = buf.get_u16();
            let epoch = buf.get_u32();
            let n = buf.get_u16() as usize;
            need(buf, n * 4)?;
            let members = (0..n).map(|_| buf.get_u32()).collect();
            NetLockMsg::CtrlChainConfig {
                partition,
                epoch,
                members,
            }
        }
        Tag::CtrlChainReset => {
            need(buf, 6)?;
            NetLockMsg::CtrlChainReset {
                partition: buf.get_u16(),
                epoch: buf.get_u32(),
            }
        }
        Tag::CtrlPartitionMap => {
            need(buf, 6)?;
            let version = buf.get_u32();
            let n = buf.get_u16() as usize;
            need(buf, n * 4)?;
            let heads = (0..n).map(|_| buf.get_u32()).collect();
            NetLockMsg::CtrlPartitionMap { version, heads }
        }
        Tag::AcquireBatch => {
            need(buf, 4)?;
            let n = buf.get_u32() as usize;
            let mut reqs = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                reqs.push(get_request(buf)?.0);
            }
            NetLockMsg::AcquireBatch(reqs.into())
        }
        Tag::ReleaseBatch => {
            need(buf, 4)?;
            let n = buf.get_u32() as usize;
            let mut rels = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                rels.push(get_release(buf)?);
            }
            NetLockMsg::ReleaseBatch(rels.into())
        }
        Tag::GrantBatch => {
            need(buf, 4)?;
            let n = buf.get_u32() as usize;
            let mut grants = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                grants.push(get_grant(buf)?);
            }
            NetLockMsg::GrantBatch(grants.into())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClientAddr, LockMode, Priority, TenantId, TxnId};

    fn req(n: u64) -> LockRequest {
        LockRequest {
            lock: LockId(n as u32),
            mode: if n.is_multiple_of(2) {
                LockMode::Shared
            } else {
                LockMode::Exclusive
            },
            txn: TxnId(n),
            client: ClientAddr(n as u32 + 7),
            tenant: TenantId((n % 9) as u16),
            priority: Priority((n % 3) as u8),
            issued_at_ns: n * 1_000,
        }
    }

    fn roundtrip(msg: NetLockMsg) {
        let mut wire = encode_msg(&msg);
        let out = decode_msg(&mut wire).unwrap();
        assert_eq!(msg, out);
        assert_eq!(wire.remaining(), 0, "no trailing bytes");
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(NetLockMsg::Acquire(req(1)));
        roundtrip(NetLockMsg::Release(ReleaseRequest {
            lock: LockId(2),
            txn: TxnId(3),
            mode: LockMode::Exclusive,
            client: ClientAddr(4),
            priority: Priority(1),
        }));
        for grantor in [Grantor::Switch, Grantor::Server] {
            roundtrip(NetLockMsg::Grant(GrantMsg {
                lock: LockId(5),
                txn: TxnId(6),
                mode: LockMode::Shared,
                client: ClientAddr(7),
                priority: Priority(2),
                grantor,
                issued_at_ns: 99,
            }));
        }
        for buffer_only in [false, true] {
            roundtrip(NetLockMsg::Forwarded {
                req: req(8),
                buffer_only,
            });
        }
        roundtrip(NetLockMsg::QueueSpace {
            lock: LockId(9),
            space: 17,
        });
        roundtrip(NetLockMsg::Push {
            lock: LockId(10),
            reqs: (0..5).map(req).collect(),
        });
        roundtrip(NetLockMsg::Push {
            lock: LockId(10),
            reqs: Box::new([]),
        });
        roundtrip(NetLockMsg::DbFetch {
            grant: GrantMsg {
                lock: LockId(11),
                txn: TxnId(12),
                mode: LockMode::Exclusive,
                client: ClientAddr(13),
                priority: Priority(0),
                grantor: Grantor::Switch,
                issued_at_ns: 1,
            },
        });
        roundtrip(NetLockMsg::CtrlDemote { lock: LockId(14) });
        roundtrip(NetLockMsg::CtrlPromote { lock: LockId(15) });
        roundtrip(NetLockMsg::CtrlPromoteReady {
            lock: LockId(16),
            reqs: (0..3).map(req).collect(),
        });
        roundtrip(NetLockMsg::CtrlHandback { lock: LockId(17) });
        roundtrip(NetLockMsg::ChainOp {
            partition: 3,
            seq: 0xDEAD_BEEF,
            stamp_ns: 42_000,
            op: Box::new(NetLockMsg::Acquire(req(18))),
        });
        roundtrip(NetLockMsg::ChainOp {
            partition: 0,
            seq: 1,
            stamp_ns: 7,
            op: Box::new(NetLockMsg::Release(ReleaseRequest {
                lock: LockId(19),
                txn: TxnId(20),
                mode: LockMode::Shared,
                client: ClientAddr(21),
                priority: Priority(0),
            })),
        });
        roundtrip(NetLockMsg::ChainAck {
            partition: 5,
            seq: 1 << 40,
        });
        roundtrip(NetLockMsg::CtrlChainPing {
            partition: 2,
            member: 1,
            epoch: 9,
        });
        roundtrip(NetLockMsg::CtrlChainConfig {
            partition: 1,
            epoch: 4,
            members: Box::new([10, 11, 12]),
        });
        roundtrip(NetLockMsg::CtrlChainConfig {
            partition: 1,
            epoch: 5,
            members: Box::new([]),
        });
        roundtrip(NetLockMsg::CtrlChainReset {
            partition: 6,
            epoch: 2,
        });
        roundtrip(NetLockMsg::CtrlPartitionMap {
            version: 3,
            heads: Box::new([4, 9, 14]),
        });
        roundtrip(NetLockMsg::AcquireBatch((0..7).map(req).collect()));
        roundtrip(NetLockMsg::AcquireBatch(Box::new([])));
        roundtrip(NetLockMsg::ReleaseBatch(
            (0..4)
                .map(|n| ReleaseRequest {
                    lock: LockId(n),
                    txn: TxnId(n as u64),
                    mode: LockMode::Shared,
                    client: ClientAddr(30 + n),
                    priority: Priority(0),
                })
                .collect(),
        ));
        roundtrip(NetLockMsg::GrantBatch(
            (0..3)
                .map(|n| GrantMsg {
                    lock: LockId(n),
                    txn: TxnId(n as u64 + 50),
                    mode: LockMode::Exclusive,
                    client: ClientAddr(40),
                    priority: Priority(1),
                    grantor: Grantor::Switch,
                    issued_at_ns: n as u64 * 11,
                })
                .collect(),
        ));
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut b = Bytes::from(vec![200u8, 0, 0]);
        assert!(matches!(decode_msg(&mut b), Err(DecodeError::BadOp(200))));
    }

    #[test]
    fn decode_rejects_truncated_batch() {
        let msg = NetLockMsg::Push {
            lock: LockId(1),
            reqs: (0..3).map(req).collect(),
        };
        let wire = encode_msg(&msg);
        // Chop mid-way through the second request.
        let cut = 1 + 4 + 2 + HEADER_LEN + 10;
        let mut short = wire.slice(0..cut);
        assert!(matches!(
            decode_msg(&mut short),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn empty_input_is_truncated() {
        let mut b = Bytes::new();
        assert!(matches!(
            decode_msg(&mut b),
            Err(DecodeError::Truncated { have: 0 })
        ));
    }
}
