//! # netlock-proto
//!
//! The NetLock wire protocol: identifier types, the custom UDP lock header
//! the switch parses in its data plane, and the typed message set used
//! between clients, the lock switch, lock servers and database servers.
//!
//! The paper (§4.2) defines the request fields — action type
//! (acquire/release), lock ID, lock mode, transaction ID, client IP — and
//! notes that "additional metadata such as timestamp and tenant ID can
//! also be stored together"; §4.4's policies add the priority class. The
//! [`LockHeader`] codec carries all of them in a fixed 32-byte header
//! behind a reserved UDP port ([`NETLOCK_UDP_PORT`]).

#![warn(missing_docs)]

pub mod codec;
mod header;
mod ids;
mod messages;

pub use codec::{decode_msg, encode_msg};
pub use header::{
    DecodeError, LockHeader, LockOp, FLAG_BUFFER_ONLY, FLAG_FROM_SWITCH, HEADER_LEN, MAGIC,
    NETLOCK_UDP_PORT, VERSION,
};
pub use ids::{ClientAddr, LockId, LockMode, Priority, TenantId, TxnId};
pub use messages::{GrantMsg, Grantor, LockRequest, NetLockMsg, ReleaseRequest};
