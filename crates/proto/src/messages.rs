//! Typed message set exchanged between NetLock nodes in the simulation.
//!
//! The wire form of a request is [`crate::LockHeader`]; inside the
//! simulator we pass the decoded, typed form to keep the hot path cheap.
//! [`LockRequest::to_header`] / [`LockRequest::from_header`] prove the two
//! representations are interconvertible (round-trip tested below), so the
//! typed messages carry exactly the information the custom UDP header can.

use crate::header::{LockHeader, LockOp};
use crate::ids::{ClientAddr, LockId, LockMode, Priority, TenantId, TxnId};

/// A lock acquire request, as stored in a queue slot.
///
/// This is the paper's queue-slot triple (mode, transaction ID, client IP)
/// plus the "additional metadata such as timestamp and tenant ID" that
/// §4.2 says can be stored together.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LockRequest {
    /// Target lock.
    pub lock: LockId,
    /// Shared or exclusive.
    pub mode: LockMode,
    /// Requesting transaction.
    pub txn: TxnId,
    /// Where to send the grant.
    pub client: ClientAddr,
    /// Tenant for quota accounting.
    pub tenant: TenantId,
    /// Priority class (0 = highest).
    pub priority: Priority,
    /// Time the client issued the request (ns since sim epoch); used for
    /// latency accounting and lease expiry.
    pub issued_at_ns: u64,
}

impl LockRequest {
    /// Encode as a wire header with op = Acquire.
    pub fn to_header(&self) -> LockHeader {
        LockHeader {
            op: LockOp::Acquire,
            lock: self.lock,
            txn: self.txn,
            client: self.client,
            mode: self.mode,
            priority: self.priority,
            tenant: self.tenant,
            timestamp_ns: self.issued_at_ns,
            flags: 0,
        }
    }

    /// Decode from a wire header (op must be Acquire).
    pub fn from_header(h: &LockHeader) -> Option<LockRequest> {
        if h.op != LockOp::Acquire {
            return None;
        }
        Some(LockRequest {
            lock: h.lock,
            mode: h.mode,
            txn: h.txn,
            client: h.client,
            tenant: h.tenant,
            priority: h.priority,
            issued_at_ns: h.timestamp_ns,
        })
    }
}

/// A lock release notification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReleaseRequest {
    /// Lock being released.
    pub lock: LockId,
    /// Releasing transaction.
    pub txn: TxnId,
    /// Mode that was held (the switch does not check the txn on shared
    /// releases — see §4.2 — but the mode steers the dequeue logic).
    pub mode: LockMode,
    /// Releasing client.
    pub client: ClientAddr,
    /// Priority class of the original request (routes the release to the
    /// correct per-priority queue).
    pub priority: Priority,
}

/// Who granted a lock (diagnostics and the paper's latency breakdowns).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Grantor {
    /// Granted directly by the switch data plane.
    Switch,
    /// Granted by a lock server.
    Server,
}

/// A grant notification to a client.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GrantMsg {
    /// Granted lock.
    pub lock: LockId,
    /// Transaction the grant is for.
    pub txn: TxnId,
    /// Mode granted.
    pub mode: LockMode,
    /// Receiving client.
    pub client: ClientAddr,
    /// Priority class of the granted request; a release must carry it
    /// back so the priority engine dequeues from the right level queue.
    pub priority: Priority,
    /// Data-plane vs server grant.
    pub grantor: Grantor,
    /// The original request issue time (echoes `issued_at_ns`).
    pub issued_at_ns: u64,
}

/// All messages a NetLock deployment exchanges.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NetLockMsg {
    /// Client → lock manager: acquire.
    Acquire(LockRequest),
    /// Client → lock manager: release.
    Release(ReleaseRequest),
    /// Lock manager → client: lock granted.
    Grant(GrantMsg),
    /// Switch → server: request the switch could not handle.
    ///
    /// `buffer_only` is the paper's overflow mark: when set, the server
    /// must only buffer the request in q2 (the switch still owns grant
    /// order for this lock); when clear, the server owns the lock.
    Forwarded {
        /// The forwarded acquire request.
        req: LockRequest,
        /// Overflow mark (see above).
        buffer_only: bool,
    },
    /// Switch → server: q1 for `lock` drained to empty; the server may
    /// push up to `space` buffered requests.
    QueueSpace {
        /// Lock whose switch queue has space.
        lock: LockId,
        /// Number of free q1 slots.
        space: u32,
    },
    /// Server → switch: buffered requests being pushed into q1.
    ///
    /// `reqs` is a boxed slice (one pointer-plus-length word pair)
    /// rather than a `Vec` so this rare bulk variant doesn't widen the
    /// enum — and with it every simulator event slot — by a third
    /// capacity word.
    Push {
        /// Lock the requests belong to.
        lock: LockId,
        /// The requests, in arrival order.
        reqs: Box<[LockRequest]>,
    },
    /// Lock manager → database server: a granted request forwarded to
    /// fetch data (one-RTT transaction mode, §4.1).
    DbFetch {
        /// The grant that authorizes the fetch.
        grant: GrantMsg,
    },
    /// Database server → client: fetched data (payload size abstracted).
    DbReply {
        /// The grant the data corresponds to.
        grant: GrantMsg,
    },
    /// Switch control plane → server: the switch has drained `lock`'s q1
    /// and demoted it; the server now owns the lock (its q2 contents
    /// become the live queue).
    CtrlDemote {
        /// Demoted lock.
        lock: LockId,
    },
    /// Switch control plane → server: prepare `lock` for promotion into
    /// the switch — pause new grants, drain, and reply with
    /// [`NetLockMsg::CtrlPromoteReady`].
    CtrlPromote {
        /// Lock being promoted.
        lock: LockId,
    },
    /// Server → switch: `lock` is drained; `reqs` are the requests that
    /// arrived during the pause, in order, to be enqueued in the switch.
    /// Boxed slice for the same slot-size reason as [`NetLockMsg::Push`].
    CtrlPromoteReady {
        /// Lock being promoted.
        lock: LockId,
        /// Requests buffered during the move.
        reqs: Box<[LockRequest]>,
    },
    /// Backup switch → restarted original switch: the backup's queue
    /// for `lock` has drained; the original may start granting from its
    /// own queue (§4.5: "we only grant locks from the backup switch
    /// until the queue in the backup switch gets empty").
    CtrlHandback {
        /// Lock handed back to the original switch.
        lock: LockId,
    },
    /// Chain member → its successor: one replicated lock operation.
    ///
    /// The head of a partition's replication chain assigns each admitted
    /// client operation a dense sequence number and its own processing
    /// timestamp, then forwards the operation down the chain. Every
    /// member applies `op` at `stamp_ns` against an identical data
    /// plane, so register state stays replicated by construction. The
    /// inner message is boxed to keep the enum (and with it every
    /// simulator event slot) compact.
    ChainOp {
        /// Partition whose chain this operation belongs to.
        partition: u16,
        /// Dense per-partition sequence number assigned by the head.
        seq: u64,
        /// The head's clock when it applied the operation; replicas
        /// apply at the same stamp so lease math is identical.
        stamp_ns: u64,
        /// The admitted client operation (Acquire or Release).
        op: Box<NetLockMsg>,
    },
    /// Chain tail → upstream members: cumulative apply acknowledgement.
    ///
    /// Everything `<= seq` has been applied (and its outputs emitted) at
    /// the tail; upstream members may truncate their replication logs.
    ChainAck {
        /// Partition whose chain this acknowledges.
        partition: u16,
        /// Highest contiguous sequence number applied at the tail.
        seq: u64,
    },
    /// Chain member → controller: liveness heartbeat, sent from the
    /// member's control tick. Missed ticks are the failure detector.
    CtrlChainPing {
        /// Partition the member serves.
        partition: u16,
        /// The member's index in the partition's *original* chain.
        member: u16,
        /// Chain epoch the member currently believes in.
        epoch: u32,
    },
    /// Controller → chain member: the (possibly spliced) chain layout.
    ///
    /// `members` lists the node ids of the live chain in order; a member
    /// finds itself in the list to learn its role (first = head, last =
    /// tail) and successor. A member whose successor changed retransmits
    /// its unacknowledged log suffix to the new successor — that replay
    /// is what makes a mid-chain crash lossless.
    CtrlChainConfig {
        /// Partition being (re)configured.
        partition: u16,
        /// Monotonic epoch; stale configs are ignored.
        epoch: u32,
        /// Node ids of the live chain, head first.
        members: Box<[u32]>,
    },
    /// Controller → revived switch: wipe and rejoin as an empty chain.
    ///
    /// Sent when a partition's *only* member returns from a crash: real
    /// switch registers do not survive a reboot, so the member must
    /// discard all state, reprogram its directory, and refuse grants
    /// for one lease (§4.5-style grace) before serving again.
    CtrlChainReset {
        /// Partition being reset.
        partition: u16,
        /// New epoch after the reset.
        epoch: u32,
    },
    /// Aggregate client → lock manager: a burst of acquires issued by
    /// many virtual clients inside one arrival-process quantum.
    ///
    /// One simulator event carries the whole burst (boxed slice, same
    /// two-word slot math as [`NetLockMsg::Push`]); the switch unpacks
    /// and admits each element exactly as if it had arrived as an
    /// individual [`NetLockMsg::Acquire`], in slice order.
    AcquireBatch(
        /// The acquires, in virtual-client issue order.
        Box<[LockRequest]>,
    ),
    /// Aggregate client → lock manager: a burst of releases.
    ///
    /// Element semantics are identical to individual
    /// [`NetLockMsg::Release`] messages arriving back-to-back.
    ReleaseBatch(
        /// The releases, in slice order.
        Box<[ReleaseRequest]>,
    ),
    /// Lock manager → aggregate client: grants coalesced per receiver.
    ///
    /// When the switch processes an [`NetLockMsg::AcquireBatch`] (or a
    /// release burst unblocks queued requests), every grant destined for
    /// the same client node within that handler invocation is folded
    /// into one of these instead of one event per grant.
    GrantBatch(
        /// The grants, in grant order.
        Box<[GrantMsg]>,
    ),
    /// Controller → clients/ToR: the lock-space partition routing map.
    ///
    /// `heads[p]` is the node id of partition `p`'s current chain head;
    /// clients route acquires and releases by `partition_of(lock)`.
    /// Re-broadcast with a bumped version whenever a head changes.
    CtrlPartitionMap {
        /// Monotonic map version; stale maps are ignored.
        version: u32,
        /// Chain-head node id per partition, indexed by partition.
        heads: Box<[u32]>,
    },
}

impl NetLockMsg {
    /// The lock this message concerns, if any.
    pub fn lock(&self) -> Option<LockId> {
        match self {
            NetLockMsg::Acquire(r) => Some(r.lock),
            NetLockMsg::Release(r) => Some(r.lock),
            NetLockMsg::Grant(g) => Some(g.lock),
            NetLockMsg::Forwarded { req, .. } => Some(req.lock),
            NetLockMsg::QueueSpace { lock, .. } => Some(*lock),
            NetLockMsg::Push { lock, .. } => Some(*lock),
            NetLockMsg::DbFetch { grant } => Some(grant.lock),
            NetLockMsg::DbReply { grant } => Some(grant.lock),
            NetLockMsg::CtrlDemote { lock } => Some(*lock),
            NetLockMsg::CtrlPromote { lock } => Some(*lock),
            NetLockMsg::CtrlPromoteReady { lock, .. } => Some(*lock),
            NetLockMsg::CtrlHandback { lock } => Some(*lock),
            NetLockMsg::ChainOp { op, .. } => op.lock(),
            // Batches span many locks; per-element handling extracts
            // each one, so the aggregate has no single lock.
            NetLockMsg::AcquireBatch(_)
            | NetLockMsg::ReleaseBatch(_)
            | NetLockMsg::GrantBatch(_) => None,
            NetLockMsg::ChainAck { .. }
            | NetLockMsg::CtrlChainPing { .. }
            | NetLockMsg::CtrlChainConfig { .. }
            | NetLockMsg::CtrlChainReset { .. }
            | NetLockMsg::CtrlPartitionMap { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::FLAG_BUFFER_ONLY;

    fn req() -> LockRequest {
        LockRequest {
            lock: LockId(5),
            mode: LockMode::Shared,
            txn: TxnId(900),
            client: ClientAddr(7),
            tenant: TenantId(1),
            priority: Priority(0),
            issued_at_ns: 123,
        }
    }

    #[test]
    fn msg_slot_stays_compact() {
        // Every simulator event embeds a NetLockMsg; the boxed-slice
        // bulk variants exist precisely to keep this bound. The widest
        // variants are the 33-byte `Forwarded` and the two-word boxed
        // slices, rounded up to the 8-byte alignment with the tag.
        assert!(
            std::mem::size_of::<NetLockMsg>() <= 40,
            "NetLockMsg grew to {} bytes; keep bulk payloads boxed",
            std::mem::size_of::<NetLockMsg>()
        );
    }

    #[test]
    fn request_header_roundtrip() {
        let r = req();
        let h = r.to_header();
        assert_eq!(LockRequest::from_header(&h), Some(r));
    }

    #[test]
    fn from_header_rejects_non_acquire() {
        let mut h = req().to_header();
        h.op = LockOp::Release;
        assert_eq!(LockRequest::from_header(&h), None);
    }

    #[test]
    fn wire_roundtrip_through_bytes() {
        let r = req();
        let mut encoded = r.to_header().encode();
        let decoded = LockHeader::decode(&mut encoded).unwrap();
        assert_eq!(LockRequest::from_header(&decoded), Some(r));
    }

    #[test]
    fn buffer_only_flag_exists_on_wire() {
        // The overflow mark must survive encode/decode.
        let mut h = req().to_header();
        h.flags |= FLAG_BUFFER_ONLY;
        let mut b = h.encode();
        let d = LockHeader::decode(&mut b).unwrap();
        assert_ne!(d.flags & FLAG_BUFFER_ONLY, 0);
    }

    #[test]
    fn msg_lock_extraction() {
        assert_eq!(NetLockMsg::Acquire(req()).lock(), Some(LockId(5)));
        assert_eq!(
            NetLockMsg::QueueSpace {
                lock: LockId(9),
                space: 3
            }
            .lock(),
            Some(LockId(9))
        );
        assert_eq!(
            NetLockMsg::Push {
                lock: LockId(2),
                reqs: vec![req()].into()
            }
            .lock(),
            Some(LockId(2))
        );
        // Batches span many locks: no single lock to report.
        assert_eq!(NetLockMsg::AcquireBatch(vec![req()].into()).lock(), None);
    }
}
