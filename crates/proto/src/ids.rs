//! Identifier newtypes shared across the NetLock crates.

use std::fmt;

/// Identifier of a lock object (the paper's `lid`).
///
/// Lock IDs name database objects (rows, pages, tables); the mapping from
/// database entity to lock ID is the workload generator's business.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LockId(pub u32);

/// Identifier of a transaction.
///
/// Unique per in-flight transaction; the client that issued the request is
/// identified separately by [`ClientAddr`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TxnId(pub u64);

/// Identifier of a tenant, for per-tenant quota policies.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TenantId(pub u16);

/// Request priority for service-differentiation policies.
///
/// Lower value = higher priority (priority 0 is served first), matching
/// the paper's per-stage priority queues where earlier stages win.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Priority(pub u8);

impl Priority {
    /// The highest priority.
    pub const HIGHEST: Priority = Priority(0);
}

/// The client network address carried in each queued request (the paper
/// stores the client IP in the queue slot so the switch can address the
/// grant notification). In the simulation this is the client's IPv4
/// address as a `u32`; the harness assigns one per client node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ClientAddr(pub u32);

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lock:{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn:{}", self.0)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant:{}", self.0)
    }
}

impl fmt::Display for ClientAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ip = self.0;
        write!(
            f,
            "{}.{}.{}.{}",
            (ip >> 24) & 0xff,
            (ip >> 16) & 0xff,
            (ip >> 8) & 0xff,
            ip & 0xff
        )
    }
}

/// Lock mode: shared (read) or exclusive (write).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LockMode {
    /// Shared lock — any number of concurrent shared holders.
    Shared,
    /// Exclusive lock — at most one holder.
    Exclusive,
}

impl LockMode {
    /// Wire encoding.
    pub fn to_u8(self) -> u8 {
        match self {
            LockMode::Shared => 0,
            LockMode::Exclusive => 1,
        }
    }

    /// Wire decoding.
    pub fn from_u8(v: u8) -> Option<LockMode> {
        match v {
            0 => Some(LockMode::Shared),
            1 => Some(LockMode::Exclusive),
            _ => None,
        }
    }

    /// Whether a lock in this mode can be held simultaneously with
    /// another request in `other` mode.
    pub fn compatible_with(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMode::Shared => f.write_str("S"),
            LockMode::Exclusive => f.write_str("X"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_roundtrip() {
        for m in [LockMode::Shared, LockMode::Exclusive] {
            assert_eq!(LockMode::from_u8(m.to_u8()), Some(m));
        }
        assert_eq!(LockMode::from_u8(7), None);
    }

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        assert!(Shared.compatible_with(Shared));
        assert!(!Shared.compatible_with(Exclusive));
        assert!(!Exclusive.compatible_with(Shared));
        assert!(!Exclusive.compatible_with(Exclusive));
    }

    #[test]
    fn client_addr_formats_as_dotted_quad() {
        assert_eq!(format!("{}", ClientAddr(0x0A00_0001)), "10.0.0.1");
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority::HIGHEST < Priority(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", LockId(3)), "lock:3");
        assert_eq!(format!("{}", TxnId(9)), "txn:9");
        assert_eq!(format!("{}", TenantId(1)), "tenant:1");
        assert_eq!(format!("{}", LockMode::Shared), "S");
        assert_eq!(format!("{}", LockMode::Exclusive), "X");
    }
}
