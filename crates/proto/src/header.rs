//! The NetLock wire header.
//!
//! NetLock reserves a UDP destination port; packets to that port carry the
//! custom lock header the switch parses in the data plane (§4.2 of the
//! paper: "A lock request contains several fields: action type
//! (acquire/release), lock ID, lock mode, transaction ID, and client IP",
//! plus the optional metadata the paper mentions — timestamp and tenant
//! ID — and the priority used by the service-differentiation policy).
//!
//! Layout (big-endian, 36 bytes):
//!
//! ```text
//!  0               2       3       4
//! +---------------+-------+-------+
//! | magic "NL"    | ver   | op    |
//! +---------------+-------+-------+
//! | lock_id (u32)                 |
//! +-------------------------------+
//! | txn_id (u64)                  |
//! +-------------------------------+
//! | client_ip (u32)               |
//! +-------+-------+---------------+
//! | mode  | prio  | tenant (u16)  |
//! +-------+-------+---------------+
//! | timestamp_ns (u64)            |
//! +-------------------------------+
//! | flags (u16)   | reserved(u16) |
//! +---------------+---------------+
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::ids::{ClientAddr, LockId, LockMode, Priority, TenantId, TxnId};

/// The UDP destination port reserved for NetLock traffic.
pub const NETLOCK_UDP_PORT: u16 = 0x4E4C; // "NL"

/// Magic bytes at the start of every NetLock header.
pub const MAGIC: u16 = 0x4E4C;

/// Wire protocol version implemented by this crate.
pub const VERSION: u8 = 1;

/// Encoded header size in bytes.
pub const HEADER_LEN: usize = 36;

/// Flag bit: this request overflowed the switch queue and must only be
/// *buffered* (not processed) by the server (§4.3 "the switch puts a mark
/// on the packets to distinguish between these two cases").
pub const FLAG_BUFFER_ONLY: u16 = 0x0001;

/// Flag bit: grant notifications with this bit came from the switch data
/// plane rather than a lock server (diagnostics only).
pub const FLAG_FROM_SWITCH: u16 = 0x0002;

/// Operation carried by a NetLock packet.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LockOp {
    /// Client asks to acquire a lock.
    Acquire,
    /// Client releases a held lock.
    Release,
    /// Lock manager grants a lock to a client.
    Grant,
    /// Switch tells a server its q1 for a lock has space (push protocol).
    QueueSpace,
    /// Server pushes buffered requests toward the switch.
    Push,
}

impl LockOp {
    /// Wire encoding.
    pub fn to_u8(self) -> u8 {
        match self {
            LockOp::Acquire => 1,
            LockOp::Release => 2,
            LockOp::Grant => 3,
            LockOp::QueueSpace => 4,
            LockOp::Push => 5,
        }
    }

    /// Wire decoding.
    pub fn from_u8(v: u8) -> Option<LockOp> {
        match v {
            1 => Some(LockOp::Acquire),
            2 => Some(LockOp::Release),
            3 => Some(LockOp::Grant),
            4 => Some(LockOp::QueueSpace),
            5 => Some(LockOp::Push),
            _ => None,
        }
    }
}

/// A decoded NetLock header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LockHeader {
    /// Operation.
    pub op: LockOp,
    /// Target lock.
    pub lock: LockId,
    /// Requesting transaction.
    pub txn: TxnId,
    /// Client address for the grant notification.
    pub client: ClientAddr,
    /// Shared or exclusive.
    pub mode: LockMode,
    /// Request priority (0 = highest).
    pub priority: Priority,
    /// Tenant for quota enforcement.
    pub tenant: TenantId,
    /// Issue timestamp (ns) — used for leases and latency accounting.
    pub timestamp_ns: u64,
    /// Flag bits (`FLAG_*`).
    pub flags: u16,
}

/// Errors returned when decoding a NetLock header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Fewer than [`HEADER_LEN`] bytes available.
    Truncated {
        /// Bytes present.
        have: usize,
    },
    /// Magic bytes did not match.
    BadMagic(u16),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown operation code.
    BadOp(u8),
    /// Unknown lock mode.
    BadMode(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { have } => {
                write!(f, "truncated NetLock header: {have} of {HEADER_LEN} bytes")
            }
            DecodeError::BadMagic(m) => write!(f, "bad magic 0x{m:04x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::BadOp(o) => write!(f, "unknown op {o}"),
            DecodeError::BadMode(m) => write!(f, "unknown mode {m}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl LockHeader {
    /// Encode into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_LEN);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Append the encoded header to `buf`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u16(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(self.op.to_u8());
        buf.put_u32(self.lock.0);
        buf.put_u64(self.txn.0);
        buf.put_u32(self.client.0);
        buf.put_u8(self.mode.to_u8());
        buf.put_u8(self.priority.0);
        buf.put_u16(self.tenant.0);
        buf.put_u64(self.timestamp_ns);
        buf.put_u16(self.flags);
        buf.put_u16(0); // reserved
    }

    /// Decode a header from the front of `buf`, consuming [`HEADER_LEN`]
    /// bytes on success.
    pub fn decode(buf: &mut impl Buf) -> Result<LockHeader, DecodeError> {
        if buf.remaining() < HEADER_LEN {
            return Err(DecodeError::Truncated {
                have: buf.remaining(),
            });
        }
        let magic = buf.get_u16();
        if magic != MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let ver = buf.get_u8();
        if ver != VERSION {
            return Err(DecodeError::BadVersion(ver));
        }
        let op_raw = buf.get_u8();
        let op = LockOp::from_u8(op_raw).ok_or(DecodeError::BadOp(op_raw))?;
        let lock = LockId(buf.get_u32());
        let txn = TxnId(buf.get_u64());
        let client = ClientAddr(buf.get_u32());
        let mode_raw = buf.get_u8();
        let mode = LockMode::from_u8(mode_raw).ok_or(DecodeError::BadMode(mode_raw))?;
        let priority = Priority(buf.get_u8());
        let tenant = TenantId(buf.get_u16());
        let timestamp_ns = buf.get_u64();
        let flags = buf.get_u16();
        let _reserved = buf.get_u16();
        Ok(LockHeader {
            op,
            lock,
            txn,
            client,
            mode,
            priority,
            tenant,
            timestamp_ns,
            flags,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LockHeader {
        LockHeader {
            op: LockOp::Acquire,
            lock: LockId(77),
            txn: TxnId(123_456_789_000),
            client: ClientAddr(0x0A00_0001),
            mode: LockMode::Exclusive,
            priority: Priority(2),
            tenant: TenantId(3),
            timestamp_ns: 42_000,
            flags: FLAG_BUFFER_ONLY,
        }
    }

    #[test]
    fn encoded_length_matches_constant() {
        assert_eq!(sample().encode().len(), HEADER_LEN);
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let mut b = h.encode();
        let d = LockHeader::decode(&mut b).unwrap();
        assert_eq!(h, d);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn truncated_rejected() {
        let b = sample().encode();
        let mut short = b.slice(0..HEADER_LEN - 1);
        assert_eq!(
            LockHeader::decode(&mut short),
            Err(DecodeError::Truncated {
                have: HEADER_LEN - 1
            })
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = BytesMut::from(&sample().encode()[..]);
        raw[0] = 0xFF;
        let mut b = raw.freeze();
        assert!(matches!(
            LockHeader::decode(&mut b),
            Err(DecodeError::BadMagic(_))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut raw = BytesMut::from(&sample().encode()[..]);
        raw[2] = 99;
        let mut b = raw.freeze();
        assert_eq!(LockHeader::decode(&mut b), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn bad_op_and_mode_rejected() {
        let mut raw = BytesMut::from(&sample().encode()[..]);
        raw[3] = 0;
        let mut b = raw.clone().freeze();
        assert_eq!(LockHeader::decode(&mut b), Err(DecodeError::BadOp(0)));

        let mut raw2 = BytesMut::from(&sample().encode()[..]);
        raw2[20] = 9; // mode byte offset: 2+1+1+4+8+4 = 20
        let mut b2 = raw2.freeze();
        assert_eq!(LockHeader::decode(&mut b2), Err(DecodeError::BadMode(9)));
    }

    #[test]
    fn op_roundtrip() {
        for op in [
            LockOp::Acquire,
            LockOp::Release,
            LockOp::Grant,
            LockOp::QueueSpace,
            LockOp::Push,
        ] {
            assert_eq!(LockOp::from_u8(op.to_u8()), Some(op));
        }
        assert_eq!(LockOp::from_u8(0), None);
        assert_eq!(LockOp::from_u8(200), None);
    }

    #[test]
    fn decode_error_display() {
        let e = DecodeError::Truncated { have: 4 };
        assert!(format!("{e}").contains("truncated"));
    }
}
