//! # netlock-baselines
//!
//! The comparison systems of the paper's evaluation, each built from
//! scratch on the same simulation substrate:
//!
//! - [`rdma`] — one-sided-verb NIC model (ConnectX-3-like atomics bound)
//! - [`dslr`] — DSLR: RDMA Lamport-bakery, FCFS, decentralized
//! - [`drtm`] — DrTM: CAS fail-and-retry exclusive locks, lease reads
//! - [`netchain`] — NetChain: switch-only exclusive locks, client retry
//! - [`server_only`] — traditional centralized server lock manager
//!   (the NetLock rack with zero switch-resident locks)
//!
//! Every baseline exposes `build_*` + `measure_*` returning the shared
//! [`netlock_core::harness::RunStats`], so the figure harnesses compare
//! like with like.

#![warn(missing_docs)]

pub mod drtm;
pub mod dslr;
pub mod netchain;
pub mod rdma;
pub mod server_only;

pub use drtm::{build_drtm, measure_drtm, DrtmClient, DrtmClientConfig, DrtmRack};
pub use dslr::{build_dslr, measure_dslr, DslrClient, DslrClientConfig, DslrRack};
pub use netchain::{build_netchain, measure_netchain, NcClient, NcClientConfig, NcRack, NcSwitch};
pub use rdma::{RdmaMsg, RdmaNicConfig, RdmaServer};
pub use server_only::build_server_only;
