//! NetChain baseline (Jin et al. — NSDI 2018), used as a lock service.
//!
//! NetChain is an in-switch key-value store; the paper repurposes it as
//! a lock manager the way §6.1 describes: it "is not a fully functional
//! lock manager, as it only supports exclusive locks. Therefore,
//! requests for shared locks are treated as exclusive locks. NetChain
//! handles concurrent requests with client-side retry." And because it
//! can only store items in the switch, lock granularity is coarsened so
//! the whole lock space fits in switch memory — extra false contention.
//!
//! The switch holds one 64-bit owner word per slot; an acquire is a
//! read-modify-write (grant if the word is free), a denial bounces back
//! to the client, which retries after a backoff. There are no queues,
//! no FCFS, no policies — that is the point of the comparison.

use netlock_core::harness::RunStats;
use netlock_core::txn::{LockNeed, Transaction, TxnSource};
use netlock_sim::{
    Context, Histogram, LinkConfig, Node, NodeId, Packet, SimDuration, SimRng, SimTime, Simulator,
    Topology,
};

/// NetChain messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NcMsg {
    /// Client → switch: try to take `lock` for `txn`.
    Acquire {
        /// Coarsened lock slot.
        lock: u32,
        /// Requesting transaction tag.
        txn: u64,
    },
    /// Switch → client: result of an acquire.
    Reply {
        /// Coarsened lock slot.
        lock: u32,
        /// Transaction tag echoed.
        txn: u64,
        /// Granted or denied.
        granted: bool,
        /// Correlation token.
        token: u64,
    },
    /// Client → switch: free `lock` if still owned by `txn`.
    Release {
        /// Coarsened lock slot.
        lock: u32,
        /// Owner tag.
        txn: u64,
    },
    /// Acquire with its correlation token (internal form).
    AcquireTok {
        /// Coarsened lock slot.
        lock: u32,
        /// Requesting transaction tag.
        txn: u64,
        /// Correlation token.
        token: u64,
    },
}

/// The NetChain switch: exclusive-only owner words at line rate.
pub struct NcSwitch {
    slots: Vec<u64>,
    traversal: SimDuration,
    /// Grants issued.
    pub grants: u64,
    /// Denials issued.
    pub denials: u64,
}

impl NcSwitch {
    /// A switch with `slots` owner words.
    pub fn new(slots: usize, traversal: SimDuration) -> NcSwitch {
        assert!(slots > 0);
        NcSwitch {
            slots: vec![0; slots],
            traversal,
            grants: 0,
            denials: 0,
        }
    }

    /// Coarsen a lock id into a slot (the granularity adaptation).
    pub fn slot_of(&self, lock: u32) -> usize {
        ((lock as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.slots.len()
    }
}

impl Node<NcMsg> for NcSwitch {
    fn on_packet(&mut self, pkt: Packet<NcMsg>, ctx: &mut Context<'_, NcMsg>) {
        match pkt.payload {
            NcMsg::AcquireTok { lock, txn, token } => {
                let slot = self.slot_of(lock);
                let word = &mut self.slots[slot];
                let granted = if *word == 0 || *word == txn {
                    *word = txn;
                    true
                } else {
                    false
                };
                if granted {
                    self.grants += 1;
                } else {
                    self.denials += 1;
                }
                ctx.send_after(
                    pkt.src,
                    NcMsg::Reply {
                        lock,
                        txn,
                        granted,
                        token,
                    },
                    self.traversal,
                );
            }
            NcMsg::Release { lock, txn } => {
                let slot = self.slot_of(lock);
                if self.slots[slot] == txn {
                    self.slots[slot] = 0;
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_, NcMsg>) {}

    fn name(&self) -> &str {
        "netchain-switch"
    }
}

/// NetChain client configuration.
#[derive(Clone, Debug)]
pub struct NcClientConfig {
    /// Concurrent transaction contexts.
    pub workers: usize,
    /// Client software + NIC delay on transmit.
    pub tx_delay: SimDuration,
    /// Client software + NIC delay on receive.
    pub rx_delay: SimDuration,
    /// Base retry backoff (doubles up to `backoff_cap`).
    pub backoff_base: SimDuration,
    /// Maximum backoff.
    pub backoff_cap: SimDuration,
}

impl Default for NcClientConfig {
    fn default() -> Self {
        NcClientConfig {
            workers: 16,
            tx_delay: SimDuration::from_nanos(2_500),
            rx_delay: SimDuration::from_nanos(2_500),
            backoff_base: SimDuration::from_micros(5),
            backoff_cap: SimDuration::from_micros(320),
        }
    }
}

/// NetChain client counters.
#[derive(Clone, Debug, Default)]
pub struct NcClientStats {
    /// Transactions completed.
    pub txns: u64,
    /// Locks acquired.
    pub grants: u64,
    /// Denied attempts (retries).
    pub denials: u64,
    /// Transaction latency (ns).
    pub txn_latency: Histogram,
    /// Per-lock wait latency (ns).
    pub wait_latency: Histogram,
}

#[derive(Debug)]
enum Phase {
    Attempting {
        next: usize,
        sent: SimTime,
        attempts: u32,
    },
    BackingOff {
        next: usize,
        sent: SimTime,
        attempts: u32,
    },
    Thinking,
}

#[derive(Debug)]
struct Worker {
    txn: Transaction,
    txn_tag: u64,
    started: SimTime,
    phase: Phase,
    held: Vec<LockNeed>,
    gen: u64,
}

/// The NetChain client node.
pub struct NcClient {
    cfg: NcClientConfig,
    switch: NodeId,
    source: Box<dyn TxnSource>,
    workers: Vec<Worker>,
    rng: SimRng,
    next_tag: u64,
    stats: NcClientStats,
}

const GEN_BITS: u32 = 40;

impl NcClient {
    /// A client targeting the NetChain switch.
    pub fn new(
        cfg: NcClientConfig,
        switch: NodeId,
        source: Box<dyn TxnSource>,
        seed: u64,
    ) -> NcClient {
        assert!(cfg.workers > 0);
        NcClient {
            cfg,
            switch,
            source,
            workers: Vec::new(),
            rng: SimRng::new(seed),
            next_tag: 1,
            stats: NcClientStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> &NcClientStats {
        &self.stats
    }

    /// Clear measurement state.
    pub fn reset_stats(&mut self) {
        self.stats = NcClientStats::default();
    }

    fn token(&self, worker: usize) -> u64 {
        ((worker as u64) << GEN_BITS) | (self.workers[worker].gen & ((1 << GEN_BITS) - 1))
    }

    fn backoff(&mut self, attempts: u32) -> SimDuration {
        let factor = 1u64 << attempts.min(8);
        let raw = self.cfg.backoff_base.as_nanos().saturating_mul(factor);
        let capped = raw.min(self.cfg.backoff_cap.as_nanos());
        let jitter = capped / 4;
        SimDuration::from_nanos(capped - jitter + self.rng.next_below(jitter.max(1) * 2))
    }

    fn start_next_txn(&mut self, worker: usize, ctx: &mut Context<'_, NcMsg>) {
        loop {
            let txn = self.source.next_txn(&mut self.rng);
            let tag = self.next_tag;
            self.next_tag += 1;
            let w = &mut self.workers[worker];
            w.held.clear();
            w.started = ctx.now();
            // Tag must be unique across clients: mix in the node id.
            w.txn_tag = (u64::from(ctx.self_id().0) << 40) | tag;
            if txn.locks.is_empty() {
                self.stats.txns += 1;
                self.stats.txn_latency.record(0);
                continue;
            }
            w.txn = txn;
            w.phase = Phase::Attempting {
                next: 0,
                sent: ctx.now(),
                attempts: 0,
            };
            w.gen += 1;
            self.issue(worker, ctx);
            return;
        }
    }

    fn issue(&mut self, worker: usize, ctx: &mut Context<'_, NcMsg>) {
        let Phase::Attempting { next, .. } = self.workers[worker].phase else {
            return;
        };
        let need = self.workers[worker].txn.locks[next];
        let token = self.token(worker);
        let tag = self.workers[worker].txn_tag;
        ctx.send_after(
            self.switch,
            NcMsg::AcquireTok {
                lock: need.lock.0,
                txn: tag,
                token,
            },
            self.cfg.tx_delay,
        );
    }

    fn complete_txn(&mut self, worker: usize, ctx: &mut Context<'_, NcMsg>) {
        let held = self.workers[worker].held.clone();
        let tag = self.workers[worker].txn_tag;
        for need in held {
            ctx.send_after(
                self.switch,
                NcMsg::Release {
                    lock: need.lock.0,
                    txn: tag,
                },
                self.cfg.tx_delay,
            );
        }
        self.workers[worker].held.clear();
        let started = self.workers[worker].started;
        self.stats.txns += 1;
        self.stats
            .txn_latency
            .record(ctx.now().as_nanos() - started.as_nanos());
        self.start_next_txn(worker, ctx);
    }
}

impl Node<NcMsg> for NcClient {
    fn on_start(&mut self, ctx: &mut Context<'_, NcMsg>) {
        for _ in 0..self.cfg.workers {
            self.workers.push(Worker {
                txn: Transaction::new(vec![], SimDuration::ZERO),
                txn_tag: 0,
                started: ctx.now(),
                phase: Phase::Thinking,
                held: Vec::new(),
                gen: 0,
            });
        }
        for w in 0..self.cfg.workers {
            self.start_next_txn(w, ctx);
        }
    }

    fn on_packet(&mut self, pkt: Packet<NcMsg>, ctx: &mut Context<'_, NcMsg>) {
        let NcMsg::Reply { granted, token, .. } = pkt.payload else {
            return;
        };
        let worker = (token >> GEN_BITS) as usize;
        if worker >= self.workers.len()
            || (self.workers[worker].gen & ((1 << GEN_BITS) - 1)) != (token & ((1 << GEN_BITS) - 1))
        {
            return;
        }
        let Phase::Attempting {
            next,
            sent,
            attempts,
        } = self.workers[worker].phase
        else {
            return;
        };
        if granted {
            self.stats.grants += 1;
            self.stats
                .wait_latency
                .record(ctx.now().as_nanos() - sent.as_nanos() + self.cfg.rx_delay.as_nanos());
            let need = self.workers[worker].txn.locks[next];
            self.workers[worker].held.push(need);
            let lock_count = self.workers[worker].txn.locks.len();
            if next + 1 < lock_count {
                self.workers[worker].phase = Phase::Attempting {
                    next: next + 1,
                    sent: ctx.now(),
                    attempts: 0,
                };
                self.workers[worker].gen += 1;
                self.issue(worker, ctx);
            } else {
                let think = self.workers[worker].txn.think;
                self.workers[worker].phase = Phase::Thinking;
                self.workers[worker].gen += 1;
                if think.is_zero() {
                    self.complete_txn(worker, ctx);
                } else {
                    let token = self.token(worker);
                    ctx.set_timer(self.cfg.rx_delay + think, token);
                }
            }
        } else {
            self.stats.denials += 1;
            self.workers[worker].phase = Phase::BackingOff {
                next,
                sent,
                attempts: attempts + 1,
            };
            self.workers[worker].gen += 1;
            let delay = self.backoff(attempts + 1);
            let token = self.token(worker);
            ctx.set_timer(delay, token);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, NcMsg>) {
        let worker = (token >> GEN_BITS) as usize;
        if worker >= self.workers.len()
            || (self.workers[worker].gen & ((1 << GEN_BITS) - 1)) != (token & ((1 << GEN_BITS) - 1))
        {
            return;
        }
        match self.workers[worker].phase {
            Phase::BackingOff {
                next,
                sent,
                attempts,
            } => {
                self.workers[worker].phase = Phase::Attempting {
                    next,
                    sent,
                    attempts,
                };
                self.workers[worker].gen += 1;
                self.issue(worker, ctx);
            }
            Phase::Thinking => self.complete_txn(worker, ctx),
            Phase::Attempting { .. } => {}
        }
    }

    fn name(&self) -> &str {
        "netchain-client"
    }
}

/// An assembled NetChain deployment.
pub struct NcRack {
    /// The simulator.
    pub sim: Simulator<NcMsg>,
    /// The NetChain switch.
    pub switch: NodeId,
    /// Clients.
    pub clients: Vec<NodeId>,
}

/// Build a NetChain deployment with `slots` switch memory slots.
pub fn build_netchain<F>(
    seed: u64,
    slots: usize,
    client_cfg: NcClientConfig,
    sources: Vec<F>,
) -> NcRack
where
    F: TxnSource + 'static,
{
    let mut sim: Simulator<NcMsg> = Simulator::new(
        Topology::new(LinkConfig::with_delay(SimDuration::from_nanos(1_200))),
        seed,
    );
    let switch = sim.add_node(Box::new(NcSwitch::new(slots, SimDuration::from_nanos(500))));
    let mut clients = Vec::new();
    let mut seeder = SimRng::new(seed ^ 0x5EC7);
    for src in sources {
        let s = seeder.next_u64();
        clients.push(sim.add_node(Box::new(NcClient::new(
            client_cfg.clone(),
            switch,
            Box::new(src),
            s,
        ))));
    }
    NcRack {
        sim,
        switch,
        clients,
    }
}

/// Warmup, reset, measure, and aggregate into the shared result type.
pub fn measure_netchain(rack: &mut NcRack, warmup: SimDuration, measure: SimDuration) -> RunStats {
    rack.sim.run_for(warmup);
    for &c in &rack.clients {
        rack.sim.with_node::<NcClient, _>(c, |c| c.reset_stats());
    }
    rack.sim.run_for(measure);
    let mut out = RunStats {
        measured: measure,
        ..Default::default()
    };
    for &c in &rack.clients {
        rack.sim.read_node::<NcClient, _>(c, |c| {
            let s = c.stats();
            out.txns += s.txns;
            out.grants += s.grants;
            out.grants_switch += s.grants;
            out.retries += s.denials;
            out.lock_latency.merge(&s.wait_latency);
            out.txn_latency.merge(&s.txn_latency);
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_core::txn::SingleLockSource;
    use netlock_proto::{LockId, LockMode};

    fn sources(
        n: usize,
        locks: Vec<LockId>,
        mode: LockMode,
        think: SimDuration,
    ) -> Vec<SingleLockSource> {
        (0..n)
            .map(|_| SingleLockSource {
                locks: locks.clone(),
                mode,
                think,
            })
            .collect()
    }

    #[test]
    fn uncontended_grants_flow() {
        let mut rack = build_netchain(
            1,
            100_000,
            NcClientConfig {
                workers: 4,
                ..Default::default()
            },
            sources(
                2,
                (0..256).map(LockId).collect(),
                LockMode::Exclusive,
                SimDuration::ZERO,
            ),
        );
        let stats = measure_netchain(
            &mut rack,
            SimDuration::from_millis(2),
            SimDuration::from_millis(10),
        );
        assert!(stats.txns > 1_000, "txns = {}", stats.txns);
    }

    #[test]
    fn shared_treated_as_exclusive_causes_denials() {
        // All-shared traffic on one lock: a real lock manager would
        // grant everything concurrently; NetChain serializes it.
        let mut rack = build_netchain(
            2,
            100_000,
            NcClientConfig {
                workers: 8,
                ..Default::default()
            },
            sources(2, vec![LockId(0)], LockMode::Shared, SimDuration::ZERO),
        );
        let stats = measure_netchain(
            &mut rack,
            SimDuration::from_millis(2),
            SimDuration::from_millis(20),
        );
        assert!(stats.retries > 0, "shared-as-exclusive must cause denials");
    }

    #[test]
    fn coarse_granularity_causes_false_contention() {
        // Distinct locks but only 4 switch slots: collisions deny.
        let mut rack = build_netchain(
            3,
            4,
            NcClientConfig {
                workers: 8,
                ..Default::default()
            },
            sources(
                2,
                (0..1024).map(LockId).collect(),
                LockMode::Exclusive,
                SimDuration::ZERO,
            ),
        );
        let stats = measure_netchain(
            &mut rack,
            SimDuration::from_millis(2),
            SimDuration::from_millis(20),
        );
        assert!(stats.retries > 0, "hash collisions must cause denials");
    }

    #[test]
    fn release_frees_slot() {
        let mut rack = build_netchain(
            4,
            16,
            NcClientConfig {
                workers: 1,
                ..Default::default()
            },
            sources(1, vec![LockId(7)], LockMode::Exclusive, SimDuration::ZERO),
        );
        rack.sim.run_for(SimDuration::from_millis(5));
        // A single worker acquiring/releasing in a loop completes many
        // transactions — impossible unless releases free the slot.
        let txns = rack
            .sim
            .read_node::<NcClient, _>(rack.clients[0], |c| c.stats().txns);
        assert!(txns > 100, "txns = {txns}");
    }
}
