//! One-sided RDMA model for the DSLR and DrTM baselines.
//!
//! The paper's baselines run on Mellanox ConnectX-3 56G NICs. Clients
//! issue one-sided verbs (FETCH_ADD, COMPARE_SWAP, READ, WRITE) against
//! lock words in the server's memory; the server CPU is never involved —
//! which is precisely why these designs cannot enforce policies. The
//! model captures the two properties that govern baseline performance:
//!
//! - **Verb round trips.** Every verb costs a full client↔server RTT.
//! - **NIC processing bound.** The NIC executes verbs serially from its
//!   RX pipeline; ConnectX-3 sustains only a few million one-sided
//!   atomics per second (the well-known atomics bottleneck), modeled as
//!   a per-verb service time with a busy-until horizon.

use std::collections::HashMap;

use netlock_sim::{Context, Node, Packet, SimDuration};

/// RDMA verb messages (requests carry the issuing node implicitly; the
/// reply goes back to the packet's source).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RdmaMsg {
    /// FETCH_ADD: atomically add `add` to the 64-bit word at `addr`.
    FetchAdd {
        /// Target address (word-granular).
        addr: u64,
        /// Addend.
        add: u64,
        /// Caller-chosen correlation id, echoed in the reply.
        token: u64,
    },
    /// Reply to FETCH_ADD with the pre-add value.
    FetchAddReply {
        /// Target address.
        addr: u64,
        /// Value before the add.
        old: u64,
        /// Echoed correlation id.
        token: u64,
    },
    /// COMPARE_SWAP: if word == `expect`, set to `new`.
    CompareSwap {
        /// Target address.
        addr: u64,
        /// Expected value.
        expect: u64,
        /// Replacement value.
        new: u64,
        /// Correlation id.
        token: u64,
    },
    /// Reply to COMPARE_SWAP with the pre-op value (`old == expect`
    /// means the swap succeeded).
    CompareSwapReply {
        /// Target address.
        addr: u64,
        /// Value before the op.
        old: u64,
        /// Correlation id.
        token: u64,
    },
    /// One-sided READ of the word at `addr`.
    Read {
        /// Target address.
        addr: u64,
        /// Correlation id.
        token: u64,
    },
    /// Reply to READ.
    ReadReply {
        /// Target address.
        addr: u64,
        /// The value read.
        value: u64,
        /// Correlation id.
        token: u64,
    },
    /// One-sided WRITE.
    Write {
        /// Target address.
        addr: u64,
        /// Value to store.
        value: u64,
        /// Correlation id.
        token: u64,
    },
    /// Write completion.
    WriteReply {
        /// Correlation id.
        token: u64,
    },
}

/// RDMA NIC configuration.
#[derive(Clone, Debug)]
pub struct RdmaNicConfig {
    /// NIC service time per one-sided atomic (FA/CAS). ConnectX-3's
    /// atomics bottleneck ≈ 2.5 Mops → 400 ns.
    pub atomic_service: SimDuration,
    /// NIC service time per READ/WRITE (cheaper than atomics).
    pub rw_service: SimDuration,
}

impl Default for RdmaNicConfig {
    fn default() -> Self {
        RdmaNicConfig {
            atomic_service: SimDuration::from_nanos(400),
            rw_service: SimDuration::from_nanos(110),
        }
    }
}

/// NIC counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct RdmaNicStats {
    /// Atomics executed.
    pub atomics: u64,
    /// Reads/writes executed.
    pub reads_writes: u64,
    /// Total NIC-busy nanoseconds.
    pub busy_ns: u64,
}

/// The lock server's NIC + memory: executes verbs against lock words.
pub struct RdmaServer {
    cfg: RdmaNicConfig,
    memory: HashMap<u64, u64>,
    busy_until: u64,
    stats: RdmaNicStats,
}

impl RdmaServer {
    /// A server with empty (zeroed) memory.
    pub fn new(cfg: RdmaNicConfig) -> RdmaServer {
        RdmaServer {
            cfg,
            memory: HashMap::new(),
            busy_until: 0,
            stats: RdmaNicStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> RdmaNicStats {
        self.stats
    }

    /// Read a word directly (test/harness introspection).
    pub fn peek(&self, addr: u64) -> u64 {
        self.memory.get(&addr).copied().unwrap_or(0)
    }

    fn serve(&mut self, now_ns: u64, service: SimDuration) -> SimDuration {
        let start = self.busy_until.max(now_ns);
        let done = start + service.as_nanos();
        self.busy_until = done;
        self.stats.busy_ns += service.as_nanos();
        SimDuration::from_nanos(done - now_ns)
    }
}

impl Node<RdmaMsg> for RdmaServer {
    fn on_packet(&mut self, pkt: Packet<RdmaMsg>, ctx: &mut Context<'_, RdmaMsg>) {
        let now = ctx.now().as_nanos();
        match pkt.payload {
            RdmaMsg::FetchAdd { addr, add, token } => {
                let delay = self.serve(now, self.cfg.atomic_service);
                self.stats.atomics += 1;
                let word = self.memory.entry(addr).or_insert(0);
                let old = *word;
                *word = word.wrapping_add(add);
                ctx.send_after(pkt.src, RdmaMsg::FetchAddReply { addr, old, token }, delay);
            }
            RdmaMsg::CompareSwap {
                addr,
                expect,
                new,
                token,
            } => {
                let delay = self.serve(now, self.cfg.atomic_service);
                self.stats.atomics += 1;
                let word = self.memory.entry(addr).or_insert(0);
                let old = *word;
                if old == expect {
                    *word = new;
                }
                ctx.send_after(
                    pkt.src,
                    RdmaMsg::CompareSwapReply { addr, old, token },
                    delay,
                );
            }
            RdmaMsg::Read { addr, token } => {
                let delay = self.serve(now, self.cfg.rw_service);
                self.stats.reads_writes += 1;
                let value = self.peek(addr);
                ctx.send_after(pkt.src, RdmaMsg::ReadReply { addr, value, token }, delay);
            }
            RdmaMsg::Write { addr, value, token } => {
                let delay = self.serve(now, self.cfg.rw_service);
                self.stats.reads_writes += 1;
                self.memory.insert(addr, value);
                ctx.send_after(pkt.src, RdmaMsg::WriteReply { token }, delay);
            }
            // Replies are never addressed to the server.
            _ => {}
        }
    }

    fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_, RdmaMsg>) {}

    fn name(&self) -> &str {
        "rdma-server"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_sim::{NodeId, SimTime, Simulator};

    struct Collector(Vec<RdmaMsg>);
    impl Node<RdmaMsg> for Collector {
        fn on_packet(&mut self, pkt: Packet<RdmaMsg>, _ctx: &mut Context<'_, RdmaMsg>) {
            self.0.push(pkt.payload);
        }
        fn on_timer(&mut self, _t: u64, _c: &mut Context<'_, RdmaMsg>) {}
    }

    fn setup() -> (Simulator<RdmaMsg>, NodeId, NodeId) {
        let mut sim: Simulator<RdmaMsg> = Simulator::with_seed(3);
        let client = sim.add_node(Box::new(Collector(Vec::new())));
        let server = sim.add_node(Box::new(RdmaServer::new(RdmaNicConfig::default())));
        (sim, client, server)
    }

    #[test]
    fn fetch_add_returns_old_and_accumulates() {
        let (mut sim, client, server) = setup();
        sim.inject(
            client,
            server,
            RdmaMsg::FetchAdd {
                addr: 8,
                add: 5,
                token: 1,
            },
        );
        sim.inject(
            client,
            server,
            RdmaMsg::FetchAdd {
                addr: 8,
                add: 3,
                token: 2,
            },
        );
        sim.run_until(SimTime(10_000_000));
        sim.read_node::<Collector, _>(client, |c| {
            assert_eq!(
                c.0,
                vec![
                    RdmaMsg::FetchAddReply {
                        addr: 8,
                        old: 0,
                        token: 1
                    },
                    RdmaMsg::FetchAddReply {
                        addr: 8,
                        old: 5,
                        token: 2
                    },
                ]
            );
        });
        sim.read_node::<RdmaServer, _>(server, |s| assert_eq!(s.peek(8), 8));
    }

    #[test]
    fn cas_success_and_failure() {
        let (mut sim, client, server) = setup();
        sim.inject(
            client,
            server,
            RdmaMsg::CompareSwap {
                addr: 1,
                expect: 0,
                new: 42,
                token: 1,
            },
        );
        sim.inject(
            client,
            server,
            RdmaMsg::CompareSwap {
                addr: 1,
                expect: 0,
                new: 99,
                token: 2,
            },
        );
        sim.run_until(SimTime(10_000_000));
        sim.read_node::<Collector, _>(client, |c| {
            assert_eq!(
                c.0[0],
                RdmaMsg::CompareSwapReply {
                    addr: 1,
                    old: 0,
                    token: 1
                }
            );
            assert_eq!(
                c.0[1],
                RdmaMsg::CompareSwapReply {
                    addr: 1,
                    old: 42,
                    token: 2
                }
            );
        });
        sim.read_node::<RdmaServer, _>(server, |s| assert_eq!(s.peek(1), 42));
    }

    #[test]
    fn read_write_roundtrip() {
        let (mut sim, client, server) = setup();
        sim.inject(
            client,
            server,
            RdmaMsg::Write {
                addr: 7,
                value: 11,
                token: 1,
            },
        );
        sim.inject(client, server, RdmaMsg::Read { addr: 7, token: 2 });
        sim.run_until(SimTime(10_000_000));
        sim.read_node::<Collector, _>(client, |c| {
            assert!(matches!(c.0[1], RdmaMsg::ReadReply { value: 11, .. }));
        });
    }

    #[test]
    fn nic_serializes_atomics() {
        let (mut sim, client, server) = setup();
        // 100 atomics arriving together take 100 × 400 ns of NIC time.
        for i in 0..100 {
            sim.inject(
                client,
                server,
                RdmaMsg::FetchAdd {
                    addr: 1,
                    add: 1,
                    token: i,
                },
            );
        }
        sim.run_until(SimTime(10_000_000));
        let busy = sim.read_node::<RdmaServer, _>(server, |s| s.stats().busy_ns);
        assert_eq!(busy, 100 * 400);
        sim.read_node::<RdmaServer, _>(server, |s| assert_eq!(s.peek(1), 100));
    }
}
