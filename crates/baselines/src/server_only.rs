//! Traditional server-only centralized lock manager.
//!
//! This is the "centralized, server-based" corner of the paper's design
//! space (Figure 1) and the right-hand bars of Figure 9: the same
//! NetLock rack, but with *zero* locks in the switch — the ToR switch
//! only routes, every request is processed by a lock-server CPU. Reuses
//! the full `netlock-core` stack, so the only difference from NetLock
//! is the allocation.

use netlock_core::prelude::*;
use netlock_proto::LockId;
use netlock_server::ServerConfig;

/// Build a server-only rack: all of `locks` are server-resident,
/// spread round-robin over `lock_servers` servers with `cores` each.
pub fn build_server_only(seed: u64, lock_servers: usize, cores: usize, locks: &[LockId]) -> Rack {
    let mut rack = Rack::build(RackConfig {
        seed,
        lock_servers,
        server: ServerConfig {
            cores,
            ..Default::default()
        },
        ..Default::default()
    });
    let stats: Vec<LockStats> = locks
        .iter()
        .enumerate()
        .map(|(i, &lock)| LockStats {
            lock,
            rate: 1.0,
            contention: 1,
            home_server: i % lock_servers,
        })
        .collect();
    // Capacity 0 → everything lands in `in_server`.
    let alloc = knapsack_allocate(&stats, 0);
    rack.program(&alloc);
    rack
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_proto::LockMode;

    #[test]
    fn all_grants_come_from_servers() {
        let locks: Vec<LockId> = (0..32).map(LockId).collect();
        let mut rack = build_server_only(1, 2, 8, &locks);
        for _ in 0..2 {
            rack.add_txn_client(
                TxnClientConfig {
                    workers: 4,
                    ..Default::default()
                },
                Box::new(SingleLockSource {
                    locks: locks.clone(),
                    mode: LockMode::Exclusive,
                    think: SimDuration::ZERO,
                }),
            );
        }
        let stats = warmup_and_measure(
            &mut rack,
            SimDuration::from_millis(2),
            SimDuration::from_millis(10),
        );
        assert!(stats.txns > 200, "txns = {}", stats.txns);
        assert_eq!(stats.grants_switch, 0);
        assert_eq!(stats.grants_server, stats.grants);
    }

    #[test]
    fn server_cpu_bound_scales_with_cores() {
        let locks: Vec<LockId> = (0..512).map(LockId).collect();
        let run = |cores: usize| {
            let mut rack = build_server_only(2, 1, cores, &locks);
            for _ in 0..4 {
                rack.add_txn_client(
                    TxnClientConfig {
                        workers: 64,
                        ..Default::default()
                    },
                    Box::new(SingleLockSource {
                        locks: locks.clone(),
                        mode: LockMode::Exclusive,
                        think: SimDuration::ZERO,
                    }),
                );
            }
            warmup_and_measure(
                &mut rack,
                SimDuration::from_millis(2),
                SimDuration::from_millis(10),
            )
            .lock_rps()
        };
        let one = run(1);
        let eight = run(8);
        assert!(
            eight > one * 3.0,
            "8 cores should be much faster: 1 core {one} vs 8 cores {eight}"
        );
    }
}
