//! DSLR baseline (Yoon, Chowdhury, Mozafari — SIGMOD 2018).
//!
//! DSLR is the state-of-the-art decentralized lock manager the paper
//! compares against: it adapts Lamport's bakery algorithm to RDMA so
//! that a single FETCH_ADD both takes a ticket and reports whether the
//! lock is免 available, giving FCFS without a server CPU.
//!
//! Lock word layout (64 bits, four 16-bit lanes, as in the DSLR paper):
//!
//! ```text
//! | max_x (48..64) | max_s (32..48) | now_x (16..32) | now_s (0..16) |
//! ```
//!
//! - Exclusive acquire: FA(1 << 48); proceed when `now_x == old.max_x`
//!   and `now_s == old.max_s`.
//! - Shared acquire: FA(1 << 32); proceed when `now_x == old.max_x`.
//! - Exclusive release: FA(1 << 16). Shared release: FA(1).
//!
//! A worker whose FA reply says the lock is taken polls the word with
//! one-sided READs every `poll_interval`. The two costs that cap DSLR —
//! the NIC atomics bottleneck and poll traffic amplification under
//! contention — both emerge from the [`crate::rdma`] model.

use netlock_core::harness::RunStats;
use netlock_core::txn::{LockNeed, Transaction, TxnSource};
use netlock_proto::LockMode;
use netlock_sim::{
    Context, Histogram, LinkConfig, Node, NodeId, Packet, SimDuration, SimRng, SimTime, Simulator,
    Topology,
};

use crate::rdma::{RdmaMsg, RdmaNicConfig, RdmaServer};

const LANE_MAX_X: u32 = 48;
const LANE_MAX_S: u32 = 32;
const LANE_NOW_X: u32 = 16;
const LANE_NOW_S: u32 = 0;

#[inline]
fn lane(word: u64, shift: u32) -> u16 {
    (word >> shift) as u16
}

/// Whether the bakery condition for `mode` with tickets `(tx, ts)` is
/// satisfied by `word`.
#[inline]
fn bakery_ready(word: u64, mode: LockMode, ticket_x: u16, ticket_s: u16) -> bool {
    match mode {
        LockMode::Shared => lane(word, LANE_NOW_X) == ticket_x,
        LockMode::Exclusive => {
            lane(word, LANE_NOW_X) == ticket_x && lane(word, LANE_NOW_S) == ticket_s
        }
    }
}

/// DSLR client configuration.
#[derive(Clone, Debug)]
pub struct DslrClientConfig {
    /// Concurrent transaction contexts.
    pub workers: usize,
    /// Client-side processing per verb issue (RDMA bypasses the kernel).
    pub tx_delay: SimDuration,
    /// Client-side processing per completion.
    pub rx_delay: SimDuration,
    /// Poll interval while waiting on a ticket.
    pub poll_interval: SimDuration,
}

impl Default for DslrClientConfig {
    fn default() -> Self {
        DslrClientConfig {
            workers: 16,
            tx_delay: SimDuration::from_nanos(900),
            rx_delay: SimDuration::from_nanos(900),
            poll_interval: SimDuration::from_micros(5),
        }
    }
}

/// DSLR client counters.
#[derive(Clone, Debug, Default)]
pub struct DslrClientStats {
    /// Transactions completed.
    pub txns: u64,
    /// Locks acquired.
    pub grants: u64,
    /// Poll READs issued.
    pub polls: u64,
    /// Transaction latency (ns).
    pub txn_latency: Histogram,
    /// Per-lock wait latency (ns).
    pub wait_latency: Histogram,
}

#[derive(Debug)]
enum Phase {
    /// FA issued, waiting for the reply.
    TakingTicket {
        next: usize,
        sent: SimTime,
    },
    /// Ticket held but lock busy; polling.
    Waiting {
        next: usize,
        sent: SimTime,
        ticket_x: u16,
        ticket_s: u16,
    },
    Thinking,
}

#[derive(Debug)]
struct Worker {
    txn: Transaction,
    started: SimTime,
    phase: Phase,
    held: Vec<LockNeed>,
    gen: u64,
}

/// The DSLR client node.
pub struct DslrClient {
    cfg: DslrClientConfig,
    servers: Vec<NodeId>,
    source: Box<dyn TxnSource>,
    workers: Vec<Worker>,
    rng: SimRng,
    stats: DslrClientStats,
}

const GEN_BITS: u32 = 40;

impl DslrClient {
    /// A client that spreads lock words over `servers` by lock hash.
    pub fn new(
        cfg: DslrClientConfig,
        servers: Vec<NodeId>,
        source: Box<dyn TxnSource>,
        seed: u64,
    ) -> DslrClient {
        assert!(!servers.is_empty(), "need at least one RDMA server");
        assert!(cfg.workers > 0);
        DslrClient {
            cfg,
            servers,
            source,
            workers: Vec::new(),
            rng: SimRng::new(seed),
            stats: DslrClientStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> &DslrClientStats {
        &self.stats
    }

    /// Clear measurement state.
    pub fn reset_stats(&mut self) {
        self.stats = DslrClientStats::default();
    }

    fn server_of(&self, addr: u64) -> NodeId {
        let i = (addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % self.servers.len();
        self.servers[i]
    }

    fn token(&self, worker: usize) -> u64 {
        ((worker as u64) << GEN_BITS) | (self.workers[worker].gen & ((1 << GEN_BITS) - 1))
    }

    fn bump(&mut self, worker: usize) {
        self.workers[worker].gen += 1;
    }

    fn start_next_txn(&mut self, worker: usize, ctx: &mut Context<'_, RdmaMsg>) {
        loop {
            let txn = self.source.next_txn(&mut self.rng);
            let w = &mut self.workers[worker];
            w.held.clear();
            w.started = ctx.now();
            if txn.locks.is_empty() {
                self.stats.txns += 1;
                self.stats.txn_latency.record(0);
                continue;
            }
            w.txn = txn;
            w.phase = Phase::TakingTicket {
                next: 0,
                sent: ctx.now(),
            };
            self.bump(worker);
            self.issue_fa(worker, ctx);
            return;
        }
    }

    fn issue_fa(&mut self, worker: usize, ctx: &mut Context<'_, RdmaMsg>) {
        let (next, _) = match self.workers[worker].phase {
            Phase::TakingTicket { next, sent } => (next, sent),
            _ => return,
        };
        let need = self.workers[worker].txn.locks[next];
        let addr = need.lock.0 as u64;
        let add = match need.mode {
            LockMode::Exclusive => 1u64 << LANE_MAX_X,
            LockMode::Shared => 1u64 << LANE_MAX_S,
        };
        let token = self.token(worker);
        let dst = self.server_of(addr);
        ctx.send_after(
            dst,
            RdmaMsg::FetchAdd { addr, add, token },
            self.cfg.tx_delay,
        );
    }

    fn issue_poll(&mut self, worker: usize, ctx: &mut Context<'_, RdmaMsg>) {
        let Phase::Waiting { next, .. } = self.workers[worker].phase else {
            return;
        };
        let need = self.workers[worker].txn.locks[next];
        let addr = need.lock.0 as u64;
        let token = self.token(worker);
        self.stats.polls += 1;
        ctx.send_after(
            self.server_of(addr),
            RdmaMsg::Read { addr, token },
            self.cfg.tx_delay,
        );
    }

    fn lock_acquired(&mut self, worker: usize, ctx: &mut Context<'_, RdmaMsg>) {
        let (next, sent) = match self.workers[worker].phase {
            Phase::TakingTicket { next, sent } | Phase::Waiting { next, sent, .. } => (next, sent),
            Phase::Thinking => return,
        };
        self.stats.grants += 1;
        self.stats
            .wait_latency
            .record(ctx.now().as_nanos() - sent.as_nanos() + self.cfg.rx_delay.as_nanos());
        let need = self.workers[worker].txn.locks[next];
        self.workers[worker].held.push(need);
        let lock_count = self.workers[worker].txn.locks.len();
        if next + 1 < lock_count {
            self.workers[worker].phase = Phase::TakingTicket {
                next: next + 1,
                sent: ctx.now(),
            };
            self.bump(worker);
            self.issue_fa(worker, ctx);
        } else {
            let think = self.workers[worker].txn.think;
            self.workers[worker].phase = Phase::Thinking;
            self.bump(worker);
            if think.is_zero() {
                self.complete_txn(worker, ctx);
            } else {
                let token = self.token(worker);
                ctx.set_timer(self.cfg.rx_delay + think, token);
            }
        }
    }

    fn complete_txn(&mut self, worker: usize, ctx: &mut Context<'_, RdmaMsg>) {
        let held = self.workers[worker].held.clone();
        for need in held {
            let addr = need.lock.0 as u64;
            let add = match need.mode {
                LockMode::Exclusive => 1u64 << LANE_NOW_X,
                LockMode::Shared => 1u64 << LANE_NOW_S,
            };
            // Release replies are ignored; use a sentinel token.
            ctx.send_after(
                self.server_of(addr),
                RdmaMsg::FetchAdd {
                    addr,
                    add,
                    token: u64::MAX,
                },
                self.cfg.tx_delay,
            );
        }
        self.workers[worker].held.clear();
        let started = self.workers[worker].started;
        self.stats.txns += 1;
        self.stats
            .txn_latency
            .record(ctx.now().as_nanos() - started.as_nanos());
        self.start_next_txn(worker, ctx);
    }

    fn on_reply(&mut self, msg: RdmaMsg, ctx: &mut Context<'_, RdmaMsg>) {
        let token = match msg {
            RdmaMsg::FetchAddReply { token, .. }
            | RdmaMsg::ReadReply { token, .. }
            | RdmaMsg::CompareSwapReply { token, .. }
            | RdmaMsg::WriteReply { token } => token,
            _ => return,
        };
        if token == u64::MAX {
            return; // release completion
        }
        let worker = (token >> GEN_BITS) as usize;
        if worker >= self.workers.len() {
            return;
        }
        if (self.workers[worker].gen & ((1 << GEN_BITS) - 1)) != (token & ((1 << GEN_BITS) - 1)) {
            return; // stale completion
        }
        match (msg, &self.workers[worker].phase) {
            (RdmaMsg::FetchAddReply { old, .. }, Phase::TakingTicket { next, sent }) => {
                let (next, sent) = (*next, *sent);
                let need = self.workers[worker].txn.locks[next];
                let ticket_x = lane(old, LANE_MAX_X);
                let ticket_s = lane(old, LANE_MAX_S);
                if bakery_ready(old, need.mode, ticket_x, ticket_s) {
                    self.lock_acquired(worker, ctx);
                } else {
                    self.workers[worker].phase = Phase::Waiting {
                        next,
                        sent,
                        ticket_x,
                        ticket_s,
                    };
                    self.bump(worker);
                    let token = self.token(worker);
                    ctx.set_timer(self.cfg.poll_interval, token);
                }
            }
            (
                RdmaMsg::ReadReply { value, .. },
                Phase::Waiting {
                    ticket_x,
                    ticket_s,
                    next,
                    ..
                },
            ) => {
                let (tx, ts, next) = (*ticket_x, *ticket_s, *next);
                let need = self.workers[worker].txn.locks[next];
                if bakery_ready(value, need.mode, tx, ts) {
                    self.lock_acquired(worker, ctx);
                } else {
                    let token = self.token(worker);
                    ctx.set_timer(self.cfg.poll_interval, token);
                }
            }
            _ => {}
        }
    }
}

impl Node<RdmaMsg> for DslrClient {
    fn on_start(&mut self, ctx: &mut Context<'_, RdmaMsg>) {
        for _ in 0..self.cfg.workers {
            self.workers.push(Worker {
                txn: Transaction::new(vec![], SimDuration::ZERO),
                started: ctx.now(),
                phase: Phase::Thinking,
                held: Vec::new(),
                gen: 0,
            });
        }
        for w in 0..self.cfg.workers {
            self.start_next_txn(w, ctx);
        }
    }

    fn on_packet(&mut self, pkt: Packet<RdmaMsg>, ctx: &mut Context<'_, RdmaMsg>) {
        self.on_reply(pkt.payload, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, RdmaMsg>) {
        let worker = (token >> GEN_BITS) as usize;
        if worker >= self.workers.len()
            || (self.workers[worker].gen & ((1 << GEN_BITS) - 1)) != (token & ((1 << GEN_BITS) - 1))
        {
            return;
        }
        match self.workers[worker].phase {
            Phase::Waiting { .. } => self.issue_poll(worker, ctx),
            Phase::Thinking => self.complete_txn(worker, ctx),
            Phase::TakingTicket { .. } => {}
        }
    }

    fn name(&self) -> &str {
        "dslr-client"
    }
}

/// An assembled DSLR deployment.
pub struct DslrRack {
    /// The simulator.
    pub sim: Simulator<RdmaMsg>,
    /// RDMA lock servers.
    pub servers: Vec<NodeId>,
    /// Clients.
    pub clients: Vec<NodeId>,
}

/// Build a DSLR deployment: `n_servers` RDMA lock servers and one
/// client per element of `sources`.
pub fn build_dslr<F>(
    seed: u64,
    n_servers: usize,
    client_cfg: DslrClientConfig,
    nic: RdmaNicConfig,
    sources: Vec<F>,
) -> DslrRack
where
    F: TxnSource + 'static,
{
    let mut sim: Simulator<RdmaMsg> = Simulator::new(
        Topology::new(LinkConfig::with_delay(SimDuration::from_nanos(1_200))),
        seed,
    );
    let mut servers = Vec::new();
    for _ in 0..n_servers {
        servers.push(sim.add_node(Box::new(RdmaServer::new(nic.clone()))));
    }
    let mut clients = Vec::new();
    let mut seeder = SimRng::new(seed ^ 0xD51A);
    for src in sources {
        let s = seeder.next_u64();
        clients.push(sim.add_node(Box::new(DslrClient::new(
            client_cfg.clone(),
            servers.clone(),
            Box::new(src),
            s,
        ))));
    }
    DslrRack {
        sim,
        servers,
        clients,
    }
}

/// Warmup, reset, measure, and aggregate into the shared result type.
pub fn measure_dslr(rack: &mut DslrRack, warmup: SimDuration, measure: SimDuration) -> RunStats {
    rack.sim.run_for(warmup);
    for &c in &rack.clients {
        rack.sim.with_node::<DslrClient, _>(c, |c| c.reset_stats());
    }
    rack.sim.run_for(measure);
    let mut out = RunStats {
        measured: measure,
        ..Default::default()
    };
    for &c in &rack.clients {
        rack.sim.read_node::<DslrClient, _>(c, |c| {
            let s = c.stats();
            out.txns += s.txns;
            out.grants += s.grants;
            out.grants_server += s.grants;
            out.lock_latency.merge(&s.wait_latency);
            out.txn_latency.merge(&s.txn_latency);
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_core::txn::SingleLockSource;
    use netlock_proto::LockId;

    fn sources(
        n: usize,
        locks: Vec<LockId>,
        mode: LockMode,
        think: SimDuration,
    ) -> Vec<SingleLockSource> {
        (0..n)
            .map(|_| SingleLockSource {
                locks: locks.clone(),
                mode,
                think,
            })
            .collect()
    }

    #[test]
    fn uncontended_locks_flow() {
        let mut rack = build_dslr(
            1,
            1,
            DslrClientConfig {
                workers: 4,
                ..Default::default()
            },
            RdmaNicConfig::default(),
            sources(
                2,
                (0..64).map(LockId).collect(),
                LockMode::Exclusive,
                SimDuration::ZERO,
            ),
        );
        let stats = measure_dslr(
            &mut rack,
            SimDuration::from_millis(2),
            SimDuration::from_millis(10),
        );
        assert!(stats.txns > 500, "txns = {}", stats.txns);
        assert_eq!(stats.grants, stats.txns, "one lock per txn");
    }

    #[test]
    fn fcfs_under_contention_still_progresses() {
        let mut rack = build_dslr(
            2,
            1,
            DslrClientConfig {
                workers: 8,
                ..Default::default()
            },
            RdmaNicConfig::default(),
            sources(2, vec![LockId(0)], LockMode::Exclusive, SimDuration::ZERO),
        );
        let stats = measure_dslr(
            &mut rack,
            SimDuration::from_millis(5),
            SimDuration::from_millis(20),
        );
        assert!(stats.txns > 100, "contended txns = {}", stats.txns);
        // Waiting shows up as polls and higher wait latency.
        let polls: u64 = rack
            .clients
            .iter()
            .map(|&c| rack.sim.read_node::<DslrClient, _>(c, |c| c.stats().polls))
            .sum();
        assert!(polls > 0, "contention must trigger polling");
    }

    #[test]
    fn shared_locks_coexist() {
        let mut rack = build_dslr(
            3,
            1,
            DslrClientConfig {
                workers: 8,
                ..Default::default()
            },
            RdmaNicConfig::default(),
            sources(2, vec![LockId(0)], LockMode::Shared, SimDuration::ZERO),
        );
        let stats = measure_dslr(
            &mut rack,
            SimDuration::from_millis(2),
            SimDuration::from_millis(10),
        );
        // Shared same-lock workload: no bakery waits, high throughput.
        let polls: u64 = rack
            .clients
            .iter()
            .map(|&c| rack.sim.read_node::<DslrClient, _>(c, |c| c.stats().polls))
            .sum();
        assert!(stats.txns > 1_000, "txns = {}", stats.txns);
        assert_eq!(polls, 0, "pure shared traffic never waits");
    }

    #[test]
    fn nic_bound_caps_throughput() {
        // One lock server, very slow NIC: throughput must be ≈ NIC rate
        // divided by verbs per txn (2: acquire FA + release FA).
        let nic = RdmaNicConfig {
            atomic_service: SimDuration::from_micros(10), // 100 Kops
            rw_service: SimDuration::from_micros(10),
        };
        let mut rack = build_dslr(
            4,
            1,
            DslrClientConfig {
                workers: 16,
                ..Default::default()
            },
            nic,
            sources(
                4,
                (0..1024).map(LockId).collect(),
                LockMode::Exclusive,
                SimDuration::ZERO,
            ),
        );
        let stats = measure_dslr(
            &mut rack,
            SimDuration::from_millis(5),
            SimDuration::from_millis(20),
        );
        let tps = stats.tps();
        assert!(
            tps < 60_000.0,
            "NIC at 100 Kops with 2 verbs/txn caps ~50 KTPS, got {tps}"
        );
        assert!(tps > 20_000.0, "but it should approach the cap: {tps}");
    }
}
