//! DrTM baseline (Wei et al. — SOSP 2015).
//!
//! DrTM combines HTM with RDMA; its remote concurrency control is what
//! the paper compares against:
//!
//! - **Write locks**: a one-sided COMPARE_SWAP(0 → tag) on the lock
//!   word, *fail-and-retry* with backoff when held (no queue, no FCFS —
//!   the blind-retry corner of the paper's Figure 1 design space).
//!   Release is a WRITE 0.
//! - **Reads**: lease-based and optimistic — a one-sided READ proceeds
//!   if no writer holds the word and leaves no server-side state.
//! - **Validation**: at the end of the execution phase the transaction
//!   re-READs its read set; if a writer has taken any word, the whole
//!   transaction **aborts**: write locks are released, and the
//!   transaction retries from scratch after a backoff.
//!
//! Under contention this burns verbs on retries and aborts and has no
//! fairness, which is the mechanism behind the paper's up-to-653×
//! 99th-percentile tail gap.

use netlock_core::harness::RunStats;
use netlock_core::txn::{LockNeed, Transaction, TxnSource};
use netlock_proto::LockMode;
use netlock_sim::{
    Context, Histogram, LinkConfig, Node, NodeId, Packet, SimDuration, SimRng, SimTime, Simulator,
    Topology,
};

use crate::rdma::{RdmaMsg, RdmaNicConfig, RdmaServer};

/// DrTM client configuration.
#[derive(Clone, Debug)]
pub struct DrtmClientConfig {
    /// Concurrent transaction contexts.
    pub workers: usize,
    /// Client-side processing per verb issue.
    pub tx_delay: SimDuration,
    /// Client-side processing per completion.
    pub rx_delay: SimDuration,
    /// Base retry backoff; doubles per consecutive failure up to
    /// `backoff_cap`.
    pub backoff_base: SimDuration,
    /// Maximum backoff.
    pub backoff_cap: SimDuration,
}

impl Default for DrtmClientConfig {
    fn default() -> Self {
        DrtmClientConfig {
            workers: 16,
            tx_delay: SimDuration::from_nanos(900),
            rx_delay: SimDuration::from_nanos(900),
            backoff_base: SimDuration::from_micros(5),
            backoff_cap: SimDuration::from_micros(320),
        }
    }
}

/// DrTM client counters.
#[derive(Clone, Debug, Default)]
pub struct DrtmClientStats {
    /// Transactions committed.
    pub txns: u64,
    /// Locks/reads acquired (validated reads count once).
    pub grants: u64,
    /// Failed lock/read attempts (CAS lost or read saw a writer).
    pub conflicts: u64,
    /// Whole-transaction aborts (read validation failed).
    pub aborts: u64,
    /// Transaction latency (ns), committed transactions only, measured
    /// from first attempt (includes aborted tries — the paper's tail).
    pub txn_latency: Histogram,
    /// Per-lock wait latency (ns).
    pub wait_latency: Histogram,
}

#[derive(Clone, Copy, Debug)]
enum Phase {
    /// CAS (exclusive) or READ (shared) in flight for lock `next`.
    Attempting {
        next: usize,
        sent: SimTime,
        attempts: u32,
    },
    /// Backing off before retrying lock `next`.
    BackingOff {
        next: usize,
        sent: SimTime,
        attempts: u32,
    },
    /// Executing (think time) with all locks/reads in hand.
    Thinking,
    /// Re-reading the read set; `next` indexes the shared subset.
    Validating { next: usize },
    /// Backing off before retrying the whole transaction after an abort.
    AbortBackoff,
}

#[derive(Debug)]
struct Worker {
    txn: Transaction,
    txn_tag: u64,
    /// First attempt of the current transaction (latency anchor).
    started: SimTime,
    phase: Phase,
    /// Exclusive locks currently held (to release on commit/abort).
    write_locks: Vec<LockNeed>,
    /// Shared reads performed (to validate at commit).
    read_set: Vec<LockNeed>,
    gen: u64,
    /// Consecutive aborts of the current transaction.
    abort_attempts: u32,
}

/// The DrTM client node.
pub struct DrtmClient {
    cfg: DrtmClientConfig,
    servers: Vec<NodeId>,
    source: Box<dyn TxnSource>,
    workers: Vec<Worker>,
    rng: SimRng,
    next_tag: u64,
    stats: DrtmClientStats,
}

const GEN_BITS: u32 = 40;

impl DrtmClient {
    /// A client that spreads lock words over `servers` by lock hash.
    pub fn new(
        cfg: DrtmClientConfig,
        servers: Vec<NodeId>,
        source: Box<dyn TxnSource>,
        seed: u64,
    ) -> DrtmClient {
        assert!(!servers.is_empty());
        assert!(cfg.workers > 0);
        DrtmClient {
            cfg,
            servers,
            source,
            workers: Vec::new(),
            rng: SimRng::new(seed),
            next_tag: 1,
            stats: DrtmClientStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> &DrtmClientStats {
        &self.stats
    }

    /// Clear measurement state.
    pub fn reset_stats(&mut self) {
        self.stats = DrtmClientStats::default();
    }

    fn server_of(&self, addr: u64) -> NodeId {
        let i = (addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % self.servers.len();
        self.servers[i]
    }

    fn token(&self, worker: usize) -> u64 {
        ((worker as u64) << GEN_BITS) | (self.workers[worker].gen & ((1 << GEN_BITS) - 1))
    }

    /// Per-verb client-side jitter (CPU scheduling, doorbell timing).
    /// Without it the deterministic simulator lets a releasing worker
    /// re-CAS in the same instant as its release WRITE, which would give
    /// it an artificial permanent monopoly.
    fn verb_jitter(&mut self) -> SimDuration {
        SimDuration::from_nanos(self.rng.next_below(400))
    }

    fn backoff(&mut self, attempts: u32) -> SimDuration {
        let factor = 1u64 << attempts.min(8);
        let raw = self.cfg.backoff_base.as_nanos().saturating_mul(factor);
        let capped = raw.min(self.cfg.backoff_cap.as_nanos());
        // Jitter ±25% to break synchronized retries.
        let jitter = capped / 4;
        let lo = capped - jitter;
        SimDuration::from_nanos(lo + self.rng.next_below(jitter.max(1) * 2))
    }

    fn start_next_txn(&mut self, worker: usize, ctx: &mut Context<'_, RdmaMsg>) {
        loop {
            let txn = self.source.next_txn(&mut self.rng);
            let tag = self.next_tag;
            self.next_tag += 1;
            let me = ctx.self_id();
            let w = &mut self.workers[worker];
            w.write_locks.clear();
            w.read_set.clear();
            w.started = ctx.now();
            w.abort_attempts = 0;
            w.txn_tag = (u64::from(me.0) << 40) | tag;
            if txn.locks.is_empty() {
                self.stats.txns += 1;
                self.stats.txn_latency.record(0);
                continue;
            }
            w.txn = txn;
            w.phase = Phase::Attempting {
                next: 0,
                sent: ctx.now(),
                attempts: 0,
            };
            w.gen += 1;
            self.issue_attempt(worker, ctx);
            return;
        }
    }

    /// Retry the same transaction after an abort (keeps `started` so the
    /// committed latency includes the aborted tries).
    fn restart_txn(&mut self, worker: usize, ctx: &mut Context<'_, RdmaMsg>) {
        let w = &mut self.workers[worker];
        w.write_locks.clear();
        w.read_set.clear();
        w.phase = Phase::Attempting {
            next: 0,
            sent: ctx.now(),
            attempts: 0,
        };
        w.gen += 1;
        self.issue_attempt(worker, ctx);
    }

    fn issue_attempt(&mut self, worker: usize, ctx: &mut Context<'_, RdmaMsg>) {
        let Phase::Attempting { next, .. } = self.workers[worker].phase else {
            return;
        };
        let need = self.workers[worker].txn.locks[next];
        let addr = need.lock.0 as u64;
        let token = self.token(worker);
        let tag = self.workers[worker].txn_tag;
        let msg = match need.mode {
            // Exclusive: blind CAS 0 → tag.
            LockMode::Exclusive => RdmaMsg::CompareSwap {
                addr,
                expect: 0,
                new: tag,
                token,
            },
            // Shared: optimistic lease read — proceed if writer-free.
            LockMode::Shared => RdmaMsg::Read { addr, token },
        };
        let delay = self.cfg.tx_delay + self.verb_jitter();
        ctx.send_after(self.server_of(addr), msg, delay);
    }

    fn issue_validation(&mut self, worker: usize, ctx: &mut Context<'_, RdmaMsg>) {
        let Phase::Validating { next } = self.workers[worker].phase else {
            return;
        };
        let need = self.workers[worker].read_set[next];
        let addr = need.lock.0 as u64;
        let token = self.token(worker);
        let delay = self.cfg.tx_delay + self.verb_jitter();
        ctx.send_after(self.server_of(addr), RdmaMsg::Read { addr, token }, delay);
    }

    fn release_write_locks(&mut self, worker: usize, ctx: &mut Context<'_, RdmaMsg>) {
        let held = self.workers[worker].write_locks.clone();
        for need in held {
            let addr = need.lock.0 as u64;
            let delay = self.cfg.tx_delay + self.verb_jitter();
            ctx.send_after(
                self.server_of(addr),
                RdmaMsg::Write {
                    addr,
                    value: 0,
                    token: u64::MAX,
                },
                delay,
            );
        }
        self.workers[worker].write_locks.clear();
    }

    fn begin_execution(&mut self, worker: usize, ctx: &mut Context<'_, RdmaMsg>) {
        let think = self.workers[worker].txn.think;
        self.workers[worker].phase = Phase::Thinking;
        self.workers[worker].gen += 1;
        if think.is_zero() {
            self.begin_validation(worker, ctx);
        } else {
            let token = self.token(worker);
            ctx.set_timer(self.cfg.rx_delay + think, token);
        }
    }

    fn begin_validation(&mut self, worker: usize, ctx: &mut Context<'_, RdmaMsg>) {
        if self.workers[worker].read_set.is_empty() {
            self.commit(worker, ctx);
            return;
        }
        self.workers[worker].phase = Phase::Validating { next: 0 };
        self.workers[worker].gen += 1;
        self.issue_validation(worker, ctx);
    }

    fn commit(&mut self, worker: usize, ctx: &mut Context<'_, RdmaMsg>) {
        self.release_write_locks(worker, ctx);
        let started = self.workers[worker].started;
        self.stats.txns += 1;
        self.stats
            .txn_latency
            .record(ctx.now().as_nanos() - started.as_nanos());
        self.start_next_txn(worker, ctx);
    }

    fn abort(&mut self, worker: usize, ctx: &mut Context<'_, RdmaMsg>) {
        self.stats.aborts += 1;
        self.release_write_locks(worker, ctx);
        let attempts = self.workers[worker].abort_attempts + 1;
        self.workers[worker].abort_attempts = attempts;
        self.workers[worker].phase = Phase::AbortBackoff;
        self.workers[worker].gen += 1;
        let delay = self.backoff(attempts);
        let token = self.token(worker);
        ctx.set_timer(delay, token);
    }

    fn attempt_result(&mut self, worker: usize, success: bool, ctx: &mut Context<'_, RdmaMsg>) {
        let Phase::Attempting {
            next,
            sent,
            attempts,
        } = self.workers[worker].phase
        else {
            return;
        };
        if success {
            self.stats.grants += 1;
            self.stats
                .wait_latency
                .record(ctx.now().as_nanos() - sent.as_nanos() + self.cfg.rx_delay.as_nanos());
            let need = self.workers[worker].txn.locks[next];
            match need.mode {
                LockMode::Exclusive => self.workers[worker].write_locks.push(need),
                LockMode::Shared => self.workers[worker].read_set.push(need),
            }
            let lock_count = self.workers[worker].txn.locks.len();
            if next + 1 < lock_count {
                self.workers[worker].phase = Phase::Attempting {
                    next: next + 1,
                    sent: ctx.now(),
                    attempts: 0,
                };
                self.workers[worker].gen += 1;
                self.issue_attempt(worker, ctx);
            } else {
                self.begin_execution(worker, ctx);
            }
        } else {
            self.stats.conflicts += 1;
            self.workers[worker].phase = Phase::BackingOff {
                next,
                sent,
                attempts: attempts + 1,
            };
            self.workers[worker].gen += 1;
            let delay = self.backoff(attempts + 1);
            let token = self.token(worker);
            ctx.set_timer(delay, token);
        }
    }

    fn validation_result(&mut self, worker: usize, clean: bool, ctx: &mut Context<'_, RdmaMsg>) {
        let Phase::Validating { next } = self.workers[worker].phase else {
            return;
        };
        if !clean {
            // A writer took a word we read: the transaction aborts.
            self.abort(worker, ctx);
            return;
        }
        if next + 1 < self.workers[worker].read_set.len() {
            self.workers[worker].phase = Phase::Validating { next: next + 1 };
            self.workers[worker].gen += 1;
            self.issue_validation(worker, ctx);
        } else {
            self.commit(worker, ctx);
        }
    }
}

impl Node<RdmaMsg> for DrtmClient {
    fn on_start(&mut self, ctx: &mut Context<'_, RdmaMsg>) {
        for _ in 0..self.cfg.workers {
            self.workers.push(Worker {
                txn: Transaction::new(vec![], SimDuration::ZERO),
                txn_tag: 0,
                started: ctx.now(),
                phase: Phase::Thinking,
                write_locks: Vec::new(),
                read_set: Vec::new(),
                gen: 0,
                abort_attempts: 0,
            });
        }
        for w in 0..self.cfg.workers {
            self.start_next_txn(w, ctx);
        }
    }

    fn on_packet(&mut self, pkt: Packet<RdmaMsg>, ctx: &mut Context<'_, RdmaMsg>) {
        let (token, writer_free) = match pkt.payload {
            RdmaMsg::CompareSwapReply { old, token, .. } => (token, old == 0),
            RdmaMsg::ReadReply { value, token, .. } => (token, value == 0),
            RdmaMsg::WriteReply { token } => (token, true),
            _ => return,
        };
        if token == u64::MAX {
            return; // release completion
        }
        let worker = (token >> GEN_BITS) as usize;
        if worker >= self.workers.len()
            || (self.workers[worker].gen & ((1 << GEN_BITS) - 1)) != (token & ((1 << GEN_BITS) - 1))
        {
            return;
        }
        match self.workers[worker].phase {
            Phase::Attempting { .. } => self.attempt_result(worker, writer_free, ctx),
            Phase::Validating { .. } => self.validation_result(worker, writer_free, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, RdmaMsg>) {
        let worker = (token >> GEN_BITS) as usize;
        if worker >= self.workers.len()
            || (self.workers[worker].gen & ((1 << GEN_BITS) - 1)) != (token & ((1 << GEN_BITS) - 1))
        {
            return;
        }
        match self.workers[worker].phase {
            Phase::BackingOff {
                next,
                sent,
                attempts,
            } => {
                self.workers[worker].phase = Phase::Attempting {
                    next,
                    sent,
                    attempts,
                };
                self.workers[worker].gen += 1;
                self.issue_attempt(worker, ctx);
            }
            Phase::Thinking => self.begin_validation(worker, ctx),
            Phase::AbortBackoff => self.restart_txn(worker, ctx),
            Phase::Attempting { .. } | Phase::Validating { .. } => {}
        }
    }

    fn name(&self) -> &str {
        "drtm-client"
    }
}

/// An assembled DrTM deployment.
pub struct DrtmRack {
    /// The simulator.
    pub sim: Simulator<RdmaMsg>,
    /// RDMA lock servers.
    pub servers: Vec<NodeId>,
    /// Clients.
    pub clients: Vec<NodeId>,
}

/// Build a DrTM deployment.
pub fn build_drtm<F>(
    seed: u64,
    n_servers: usize,
    client_cfg: DrtmClientConfig,
    nic: RdmaNicConfig,
    sources: Vec<F>,
) -> DrtmRack
where
    F: TxnSource + 'static,
{
    let mut sim: Simulator<RdmaMsg> = Simulator::new(
        Topology::new(LinkConfig::with_delay(SimDuration::from_nanos(1_200))),
        seed,
    );
    let mut servers = Vec::new();
    for _ in 0..n_servers {
        servers.push(sim.add_node(Box::new(RdmaServer::new(nic.clone()))));
    }
    let mut clients = Vec::new();
    let mut seeder = SimRng::new(seed ^ 0xD7_37);
    for src in sources {
        let s = seeder.next_u64();
        clients.push(sim.add_node(Box::new(DrtmClient::new(
            client_cfg.clone(),
            servers.clone(),
            Box::new(src),
            s,
        ))));
    }
    DrtmRack {
        sim,
        servers,
        clients,
    }
}

/// Warmup, reset, measure, and aggregate into the shared result type.
pub fn measure_drtm(rack: &mut DrtmRack, warmup: SimDuration, measure: SimDuration) -> RunStats {
    rack.sim.run_for(warmup);
    for &c in &rack.clients {
        rack.sim.with_node::<DrtmClient, _>(c, |c| c.reset_stats());
    }
    rack.sim.run_for(measure);
    let mut out = RunStats {
        measured: measure,
        ..Default::default()
    };
    for &c in &rack.clients {
        rack.sim.read_node::<DrtmClient, _>(c, |c| {
            let s = c.stats();
            out.txns += s.txns;
            out.grants += s.grants;
            out.grants_server += s.grants;
            out.retries += s.conflicts + s.aborts;
            out.lock_latency.merge(&s.wait_latency);
            out.txn_latency.merge(&s.txn_latency);
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_core::txn::SingleLockSource;
    use netlock_proto::LockId;

    fn sources(
        n: usize,
        locks: Vec<LockId>,
        mode: LockMode,
        think: SimDuration,
    ) -> Vec<SingleLockSource> {
        (0..n)
            .map(|_| SingleLockSource {
                locks: locks.clone(),
                mode,
                think,
            })
            .collect()
    }

    #[test]
    fn uncontended_cas_succeeds_first_try() {
        let mut rack = build_drtm(
            1,
            1,
            DrtmClientConfig {
                workers: 2,
                ..Default::default()
            },
            RdmaNicConfig::default(),
            sources(
                1,
                (0..64).map(LockId).collect(),
                LockMode::Exclusive,
                SimDuration::ZERO,
            ),
        );
        let stats = measure_drtm(
            &mut rack,
            SimDuration::from_millis(2),
            SimDuration::from_millis(10),
        );
        assert!(stats.txns > 500);
        assert!(
            (stats.retries as f64) < 0.05 * stats.grants as f64,
            "few conflicts expected: {} vs {}",
            stats.retries,
            stats.grants
        );
    }

    #[test]
    fn contention_causes_conflicts_and_tail() {
        let mut rack = build_drtm(
            2,
            1,
            DrtmClientConfig {
                workers: 16,
                ..Default::default()
            },
            RdmaNicConfig::default(),
            sources(
                4,
                vec![LockId(0)],
                LockMode::Exclusive,
                SimDuration::from_micros(20),
            ),
        );
        let stats = measure_drtm(
            &mut rack,
            SimDuration::from_millis(5),
            SimDuration::from_millis(40),
        );
        assert!(
            stats.retries > stats.grants,
            "blind retry should thrash: {} retries vs {} grants",
            stats.retries,
            stats.grants
        );
        // Blind retry is deeply unfair: starving workers' eventual wins
        // put the extreme tail of transaction latency far beyond the
        // median — the pathology behind the paper's 653× p99 gap.
        let lat = stats.txn_latency_summary();
        assert!(
            lat.max_ns as f64 > 20.0 * lat.p50_ns.max(1) as f64,
            "starvation should show in the extreme tail: {lat:?}"
        );
    }

    #[test]
    fn readers_are_aborted_by_writers() {
        // Readers and writers on one word: read validation must abort
        // some transactions.
        let mut all = sources(
            2,
            vec![LockId(0)],
            LockMode::Shared,
            SimDuration::from_micros(30),
        );
        all.extend(sources(
            2,
            vec![LockId(0)],
            LockMode::Exclusive,
            SimDuration::from_micros(5),
        ));
        let mut rack = build_drtm(
            3,
            1,
            DrtmClientConfig {
                workers: 8,
                ..Default::default()
            },
            RdmaNicConfig::default(),
            all,
        );
        rack.sim.run_for(SimDuration::from_millis(20));
        let aborts: u64 = rack
            .clients
            .iter()
            .map(|&c| rack.sim.read_node::<DrtmClient, _>(c, |c| c.stats().aborts))
            .sum();
        assert!(aborts > 0, "writer traffic must abort some readers");
    }

    #[test]
    fn pure_readers_never_conflict() {
        let mut rack = build_drtm(
            4,
            1,
            DrtmClientConfig {
                workers: 8,
                ..Default::default()
            },
            RdmaNicConfig::default(),
            sources(2, vec![LockId(0)], LockMode::Shared, SimDuration::ZERO),
        );
        let stats = measure_drtm(
            &mut rack,
            SimDuration::from_millis(2),
            SimDuration::from_millis(10),
        );
        assert!(stats.txns > 1_000, "txns = {}", stats.txns);
        assert_eq!(stats.retries, 0, "readers never conflict with readers");
    }

    #[test]
    fn exclusive_lock_actually_excludes() {
        // With one lock and think time, the word must serialize holders:
        // throughput ≈ 1 / (think + protocol overhead).
        let think = SimDuration::from_micros(50);
        let mut rack = build_drtm(
            5,
            1,
            DrtmClientConfig {
                workers: 8,
                ..Default::default()
            },
            RdmaNicConfig::default(),
            sources(2, vec![LockId(0)], LockMode::Exclusive, think),
        );
        let stats = measure_drtm(
            &mut rack,
            SimDuration::from_millis(5),
            SimDuration::from_millis(50),
        );
        let tps = stats.tps();
        assert!(tps < 21_000.0, "50 µs hold time caps at 20 KTPS, got {tps}");
    }
}
