//! Lock-safety oracle: an out-of-band observer that checks the global
//! locking invariants the paper's design arguments promise (§4.2 queue
//! correctness, §4.4 lease reclamation, §4.5 failure handling).
//!
//! The oracle attaches to the simulator's packet tap
//! ([`netlock_sim::Simulator::set_tap`]) and watches every Acquire,
//! Grant and Release on the wire, plus loss/duplication/fault events.
//! It never touches node state — it sees exactly what the network sees —
//! so a violation is a property of the protocol, not of instrumentation.
//!
//! Invariants checked:
//!
//! - **Mutual exclusion modulo leases (ME).** At the instant a grant is
//!   delivered, no *other* transaction may hold a conflicting mode on
//!   the same lock within its lease window. The lease basis is
//!   `issued_at_ns + lease` — the same basis the switch sweeper and the
//!   lock servers use — so a grant issued after a legitimate lease
//!   expiry is never a false positive.
//! - **Grant/release conservation (C1).** A client may not release a
//!   `(lock, txn)` more times than grants for it were delivered.
//! - **No leaked holds (C2).** At the end of a run, every delivered
//!   grant to a live client has been released (or the transaction is
//!   still visibly active). Catches clients that swallow surplus grants.
//! - **Liveness.** Every acquire that reached the wire is eventually
//!   answered, retried, dropped by the network, or excused by a declared
//!   amnesia point (switch reboot / server restart wipes queued
//!   requests; clients without retry logic lose them by design).
//!
//! Every ingested event is folded into an FNV-1a digest; the
//! [`Oracle::audit_log`] (counts + digest + violations) is byte-identical
//! for identical `(seed, FaultPlan)` runs, which is how the chaos suite
//! proves replayability.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

use netlock_proto::{GrantMsg, LockId, LockMode, NetLockMsg, TxnId};
use netlock_sim::{FaultAction, NodeId, SimTime, TapEvent};

/// Oracle tuning. All windows are in simulated nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct OracleConfig {
    /// Lease length the rack runs with (switch + servers). Holders are
    /// considered expired — and thus non-conflicting — once
    /// `issued_at_ns + lease_ns` passes.
    pub lease_ns: u64,
    /// A held lock whose transaction showed no traffic for this long by
    /// the end of the run is reported as leaked (C2). Must comfortably
    /// exceed the client retry timeout and think times.
    pub leak_after_ns: u64,
    /// An unanswered acquire whose transaction showed no traffic for
    /// this long by the end of the run is reported as wedged (liveness).
    pub wedge_after_ns: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            lease_ns: 10_000_000,      // ServerConfig/SwitchConfig default
            leak_after_ns: 60_000_000, // 3x the default retry timeout
            wedge_after_ns: 60_000_000,
        }
    }
}

/// One invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Simulated time the violation was detected.
    pub at_ns: u64,
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// Human-readable specifics.
    pub detail: String,
}

/// The invariant classes the oracle enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two conflicting unexpired holders at grant-delivery time.
    MutualExclusion,
    /// More releases than delivered grants for a `(lock, txn)`.
    Conservation,
    /// A delivered grant never released by a live, idle client.
    LeakedHold,
    /// An acquire on the wire never answered for a live, idle client.
    WedgedRequest,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ViolationKind::MutualExclusion => "mutual-exclusion",
            ViolationKind::Conservation => "conservation",
            ViolationKind::LeakedHold => "leaked-hold",
            ViolationKind::WedgedRequest => "wedged-request",
        };
        f.write_str(s)
    }
}

/// An outstanding (delivered, unreleased) hold.
#[derive(Clone, Copy, Debug)]
struct Hold {
    client: NodeId,
    mode: LockMode,
    issued_at_ns: u64,
    delivered_at_ns: u64,
}

/// An acquire that reached the wire and has not been answered.
#[derive(Clone, Copy, Debug)]
struct OpenReq {
    /// Issue stamp of the latest attempt (retries re-stamp).
    issued_at_ns: u64,
    sent_at_ns: u64,
}

/// Event counters mirrored into the audit log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleCounts {
    /// Packets observed leaving nodes.
    pub sent: u64,
    /// Packets dropped by link faults.
    pub lost: u64,
    /// Extra copies created by duplication faults.
    pub duplicated: u64,
    /// Packets delivered to live nodes.
    pub delivered: u64,
    /// Packets discarded at dead nodes.
    pub delivered_dead: u64,
    /// Fault-plan actions observed.
    pub faults: u64,
    /// Grant deliveries to registered clients (raw, duplicates included).
    pub grant_deliveries: u64,
    /// Grant deliveries discarded as exact duplicates.
    pub dup_grant_deliveries: u64,
    /// Releases observed leaving registered clients.
    pub releases_sent: u64,
    /// Open requests excused by amnesia declarations.
    pub amnesia_excused: u64,
}

/// The safety oracle. Feed it every [`TapEvent`]; call
/// [`Oracle::finish`] once the run ends.
pub struct Oracle {
    cfg: OracleConfig,
    clients: HashSet<NodeId>,
    dead: HashSet<NodeId>,
    /// Outstanding holds per lock. `BTreeMap` so end-of-run scans are
    /// deterministically ordered.
    holds: BTreeMap<u32, Vec<(TxnId, Hold)>>,
    /// Raw grant deliveries per `(lock, txn)`.
    deliveries: HashMap<(LockId, TxnId), u64>,
    /// Releases sent per `(lock, txn)`.
    releases: HashMap<(LockId, TxnId), u64>,
    /// Exact grants already delivered (duplicate detection).
    seen_grants: HashSet<(u32, u64, u8, u32, u8, u8, u64)>,
    /// Un-answered acquires, keyed (client, lock, txn).
    open: BTreeMap<(u32, u32, u64), OpenReq>,
    /// Last time any traffic mentioned a transaction.
    activity: HashMap<TxnId, u64>,
    counts: OracleCounts,
    digest: u64,
    violations: Vec<Violation>,
    finished: bool,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn mode_tag(m: LockMode) -> u8 {
    match m {
        LockMode::Shared => 0,
        LockMode::Exclusive => 1,
    }
}

fn grant_key(g: &GrantMsg) -> (u32, u64, u8, u32, u8, u8, u64) {
    let grantor = match g.grantor {
        netlock_proto::Grantor::Switch => 0,
        netlock_proto::Grantor::Server => 1,
    };
    (
        g.lock.0,
        g.txn.0,
        mode_tag(g.mode),
        g.client.0,
        g.priority.0,
        grantor,
        g.issued_at_ns,
    )
}

fn conflicts(a: LockMode, b: LockMode) -> bool {
    matches!(a, LockMode::Exclusive) || matches!(b, LockMode::Exclusive)
}

impl Oracle {
    /// A fresh oracle.
    pub fn new(cfg: OracleConfig) -> Oracle {
        Oracle {
            cfg,
            clients: HashSet::new(),
            dead: HashSet::new(),
            holds: BTreeMap::new(),
            deliveries: HashMap::new(),
            releases: HashMap::new(),
            seen_grants: HashSet::new(),
            open: BTreeMap::new(),
            activity: HashMap::new(),
            counts: OracleCounts::default(),
            digest: FNV_OFFSET,
            violations: Vec::new(),
            finished: false,
        }
    }

    /// Declare a node as a lock client. Only registered clients'
    /// acquires/releases/grants are tracked.
    pub fn register_client(&mut self, id: NodeId) {
        self.clients.insert(id);
    }

    /// Event counters so far.
    pub fn counts(&self) -> OracleCounts {
        self.counts
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// FNV-1a digest over every ingested event, in ingestion order.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    fn fold(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.digest ^= b as u64;
            self.digest = self.digest.wrapping_mul(FNV_PRIME);
        }
    }

    fn fold_u64(&mut self, v: u64) {
        self.fold(&v.to_le_bytes());
    }

    fn fold_msg(&mut self, tag: u8, at: SimTime, src: u32, dst: u32, msg: &NetLockMsg) {
        self.fold(&[tag]);
        self.fold_u64(at.as_nanos());
        self.fold_u64(src as u64);
        self.fold_u64(dst as u64);
        // Derived Debug output is deterministic and covers every field.
        let repr = format!("{msg:?}");
        self.fold(repr.as_bytes());
    }

    fn touch(&mut self, txn: TxnId, at: u64) {
        let e = self.activity.entry(txn).or_insert(at);
        if *e < at {
            *e = at;
        }
    }

    fn touch_msg(&mut self, msg: &NetLockMsg, at: u64) {
        match msg {
            NetLockMsg::Acquire(r) => self.touch(r.txn, at),
            NetLockMsg::Release(r) => self.touch(r.txn, at),
            NetLockMsg::Grant(g) => self.touch(g.txn, at),
            NetLockMsg::Forwarded { req, .. } => self.touch(req.txn, at),
            NetLockMsg::Push { reqs, .. } => {
                for req in reqs {
                    self.touch(req.txn, at);
                }
            }
            NetLockMsg::DbFetch { grant, .. } => self.touch(grant.txn, at),
            NetLockMsg::DbReply { grant } => self.touch(grant.txn, at),
            NetLockMsg::AcquireBatch(reqs) => {
                for req in reqs {
                    self.touch(req.txn, at);
                }
            }
            NetLockMsg::ReleaseBatch(rels) => {
                for rel in rels {
                    self.touch(rel.txn, at);
                }
            }
            NetLockMsg::GrantBatch(grants) => {
                for g in grants {
                    self.touch(g.txn, at);
                }
            }
            _ => {}
        }
    }

    fn violate(&mut self, at_ns: u64, kind: ViolationKind, detail: String) {
        self.violations.push(Violation {
            at_ns,
            kind,
            detail,
        });
    }

    /// Grant (or one-RTT DbReply) delivered to a registered client.
    fn on_grant_delivered(&mut self, at: u64, dst: NodeId, g: &GrantMsg) {
        self.counts.grant_deliveries += 1;
        *self.deliveries.entry((g.lock, g.txn)).or_insert(0) += 1;
        self.open.remove(&(dst.0, g.lock.0, g.txn.0));
        if !self.seen_grants.insert(grant_key(g)) {
            // Exact duplicate of an earlier delivery (network
            // duplication): the client is required to ignore it, and it
            // confers no new hold.
            self.counts.dup_grant_deliveries += 1;
            return;
        }
        // ME check against every unexpired hold by a *different*
        // transaction.
        let lease = self.cfg.lease_ns;
        let mut clash: Option<(TxnId, Hold)> = None;
        if let Some(entries) = self.holds.get(&g.lock.0) {
            for &(txn, hold) in entries {
                if txn != g.txn
                    && hold.issued_at_ns.saturating_add(lease) > at
                    && conflicts(hold.mode, g.mode)
                {
                    clash = Some((txn, hold));
                    break;
                }
            }
        }
        if let Some((txn, hold)) = clash {
            self.violate(
                at,
                ViolationKind::MutualExclusion,
                format!(
                    "lock {} granted {:?} to txn {} (client {}) while txn {} (client {}) \
                     holds {:?} (issued {} ns, lease ends {} ns)",
                    g.lock.0,
                    g.mode,
                    g.txn.0,
                    dst.0,
                    txn.0,
                    hold.client.0,
                    hold.mode,
                    hold.issued_at_ns,
                    hold.issued_at_ns.saturating_add(lease),
                ),
            );
        }
        self.holds.entry(g.lock.0).or_default().push((
            g.txn,
            Hold {
                client: dst,
                mode: g.mode,
                issued_at_ns: g.issued_at_ns,
                delivered_at_ns: at,
            },
        ));
    }

    /// Release observed leaving a registered client.
    fn on_release_sent(&mut self, at: u64, src: NodeId, lock: LockId, txn: TxnId) {
        self.counts.releases_sent += 1;
        let rel = self.releases.entry((lock, txn)).or_insert(0);
        *rel += 1;
        let delivered = self.deliveries.get(&(lock, txn)).copied().unwrap_or(0);
        if *rel > delivered {
            let n = *rel;
            self.violate(
                at,
                ViolationKind::Conservation,
                format!(
                    "client {} released lock {} txn {} ({} releases, {} grant deliveries)",
                    src.0, lock.0, txn.0, n, delivered
                ),
            );
        }
        if let Some(entries) = self.holds.get_mut(&lock.0) {
            // Retry duplicates can put several entries for the same txn in
            // the engine's queue, each granted with its own request stamp.
            // The engine's grant-on-release pops the entry it granted most
            // recently (the freshest stamp); mirror that by removing the
            // matching hold with the greatest `issued_at_ns`, so the holds
            // that remain are the earliest-expiring ones and the oracle's
            // notion of "still held" never outlives the engine's.
            let pos = entries
                .iter()
                .enumerate()
                .filter(|(_, &(t, _))| t == txn)
                .max_by_key(|(_, (_, h))| h.issued_at_ns)
                .map(|(i, _)| i);
            if let Some(pos) = pos {
                entries.remove(pos);
                if entries.is_empty() {
                    self.holds.remove(&lock.0);
                }
            }
        }
    }

    /// Ingest one tap event. Wire this as the body of the simulator tap.
    pub fn observe(&mut self, ev: &TapEvent<'_, NetLockMsg>) {
        match *ev {
            TapEvent::Sent {
                at,
                src,
                dst,
                payload,
            } => {
                self.counts.sent += 1;
                self.fold_msg(b'S', at, src.0, dst.0, payload);
                let now = at.as_nanos();
                self.touch_msg(payload, now);
                if self.clients.contains(&src) {
                    match payload {
                        NetLockMsg::Acquire(req) => {
                            self.open.insert(
                                (src.0, req.lock.0, req.txn.0),
                                OpenReq {
                                    issued_at_ns: req.issued_at_ns,
                                    sent_at_ns: now,
                                },
                            );
                        }
                        NetLockMsg::AcquireBatch(reqs) => {
                            // One wire event, many logical acquires: each
                            // element is tracked exactly as if sent alone.
                            for req in reqs {
                                self.open.insert(
                                    (src.0, req.lock.0, req.txn.0),
                                    OpenReq {
                                        issued_at_ns: req.issued_at_ns,
                                        sent_at_ns: now,
                                    },
                                );
                            }
                        }
                        NetLockMsg::Release(rel) => {
                            self.on_release_sent(now, src, rel.lock, rel.txn);
                        }
                        NetLockMsg::ReleaseBatch(rels) => {
                            for rel in rels {
                                self.on_release_sent(now, src, rel.lock, rel.txn);
                            }
                        }
                        _ => {}
                    }
                }
            }
            TapEvent::Lost {
                at,
                src,
                dst,
                payload,
            } => {
                self.counts.lost += 1;
                self.fold_msg(b'L', at, src.0, dst.0, payload);
                let now = at.as_nanos();
                self.touch_msg(payload, now);
                // The network ate this copy; whatever it would have told
                // the receiver is excused for liveness purposes. Clients
                // with retry logic re-open the request on the next send.
                match payload {
                    NetLockMsg::Acquire(req) if self.clients.contains(&src) => {
                        let key = (src.0, req.lock.0, req.txn.0);
                        if let Some(open) = self.open.get(&key) {
                            if open.issued_at_ns == req.issued_at_ns {
                                self.open.remove(&key);
                            }
                        }
                    }
                    NetLockMsg::AcquireBatch(reqs) if self.clients.contains(&src) => {
                        // Losing the batch loses every acquire in it.
                        for req in reqs {
                            let key = (src.0, req.lock.0, req.txn.0);
                            if let Some(open) = self.open.get(&key) {
                                if open.issued_at_ns == req.issued_at_ns {
                                    self.open.remove(&key);
                                }
                            }
                        }
                    }
                    NetLockMsg::Forwarded { req, .. } => {
                        self.open.remove(&(req.client.0, req.lock.0, req.txn.0));
                    }
                    NetLockMsg::Grant(g) | NetLockMsg::DbReply { grant: g } => {
                        self.open.remove(&(g.client.0, g.lock.0, g.txn.0));
                    }
                    NetLockMsg::GrantBatch(grants) => {
                        for g in grants {
                            self.open.remove(&(g.client.0, g.lock.0, g.txn.0));
                        }
                    }
                    _ => {}
                }
            }
            TapEvent::Duplicated {
                at,
                src,
                dst,
                payload,
            } => {
                self.counts.duplicated += 1;
                self.fold_msg(b'D', at, src.0, dst.0, payload);
            }
            TapEvent::Delivered { at, pkt } => {
                self.counts.delivered += 1;
                self.fold_msg(b'd', at, pkt.src.0, pkt.dst.0, &pkt.payload);
                let now = at.as_nanos();
                self.touch_msg(&pkt.payload, now);
                if self.clients.contains(&pkt.dst) {
                    match &pkt.payload {
                        NetLockMsg::Grant(g) => {
                            let g = *g;
                            self.on_grant_delivered(now, pkt.dst, &g);
                        }
                        NetLockMsg::GrantBatch(grants) => {
                            // Coalesced grants confer one hold each, in
                            // slice order — identical to arriving singly.
                            for g in grants.iter() {
                                self.on_grant_delivered(now, pkt.dst, g);
                            }
                        }
                        NetLockMsg::DbReply { grant } => {
                            let g = *grant;
                            self.on_grant_delivered(now, pkt.dst, &g);
                        }
                        _ => {}
                    }
                }
            }
            TapEvent::DeliveredToDead { at, pkt } => {
                self.counts.delivered_dead += 1;
                self.fold_msg(b'x', at, pkt.src.0, pkt.dst.0, &pkt.payload);
                let now = at.as_nanos();
                self.touch_msg(&pkt.payload, now);
                // The receiver is gone; nothing further can come of this
                // packet, so close any request it would have answered or
                // carried.
                match &pkt.payload {
                    NetLockMsg::Acquire(req) => {
                        self.open.remove(&(req.client.0, req.lock.0, req.txn.0));
                    }
                    NetLockMsg::AcquireBatch(reqs) => {
                        for req in reqs.iter() {
                            self.open.remove(&(req.client.0, req.lock.0, req.txn.0));
                        }
                    }
                    NetLockMsg::Forwarded { req, .. } => {
                        self.open.remove(&(req.client.0, req.lock.0, req.txn.0));
                    }
                    NetLockMsg::Grant(g) | NetLockMsg::DbReply { grant: g } => {
                        self.open.remove(&(g.client.0, g.lock.0, g.txn.0));
                    }
                    NetLockMsg::GrantBatch(grants) => {
                        for g in grants.iter() {
                            self.open.remove(&(g.client.0, g.lock.0, g.txn.0));
                        }
                    }
                    _ => {}
                }
            }
            TapEvent::Fault { at, action } => {
                self.counts.faults += 1;
                self.fold(b"F");
                self.fold_u64(at.as_nanos());
                let repr = format!("{action:?}");
                let bytes = repr.into_bytes();
                self.fold(&bytes);
                match action {
                    FaultAction::FailNode(n) => {
                        self.dead.insert(n);
                    }
                    FaultAction::ReviveNode(n) => {
                        self.dead.remove(&n);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Declare an amnesia point: a lock manager just lost its queues
    /// (switch reboot, server restart with state loss). Every acquire
    /// currently on the wire or queued may be silently forgotten, so
    /// outstanding open requests stop counting toward liveness. Clients
    /// with retry logic will re-open theirs on the next retransmission.
    pub fn note_amnesia(&mut self, now_ns: u64) {
        self.note_amnesia_where(now_ns, |_| true);
    }

    /// Declare a *scoped* amnesia point: only the lock manager serving
    /// a subset of the lock space lost its queues (one partition's
    /// chain crashed in a multi-switch deployment). Open requests for
    /// locks where `affected` returns true are excused; requests served
    /// by the surviving partitions still count toward liveness — a
    /// crash in partition A is no excuse for partition B wedging.
    pub fn note_amnesia_where(&mut self, now_ns: u64, mut affected: impl FnMut(LockId) -> bool) {
        self.note_amnesia_scoped(now_ns, move |lock, _tenant_idx| affected(lock));
    }

    /// Like [`Self::note_amnesia_where`], additionally scoped per
    /// tenant. The second argument is the tenant row index an aggregate
    /// population node folded into the transaction id (bits 32–39, see
    /// [`crate::population::tenant_index_of`]); individual clients'
    /// sequence numbers leave those bits zero, so they always present
    /// tenant index 0. This lets a chaos harness excuse exactly the
    /// tenants whose leases a rebooted manager forgot while every other
    /// tenant of the same aggregate node still counts toward liveness —
    /// aggregates bundle ~100K virtual clients, so excusing the whole
    /// node would blind the oracle to most of the population.
    pub fn note_amnesia_scoped(
        &mut self,
        now_ns: u64,
        mut affected: impl FnMut(LockId, usize) -> bool,
    ) {
        let before = self.open.len();
        self.open.retain(|&(_, lock, txn), _| {
            !affected(LockId(lock), crate::population::tenant_index_of(TxnId(txn)))
        });
        let excused = (before - self.open.len()) as u64;
        self.counts.amnesia_excused += excused;
        self.fold(b"A");
        self.fold_u64(now_ns);
        self.fold_u64(excused);
    }

    /// End-of-run checks (C2 + liveness). Idempotent; call once after
    /// the last simulated event.
    pub fn finish(&mut self, now_ns: u64) {
        if self.finished {
            return;
        }
        self.finished = true;
        // C2: leaked holds. A hold by a live client whose transaction
        // has been silent for `leak_after_ns` was consumed and never
        // released — even if the lease already reclaimed it switch-side,
        // the client-side leak is a protocol bug.
        let mut leaks: Vec<Violation> = Vec::new();
        for (&lock, entries) in &self.holds {
            for &(txn, hold) in entries {
                if self.dead.contains(&hold.client) {
                    continue;
                }
                let last = self
                    .activity
                    .get(&txn)
                    .copied()
                    .unwrap_or(hold.delivered_at_ns);
                if last.saturating_add(self.cfg.leak_after_ns) < now_ns {
                    leaks.push(Violation {
                        at_ns: now_ns,
                        kind: ViolationKind::LeakedHold,
                        detail: format!(
                            "client {} still holds lock {} txn {} ({:?}, delivered {} ns, \
                             last activity {} ns)",
                            hold.client.0, lock, txn.0, hold.mode, hold.delivered_at_ns, last
                        ),
                    });
                }
            }
        }
        // Liveness: wedged requests.
        let mut wedges: Vec<Violation> = Vec::new();
        for (&(client, lock, txn), req) in &self.open {
            if self.dead.contains(&NodeId(client)) {
                continue;
            }
            let last = self
                .activity
                .get(&TxnId(txn))
                .copied()
                .unwrap_or(req.sent_at_ns);
            if last.saturating_add(self.cfg.wedge_after_ns) < now_ns {
                wedges.push(Violation {
                    at_ns: now_ns,
                    kind: ViolationKind::WedgedRequest,
                    detail: format!(
                        "acquire by client {client} for lock {lock} txn {txn} unanswered \
                         (sent {} ns, last txn activity {} ns)",
                        req.sent_at_ns, last
                    ),
                });
            }
        }
        self.violations.extend(leaks);
        self.violations.extend(wedges);
    }

    /// Whether any invariant broke.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The canonical audit log: event counts, digest, violations,
    /// verdict. Byte-identical for identical `(seed, FaultPlan)` runs.
    pub fn audit_log(&self) -> String {
        let c = &self.counts;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "events: sent={} lost={} duplicated={} delivered={} delivered_dead={} faults={}",
            c.sent, c.lost, c.duplicated, c.delivered, c.delivered_dead, c.faults
        );
        let _ = writeln!(
            out,
            "grants: delivered={} duplicates={} releases_sent={} amnesia_excused={}",
            c.grant_deliveries, c.dup_grant_deliveries, c.releases_sent, c.amnesia_excused
        );
        let _ = writeln!(out, "digest: {:016x}", self.digest);
        for v in &self.violations {
            let _ = writeln!(
                out,
                "violation: at={} kind={} {}",
                v.at_ns, v.kind, v.detail
            );
        }
        if self.violations.is_empty() {
            let _ = writeln!(out, "verdict: CLEAN");
        } else {
            let _ = writeln!(out, "verdict: VIOLATIONS={}", self.violations.len());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_proto::{ClientAddr, Grantor, LockRequest, Priority, TenantId};
    use netlock_sim::Packet;

    fn grant(lock: u32, txn: u64, mode: LockMode, client: u32, issued: u64) -> GrantMsg {
        GrantMsg {
            lock: LockId(lock),
            txn: TxnId(txn),
            mode,
            client: ClientAddr(client),
            priority: Priority(0),
            grantor: Grantor::Switch,
            issued_at_ns: issued,
        }
    }

    fn deliver(o: &mut Oracle, at: u64, dst: u32, g: GrantMsg) {
        let pkt = Packet {
            src: NodeId(0),
            dst: NodeId(dst),
            payload: NetLockMsg::Grant(g),
        };
        o.observe(&TapEvent::Delivered {
            at: SimTime(at),
            pkt: &pkt,
        });
    }

    fn send_release(o: &mut Oracle, at: u64, src: u32, lock: u32, txn: u64, mode: LockMode) {
        let rel = netlock_proto::ReleaseRequest {
            lock: LockId(lock),
            txn: TxnId(txn),
            mode,
            client: ClientAddr(src),
            priority: Priority(0),
        };
        let payload = NetLockMsg::Release(rel);
        o.observe(&TapEvent::Sent {
            at: SimTime(at),
            src: NodeId(src),
            dst: NodeId(0),
            payload: &payload,
        });
    }

    fn oracle_with_clients(ids: &[u32]) -> Oracle {
        let mut o = Oracle::new(OracleConfig {
            lease_ns: 10_000_000,
            leak_after_ns: 1_000_000,
            wedge_after_ns: 1_000_000,
        });
        for &id in ids {
            o.register_client(NodeId(id));
        }
        o
    }

    #[test]
    fn double_exclusive_grant_is_flagged() {
        let mut o = oracle_with_clients(&[5, 6]);
        deliver(&mut o, 1_000, 5, grant(1, 100, LockMode::Exclusive, 5, 500));
        deliver(&mut o, 2_000, 6, grant(1, 200, LockMode::Exclusive, 6, 600));
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, ViolationKind::MutualExclusion);
    }

    #[test]
    fn shared_grants_coexist() {
        let mut o = oracle_with_clients(&[5, 6]);
        deliver(&mut o, 1_000, 5, grant(1, 100, LockMode::Shared, 5, 500));
        deliver(&mut o, 2_000, 6, grant(1, 200, LockMode::Shared, 6, 600));
        assert!(o.is_clean());
    }

    #[test]
    fn grant_after_release_is_fine() {
        let mut o = oracle_with_clients(&[5, 6]);
        deliver(&mut o, 1_000, 5, grant(1, 100, LockMode::Exclusive, 5, 500));
        send_release(&mut o, 5_000, 5, 1, 100, LockMode::Exclusive);
        deliver(&mut o, 9_000, 6, grant(1, 200, LockMode::Exclusive, 6, 600));
        assert!(o.is_clean(), "{:?}", o.violations());
    }

    #[test]
    fn grant_after_lease_expiry_is_fine() {
        let mut o = oracle_with_clients(&[5, 6]);
        // Holder issued at 500 ns, lease 10 ms: expired at 10_000_500.
        deliver(&mut o, 1_000, 5, grant(1, 100, LockMode::Exclusive, 5, 500));
        deliver(
            &mut o,
            11_000_000,
            6,
            grant(1, 200, LockMode::Exclusive, 6, 10_900_000),
        );
        assert!(o.is_clean(), "{:?}", o.violations());
    }

    #[test]
    fn duplicate_delivery_confers_no_hold() {
        let mut o = oracle_with_clients(&[5, 6]);
        let g = grant(1, 100, LockMode::Exclusive, 5, 500);
        deliver(&mut o, 1_000, 5, g);
        deliver(&mut o, 1_500, 5, g); // network duplicate
        assert_eq!(o.counts().dup_grant_deliveries, 1);
        send_release(&mut o, 2_000, 5, 1, 100, LockMode::Exclusive);
        // The single logical hold is gone; a new grant is legal.
        deliver(&mut o, 3_000, 6, grant(1, 200, LockMode::Exclusive, 6, 700));
        assert!(o.is_clean(), "{:?}", o.violations());
    }

    #[test]
    fn over_release_is_conservation_violation() {
        let mut o = oracle_with_clients(&[5]);
        deliver(&mut o, 1_000, 5, grant(1, 100, LockMode::Exclusive, 5, 500));
        send_release(&mut o, 2_000, 5, 1, 100, LockMode::Exclusive);
        send_release(&mut o, 3_000, 5, 1, 100, LockMode::Exclusive);
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, ViolationKind::Conservation);
    }

    #[test]
    fn unreleased_hold_is_leak_at_finish() {
        let mut o = oracle_with_clients(&[5]);
        deliver(&mut o, 1_000, 5, grant(1, 100, LockMode::Exclusive, 5, 500));
        o.finish(50_000_000);
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, ViolationKind::LeakedHold);
    }

    #[test]
    fn active_txn_hold_is_not_a_leak() {
        let mut o = oracle_with_clients(&[5]);
        deliver(&mut o, 1_000, 5, grant(1, 100, LockMode::Exclusive, 5, 500));
        // Recent traffic touching the txn (e.g. an acquire for its next
        // lock) keeps the hold excused.
        let req = LockRequest {
            lock: LockId(2),
            mode: LockMode::Exclusive,
            txn: TxnId(100),
            client: ClientAddr(5),
            tenant: TenantId(0),
            priority: Priority(0),
            issued_at_ns: 49_900_000,
        };
        let payload = NetLockMsg::Acquire(req);
        o.observe(&TapEvent::Sent {
            at: SimTime(49_900_000),
            src: NodeId(5),
            dst: NodeId(0),
            payload: &payload,
        });
        o.finish(50_000_000);
        let leak = o
            .violations()
            .iter()
            .any(|v| v.kind == ViolationKind::LeakedHold && v.detail.contains("lock 1"));
        assert!(!leak, "{:?}", o.violations());
    }

    #[test]
    fn unanswered_acquire_is_wedged_at_finish() {
        let mut o = oracle_with_clients(&[5]);
        let req = LockRequest {
            lock: LockId(1),
            mode: LockMode::Exclusive,
            txn: TxnId(100),
            client: ClientAddr(5),
            tenant: TenantId(0),
            priority: Priority(0),
            issued_at_ns: 1_000,
        };
        let payload = NetLockMsg::Acquire(req);
        o.observe(&TapEvent::Sent {
            at: SimTime(1_000),
            src: NodeId(5),
            dst: NodeId(0),
            payload: &payload,
        });
        o.finish(50_000_000);
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, ViolationKind::WedgedRequest);
    }

    #[test]
    fn amnesia_excuses_open_requests() {
        let mut o = oracle_with_clients(&[5]);
        let req = LockRequest {
            lock: LockId(1),
            mode: LockMode::Exclusive,
            txn: TxnId(100),
            client: ClientAddr(5),
            tenant: TenantId(0),
            priority: Priority(0),
            issued_at_ns: 1_000,
        };
        let payload = NetLockMsg::Acquire(req);
        o.observe(&TapEvent::Sent {
            at: SimTime(1_000),
            src: NodeId(5),
            dst: NodeId(0),
            payload: &payload,
        });
        o.note_amnesia(2_000);
        o.finish(50_000_000);
        assert!(o.is_clean(), "{:?}", o.violations());
        assert_eq!(o.counts().amnesia_excused, 1);
    }

    #[test]
    fn scoped_amnesia_excuses_only_the_crashed_partition() {
        // Two partitions by the modulo map: lock 0 → partition A,
        // lock 1 → partition B. Partition A's chain crashes; only its
        // open requests may be forgotten.
        let mut o = oracle_with_clients(&[5]);
        for lock in [0u32, 1] {
            let req = LockRequest {
                lock: LockId(lock),
                mode: LockMode::Exclusive,
                txn: TxnId(100 + lock as u64),
                client: ClientAddr(5),
                tenant: TenantId(0),
                priority: Priority(0),
                issued_at_ns: 1_000,
            };
            let payload = NetLockMsg::Acquire(req);
            o.observe(&TapEvent::Sent {
                at: SimTime(1_000),
                src: NodeId(5),
                dst: NodeId(0),
                payload: &payload,
            });
        }
        o.note_amnesia_where(2_000, |lock| lock.0 % 2 == 0);
        assert_eq!(o.counts().amnesia_excused, 1);
        o.finish(50_000_000);
        // Partition B's request must still wedge: its switch never died.
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, ViolationKind::WedgedRequest);
        assert!(
            o.violations()[0].detail.contains("lock 1"),
            "wrong lock excused: {:?}",
            o.violations()
        );
    }

    #[test]
    fn dead_clients_are_exempt() {
        let mut o = oracle_with_clients(&[5]);
        deliver(&mut o, 1_000, 5, grant(1, 100, LockMode::Exclusive, 5, 500));
        o.observe(&TapEvent::Fault {
            at: SimTime(2_000),
            action: FaultAction::FailNode(NodeId(5)),
        });
        o.finish(50_000_000);
        assert!(o.is_clean(), "{:?}", o.violations());
    }

    fn acquire(lock: u32, txn: u64, client: u32, issued: u64) -> LockRequest {
        LockRequest {
            lock: LockId(lock),
            mode: LockMode::Exclusive,
            txn: TxnId(txn),
            client: ClientAddr(client),
            tenant: TenantId(0),
            priority: Priority(0),
            issued_at_ns: issued,
        }
    }

    #[test]
    fn batched_grants_confer_holds_like_singles() {
        // Two exclusive grants for the same lock inside one GrantBatch:
        // the second must clash with the first exactly as if they had
        // been delivered as two Grant packets.
        let mut o = oracle_with_clients(&[5]);
        let batch: Box<[GrantMsg]> = vec![
            grant(1, 100, LockMode::Exclusive, 5, 500),
            grant(1, 200, LockMode::Exclusive, 5, 600),
        ]
        .into();
        let pkt = Packet {
            src: NodeId(0),
            dst: NodeId(5),
            payload: NetLockMsg::GrantBatch(batch),
        };
        o.observe(&TapEvent::Delivered {
            at: SimTime(1_000),
            pkt: &pkt,
        });
        assert_eq!(o.counts().grant_deliveries, 2);
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, ViolationKind::MutualExclusion);
    }

    #[test]
    fn batched_over_release_is_caught() {
        // Sabotage: a ReleaseBatch releasing the same grant twice must
        // trip conservation — batching is no loophole.
        let mut o = oracle_with_clients(&[5]);
        deliver(&mut o, 1_000, 5, grant(1, 100, LockMode::Exclusive, 5, 500));
        let rel = netlock_proto::ReleaseRequest {
            lock: LockId(1),
            txn: TxnId(100),
            mode: LockMode::Exclusive,
            client: ClientAddr(5),
            priority: Priority(0),
        };
        let payload = NetLockMsg::ReleaseBatch(vec![rel, rel].into());
        o.observe(&TapEvent::Sent {
            at: SimTime(2_000),
            src: NodeId(5),
            dst: NodeId(0),
            payload: &payload,
        });
        assert_eq!(o.counts().releases_sent, 2);
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, ViolationKind::Conservation);
    }

    #[test]
    fn batched_acquires_open_and_lost_batches_close() {
        let mut o = oracle_with_clients(&[5]);
        let reqs: Box<[LockRequest]> =
            vec![acquire(1, 100, 5, 1_000), acquire(2, 101, 5, 1_000)].into();
        let payload = NetLockMsg::AcquireBatch(reqs.clone());
        o.observe(&TapEvent::Sent {
            at: SimTime(1_000),
            src: NodeId(5),
            dst: NodeId(0),
            payload: &payload,
        });
        // Both un-answered: both wedge.
        let mut probe = oracle_with_clients(&[5]);
        std::mem::swap(&mut probe, &mut o);
        probe.finish(50_000_000);
        assert_eq!(probe.violations().len(), 2);
        // Same send, then the batch is lost: nothing wedges.
        o.observe(&TapEvent::Sent {
            at: SimTime(1_000),
            src: NodeId(5),
            dst: NodeId(0),
            payload: &payload,
        });
        o.observe(&TapEvent::Lost {
            at: SimTime(1_000),
            src: NodeId(5),
            dst: NodeId(0),
            payload: &payload,
        });
        o.finish(50_000_000);
        assert!(o.is_clean(), "{:?}", o.violations());
    }

    #[test]
    fn tenant_scoped_amnesia_excuses_one_tenant_only() {
        // One aggregate node (id 5) with two tenants: txn ids carry the
        // tenant row in bits 32-39. Tenant 1's leases are declared
        // forgotten; tenant 0's open request must still wedge.
        let mut o = oracle_with_clients(&[5]);
        let txn_t0 = (5u64 << 40) | 7;
        let txn_t1 = (5u64 << 40) | (1u64 << 32) | 7;
        let reqs: Box<[LockRequest]> =
            vec![acquire(1, txn_t0, 5, 1_000), acquire(2, txn_t1, 5, 1_000)].into();
        let payload = NetLockMsg::AcquireBatch(reqs);
        o.observe(&TapEvent::Sent {
            at: SimTime(1_000),
            src: NodeId(5),
            dst: NodeId(0),
            payload: &payload,
        });
        o.note_amnesia_scoped(2_000, |_, tenant_idx| tenant_idx == 1);
        assert_eq!(o.counts().amnesia_excused, 1);
        o.finish(50_000_000);
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, ViolationKind::WedgedRequest);
        assert!(
            o.violations()[0].detail.contains("lock 1"),
            "wrong tenant excused: {:?}",
            o.violations()
        );
    }

    #[test]
    fn audit_log_shape_and_determinism() {
        let run = || {
            let mut o = oracle_with_clients(&[5, 6]);
            deliver(&mut o, 1_000, 5, grant(1, 100, LockMode::Shared, 5, 500));
            send_release(&mut o, 2_000, 5, 1, 100, LockMode::Shared);
            o.finish(10_000_000);
            o.audit_log()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.contains("verdict: CLEAN"));
        assert!(a.contains("digest: "));
    }
}
