//! Multi-rack cluster assembly for parallel simulation.
//!
//! A [`RackCluster`] places `N` complete NetLock racks — each with its
//! own lock switch, lock servers, database servers and clients — inside
//! one [`Simulator`], recording which rack every node belongs to. That
//! rack assignment becomes the logical-process map handed to
//! [`Simulator::partition`], so the cluster can be advanced by parallel
//! worker threads under the conservative-window protocol while staying
//! byte-identical to the serial run (see `netlock-sim`'s `par` module
//! and DESIGN.md §15).
//!
//! Each rack replicates [`crate::rack::Rack::build`]'s node layout at an
//! id offset: lock servers first, then the switch, then database
//! servers; clients are appended later (possibly interleaved across
//! racks — the per-node rack map keeps track). Racks are self-contained
//! — the paper's workloads never send lock traffic across ToR switches,
//! so cross-rack links exist only as the topology entries that define
//! the partition lookahead (their delay bounds how far apart two racks'
//! clocks may drift inside one window).
//!
//! Per-rack invariant-checking works under any worker count: a
//! partitioned simulator refuses a global tap but accepts one tap per
//! logical process, and each LP tap observes exactly its rack's
//! deliveries and timers in deterministic order. [`attach_rack_oracles`]
//! uses that to give every rack its own [`Oracle`].

use std::sync::{Arc, Mutex};

use netlock_proto::LockId;
use netlock_server::ServerNode;
use netlock_sim::{
    FaultPlan, LinkConfig, NodeId, SimDuration, SimRng, SimTime, Simulator, Topology,
};
use netlock_switch::control::{apply_allocation, Allocation};
use netlock_switch::{DataPlane, SwitchNode};

use crate::chaos::{ChaosPlanConfig, RackRoles};
use crate::client_micro::{MicroClient, MicroClientConfig};
use crate::client_txn::{TxnClient, TxnClientConfig};
use crate::db_server::{DbServer, DbServerConfig};
use crate::harness::RunStats;
use crate::oracle::{Oracle, OracleConfig};
use crate::population::{PopulationClient, PopulationConfig};
use crate::rack::{ClientKind, EngineSpec, RackConfig};
use crate::txn::TxnSource;
use netlock_proto::NetLockMsg;

/// One rack's node ids inside a [`RackCluster`].
pub struct ClusterRack {
    /// The rack's ToR lock switch.
    pub switch: NodeId,
    /// Lock servers, by directory server index.
    pub lock_servers: Vec<NodeId>,
    /// Database servers (one-RTT mode).
    pub db_servers: Vec<NodeId>,
    /// Clients with their kinds, in creation order.
    pub clients: Vec<(NodeId, ClientKind)>,
    /// Per-rack client-seed stream (mirrors `Rack`'s).
    rng: SimRng,
}

/// `N` NetLock racks in one simulator, partitionable one rack per
/// logical process.
pub struct RackCluster {
    /// The shared simulator; all racks' nodes live here.
    pub sim: Simulator<NetLockMsg>,
    /// Per-rack node handles, by rack index.
    pub racks: Vec<ClusterRack>,
    /// `node id -> rack index`, maintained on every node add.
    rack_of: Vec<u32>,
    /// Link installed between every cross-rack node pair at partition
    /// time; its delay is the partition lookahead.
    cross_link: LinkConfig,
    partitioned: bool,
}

impl RackCluster {
    /// Build `n_racks` identical racks (no clients yet). Every rack uses
    /// `cfg` with a rack-index-mixed seed so racks behave independently
    /// but the whole cluster stays a pure function of `(cfg, n_racks)`.
    ///
    /// `cross_link` must have a positive delay: it becomes the
    /// conservative lookahead when the cluster is partitioned. Pick
    /// something like 10 µs — inter-rack RTTs dwarf in-rack ones, and a
    /// larger delay means wider (cheaper) synchronization windows.
    pub fn build(cfg: &RackConfig, n_racks: usize, cross_link: LinkConfig) -> RackCluster {
        assert!(n_racks >= 1, "cluster needs at least one rack");
        assert!(
            !cross_link.delay.is_zero(),
            "cross-rack link delay must be positive: it is the partition lookahead"
        );
        let mut sim: Simulator<NetLockMsg> = Simulator::new(Topology::new(cfg.link), cfg.seed);
        let mut rack_of = Vec::new();
        let mut racks = Vec::with_capacity(n_racks);
        for r in 0..n_racks {
            let base = rack_of.len() as u32;
            let predicted_switch = NodeId(base + cfg.lock_servers as u32);
            let mut lock_servers = Vec::with_capacity(cfg.lock_servers);
            for _ in 0..cfg.lock_servers {
                let id = sim.add_node(Box::new(ServerNode::new(
                    cfg.server.clone(),
                    predicted_switch,
                )));
                rack_of.push(r as u32);
                lock_servers.push(id);
            }
            let dp = match &cfg.engine {
                EngineSpec::Fcfs(layout) => DataPlane::new_fcfs(layout),
                EngineSpec::Priority(layout) => DataPlane::new_priority(layout),
            };
            let mut db_ids = Vec::with_capacity(cfg.db_servers);
            for i in 0..cfg.db_servers {
                db_ids.push(NodeId(predicted_switch.0 + 1 + i as u32));
            }
            let switch_node = SwitchNode::new(dp, cfg.switch.clone(), lock_servers.clone())
                .with_db_servers(db_ids);
            let switch = sim.add_node(Box::new(switch_node));
            rack_of.push(r as u32);
            assert_eq!(switch, predicted_switch, "node ordering invariant broken");
            let mut db_servers = Vec::with_capacity(cfg.db_servers);
            for _ in 0..cfg.db_servers {
                let id = sim.add_node(Box::new(DbServer::new(DbServerConfig::default())));
                rack_of.push(r as u32);
                db_servers.push(id);
            }
            // Rack 0 reproduces `Rack::build`'s client-seed stream
            // exactly; later racks mix in the rack index.
            let rack_seed = cfg.seed ^ (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = SimRng::new(rack_seed ^ 0xC11E_57A7);
            let _ = rng.next_u64();
            racks.push(ClusterRack {
                switch,
                lock_servers,
                db_servers,
                clients: Vec::new(),
                rng,
            });
        }
        RackCluster {
            sim,
            racks,
            rack_of,
            cross_link,
            partitioned: false,
        }
    }

    /// Number of racks.
    pub fn rack_count(&self) -> usize {
        self.racks.len()
    }

    /// `node id -> rack index` map (the logical-process assignment).
    pub fn rack_assignment(&self) -> &[u32] {
        &self.rack_of
    }

    /// True once [`Self::partition`] ran with more than one rack.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }

    /// Add an open-loop microbenchmark client to `rack`.
    pub fn add_micro_client(&mut self, rack: usize, cfg: MicroClientConfig) -> NodeId {
        assert!(!self.partitioned, "add clients before partition()");
        let switch = self.racks[rack].switch;
        let id = self.sim.add_node(Box::new(MicroClient::new(cfg, switch)));
        self.rack_of.push(rack as u32);
        self.racks[rack].clients.push((id, ClientKind::Micro));
        id
    }

    /// Add an aggregate client-population node to `rack` (see
    /// [`crate::population`]): many virtual clients, batched traffic.
    pub fn add_population_client(&mut self, rack: usize, cfg: PopulationConfig) -> NodeId {
        assert!(!self.partitioned, "add clients before partition()");
        let switch = self.racks[rack].switch;
        let id = self
            .sim
            .add_node(Box::new(PopulationClient::new(cfg, switch)));
        self.rack_of.push(rack as u32);
        self.racks[rack].clients.push((id, ClientKind::Population));
        id
    }

    /// Add a closed-loop transaction client to `rack`.
    pub fn add_txn_client(
        &mut self,
        rack: usize,
        cfg: TxnClientConfig,
        source: Box<dyn TxnSource>,
    ) -> NodeId {
        assert!(!self.partitioned, "add clients before partition()");
        let switch = self.racks[rack].switch;
        let seed = self.racks[rack].rng.next_u64();
        let id = self
            .sim
            .add_node(Box::new(TxnClient::new(cfg, switch, source, seed)));
        self.rack_of.push(rack as u32);
        self.racks[rack].clients.push((id, ClientKind::Txn));
        id
    }

    /// Program `rack`'s FCFS allocation (see [`crate::rack::Rack::program`]).
    pub fn program(&mut self, rack: usize, alloc: &Allocation) {
        let switch = self.racks[rack].switch;
        let n_servers = self.racks[rack].lock_servers.len();
        self.sim.with_node::<SwitchNode, _>(switch, |s| {
            s.dataplane_mut().set_default_servers(n_servers);
            apply_allocation(s.dataplane_mut(), alloc);
        });
        for &(lock, home) in &alloc.in_server {
            let server = self.racks[rack].lock_servers[home];
            self.sim
                .with_node::<ServerNode, _>(server, |s| s.own_lock(lock));
        }
    }

    /// Program `rack`'s priority directory: lock → sequential qid.
    pub fn program_priority(&mut self, rack: usize, locks: &[LockId]) {
        let switch = self.racks[rack].switch;
        self.sim.with_node::<SwitchNode, _>(switch, |s| {
            for (qid, &lock) in locks.iter().enumerate() {
                s.dataplane_mut()
                    .directory_mut()
                    .set_switch_resident(lock, qid, 0);
            }
        });
    }

    /// Fault-targeting roles of one rack, split by client kind
    /// (aggregate population nodes get link faults but never crash).
    pub fn roles(&self, rack: usize) -> RackRoles {
        let r = &self.racks[rack];
        let mut clients = Vec::new();
        let mut aggregates = Vec::new();
        for &(id, kind) in &r.clients {
            match kind {
                ClientKind::Population => aggregates.push(id),
                ClientKind::Micro | ClientKind::Txn => clients.push(id),
            }
        }
        RackRoles {
            switch: r.switch,
            servers: r.lock_servers.clone(),
            clients,
            aggregates,
        }
    }

    /// Partition the cluster one rack per logical process and allow up
    /// to `workers` threads to advance it. Installs the cross-rack
    /// topology links (whose delay defines the lookahead) for every
    /// cross-rack node pair first, then hands the rack map to
    /// [`Simulator::partition`]. Call after all nodes are added and all
    /// racks are programmed; a single-rack cluster stays unpartitioned
    /// (the fused serial spine is faster than a one-LP window loop).
    pub fn partition(&mut self, workers: usize) {
        assert!(!self.partitioned, "partition called twice");
        let n = self.rack_of.len();
        for a in 0..n {
            for b in 0..n {
                if self.rack_of[a] != self.rack_of[b] {
                    self.sim.topology_mut().set_link(
                        NodeId(a as u32),
                        NodeId(b as u32),
                        self.cross_link,
                    );
                }
            }
        }
        self.sim.partition(self.rack_of.clone(), workers);
        self.partitioned = self.racks.len() > 1;
    }

    /// Install one fault plan per rack (index-aligned with `racks`).
    /// Plans for a partitioned cluster must not contain
    /// [`netlock_sim::FaultAction::Custom`] actions — use
    /// [`cluster_plan_config`] when generating them.
    pub fn install_plans(&mut self, plans: &[FaultPlan]) {
        assert_eq!(plans.len(), self.racks.len(), "one plan per rack");
        for plan in plans {
            self.sim.install_plan(plan);
        }
    }

    /// Zero every client's counters across all racks.
    pub fn reset_clients(&mut self) {
        for r in 0..self.racks.len() {
            for &(id, kind) in &self.racks[r].clients.clone() {
                match kind {
                    ClientKind::Micro => self
                        .sim
                        .with_node::<MicroClient, _>(id, |c| c.reset_stats()),
                    ClientKind::Txn => self.sim.with_node::<TxnClient, _>(id, |c| c.reset_stats()),
                    ClientKind::Population => self
                        .sim
                        .with_node::<PopulationClient, _>(id, |c| c.reset_stats()),
                }
            }
        }
    }

    /// Aggregate one rack's client counters since the last reset.
    ///
    /// Client-side counters (grants, txns, latencies) are strictly
    /// per-rack. The `net_*` and `events_fired` fields come from the
    /// shared simulator and therefore cover the whole cluster — they are
    /// repeated identically in every rack's stats.
    pub fn collect_rack(&self, rack: usize, measured: SimDuration) -> RunStats {
        let mut out = RunStats {
            measured,
            ..Default::default()
        };
        for &(id, kind) in &self.racks[rack].clients {
            match kind {
                ClientKind::Micro => self.sim.read_node::<MicroClient, _>(id, |c| {
                    let s = c.stats();
                    out.issued += s.issued;
                    out.grants += s.grants;
                    out.grants_switch += s.grants; // switch-only path
                    out.lock_latency.merge(&s.latency);
                }),
                ClientKind::Txn => self.sim.read_node::<TxnClient, _>(id, |c| {
                    let s = c.stats();
                    out.grants += s.grants;
                    out.grants_switch += s.grants_switch;
                    out.grants_server += s.grants_server;
                    out.txns += s.txns;
                    out.retries += s.retries;
                    out.surplus_released += s.stale_grants;
                    out.dup_grants_ignored += s.dup_grants_ignored;
                    out.lock_latency.merge(&s.wait_latency);
                    out.txn_latency.merge(&s.txn_latency);
                }),
                ClientKind::Population => self.sim.read_node::<PopulationClient, _>(id, |c| {
                    let s = c.stats();
                    out.issued += s.issued;
                    out.grants += s.grants;
                    out.grants_switch += s.grants; // switch-only path
                    out.retries += s.reclaimed;
                    out.lock_latency.merge(&s.latency);
                }),
            }
        }
        let net = self.sim.stats();
        out.net_lost = net.packets_lost;
        out.net_duplicated = net.packets_duplicated;
        out.net_reordered = net.packets_reordered;
        out.events_fired = net.events_fired;
        out
    }

    /// Run `warmup`, zero all counters, run `measure`, and collect one
    /// [`RunStats`] per rack.
    pub fn warmup_and_measure(
        &mut self,
        warmup: SimDuration,
        measure: SimDuration,
    ) -> Vec<RunStats> {
        self.sim.run_for(warmup);
        self.reset_clients();
        self.sim.run_for(measure);
        (0..self.racks.len())
            .map(|r| self.collect_rack(r, measure))
            .collect()
    }
}

/// Chaos-plan tuning for partitioned clusters: switch reboot and server
/// restart are disabled because their recovery rides on
/// `FaultAction::Custom` markers, which pause the whole simulator for
/// rack-level control-plane surgery — a partitioned run rejects them
/// (see `netlock-sim`'s fault validation). Link faults and permanent
/// client crashes target intra-rack pairs only, which the lookahead
/// check exempts.
pub fn cluster_plan_config() -> ChaosPlanConfig {
    ChaosPlanConfig {
        switch_reboot: false,
        server_restart: false,
        ..Default::default()
    }
}

/// Attach one fresh [`Oracle`] per rack via per-LP taps. Call after
/// [`RackCluster::partition`] (LP taps need the logical processes to
/// exist; an unpartitioned single-rack cluster falls back to the global
/// tap). Each oracle observes exactly its rack's packet deliveries and
/// timers, in an order independent of the worker count, so audit
/// digests are reproducible under any parallelism.
pub fn attach_rack_oracles(
    cluster: &mut RackCluster,
    cfg: &OracleConfig,
) -> Vec<Arc<Mutex<Oracle>>> {
    assert!(
        cluster.partitioned || cluster.racks.len() == 1,
        "attach oracles after partition(): LP taps need the partitions to exist"
    );
    let mut handles = Vec::with_capacity(cluster.racks.len());
    for r in 0..cluster.racks.len() {
        let mut oracle = Oracle::new(*cfg);
        for &(id, _) in &cluster.racks[r].clients {
            oracle.register_client(id);
        }
        let oracle = Arc::new(Mutex::new(oracle));
        let tap = Arc::clone(&oracle);
        cluster
            .sim
            .set_lp_tap(r, Box::new(move |ev| tap.lock().unwrap().observe(&ev)));
        handles.push(oracle);
    }
    handles
}

/// Drive a cluster with installed fault plans to `until` and finish
/// every rack oracle there. Unlike [`crate::chaos::run_chaos`] there is
/// no `Custom`-fault pause loop: cluster plans must come from
/// [`cluster_plan_config`], which emits none.
pub fn run_cluster_chaos(
    cluster: &mut RackCluster,
    until: SimTime,
    oracles: &[Arc<Mutex<Oracle>>],
) {
    cluster.sim.run_until(until);
    for oracle in oracles {
        oracle.lock().unwrap().finish(until.as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::generate_plan;
    use netlock_proto::LockMode;
    use netlock_switch::control::{knapsack_allocate, LockStats};
    use netlock_switch::shared_queue::SharedQueueLayout;

    fn small_cfg(seed: u64) -> RackConfig {
        RackConfig {
            seed,
            lock_servers: 1,
            engine: EngineSpec::Fcfs(SharedQueueLayout::small(2, 64, 8)),
            ..Default::default()
        }
    }

    fn cross_link() -> LinkConfig {
        LinkConfig::with_delay(SimDuration::from_micros(10))
    }

    fn locks() -> Vec<LockId> {
        (0..8).map(LockId).collect()
    }

    fn programmed_cluster(seed: u64, n_racks: usize, clients: usize) -> RackCluster {
        let mut cluster = RackCluster::build(&small_cfg(seed), n_racks, cross_link());
        let stats: Vec<LockStats> = locks()
            .iter()
            .map(|&lock| LockStats {
                lock,
                rate: 1.0,
                contention: 8,
                home_server: 0,
            })
            .collect();
        let alloc = knapsack_allocate(&stats, 64);
        for r in 0..n_racks {
            cluster.program(r, &alloc);
            for _ in 0..clients {
                cluster.add_micro_client(
                    r,
                    MicroClientConfig {
                        rate_rps: 100_000.0,
                        locks: locks(),
                        mode: LockMode::Shared,
                        ..Default::default()
                    },
                );
            }
        }
        cluster
    }

    #[test]
    fn layout_replicates_rack_at_offsets() {
        let cluster = RackCluster::build(
            &RackConfig {
                lock_servers: 3,
                db_servers: 2,
                ..Default::default()
            },
            2,
            cross_link(),
        );
        let r0 = &cluster.racks[0];
        assert_eq!(r0.lock_servers, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(r0.switch, NodeId(3));
        assert_eq!(r0.db_servers, vec![NodeId(4), NodeId(5)]);
        let r1 = &cluster.racks[1];
        assert_eq!(r1.lock_servers, vec![NodeId(6), NodeId(7), NodeId(8)]);
        assert_eq!(r1.switch, NodeId(9));
        assert_eq!(r1.db_servers, vec![NodeId(10), NodeId(11)]);
        assert_eq!(
            cluster.rack_assignment(),
            &[0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1]
        );
    }

    #[test]
    fn racks_make_progress_under_partition() {
        let mut cluster = programmed_cluster(3, 2, 2);
        cluster.partition(2);
        assert!(cluster.is_partitioned());
        assert_eq!(cluster.sim.partitions(), 2);
        let per_rack =
            cluster.warmup_and_measure(SimDuration::from_millis(1), SimDuration::from_millis(4));
        assert_eq!(per_rack.len(), 2);
        for stats in &per_rack {
            // 2 clients × 100k rps × 4 ms ≈ 800 grants.
            assert!(
                (500..1_200).contains(&stats.grants),
                "grants = {}",
                stats.grants
            );
            assert_eq!(stats.switch_share(), 1.0);
        }
    }

    #[test]
    fn worker_count_does_not_change_rack_stats() {
        let mut digests = Vec::new();
        for workers in [1, 2, 8] {
            let mut cluster = programmed_cluster(5, 3, 2);
            cluster.partition(workers);
            let per_rack = cluster
                .warmup_and_measure(SimDuration::from_millis(1), SimDuration::from_millis(3));
            let digest: Vec<(u64, u64, u64)> = per_rack
                .iter()
                .map(|s| (s.issued, s.grants, s.lock_latency_summary().p99_ns))
                .collect();
            digests.push((workers, digest));
        }
        assert_eq!(digests[0].1, digests[1].1, "1 vs 2 workers");
        assert_eq!(digests[0].1, digests[2].1, "1 vs 8 workers");
    }

    #[test]
    fn single_rack_cluster_stays_serial_and_supports_oracles() {
        let mut cluster = programmed_cluster(7, 1, 2);
        cluster.partition(4);
        assert!(!cluster.is_partitioned());
        assert_eq!(cluster.sim.partitions(), 1);
        let oracles = attach_rack_oracles(&mut cluster, &OracleConfig::default());
        assert_eq!(oracles.len(), 1);
        run_cluster_chaos(&mut cluster, SimTime(5_000_000), &oracles);
        let o = oracles[0].lock().unwrap();
        assert!(o.counts().delivered > 0, "oracle tap saw no traffic");
    }

    #[test]
    fn chaos_digests_identical_across_worker_counts() {
        let mut digests = Vec::new();
        for workers in [1, 2, 8] {
            let mut cluster = programmed_cluster(11, 2, 3);
            let plans: Vec<FaultPlan> = (0..2)
                .map(|r| generate_plan(40 + r as u64, &cluster.roles(r), &cluster_plan_config()))
                .collect();
            cluster.partition(workers);
            cluster.install_plans(&plans);
            let oracles = attach_rack_oracles(&mut cluster, &OracleConfig::default());
            run_cluster_chaos(&mut cluster, SimTime(50_000_000), &oracles);
            let d: Vec<(u64, u64)> = oracles
                .iter()
                .map(|o| {
                    let o = o.lock().unwrap();
                    (o.digest(), o.counts().faults)
                })
                .collect();
            digests.push(d);
        }
        assert_eq!(digests[0], digests[1], "1 vs 2 workers");
        assert_eq!(digests[0], digests[2], "1 vs 8 workers");
        // Faults actually happened and the taps observed them.
        assert!(digests[0].iter().any(|&(_, faults)| faults > 0));
    }
}
