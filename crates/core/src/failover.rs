//! Multi-switch failover cluster: partitioned lock space, chain
//! replication, and oracle-certified crash recovery (DESIGN.md §16).
//!
//! A [`FailoverCluster`] wires the pieces of the multi-switch
//! deployment into one simulator:
//!
//! - one [`ChainController`] (the repair control plane),
//! - `partitions × replication` [`ReplSwitch`] chain members, each
//!   programmed with its partition's slice of the lock space
//!   ([`partition_locks`]), and
//! - closed-loop [`TxnClient`]s routing per-lock through a
//!   [`PartitionMap`] and following the controller's re-broadcasts.
//!
//! The logical-process map puts the controller and every client in
//! LP 0 and each partition's chain in its own LP, so the cluster runs
//! under the conservative-window parallel spine with byte-identical
//! results at any worker count. Crash recovery is **entirely
//! in-protocol** — `FailNode`/`ReviveNode` plus the chain-repair
//! control messages — because a partitioned simulator rejects
//! `Custom` faults; there is no harness surgery to pause for.
//!
//! [`crash_plan`] builds the canonical chaos schedule: one chain
//! member per partition crashes mid-traffic (victims drawn from the
//! plan seed, or pinned head/tail), then revives. The safety oracle
//! watches LP 0's tap — every client-side send and delivery — which is
//! sufficient for all four invariants, since grants, releases and
//! acquires all terminate at clients.
//!
//! [`partition_locks`]: netlock_switch::partition::partition_locks

use std::sync::{Arc, Mutex};

use netlock_proto::{LockId, LockMode, NetLockMsg};
use netlock_sim::{
    FaultAction, FaultPlan, LinkConfig, NodeId, SimDuration, SimRng, SimTime, Simulator, TapEvent,
    Topology,
};
use netlock_switch::control::{apply_allocation, knapsack_allocate, Allocation, LockStats};
use netlock_switch::partition::{partition_locks, PartitionMap};
use netlock_switch::shared_queue::SharedQueueLayout;
use netlock_switch::{ChainController, ControllerConfig, DataPlane, ReplConfig, ReplSwitch};

use crate::client_txn::{TxnClient, TxnClientConfig, TxnClientStats};
use crate::oracle::{Oracle, OracleConfig};
use crate::txn::SingleLockSource;

/// Shape and timescales of a failover cluster. Defaults are the chaos
/// suite's compressed timescales: a 2 ms lease and sub-millisecond
/// failure detection, so a 40 ms run crosses crash, repair, and many
/// healthy lease generations.
#[derive(Clone, Debug)]
pub struct FailoverConfig {
    /// Seeds clients and the crash-plan victim draw.
    pub seed: u64,
    /// Lock-space partitions (one replication chain each).
    pub partitions: usize,
    /// Chain length per partition (1 = unreplicated).
    pub replication: usize,
    /// Closed-loop transaction clients.
    pub clients: usize,
    /// Workers per client.
    pub workers_per_client: usize,
    /// Lock-space size; lock `l` lives in partition `l % partitions`.
    pub locks: u32,
    /// Queue-slot budget per partition's allocation.
    pub queue_capacity: u32,
    /// Register layout of each chain member's data plane.
    pub layout: SharedQueueLayout,
    /// Lease (chain heads sweep expired holders).
    pub lease: SimDuration,
    /// Member ping cadence and lease-sweep granularity.
    pub control_tick: SimDuration,
    /// Client retransmission base (see [`TxnClientConfig`]).
    pub retry_timeout: SimDuration,
    /// Client backoff ceiling.
    pub retry_backoff_cap: SimDuration,
    /// Uniform link delay; this is the partition lookahead, so it must
    /// be positive.
    pub link_delay: SimDuration,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            seed: 11,
            partitions: 2,
            replication: 2,
            clients: 2,
            workers_per_client: 4,
            locks: 8,
            queue_capacity: 128,
            layout: SharedQueueLayout::small(2, 64, 16),
            lease: SimDuration::from_millis(2),
            control_tick: SimDuration::from_micros(200),
            retry_timeout: SimDuration::from_millis(1),
            retry_backoff_cap: SimDuration::from_millis(4),
            link_delay: SimDuration::from_nanos(1_200),
        }
    }
}

/// The assembled multi-switch deployment.
pub struct FailoverCluster {
    /// The shared simulator.
    pub sim: Simulator<NetLockMsg>,
    /// The chain-repair control plane (LP 0).
    pub controller: NodeId,
    /// Transaction clients (LP 0).
    pub clients: Vec<NodeId>,
    /// `chains[p]` = partition `p`'s members, head first (LP `p + 1`).
    pub chains: Vec<Vec<NodeId>>,
    cfg: FailoverConfig,
    lp_of: Vec<u32>,
    partitioned: bool,
}

impl FailoverCluster {
    /// Assemble the cluster: controller first (node 0), then clients,
    /// then the chains partition-major. Every chain member's data plane
    /// is programmed with its partition's locks before the first event
    /// fires, and every client starts with the version-0 partition map.
    pub fn build(cfg: &FailoverConfig) -> FailoverCluster {
        assert!(cfg.partitions >= 1 && cfg.replication >= 1);
        assert!(
            !cfg.link_delay.is_zero(),
            "link delay is the partition lookahead; it must be positive"
        );
        let mut sim: Simulator<NetLockMsg> = Simulator::new(
            Topology::new(LinkConfig::with_delay(cfg.link_delay)),
            cfg.seed,
        );
        // Predict the node layout so every component can name its peers
        // before they exist (ids are handed out sequentially).
        let controller = NodeId(0);
        let clients: Vec<NodeId> = (0..cfg.clients).map(|i| NodeId(1 + i as u32)).collect();
        let chain_base = 1 + cfg.clients as u32;
        let chains: Vec<Vec<NodeId>> = (0..cfg.partitions)
            .map(|p| {
                (0..cfg.replication)
                    .map(|m| NodeId(chain_base + (p * cfg.replication + m) as u32))
                    .collect()
            })
            .collect();
        let heads: Vec<NodeId> = chains.iter().map(|c| c[0]).collect();
        let mut lp_of = vec![0u32; 1 + cfg.clients];

        let id = sim.add_node(Box::new(ChainController::new(
            ControllerConfig {
                tick: cfg.control_tick,
                dead_after: SimDuration::from_nanos(cfg.control_tick.as_nanos() * 3),
                ..Default::default()
            },
            chains.clone(),
            clients.clone(),
        )));
        assert_eq!(id, controller);

        let all_locks: Vec<LockId> = (0..cfg.locks).map(LockId).collect();
        for (i, &want) in clients.iter().enumerate() {
            let id = sim.add_node(Box::new(TxnClient::new(
                TxnClientConfig {
                    workers: cfg.workers_per_client,
                    retry_timeout: cfg.retry_timeout,
                    retry_backoff_cap: cfg.retry_backoff_cap,
                    ..Default::default()
                },
                heads[0],
                Box::new(SingleLockSource {
                    locks: all_locks.clone(),
                    mode: LockMode::Exclusive,
                    think: SimDuration::ZERO,
                }),
                cfg.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )));
            assert_eq!(id, want);
            sim.with_node::<TxnClient, _>(id, |c| {
                c.set_partition_route(PartitionMap::new(heads.clone()));
            });
        }

        for (p, chain) in chains.iter().enumerate() {
            let alloc = partition_allocation(cfg, p as u16);
            for (m, &want) in chain.iter().enumerate() {
                let mut dp = DataPlane::new_fcfs(&cfg.layout);
                apply_allocation(&mut dp, &alloc);
                let id = sim.add_node(Box::new(ReplSwitch::new(
                    dp,
                    alloc.clone(),
                    ReplConfig {
                        partition: p as u16,
                        member: m as u16,
                        chain: chain.clone(),
                        controller,
                        lease: cfg.lease,
                        control_tick: cfg.control_tick,
                        ..Default::default()
                    },
                )));
                assert_eq!(id, want);
                lp_of.push(p as u32 + 1);
            }
        }

        FailoverCluster {
            sim,
            controller,
            clients,
            chains,
            cfg: cfg.clone(),
            lp_of,
            partitioned: false,
        }
    }

    /// The logical-process map: controller + clients in LP 0, each
    /// partition's chain in its own LP.
    pub fn lp_assignment(&self) -> &[u32] {
        &self.lp_of
    }

    /// Split one LP per partition chain (plus LP 0) and allow `workers`
    /// threads. The uniform link delay is the lookahead.
    pub fn partition(&mut self, workers: usize) {
        assert!(!self.partitioned, "partition called twice");
        self.sim.partition(self.lp_of.clone(), workers);
        self.partitioned = self.sim.partitions() > 1;
    }

    /// Disable chain-replication replay on every member (sabotage: the
    /// failover path silently drops the in-flight window on repair).
    #[doc(hidden)]
    pub fn sabotage_disable_replay(&mut self) {
        for chain in self.chains.clone() {
            for member in chain {
                self.sim
                    .with_node::<ReplSwitch, _>(member, |s| s.sabotage_disable_replay());
            }
        }
    }

    /// Sum of all clients' counters.
    pub fn client_totals(&self) -> TxnClientStats {
        let mut out = TxnClientStats::default();
        for &c in &self.clients {
            self.sim.read_node::<TxnClient, _>(c, |cl| {
                let s = cl.stats();
                out.txns += s.txns;
                out.grants += s.grants;
                out.grants_switch += s.grants_switch;
                out.grants_server += s.grants_server;
                out.retries += s.retries;
                out.stale_grants += s.stale_grants;
                out.dup_grants_ignored += s.dup_grants_ignored;
                out.txn_latency.merge(&s.txn_latency);
                out.wait_latency.merge(&s.wait_latency);
            });
        }
        out
    }
}

/// The allocation one partition's chain members are programmed with.
pub fn partition_allocation(cfg: &FailoverConfig, p: u16) -> Allocation {
    let stats: Vec<LockStats> = partition_locks(cfg.locks, p, cfg.partitions)
        .into_iter()
        .map(|lock| LockStats {
            lock,
            rate: 1.0,
            contention: 16,
            home_server: 0,
        })
        .collect();
    knapsack_allocate(&stats, cfg.queue_capacity)
}

/// Which chain member a crash episode kills.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VictimPick {
    /// Drawn per partition from the plan seed.
    Seeded,
    /// Always the chain head (forces a client re-route).
    Head,
    /// Always the tail (forces replay + tail promotion; leaves the
    /// client→head path untouched, so even retry-free clients see
    /// every in-flight grant).
    Tail,
}

/// The canonical failover chaos schedule.
#[derive(Clone, Copy, Debug)]
pub struct CrashScenario {
    /// First crash instant (mid-traffic; let the loops warm up first).
    pub crash_at: SimDuration,
    /// Crash-to-revive outage per victim.
    pub outage: SimDuration,
    /// Offset between consecutive partitions' crashes.
    pub stagger: SimDuration,
    /// Victim selection.
    pub victim: VictimPick,
}

impl Default for CrashScenario {
    fn default() -> Self {
        CrashScenario {
            crash_at: SimDuration::from_millis(10),
            outage: SimDuration::from_millis(6),
            stagger: SimDuration::from_millis(1),
            victim: VictimPick::Seeded,
        }
    }
}

/// Build the crash plan: one chain member per partition fails
/// mid-traffic and revives after the outage. Pure `(cluster, scenario,
/// seed)` function; contains only `FailNode`/`ReviveNode`, so it
/// installs on a partitioned simulator.
pub fn crash_plan(cluster: &FailoverCluster, scenario: &CrashScenario) -> FaultPlan {
    let mut rng = SimRng::new(cluster.cfg.seed ^ 0xFA11_0B5E);
    let mut plan = FaultPlan::new();
    for (p, chain) in cluster.chains.iter().enumerate() {
        let victim = match scenario.victim {
            VictimPick::Seeded => chain[rng.index(chain.len())],
            VictimPick::Head => chain[0],
            VictimPick::Tail => *chain.last().unwrap(),
        };
        let at = SimTime(scenario.crash_at.as_nanos() + scenario.stagger.as_nanos() * p as u64);
        let back = SimTime(at.as_nanos() + scenario.outage.as_nanos());
        plan.push(at, FaultAction::FailNode(victim));
        plan.push(back, FaultAction::ReviveNode(victim));
    }
    plan
}

/// Grant deliveries per time bucket — the availability timeline the
/// failover figure plots.
pub struct GrantTimeline {
    bucket_ns: u64,
    buckets: Vec<u64>,
}

impl GrantTimeline {
    fn record(&mut self, at_ns: u64) {
        let b = (at_ns / self.bucket_ns) as usize;
        if b >= self.buckets.len() {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
    }

    /// Bucket width in nanoseconds.
    pub fn bucket_ns(&self) -> u64 {
        self.bucket_ns
    }

    /// Grant deliveries per bucket, from t = 0.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total grants delivered in `[from, to)`.
    pub fn grants_between(&self, from: SimDuration, to: SimDuration) -> u64 {
        let (a, b) = (from.as_nanos(), to.as_nanos());
        self.buckets
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let start = *i as u64 * self.bucket_ns;
                start >= a && start < b
            })
            .map(|(_, &n)| n)
            .sum()
    }
}

/// Attach the oracle and the grant timeline to LP 0's tap (the clients'
/// LP). Call after [`FailoverCluster::partition`]; an unpartitioned
/// cluster gets the global tap instead. Client-side events are enough
/// for every oracle invariant: acquires and releases are observed as
/// they leave the clients, grants as they arrive.
pub fn attach_failover_probe(
    cluster: &mut FailoverCluster,
    cfg: &OracleConfig,
    bucket: SimDuration,
) -> (Arc<Mutex<Oracle>>, Arc<Mutex<GrantTimeline>>) {
    let mut oracle = Oracle::new(*cfg);
    for &c in &cluster.clients {
        oracle.register_client(c);
    }
    let clients: std::collections::HashSet<NodeId> = cluster.clients.iter().copied().collect();
    let oracle = Arc::new(Mutex::new(oracle));
    let timeline = Arc::new(Mutex::new(GrantTimeline {
        bucket_ns: bucket.as_nanos().max(1),
        buckets: Vec::new(),
    }));
    let (o, t) = (Arc::clone(&oracle), Arc::clone(&timeline));
    let tap = Box::new(move |ev: TapEvent<'_, NetLockMsg>| {
        if let TapEvent::Delivered { at, pkt } = &ev {
            if clients.contains(&pkt.dst) && matches!(pkt.payload, NetLockMsg::Grant(_)) {
                t.lock().unwrap().record(at.as_nanos());
            }
        }
        o.lock().unwrap().observe(&ev);
    });
    if cluster.partitioned {
        cluster.sim.set_lp_tap(0, tap);
    } else {
        cluster.sim.set_tap(tap);
    }
    (oracle, timeline)
}

/// Everything one failover run produced.
pub struct FailoverRun {
    /// Replication factor the run used.
    pub replication: usize,
    /// Worker threads the simulator ran with.
    pub workers: usize,
    /// Oracle digest (byte-identical across worker counts).
    pub digest: u64,
    /// The canonical audit log.
    pub audit: String,
    /// Violations (empty = oracle-clean failover).
    pub violations: usize,
    /// Client counter totals.
    pub totals: TxnClientStats,
    /// Grant availability timeline.
    pub timeline: GrantTimeline,
    /// The scenario's crash window, for availability queries.
    pub scenario: CrashScenario,
}

impl FailoverRun {
    /// Grants delivered inside the crash window (first crash to last
    /// revive) — the availability-under-failure number.
    pub fn crash_window_grants(&self, partitions: usize) -> u64 {
        let from = self.scenario.crash_at;
        let to = SimDuration::from_nanos(
            self.scenario.crash_at.as_nanos()
                + self.scenario.outage.as_nanos()
                + self.scenario.stagger.as_nanos() * partitions.saturating_sub(1) as u64,
        );
        self.timeline.grants_between(from, to)
    }
}

/// Run one complete failover scenario: build, partition, install the
/// crash plan, drive to `total`, finish the oracle. Byte-identical for
/// identical `(cfg, scenario, total)` at any `workers`.
pub fn run_failover(
    cfg: &FailoverConfig,
    scenario: &CrashScenario,
    workers: usize,
    total: SimDuration,
    sabotage_replay: bool,
) -> FailoverRun {
    let mut cluster = FailoverCluster::build(cfg);
    if sabotage_replay {
        cluster.sabotage_disable_replay();
    }
    let plan = crash_plan(&cluster, scenario);
    cluster.partition(workers);
    cluster.sim.install_plan(&plan);
    let (oracle, timeline) = attach_failover_probe(
        &mut cluster,
        &OracleConfig {
            lease_ns: cfg.lease.as_nanos(),
            leak_after_ns: 10_000_000,
            wedge_after_ns: 10_000_000,
        },
        SimDuration::from_millis(1),
    );
    cluster.sim.run_until(SimTime(total.as_nanos()));
    oracle.lock().unwrap().finish(total.as_nanos());
    let totals = cluster.client_totals();
    let o = oracle.lock().unwrap();
    let timeline = Arc::try_unwrap(timeline)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_else(|arc| {
            let t = arc.lock().unwrap();
            GrantTimeline {
                bucket_ns: t.bucket_ns,
                buckets: t.buckets.clone(),
            }
        });
    FailoverRun {
        replication: cfg.replication,
        workers,
        digest: o.digest(),
        audit: o.audit_log(),
        violations: o.violations().len(),
        totals,
        timeline,
        scenario: *scenario,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOTAL: SimDuration = SimDuration::from_millis(40);

    #[test]
    fn healthy_cluster_grants_across_partitions() {
        let cfg = FailoverConfig::default();
        let mut cluster = FailoverCluster::build(&cfg);
        cluster.partition(1);
        cluster
            .sim
            .run_until(SimTime(SimDuration::from_millis(8).as_nanos()));
        let totals = cluster.client_totals();
        assert!(totals.txns > 500, "healthy throughput: {}", totals.txns);
        // Both partitions' chains applied traffic.
        for chain in &cluster.chains {
            for &m in chain {
                let applied = cluster
                    .sim
                    .read_node::<ReplSwitch, _>(m, |s| s.stats().ops_applied);
                assert!(applied > 0, "member {m} applied nothing");
            }
        }
    }

    #[test]
    fn replicated_crash_is_oracle_clean_and_worker_independent() {
        let scenario = CrashScenario::default();
        let runs: Vec<FailoverRun> = [1usize, 2, 8]
            .iter()
            .map(|&w| run_failover(&FailoverConfig::default(), &scenario, w, TOTAL, false))
            .collect();
        for r in &runs {
            assert_eq!(r.violations, 0, "oracle-clean failover:\n{}", r.audit);
            assert!(r.totals.txns > 1_000, "progress: {}", r.totals.txns);
        }
        assert_eq!(runs[0].digest, runs[1].digest, "1 vs 2 workers");
        assert_eq!(runs[0].digest, runs[2].digest, "1 vs 8 workers");
        assert_eq!(runs[0].audit, runs[1].audit);
    }

    #[test]
    fn unreplicated_crash_stalls_but_replicated_sustains() {
        let scenario = CrashScenario::default();
        let run = |replication: usize| {
            let cfg = FailoverConfig {
                replication,
                ..Default::default()
            };
            run_failover(&cfg, &scenario, 1, TOTAL, false)
        };
        let solo = run(1);
        let pair = run(2);
        assert_eq!(solo.violations, 0, "factor 1 stays safe:\n{}", solo.audit);
        assert_eq!(pair.violations, 0, "factor 2 stays safe:\n{}", pair.audit);
        let solo_window = solo.crash_window_grants(2);
        let pair_window = pair.crash_window_grants(2);
        // Factor 1 loses both partitions for the whole outage; factor 2
        // splices around the victims within a few control ticks.
        assert!(
            pair_window > solo_window * 4,
            "availability: factor2={pair_window} factor1={solo_window}"
        );
    }

    #[test]
    fn sabotaged_replay_is_caught_by_the_oracle() {
        // Retry-free clients + tail crashes: the chain's replay is the
        // ONLY thing standing between a crash and lost grants. With it,
        // the run is clean; without it, the oracle reports the loss.
        let cfg = FailoverConfig {
            // No retransmission inside the run: the chain must deliver.
            retry_timeout: SimDuration::from_secs(1),
            retry_backoff_cap: SimDuration::from_secs(1),
            ..Default::default()
        };
        let scenario = CrashScenario {
            victim: VictimPick::Tail,
            ..Default::default()
        };
        let honest = run_failover(&cfg, &scenario, 2, TOTAL, false);
        assert_eq!(
            honest.violations, 0,
            "replay keeps retry-free clients whole:\n{}",
            honest.audit
        );
        let sabotaged = run_failover(&cfg, &scenario, 2, TOTAL, true);
        assert!(
            sabotaged.violations > 0,
            "oracle must catch the lost in-flight window:\n{}",
            sabotaged.audit
        );
        assert!(
            sabotaged.audit.contains("wedged-request"),
            "lost grants read as wedged acquires:\n{}",
            sabotaged.audit
        );
    }
}
