//! Database server node for one-RTT transactions (§4.1).
//!
//! In one-RTT mode the switch forwards granted lock requests straight to
//! the database server holding the item; the server fetches the data and
//! replies to the client, combining lock acquisition and data fetch in a
//! single round trip. The fetch itself is modeled as a fixed in-memory
//! lookup cost.

use netlock_proto::NetLockMsg;
use netlock_sim::{Context, Node, NodeId, Packet, SimDuration};

/// Database server configuration.
#[derive(Clone, Debug)]
pub struct DbServerConfig {
    /// In-memory fetch cost per request.
    pub fetch_cost: SimDuration,
}

impl Default for DbServerConfig {
    fn default() -> Self {
        DbServerConfig {
            fetch_cost: SimDuration::from_nanos(800),
        }
    }
}

/// The database server node.
pub struct DbServer {
    cfg: DbServerConfig,
    fetches: u64,
}

impl DbServer {
    /// A database server.
    pub fn new(cfg: DbServerConfig) -> DbServer {
        DbServer { cfg, fetches: 0 }
    }

    /// Fetches served.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }
}

impl Node<NetLockMsg> for DbServer {
    fn on_packet(&mut self, pkt: Packet<NetLockMsg>, ctx: &mut Context<'_, NetLockMsg>) {
        if let NetLockMsg::DbFetch { grant } = pkt.payload {
            self.fetches += 1;
            ctx.send_after(
                NodeId(grant.client.0),
                NetLockMsg::DbReply { grant },
                self.cfg.fetch_cost,
            );
        }
    }

    fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_, NetLockMsg>) {}

    fn name(&self) -> &str {
        "db-server"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_proto::{ClientAddr, GrantMsg, Grantor, LockId, LockMode, TxnId};
    use netlock_sim::{SimTime, Simulator};

    struct Sink(Vec<NetLockMsg>);
    impl Node<NetLockMsg> for Sink {
        fn on_packet(&mut self, pkt: Packet<NetLockMsg>, _ctx: &mut Context<'_, NetLockMsg>) {
            self.0.push(pkt.payload);
        }
        fn on_timer(&mut self, _t: u64, _c: &mut Context<'_, NetLockMsg>) {}
    }

    #[test]
    fn fetch_replies_to_client() {
        let mut sim: Simulator<NetLockMsg> = Simulator::with_seed(1);
        let client = sim.add_node(Box::new(Sink(Vec::new())));
        let db = sim.add_node(Box::new(DbServer::new(DbServerConfig::default())));
        let grant = GrantMsg {
            lock: LockId(1),
            txn: TxnId(2),
            mode: LockMode::Shared,
            client: ClientAddr(client.0),
            priority: netlock_proto::Priority(0),
            grantor: Grantor::Switch,
            issued_at_ns: 0,
        };
        sim.inject(client, db, NetLockMsg::DbFetch { grant });
        sim.run_until(SimTime(1_000_000));
        sim.read_node::<Sink, _>(client, |s| {
            assert_eq!(s.0.len(), 1);
            assert!(matches!(s.0[0], NetLockMsg::DbReply { .. }));
        });
        sim.read_node::<DbServer, _>(db, |d| assert_eq!(d.fetches(), 1));
    }
}
