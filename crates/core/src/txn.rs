//! Transactions and workload sources.
//!
//! A transaction is what the evaluation's clients execute: a set of lock
//! requests (acquired in sorted order — sequential two-phase locking with
//! a global lock order, which makes the workload deadlock-free), a think
//! time (the in-memory execution cost), then release of all locks.

use netlock_proto::{LockId, LockMode, Priority, TenantId};
use netlock_sim::{SimDuration, SimRng};

/// One lock a transaction needs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LockNeed {
    /// The lock.
    pub lock: LockId,
    /// Shared (read) or exclusive (write).
    pub mode: LockMode,
}

/// A transaction template.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transaction {
    /// Locks to acquire, sorted by lock id (enforced by [`Transaction::new`]).
    pub locks: Vec<LockNeed>,
    /// Execution (think) time once all locks are held.
    pub think: SimDuration,
    /// Issuing tenant.
    pub tenant: TenantId,
    /// Priority class.
    pub priority: Priority,
}

impl Transaction {
    /// Build a transaction; locks are sorted and deduplicated (an
    /// exclusive need wins over a shared need for the same lock).
    pub fn new(mut locks: Vec<LockNeed>, think: SimDuration) -> Transaction {
        locks.sort_by_key(|n| (n.lock, n.mode == LockMode::Shared));
        locks.dedup_by(|b, a| {
            if a.lock == b.lock {
                // Keep the stronger (exclusive sorts first after the key
                // above), drop the duplicate.
                true
            } else {
                false
            }
        });
        Transaction {
            locks,
            think,
            tenant: TenantId(0),
            priority: Priority(0),
        }
    }

    /// Build a transaction that acquires `locks` in the given order,
    /// without sorting. Out-of-order acquisition can deadlock; NetLock
    /// resolves such deadlocks with leases (§4.5), which this
    /// constructor exists to exercise. Duplicates are NOT removed.
    pub fn new_ordered(locks: Vec<LockNeed>, think: SimDuration) -> Transaction {
        Transaction {
            locks,
            think,
            tenant: TenantId(0),
            priority: Priority(0),
        }
    }

    /// Set the tenant.
    pub fn with_tenant(mut self, tenant: TenantId) -> Transaction {
        self.tenant = tenant;
        self
    }

    /// Set the priority.
    pub fn with_priority(mut self, priority: Priority) -> Transaction {
        self.priority = priority;
        self
    }

    /// Number of lock requests (acquires) this transaction will issue.
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }
}

/// A source of transactions for a client worker.
///
/// Implementations must be deterministic given the provided RNG.
pub trait TxnSource: Send {
    /// Produce the next transaction.
    fn next_txn(&mut self, rng: &mut SimRng) -> Transaction;
}

/// Blanket: closures can be sources.
impl<F> TxnSource for F
where
    F: FnMut(&mut SimRng) -> Transaction + Send,
{
    fn next_txn(&mut self, rng: &mut SimRng) -> Transaction {
        self(rng)
    }
}

/// A fixed single-lock transaction source (micro-style closed loop).
#[derive(Clone, Debug)]
pub struct SingleLockSource {
    /// Locks to choose uniformly from.
    pub locks: Vec<LockId>,
    /// Mode for every request.
    pub mode: LockMode,
    /// Think time.
    pub think: SimDuration,
}

impl TxnSource for SingleLockSource {
    fn next_txn(&mut self, rng: &mut SimRng) -> Transaction {
        let lock = self.locks[rng.index(self.locks.len())];
        Transaction::new(
            vec![LockNeed {
                lock,
                mode: self.mode,
            }],
            self.think,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locks_sorted_and_deduped() {
        let t = Transaction::new(
            vec![
                LockNeed {
                    lock: LockId(5),
                    mode: LockMode::Shared,
                },
                LockNeed {
                    lock: LockId(1),
                    mode: LockMode::Exclusive,
                },
                LockNeed {
                    lock: LockId(5),
                    mode: LockMode::Exclusive,
                },
            ],
            SimDuration::ZERO,
        );
        assert_eq!(t.lock_count(), 2);
        assert_eq!(t.locks[0].lock, LockId(1));
        assert_eq!(t.locks[1].lock, LockId(5));
        assert_eq!(
            t.locks[1].mode,
            LockMode::Exclusive,
            "exclusive wins the dedup"
        );
    }

    #[test]
    fn builder_setters() {
        let t = Transaction::new(vec![], SimDuration::from_micros(5))
            .with_tenant(TenantId(3))
            .with_priority(Priority(2));
        assert_eq!(t.tenant, TenantId(3));
        assert_eq!(t.priority, Priority(2));
        assert_eq!(t.think, SimDuration::from_micros(5));
    }

    #[test]
    fn single_lock_source_uniform() {
        let mut src = SingleLockSource {
            locks: (0..10).map(LockId).collect(),
            mode: LockMode::Exclusive,
            think: SimDuration::ZERO,
        };
        let mut rng = SimRng::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let t = src.next_txn(&mut rng);
            assert_eq!(t.lock_count(), 1);
            seen.insert(t.locks[0].lock);
        }
        assert!(seen.len() >= 8, "should cover most locks");
    }

    #[test]
    fn closure_is_a_source() {
        let mut src = |_rng: &mut SimRng| {
            Transaction::new(
                vec![LockNeed {
                    lock: LockId(1),
                    mode: LockMode::Shared,
                }],
                SimDuration::ZERO,
            )
        };
        let mut rng = SimRng::new(2);
        assert_eq!(src.next_txn(&mut rng).lock_count(), 1);
    }
}
