//! Closed-loop transaction client (the TPC-C experiments' clients).
//!
//! Runs `workers` concurrent transaction contexts. Each worker loops:
//! take a transaction from the workload source, acquire its locks one by
//! one (sorted order — deadlock-free 2PL), think, release everything,
//! repeat. Lost grants (packet loss, switch failure, quota drops) are
//! handled by retransmission with capped exponential backoff and
//! deterministic per-client jitter (an independently seeded `SimRng`
//! stream), so the retry waves of many clients blocked by one switch
//! outage spread out instead of re-synchronizing into storms; surplus
//! grants from retries are released immediately so they cannot leak
//! holders.
//!
//! In a multi-switch deployment the client routes each acquire/release
//! by lock through a [`PartitionMap`] (see `netlock_switch::partition`)
//! and follows `CtrlPartitionMap` re-broadcasts, so a retry after a
//! chain failover lands on the repaired head.
//!
//! Timers are guarded by a per-worker generation counter: every state
//! transition invalidates outstanding timers, so a stale retry timer can
//! never fire into a later phase of the transaction.

use netlock_proto::{
    ClientAddr, GrantMsg, Grantor, LockId, LockRequest, NetLockMsg, ReleaseRequest, TxnId,
};
use netlock_sim::{Context, Histogram, Node, NodeId, Packet, SimDuration, SimRng, SimTime};
use netlock_switch::partition::PartitionMap;

use crate::txn::{LockNeed, Transaction, TxnSource};

/// Transaction client configuration.
#[derive(Clone, Debug)]
pub struct TxnClientConfig {
    /// Concurrent transaction contexts.
    pub workers: usize,
    /// Client software + NIC delay on transmit.
    pub tx_delay: SimDuration,
    /// Client software + NIC delay on receive.
    pub rx_delay: SimDuration,
    /// Re-send an acquire if no grant arrives within this window (the
    /// backoff base; attempt `n` waits `min(2^n × retry_timeout,
    /// retry_backoff_cap)` ± 25% jitter).
    pub retry_timeout: SimDuration,
    /// Ceiling of the exponential retry backoff.
    pub retry_backoff_cap: SimDuration,
    /// Delay before the workers start issuing transactions (tenant
    /// arrival time in the policy experiments).
    pub start_delay: SimDuration,
}

impl Default for TxnClientConfig {
    fn default() -> Self {
        TxnClientConfig {
            workers: 16,
            tx_delay: SimDuration::from_nanos(2_500),
            rx_delay: SimDuration::from_nanos(2_500),
            retry_timeout: SimDuration::from_millis(20),
            retry_backoff_cap: SimDuration::from_millis(160),
            start_delay: SimDuration::ZERO,
        }
    }
}

/// Transaction client counters.
#[derive(Clone, Debug, Default)]
pub struct TxnClientStats {
    /// Transactions completed.
    pub txns: u64,
    /// Lock grants received and consumed.
    pub grants: u64,
    /// Grants that came from the switch data plane.
    pub grants_switch: u64,
    /// Grants that came from a lock server.
    pub grants_server: u64,
    /// Acquire retransmissions.
    pub retries: u64,
    /// Surplus grants released (stale transactions or retry duplicates).
    pub stale_grants: u64,
    /// Network-duplicated grants ignored: a second delivery of a grant
    /// this transaction already consumed (same lock, txn and
    /// `issued_at_ns`). Releasing it would free our own held entry, so
    /// it is dropped instead.
    pub dup_grants_ignored: u64,
    /// End-to-end transaction latency (ns).
    pub txn_latency: Histogram,
    /// Per-lock acquire→grant latency (ns).
    pub wait_latency: Histogram,
}

#[derive(Debug)]
enum Phase {
    Acquiring { next: usize, acquire_sent: SimTime },
    Thinking,
}

#[derive(Debug)]
struct Worker {
    txn: Transaction,
    txn_id: TxnId,
    started: SimTime,
    phase: Phase,
    /// Held locks with the `issued_at_ns` of the consuming grant (the
    /// issue stamp identifies which grant a duplicate delivery copies:
    /// retries re-stamp, network duplicates don't).
    held: Vec<(LockNeed, u64)>,
    /// Per-worker transaction sequence (encoded into txn ids).
    seq: u64,
    /// Timer-staleness guard; bumped on every state transition.
    timer_gen: u64,
    /// Consecutive retransmissions of the current acquire (backoff
    /// exponent); reset whenever the worker advances to a new lock.
    attempts: u32,
}

/// The closed-loop transaction client node.
pub struct TxnClient {
    cfg: TxnClientConfig,
    switch: NodeId,
    /// Multi-switch routing table; `None` = single-switch deployment
    /// (everything goes to `switch`).
    route: Option<PartitionMap>,
    source: Box<dyn TxnSource>,
    workers: Vec<Worker>,
    rng: SimRng,
    /// Dedicated jitter stream for retry backoff. Seeded independently
    /// of `rng` so enabling/disabling retries never perturbs the
    /// workload draws (byte-stable figure output), and independently
    /// per client so blocked clients desynchronize.
    retry_rng: SimRng,
    stats: TxnClientStats,
    /// Test hook: when set, surplus grants are counted but not
    /// released (chaos-suite sabotage; leaks queue entries so the
    /// safety oracle's conservation check must fire).
    surplus_release_disabled: bool,
}

const SEQ_BITS: u32 = 24;
const WORKER_BITS: u32 = 16;
const GEN_BITS: u32 = 32;

impl TxnClient {
    /// A client with `cfg.workers` contexts fed by `source`.
    pub fn new(
        cfg: TxnClientConfig,
        switch: NodeId,
        source: Box<dyn TxnSource>,
        seed: u64,
    ) -> TxnClient {
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(cfg.workers < (1 << WORKER_BITS), "too many workers");
        TxnClient {
            cfg,
            switch,
            route: None,
            source,
            workers: Vec::new(),
            rng: SimRng::new(seed),
            // Domain-separated from the workload stream: retries draw
            // jitter without shifting any transaction draw.
            retry_rng: SimRng::new(seed ^ 0x5245_5452_594a_4954),
            stats: TxnClientStats::default(),
            surplus_release_disabled: false,
        }
    }

    /// Install a lock-space routing table for a multi-switch
    /// deployment: every acquire/release routes to the chain head of
    /// the lock's partition, and later `CtrlPartitionMap` broadcasts
    /// (chain repairs moving a head) update it in place.
    pub fn set_partition_route(&mut self, map: PartitionMap) {
        self.route = Some(map);
    }

    /// The switch currently serving `lock`.
    fn switch_for(&self, lock: LockId) -> NodeId {
        match &self.route {
            Some(map) => map.head_of(lock),
            None => self.switch,
        }
    }

    /// Retry wait for the current attempt: the first wait is exactly
    /// `retry_timeout` (byte-stable with the pre-backoff behavior);
    /// attempt `n` waits `min(2^n × retry_timeout, retry_backoff_cap)`
    /// with ±25% jitter from the dedicated per-client stream, so
    /// clients blocked by the same outage drift apart instead of
    /// hammering the reviving switch in lockstep waves.
    fn retry_delay(&mut self, worker: usize) -> SimDuration {
        let attempts = self.workers[worker].attempts;
        if attempts == 0 {
            return self.cfg.retry_timeout;
        }
        let base = self.cfg.retry_timeout.as_nanos();
        let cap = self.cfg.retry_backoff_cap.as_nanos().max(base);
        let backoff = base.saturating_mul(1 << attempts.min(20)).min(cap);
        let span = backoff / 2; // total jitter width: 50% of the wait
        let jitter = if span == 0 {
            0
        } else {
            self.retry_rng.next_u64() % (span + 1)
        };
        SimDuration::from_nanos(backoff - span / 2 + jitter)
    }

    /// Disable the surplus-grant release path (chaos-suite sabotage
    /// hook; proves the safety oracle detects the leaked holders).
    #[doc(hidden)]
    pub fn sabotage_disable_surplus_release(&mut self) {
        self.surplus_release_disabled = true;
    }

    /// Counters (harness access).
    pub fn stats(&self) -> &TxnClientStats {
        &self.stats
    }

    /// Clear measurement state (end of warmup).
    pub fn reset_stats(&mut self) {
        self.stats = TxnClientStats::default();
    }

    /// Redirect future requests to a different lock switch (backup
    /// switch failover, §4.5). In-flight requests to the old switch are
    /// covered by the retry timeout.
    pub fn set_switch(&mut self, switch: NodeId) {
        self.switch = switch;
    }

    fn make_txn_id(me: NodeId, worker: usize, seq: u64) -> TxnId {
        TxnId(
            ((me.0 as u64) << (WORKER_BITS + SEQ_BITS))
                | ((worker as u64) << SEQ_BITS)
                | (seq & ((1 << SEQ_BITS) - 1)),
        )
    }

    fn worker_of(txn: TxnId) -> usize {
        ((txn.0 >> SEQ_BITS) as usize) & ((1 << WORKER_BITS) - 1)
    }

    /// Schedule a worker timer valid only for the current generation.
    fn arm_timer(&mut self, worker: usize, delay: SimDuration, ctx: &mut Context<'_, NetLockMsg>) {
        let gen = self.workers[worker].timer_gen & ((1 << GEN_BITS) - 1);
        let token = ((worker as u64) << GEN_BITS) | gen;
        ctx.set_timer(delay, token);
    }

    fn start_next_txn(&mut self, worker: usize, ctx: &mut Context<'_, NetLockMsg>) {
        loop {
            let txn = self.source.next_txn(&mut self.rng);
            let me = ctx.self_id();
            let w = &mut self.workers[worker];
            w.seq += 1;
            w.timer_gen += 1;
            w.held.clear();
            w.attempts = 0;
            w.txn_id = Self::make_txn_id(me, worker, w.seq);
            w.started = ctx.now();
            if txn.locks.is_empty() {
                // Degenerate lock-free transaction: completes instantly.
                self.stats.txns += 1;
                self.stats.txn_latency.record(0);
                continue;
            }
            w.txn = txn;
            w.phase = Phase::Acquiring {
                next: 0,
                acquire_sent: ctx.now(),
            };
            self.send_acquire(worker, ctx);
            return;
        }
    }

    fn send_acquire(&mut self, worker: usize, ctx: &mut Context<'_, NetLockMsg>) {
        let now = ctx.now();
        let me = ctx.self_id();
        let (need, txn_id, tenant, priority) = {
            let w = &mut self.workers[worker];
            let Phase::Acquiring {
                next,
                ref mut acquire_sent,
            } = w.phase
            else {
                return;
            };
            *acquire_sent = now;
            w.timer_gen += 1;
            (w.txn.locks[next], w.txn_id, w.txn.tenant, w.txn.priority)
        };
        let req = LockRequest {
            lock: need.lock,
            mode: need.mode,
            txn: txn_id,
            client: ClientAddr(me.0),
            tenant,
            priority,
            issued_at_ns: now.as_nanos(),
        };
        let dst = self.switch_for(need.lock);
        ctx.send_after(dst, NetLockMsg::Acquire(req), self.cfg.tx_delay);
        let delay = self.retry_delay(worker);
        self.arm_timer(worker, delay, ctx);
    }

    fn release_surplus(&mut self, grant: &GrantMsg, ctx: &mut Context<'_, NetLockMsg>) {
        self.stats.stale_grants += 1;
        if self.surplus_release_disabled {
            return;
        }
        let rel = ReleaseRequest {
            lock: grant.lock,
            txn: grant.txn,
            mode: grant.mode,
            client: grant.client,
            // The release must route to the level queue that granted it.
            priority: grant.priority,
        };
        let dst = self.switch_for(grant.lock);
        ctx.send_after(dst, NetLockMsg::Release(rel), self.cfg.tx_delay);
    }

    fn on_grant(&mut self, grant: GrantMsg, ctx: &mut Context<'_, NetLockMsg>) {
        let worker = Self::worker_of(grant.txn);
        if worker >= self.workers.len() || self.workers[worker].txn_id != grant.txn {
            // Grant for a transaction this worker finished or abandoned.
            // Releasing is safe even if this delivery is a network
            // duplicate: the switch's release guard admits at most one
            // release per grant it issued.
            self.release_surplus(&grant, ctx);
            return;
        }
        // Network-duplicate detection for the *current* transaction: a
        // second delivery of a grant we already consumed carries the
        // same `issued_at_ns` (retry duplicates re-stamp it). Releasing
        // it would dequeue our own live entry, so drop it instead.
        if self.workers[worker]
            .held
            .iter()
            .any(|&(need, issued)| need.lock == grant.lock && issued == grant.issued_at_ns)
        {
            self.stats.dup_grants_ignored += 1;
            return;
        }
        let (next, acquire_sent) = match self.workers[worker].phase {
            Phase::Acquiring { next, acquire_sent } => (next, acquire_sent),
            Phase::Thinking => {
                // Retry duplicate for a lock of the current txn (shared
                // grants can duplicate); shed the surplus queue entry.
                self.release_surplus(&grant, ctx);
                return;
            }
        };
        let expected = self.workers[worker].txn.locks[next];
        if grant.lock != expected.lock {
            // Duplicate grant for an earlier lock of this transaction.
            self.release_surplus(&grant, ctx);
            return;
        }
        self.stats.grants += 1;
        match grant.grantor {
            Grantor::Switch => self.stats.grants_switch += 1,
            Grantor::Server => self.stats.grants_server += 1,
        }
        let wait = ctx.now().as_nanos() - acquire_sent.as_nanos() + self.cfg.rx_delay.as_nanos();
        self.stats.wait_latency.record(wait);
        self.workers[worker]
            .held
            .push((expected, grant.issued_at_ns));

        let lock_count = self.workers[worker].txn.locks.len();
        if next + 1 < lock_count {
            self.workers[worker].phase = Phase::Acquiring {
                next: next + 1,
                acquire_sent: ctx.now(),
            };
            self.workers[worker].attempts = 0;
            self.send_acquire(worker, ctx);
        } else {
            let think = self.workers[worker].txn.think;
            self.workers[worker].phase = Phase::Thinking;
            self.workers[worker].timer_gen += 1;
            if think.is_zero() {
                self.complete_txn(worker, ctx);
            } else {
                self.arm_timer(worker, self.cfg.rx_delay + think, ctx);
            }
        }
    }

    fn complete_txn(&mut self, worker: usize, ctx: &mut Context<'_, NetLockMsg>) {
        let me = ctx.self_id();
        let (txn_id, priority, held) = {
            let w = &self.workers[worker];
            (w.txn_id, w.txn.priority, w.held.clone())
        };
        for (need, _issued) in held {
            let rel = ReleaseRequest {
                lock: need.lock,
                txn: txn_id,
                mode: need.mode,
                client: ClientAddr(me.0),
                priority,
            };
            let dst = self.switch_for(need.lock);
            ctx.send_after(dst, NetLockMsg::Release(rel), self.cfg.tx_delay);
        }
        let started = self.workers[worker].started;
        self.stats.txns += 1;
        self.stats
            .txn_latency
            .record(ctx.now().as_nanos() - started.as_nanos());
        self.start_next_txn(worker, ctx);
    }
}

/// Timer token reserved for the delayed start (workers use tokens with
/// a worker index < 2^16, so this cannot collide).
const START_TOKEN: u64 = u64::MAX;

impl Node<NetLockMsg> for TxnClient {
    fn on_start(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        let me = ctx.self_id();
        for w in 0..self.cfg.workers {
            self.workers.push(Worker {
                txn: Transaction::new(vec![], SimDuration::ZERO),
                txn_id: Self::make_txn_id(me, w, 0),
                started: ctx.now(),
                phase: Phase::Thinking,
                held: Vec::new(),
                seq: 0,
                timer_gen: 0,
                attempts: 0,
            });
        }
        if self.cfg.start_delay.is_zero() {
            for w in 0..self.cfg.workers {
                self.start_next_txn(w, ctx);
            }
        } else {
            ctx.set_timer(self.cfg.start_delay, START_TOKEN);
        }
    }

    fn on_packet(&mut self, pkt: Packet<NetLockMsg>, ctx: &mut Context<'_, NetLockMsg>) {
        match pkt.payload {
            NetLockMsg::Grant(g) => self.on_grant(g, ctx),
            NetLockMsg::DbReply { grant } => self.on_grant(grant, ctx),
            NetLockMsg::CtrlPartitionMap { version, heads } => {
                if let Some(route) = &mut self.route {
                    route.apply_update(version, &heads);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, NetLockMsg>) {
        if token == START_TOKEN {
            for w in 0..self.cfg.workers {
                self.start_next_txn(w, ctx);
            }
            return;
        }
        let worker = (token >> GEN_BITS) as usize;
        let gen = token & ((1 << GEN_BITS) - 1);
        if worker >= self.workers.len()
            || (self.workers[worker].timer_gen & ((1 << GEN_BITS) - 1)) != gen
        {
            return; // invalidated by a state transition
        }
        match self.workers[worker].phase {
            Phase::Acquiring { .. } => {
                // Grant never arrived: retransmit the acquire with the
                // next backoff step.
                self.stats.retries += 1;
                self.workers[worker].attempts = self.workers[worker].attempts.saturating_add(1);
                self.send_acquire(worker, ctx);
            }
            Phase::Thinking => self.complete_txn(worker, ctx),
        }
    }

    fn name(&self) -> &str {
        "txn-client"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::SingleLockSource;
    use netlock_proto::{LockId, LockMode};
    use netlock_sim::{LinkConfig, Simulator, Topology};
    use netlock_switch::control::{apply_allocation, knapsack_allocate, LockStats};
    use netlock_switch::shared_queue::SharedQueueLayout;
    use netlock_switch::{DataPlane, SwitchConfig, SwitchNode};

    fn build(
        workers: usize,
        locks: Vec<LockId>,
        mode: LockMode,
        think: SimDuration,
    ) -> (Simulator<NetLockMsg>, NodeId, NodeId) {
        let mut sim = Simulator::new(
            Topology::new(LinkConfig::with_delay(SimDuration::from_nanos(1_200))),
            11,
        );
        let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::small(4, 256, 64));
        let stats: Vec<LockStats> = locks
            .iter()
            .map(|&l| LockStats {
                lock: l,
                rate: 1.0,
                contention: 16,
                home_server: 0,
            })
            .collect();
        apply_allocation(&mut dp, &knapsack_allocate(&stats, 1024));
        let switch = sim.add_node(Box::new(SwitchNode::new(
            dp,
            SwitchConfig::default(),
            vec![],
        )));
        let client = sim.add_node(Box::new(TxnClient::new(
            TxnClientConfig {
                workers,
                ..Default::default()
            },
            switch,
            Box::new(SingleLockSource { locks, mode, think }),
            42,
        )));
        (sim, switch, client)
    }

    #[test]
    fn workers_complete_transactions() {
        let (mut sim, _sw, client) = build(
            4,
            (0..16).map(LockId).collect(),
            LockMode::Exclusive,
            SimDuration::ZERO,
        );
        sim.run_until(SimTime(SimDuration::from_millis(10).as_nanos()));
        let txns = sim.read_node::<TxnClient, _>(client, |c| c.stats().txns);
        assert!(txns > 100, "got {txns} txns");
    }

    #[test]
    fn contention_reduces_throughput() {
        let run = |nlocks: u32| {
            let (mut sim, _sw, client) = build(
                16,
                (0..nlocks).map(LockId).collect(),
                LockMode::Exclusive,
                SimDuration::ZERO,
            );
            sim.run_until(SimTime(SimDuration::from_millis(20).as_nanos()));
            sim.read_node::<TxnClient, _>(client, |c| c.stats().txns)
        };
        let contended = run(1);
        let uncontended = run(64);
        assert!(
            uncontended > contended * 2,
            "uncontended {uncontended} vs contended {contended}"
        );
    }

    #[test]
    fn think_time_slows_closed_loop() {
        let fast = {
            let (mut sim, _sw, c) = build(
                2,
                vec![LockId(0), LockId(1)],
                LockMode::Shared,
                SimDuration::ZERO,
            );
            sim.run_until(SimTime(SimDuration::from_millis(10).as_nanos()));
            sim.read_node::<TxnClient, _>(c, |c| c.stats().txns)
        };
        let slow = {
            let (mut sim, _sw, c) = build(
                2,
                vec![LockId(0), LockId(1)],
                LockMode::Shared,
                SimDuration::from_micros(100),
            );
            sim.run_until(SimTime(SimDuration::from_millis(10).as_nanos()));
            sim.read_node::<TxnClient, _>(c, |c| c.stats().txns)
        };
        assert!(fast > slow * 2, "fast={fast} slow={slow}");
    }

    #[test]
    fn multi_lock_txn_acquires_in_order() {
        let locks = [LockId(3), LockId(1), LockId(2)];
        let (mut sim, _sw, client) = {
            let mut sim = Simulator::new(
                Topology::new(LinkConfig::with_delay(SimDuration::from_nanos(1_200))),
                5,
            );
            let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::small(4, 256, 64));
            let stats: Vec<LockStats> = (0..8)
                .map(|l| LockStats {
                    lock: LockId(l),
                    rate: 1.0,
                    contention: 16,
                    home_server: 0,
                })
                .collect();
            apply_allocation(&mut dp, &knapsack_allocate(&stats, 1024));
            let switch = sim.add_node(Box::new(SwitchNode::new(
                dp,
                SwitchConfig::default(),
                vec![],
            )));
            let needs: Vec<LockNeed> = locks
                .iter()
                .map(|&lock| LockNeed {
                    lock,
                    mode: LockMode::Exclusive,
                })
                .collect();
            let client = sim.add_node(Box::new(TxnClient::new(
                TxnClientConfig {
                    workers: 3,
                    ..Default::default()
                },
                switch,
                Box::new(move |_rng: &mut SimRng| {
                    Transaction::new(needs.clone(), SimDuration::ZERO)
                }),
                42,
            )));
            (sim, switch, client)
        };
        sim.run_until(SimTime(SimDuration::from_millis(20).as_nanos()));
        let (txns, grants) =
            sim.read_node::<TxnClient, _>(client, |c| (c.stats().txns, c.stats().grants));
        assert!(txns > 50, "multi-lock txns complete: {txns}");
        assert_eq!(grants, txns * 3, "three grants per transaction");
    }

    #[test]
    fn grants_attributed_to_switch() {
        let (mut sim, _sw, client) = build(
            4,
            (0..8).map(LockId).collect(),
            LockMode::Shared,
            SimDuration::ZERO,
        );
        sim.run_until(SimTime(SimDuration::from_millis(5).as_nanos()));
        let (sw, srv) = sim.read_node::<TxnClient, _>(client, |c| {
            (c.stats().grants_switch, c.stats().grants_server)
        });
        assert!(sw > 0);
        assert_eq!(srv, 0, "all locks are switch-resident here");
    }

    /// Black hole standing in for a dead switch: records when each
    /// client's acquires arrive, never grants anything.
    struct AcquireRecorder {
        arrivals: Vec<(NodeId, u64)>,
    }

    impl Node<NetLockMsg> for AcquireRecorder {
        fn on_packet(&mut self, pkt: Packet<NetLockMsg>, ctx: &mut Context<'_, NetLockMsg>) {
            if matches!(pkt.payload, NetLockMsg::Acquire(_)) {
                self.arrivals.push((pkt.src, ctx.now().as_nanos()));
            }
        }

        fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_, NetLockMsg>) {}

        fn name(&self) -> &str {
            "acquire-recorder"
        }
    }

    /// One outage run: 4 single-worker clients against a switch that
    /// never answers. Returns each client's acquire arrival times.
    fn outage_retry_schedules() -> Vec<Vec<u64>> {
        let mut sim = Simulator::new(
            Topology::new(LinkConfig::with_delay(SimDuration::from_nanos(1_200))),
            9,
        );
        let rec = sim.add_node(Box::new(AcquireRecorder { arrivals: vec![] }));
        let clients: Vec<NodeId> = (0..4)
            .map(|i| {
                sim.add_node(Box::new(TxnClient::new(
                    TxnClientConfig {
                        workers: 1,
                        retry_timeout: SimDuration::from_millis(1),
                        retry_backoff_cap: SimDuration::from_millis(8),
                        ..Default::default()
                    },
                    rec,
                    Box::new(SingleLockSource {
                        locks: vec![LockId(0)],
                        mode: LockMode::Exclusive,
                        think: SimDuration::ZERO,
                    }),
                    100 + i,
                )))
            })
            .collect();
        sim.run_until(SimTime(SimDuration::from_millis(60).as_nanos()));
        let arrivals = sim.read_node::<AcquireRecorder, _>(rec, |r| r.arrivals.clone());
        clients
            .iter()
            .map(|&c| {
                arrivals
                    .iter()
                    .filter(|(src, _)| *src == c)
                    .map(|&(_, t)| t)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn outage_retries_back_off_and_desynchronize() {
        let schedules = outage_retry_schedules();
        // Backoff: every client's retry gaps grow from the base toward
        // the cap instead of staying a fixed period.
        for times in &schedules {
            assert!(times.len() >= 6, "expected a retry train, got {times:?}");
            let gaps: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
            let (min, max) = (*gaps.iter().min().unwrap(), *gaps.iter().max().unwrap());
            assert!(
                max >= 4 * min,
                "gaps must grow exponentially: min {min} max {max}"
            );
            assert!(
                gaps.windows(2).any(|w| w[0] != w[1]),
                "jitter must vary the gaps: {gaps:?}"
            );
        }
        // Desynchronization: all clients start in lockstep (same start
        // time, and the first re-send is the exact base timeout), but
        // once jitter kicks in no two clients retry at the same
        // instant again.
        use std::collections::HashSet;
        let mut late = HashSet::new();
        let mut total = 0usize;
        for times in &schedules {
            for &t in &times[2..] {
                late.insert(t);
                total += 1;
            }
        }
        assert_eq!(
            late.len(),
            total,
            "jittered retries must not collide across clients"
        );
        // Deterministic: the jitter stream is seeded, not wall-clock.
        assert_eq!(schedules, outage_retry_schedules());
    }

    #[test]
    fn retry_recovers_from_total_loss() {
        let (mut sim, switch, client) =
            build(2, vec![LockId(0)], LockMode::Exclusive, SimDuration::ZERO);
        // Run a little, then kill the switch: grants stop.
        sim.run_until(SimTime(SimDuration::from_millis(2).as_nanos()));
        sim.fail_node(switch);
        sim.run_until(SimTime(SimDuration::from_millis(30).as_nanos()));
        // Revive with wiped state and reprogram the directory.
        sim.revive_node(switch);
        sim.with_node::<SwitchNode, _>(switch, |s| {
            s.reboot();
            let stats = vec![LockStats {
                lock: LockId(0),
                rate: 1.0,
                contention: 16,
                home_server: 0,
            }];
            apply_allocation(s.dataplane_mut(), &knapsack_allocate(&stats, 64));
        });
        let before = sim.read_node::<TxnClient, _>(client, |c| c.stats().txns);
        sim.run_until(SimTime(SimDuration::from_millis(90).as_nanos()));
        let (after, retries) =
            sim.read_node::<TxnClient, _>(client, |c| (c.stats().txns, c.stats().retries));
        assert!(retries > 0, "loss must trigger retries");
        assert!(
            after > before + 50,
            "throughput must recover: {before}→{after}"
        );
    }
}
