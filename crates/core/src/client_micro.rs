//! Open-loop microbenchmark client (§6.2's request generators).
//!
//! Generates acquire requests at a configured rate against a lock set,
//! releases each lock as soon as it is granted (plus an optional hold
//! time), and records acquire→grant latency. Client software + NIC
//! processing — which dominates the paper's measured latency — is
//! modeled as fixed TX/RX delays.

use std::collections::HashMap;

use netlock_proto::{
    ClientAddr, GrantMsg, LockId, LockMode, LockRequest, NetLockMsg, Priority, ReleaseRequest,
    TenantId, TxnId,
};
use netlock_sim::{Context, Histogram, LatencySummary, Node, NodeId, Packet, SimDuration};

const TIMER_GENERATE: u64 = 0;
/// Release timers carry `RELEASE_BASE + key`.
const RELEASE_BASE: u64 = 1 << 32;

/// Microbenchmark client configuration.
#[derive(Clone, Debug)]
pub struct MicroClientConfig {
    /// Offered load, requests per second (capped by `max_outstanding`).
    pub rate_rps: f64,
    /// Locks to target, chosen uniformly.
    pub locks: Vec<LockId>,
    /// Mode of every request.
    pub mode: LockMode,
    /// Time between receiving a grant and issuing the release (beyond
    /// client RX/TX processing).
    pub hold: SimDuration,
    /// Client software + NIC delay on transmit.
    pub tx_delay: SimDuration,
    /// Client software + NIC delay on receive.
    pub rx_delay: SimDuration,
    /// Max in-flight (un-granted) requests — the generator's window.
    pub max_outstanding: usize,
    /// Poisson arrivals (true) or uniform spacing (false).
    pub poisson: bool,
    /// Tenant carried in requests.
    pub tenant: TenantId,
    /// Priority carried in requests.
    pub priority: Priority,
}

impl Default for MicroClientConfig {
    fn default() -> Self {
        MicroClientConfig {
            rate_rps: 1_000_000.0,
            locks: vec![LockId(0)],
            mode: LockMode::Shared,
            hold: SimDuration::ZERO,
            tx_delay: SimDuration::from_nanos(2_500),
            rx_delay: SimDuration::from_nanos(2_500),
            max_outstanding: 256,
            poisson: false,
            tenant: TenantId(0),
            priority: Priority(0),
        }
    }
}

/// Microbenchmark client counters.
#[derive(Clone, Debug, Default)]
pub struct MicroClientStats {
    /// Requests sent.
    pub issued: u64,
    /// Grants received.
    pub grants: u64,
    /// Generation slots skipped because the window was full.
    pub throttled: u64,
    /// Acquire→grant latency (ns), including client processing.
    pub latency: Histogram,
}

impl MicroClientStats {
    /// Latency summary in the paper's terms.
    pub fn latency_summary(&self) -> LatencySummary {
        LatencySummary::from_histogram(&self.latency)
    }
}

/// The open-loop client node.
pub struct MicroClient {
    cfg: MicroClientConfig,
    switch: NodeId,
    next_seq: u64,
    outstanding: usize,
    release_key: u64,
    pending_releases: HashMap<u64, ReleaseRequest>,
    stopped: bool,
    stats: MicroClientStats,
}

impl MicroClient {
    /// A client that sends its requests to `switch`.
    pub fn new(cfg: MicroClientConfig, switch: NodeId) -> MicroClient {
        assert!(cfg.rate_rps > 0.0, "rate must be positive");
        assert!(!cfg.locks.is_empty(), "need at least one target lock");
        MicroClient {
            cfg,
            switch,
            next_seq: 0,
            outstanding: 0,
            release_key: 0,
            pending_releases: HashMap::new(),
            stopped: false,
            stats: MicroClientStats::default(),
        }
    }

    /// Stop generating new requests: the next generation tick is a
    /// no-op and the timer is not re-armed. In-flight requests still
    /// complete (grants are consumed, releases go out), so a run can
    /// quiesce to an exact issued count before draining — the
    /// population-equivalence tests rely on this.
    pub fn stop_generating(&mut self) {
        self.stopped = true;
    }

    /// Counters (harness access).
    pub fn stats(&self) -> &MicroClientStats {
        &self.stats
    }

    /// Clear measurement state (end of warmup).
    pub fn reset_stats(&mut self) {
        self.stats = MicroClientStats::default();
    }

    /// Redirect future requests to a different lock switch (backup
    /// switch failover, §4.5).
    pub fn set_switch(&mut self, switch: NodeId) {
        self.switch = switch;
    }

    fn interval(&self, ctx: &mut Context<'_, NetLockMsg>) -> SimDuration {
        let mean_ns = 1e9 / self.cfg.rate_rps;
        if self.cfg.poisson {
            SimDuration::from_nanos(ctx.rng().exponential(mean_ns).max(1.0) as u64)
        } else {
            SimDuration::from_nanos(mean_ns.max(1.0) as u64)
        }
    }

    fn generate(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        if self.stopped {
            return;
        }
        if self.outstanding >= self.cfg.max_outstanding {
            self.stats.throttled += 1;
        } else {
            let lock = self.cfg.locks[ctx.rng().index(self.cfg.locks.len())];
            let me = ctx.self_id();
            let txn = TxnId(((me.0 as u64) << 40) | self.next_seq);
            self.next_seq += 1;
            let req = LockRequest {
                lock,
                mode: self.cfg.mode,
                txn,
                client: ClientAddr(me.0),
                tenant: self.cfg.tenant,
                priority: self.cfg.priority,
                issued_at_ns: ctx.now().as_nanos(),
            };
            self.outstanding += 1;
            self.stats.issued += 1;
            ctx.send_after(self.switch, NetLockMsg::Acquire(req), self.cfg.tx_delay);
        }
        let next = self.interval(ctx);
        ctx.set_timer(next, TIMER_GENERATE);
    }

    fn on_grant(&mut self, grant: GrantMsg, ctx: &mut Context<'_, NetLockMsg>) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.stats.grants += 1;
        let latency = ctx.now().as_nanos() - grant.issued_at_ns + self.cfg.rx_delay.as_nanos();
        self.stats.latency.record(latency);
        let rel = ReleaseRequest {
            lock: grant.lock,
            txn: grant.txn,
            mode: grant.mode,
            client: grant.client,
            priority: grant.priority,
        };
        let delay = self.cfg.rx_delay + self.cfg.hold + self.cfg.tx_delay;
        if self.cfg.hold.is_zero() {
            ctx.send_after(self.switch, NetLockMsg::Release(rel), delay);
        } else {
            // Model the hold as a timer so the release reflects the
            // client's clock, not the grant path.
            let key = self.release_key;
            self.release_key += 1;
            self.pending_releases.insert(key, rel);
            ctx.set_timer(delay, RELEASE_BASE + key);
        }
    }
}

impl Node<NetLockMsg> for MicroClient {
    fn on_start(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        // Stagger the first generation tick to avoid fleet lockstep.
        let jitter = ctx.rng().next_below(1_000);
        ctx.set_timer(SimDuration::from_nanos(jitter), TIMER_GENERATE);
    }

    fn on_packet(&mut self, pkt: Packet<NetLockMsg>, ctx: &mut Context<'_, NetLockMsg>) {
        match pkt.payload {
            NetLockMsg::Grant(g) => self.on_grant(g, ctx),
            NetLockMsg::DbReply { grant } => self.on_grant(grant, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, NetLockMsg>) {
        if token == TIMER_GENERATE {
            self.generate(ctx);
        } else if token >= RELEASE_BASE {
            if let Some(rel) = self.pending_releases.remove(&(token - RELEASE_BASE)) {
                ctx.send(self.switch, NetLockMsg::Release(rel));
            }
        }
    }

    fn name(&self) -> &str {
        "micro-client"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_sim::{LinkConfig, SimTime, Simulator, Topology};
    use netlock_switch::control::{apply_allocation, knapsack_allocate, LockStats};
    use netlock_switch::shared_queue::SharedQueueLayout;
    use netlock_switch::{DataPlane, SwitchConfig, SwitchNode};

    fn build(
        mode: LockMode,
        locks: Vec<LockId>,
        rate: f64,
    ) -> (Simulator<NetLockMsg>, NodeId, NodeId) {
        let mut sim = Simulator::new(
            Topology::new(LinkConfig::with_delay(SimDuration::from_nanos(1_200))),
            7,
        );
        let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::small(2, 1024, 16));
        let stats: Vec<LockStats> = locks
            .iter()
            .map(|&l| LockStats {
                lock: l,
                rate: 1.0,
                contention: 600,
                home_server: 0,
            })
            .collect();
        apply_allocation(&mut dp, &knapsack_allocate(&stats, 2048));
        let switch = sim.add_node(Box::new(SwitchNode::new(
            dp,
            SwitchConfig::default(),
            vec![],
        )));
        assert_eq!(switch, NodeId(0));
        let client = sim.add_node(Box::new(MicroClient::new(
            MicroClientConfig {
                rate_rps: rate,
                locks,
                mode,
                ..Default::default()
            },
            switch,
        )));
        (sim, switch, client)
    }

    #[test]
    fn shared_requests_all_granted() {
        let (mut sim, _switch, client) = build(LockMode::Shared, vec![LockId(0)], 100_000.0);
        sim.run_until(SimTime(SimDuration::from_millis(10).as_nanos()));
        let (issued, grants) =
            sim.read_node::<MicroClient, _>(client, |c| (c.stats().issued, c.stats().grants));
        assert!(issued >= 900, "expected ~1000 issued, got {issued}");
        // All but the in-flight tail granted.
        assert!(grants + 10 >= issued, "issued={issued} grants={grants}");
    }

    #[test]
    fn latency_is_microsecond_scale() {
        let (mut sim, _switch, client) = build(LockMode::Shared, vec![LockId(0)], 50_000.0);
        sim.run_until(SimTime(SimDuration::from_millis(20).as_nanos()));
        let summary = sim.read_node::<MicroClient, _>(client, |c| c.stats().latency_summary());
        // ~ tx 2.5 + link 1.2 + switch 0.5 + link 1.2 + rx 2.5 ≈ 7.9 µs.
        assert!(
            (6_000..12_000).contains(&(summary.avg_ns as u64)),
            "avg = {} ns",
            summary.avg_ns
        );
    }

    #[test]
    fn exclusive_same_lock_serializes() {
        let (mut sim, _switch, client) = build(LockMode::Exclusive, vec![LockId(0)], 1_000_000.0);
        sim.run_until(SimTime(SimDuration::from_millis(10).as_nanos()));
        let stats = sim.read_node::<MicroClient, _>(client, |c| {
            (
                c.stats().issued,
                c.stats().grants,
                c.stats().latency_summary(),
            )
        });
        let (issued, grants, lat) = stats;
        assert!(grants > 100);
        // Offered 1 MRPS on one exclusive lock: the queue serializes at
        // roughly 1/(release RTT), so waiting dominates latency.
        assert!(
            lat.p99_ns > 3 * lat.p50_ns / 2 || issued > grants,
            "contention should show in the tail: {lat:?}"
        );
    }

    #[test]
    fn window_throttles_when_saturated() {
        let (mut sim, _switch, client) = build(LockMode::Exclusive, vec![LockId(0)], 10_000_000.0);
        sim.run_until(SimTime(SimDuration::from_millis(5).as_nanos()));
        let throttled = sim.read_node::<MicroClient, _>(client, |c| c.stats().throttled);
        assert!(throttled > 0, "10 MRPS on one lock must hit the window");
    }

    #[test]
    fn hold_time_defers_release() {
        let (mut sim, switch, client) = build(LockMode::Exclusive, vec![LockId(0)], 1_000.0);
        sim.with_node::<MicroClient, _>(client, |c| {
            c.cfg.hold = SimDuration::from_micros(50);
        });
        sim.run_until(SimTime(SimDuration::from_millis(5).as_nanos()));
        let grants = sim.read_node::<MicroClient, _>(client, |c| c.stats().grants);
        assert!(grants > 0);
        // Switch saw releases (queue drains) — no stuck queue.
        let dp_releases =
            sim.read_node::<SwitchNode, _>(switch, |s| s.dataplane().stats().releases);
        assert!(dp_releases > 0);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let (mut sim, _switch, client) = build(LockMode::Shared, vec![LockId(0)], 100_000.0);
        sim.run_until(SimTime(SimDuration::from_millis(2).as_nanos()));
        sim.with_node::<MicroClient, _>(client, |c| c.reset_stats());
        let issued = sim.read_node::<MicroClient, _>(client, |c| c.stats().issued);
        assert_eq!(issued, 0);
    }
}

#[cfg(test)]
mod poisson_tests {
    use super::*;
    use netlock_sim::{SimTime, Simulator};
    use netlock_switch::control::{apply_allocation, knapsack_allocate, LockStats};
    use netlock_switch::shared_queue::SharedQueueLayout;
    use netlock_switch::{DataPlane, SwitchConfig, SwitchNode};

    /// Poisson arrivals preserve the mean rate but spread latency:
    /// deterministic spacing yields a degenerate (zero-width) latency
    /// distribution; Poisson does not.
    #[test]
    fn poisson_arrivals_keep_rate_add_variance() {
        let run = |poisson: bool| {
            let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::small(2, 256, 8));
            apply_allocation(
                &mut dp,
                &knapsack_allocate(
                    &[LockStats {
                        lock: LockId(0),
                        rate: 1.0,
                        contention: 200,
                        home_server: 0,
                    }],
                    256,
                ),
            );
            let mut sim: Simulator<NetLockMsg> = Simulator::with_seed(5);
            let switch = sim.add_node(Box::new(SwitchNode::new(
                dp,
                SwitchConfig::default(),
                vec![],
            )));
            let client = sim.add_node(Box::new(MicroClient::new(
                MicroClientConfig {
                    rate_rps: 500_000.0,
                    locks: vec![LockId(0)],
                    mode: LockMode::Shared,
                    poisson,
                    ..Default::default()
                },
                switch,
            )));
            sim.run_until(SimTime(SimDuration::from_millis(20).as_nanos()));
            sim.read_node::<MicroClient, _>(client, |c| {
                (c.stats().issued, c.stats().latency_summary())
            })
        };
        let (uniform_n, uniform_lat) = run(false);
        let (poisson_n, poisson_lat) = run(true);
        // Rates agree within a few percent.
        let ratio = poisson_n as f64 / uniform_n as f64;
        assert!((0.95..1.05).contains(&ratio), "rate ratio {ratio}");
        // Poisson produces a spread; uniform is degenerate.
        assert!(poisson_lat.p999_ns >= poisson_lat.p50_ns);
        assert_eq!(uniform_lat.p50_ns, uniform_lat.p999_ns);
    }
}
