//! Aggregate client-population node: ~100K virtual clients per sim node.
//!
//! The paper evaluates NetLock with tens of client machines; the
//! north-star workload is "heavy traffic from millions of users". One
//! sim node per client cannot get there — node count is capped by the
//! dense `(src,dst)` link table (`netlock_sim::MAX_NODES`), and one
//! event per request hop caps throughput at the spine's events/second.
//! A [`PopulationClient`] collapses an arbitrary number of *virtual*
//! clients into one node that models them as per-tenant arrival
//! processes and ships their requests in *batches*: each generation
//! quantum emits at most one `NetLockMsg::AcquireBatch` event carrying
//! a `Box<[LockRequest]>`, so the per-request event cost drops from
//! ~4 events to ~4/B for batch size B (the boxed slice rides in the
//! same 48-byte event slot as every other message; see DESIGN.md §17).
//!
//! Arrival model per tenant: a Poisson (or deterministic-rate) base
//! process at `virtual_clients x rate_rps_per_client`, modulated
//! MMPP-style by an optional sinusoidal [`Diurnal`] profile and by
//! [`BurstEpisode`] flash crowds that multiply the rate and optionally
//! focus a fraction of requests on one hot lock. Outstanding-grant
//! state is a dense per-tenant row (no per-virtual-client allocation):
//! the tenant index is folded into the transaction id, so each grant
//! coming back — singly or inside a `GrantBatch` — is routed to its row
//! with two shifts and a mask.
//!
//! Transaction ids encode `(node << 40) | (tenant_idx << 32) | seq`,
//! a refinement of the repo-wide `(node << 40) | seq` convention that
//! keeps the top 24 bits as the node id while making the owning tenant
//! recoverable from any grant (`GrantMsg` carries no tenant field).
//! The chaos oracle uses the same encoding to scope lease-amnesia
//! checks per tenant (`Oracle::note_amnesia_scoped`).

use std::collections::HashMap;

use netlock_proto::{
    ClientAddr, GrantMsg, LockId, LockMode, LockRequest, NetLockMsg, Priority, ReleaseRequest,
    TenantId, TxnId,
};
use netlock_sim::{Context, Histogram, LatencySummary, Node, NodeId, Packet, SimDuration};

const TIMER_TICK: u64 = 0;
/// Release timers carry `RELEASE_BASE + key`.
const RELEASE_BASE: u64 = 1 << 32;

/// Max tenants per population node: the tenant index must fit in the
/// 8 txn-id bits between the node id and the 32-bit sequence.
pub const MAX_TENANTS: usize = 256;

/// Extract the tenant row index a population node folded into a txn id.
#[inline]
pub fn tenant_index_of(txn: TxnId) -> usize {
    ((txn.0 >> 32) & 0xFF) as usize
}

/// Sinusoidal diurnal rate modulation (the MMPP's slow phase).
///
/// At time `t` the tenant's rate is scaled by
/// `1 + amplitude * sin(2π t / period)`, clamped at zero, so offered
/// load swings between `(1 - amplitude)` and `(1 + amplitude)` of the
/// base rate over one period.
#[derive(Clone, Copy, Debug)]
pub struct Diurnal {
    /// Peak deviation from the base rate, typically in `[0, 1]`.
    pub amplitude: f64,
    /// Length of one full cycle.
    pub period: SimDuration,
}

impl Diurnal {
    fn factor(&self, now_ns: u64) -> f64 {
        let period_ns = self.period.as_nanos().max(1);
        let phase = (now_ns % period_ns) as f64 / period_ns as f64;
        (1.0 + self.amplitude * (std::f64::consts::TAU * phase).sin()).max(0.0)
    }
}

/// A flash-crowd episode: for `[start, start + duration)` the tenant's
/// arrival rate is multiplied by `multiplier`, and if `hot_lock` is
/// set, each request targets it with probability `hot_fraction`
/// instead of drawing uniformly from the tenant's lock set.
#[derive(Clone, Copy, Debug)]
pub struct BurstEpisode {
    /// Episode start (absolute sim time, ns since epoch).
    pub start_ns: u64,
    /// Episode length.
    pub duration: SimDuration,
    /// Rate multiplier while active (>= 0).
    pub multiplier: f64,
    /// Hot key the crowd piles onto, if any.
    pub hot_lock: Option<LockId>,
    /// Probability a request during the episode goes to `hot_lock`.
    pub hot_fraction: f64,
}

impl BurstEpisode {
    fn active_at(&self, now_ns: u64) -> bool {
        now_ns >= self.start_ns && now_ns - self.start_ns < self.duration.as_nanos()
    }
}

/// One tenant's share of the population.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Tenant id carried in every request.
    pub tenant: TenantId,
    /// Number of virtual clients this tenant aggregates.
    pub virtual_clients: u64,
    /// Offered load per virtual client, requests per second.
    pub rate_rps_per_client: f64,
    /// Locks targeted, uniformly (except during hot-key bursts).
    pub locks: Vec<LockId>,
    /// Mode of every request.
    pub mode: LockMode,
    /// Priority class of every request.
    pub priority: Priority,
    /// Max in-flight (un-granted) requests across the tenant's whole
    /// population — the aggregate generator window.
    pub max_outstanding: u64,
    /// Optional slow sinusoidal rate modulation.
    pub diurnal: Option<Diurnal>,
    /// Flash-crowd episodes (evaluated every quantum; overlapping
    /// episodes multiply).
    pub bursts: Vec<BurstEpisode>,
}

impl Default for TenantSpec {
    fn default() -> Self {
        TenantSpec {
            tenant: TenantId(0),
            virtual_clients: 1_000,
            rate_rps_per_client: 100.0,
            locks: vec![LockId(0)],
            mode: LockMode::Shared,
            priority: Priority(0),
            max_outstanding: 4_000,
            diurnal: None,
            bursts: Vec::new(),
        }
    }
}

impl TenantSpec {
    fn base_rate_rps(&self) -> f64 {
        self.virtual_clients as f64 * self.rate_rps_per_client
    }
}

/// Population node configuration.
#[derive(Clone, Debug)]
pub struct PopulationConfig {
    /// Tenants sharing this node (at most [`MAX_TENANTS`]).
    pub tenants: Vec<TenantSpec>,
    /// Generation quantum: arrivals within one quantum are batched into
    /// a single `AcquireBatch` event. Larger quanta mean fewer events
    /// and coarser arrival timing; 100 µs keeps sub-millisecond
    /// dynamics visible while batching thousands of requests at
    /// million-client rates.
    pub quantum: SimDuration,
    /// Poisson arrival counts (true) or deterministic fluid
    /// accumulation at the exact mean rate (false).
    pub poisson: bool,
    /// Time between receiving a grant and issuing the release (beyond
    /// client RX/TX processing).
    pub hold: SimDuration,
    /// Client software + NIC delay on transmit (whole batch).
    pub tx_delay: SimDuration,
    /// Client software + NIC delay on receive (whole batch).
    pub rx_delay: SimDuration,
    /// Reclaim a tenant's whole window if no grant arrived for this
    /// long: lost batches under chaos faults would otherwise pin
    /// window slots forever. Zero disables reclaim.
    pub retry_timeout: SimDuration,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            tenants: vec![TenantSpec::default()],
            quantum: SimDuration::from_micros(100),
            poisson: false,
            hold: SimDuration::ZERO,
            tx_delay: SimDuration::from_nanos(2_500),
            rx_delay: SimDuration::from_nanos(2_500),
            retry_timeout: SimDuration::from_millis(30),
        }
    }
}

/// Dense per-tenant generator state: everything the aggregate needs to
/// track an arbitrary number of virtual clients in O(1) space.
#[derive(Clone, Debug, Default)]
struct TenantRow {
    /// In-flight (un-granted) requests.
    outstanding: u64,
    /// Fractional-arrival carry for deterministic (fluid) mode.
    credit: f64,
    /// Next sequence number (wraps into 32 bits in the txn id).
    seq: u64,
    /// Last time a grant arrived (or the window was reclaimed), ns.
    last_progress_ns: u64,
    // -- counters, zeroed by reset_stats --
    issued: u64,
    grants: u64,
    throttled: u64,
    reclaimed: u64,
    latency: Histogram,
}

/// Per-tenant counters since the last reset (figure series data).
#[derive(Clone, Debug)]
pub struct TenantStats {
    /// Tenant id from the spec.
    pub tenant: TenantId,
    /// Requests issued.
    pub issued: u64,
    /// Grants received.
    pub grants: u64,
    /// Arrivals dropped because the tenant window was full.
    pub throttled: u64,
    /// Window slots reclaimed by the retry timeout.
    pub reclaimed: u64,
    /// Acquire→grant latency (ns), including client processing.
    pub latency: Histogram,
}

impl TenantStats {
    /// Latency summary in the paper's terms.
    pub fn latency_summary(&self) -> LatencySummary {
        LatencySummary::from_histogram(&self.latency)
    }
}

/// Whole-node counters since the last reset.
#[derive(Clone, Debug, Default)]
pub struct PopulationStats {
    /// Requests issued across all tenants.
    pub issued: u64,
    /// Grants received across all tenants.
    pub grants: u64,
    /// Arrivals dropped because a tenant window was full.
    pub throttled: u64,
    /// Window slots reclaimed by the retry timeout.
    pub reclaimed: u64,
    /// `AcquireBatch`/`Acquire` events sent (batching denominator).
    pub batches_sent: u64,
    /// Grant-bearing events received (batching numerator's dual: the
    /// mean grants-per-event is `grants / grant_events`).
    pub grant_events: u64,
    /// Merged acquire→grant latency (ns).
    pub latency: Histogram,
}

impl PopulationStats {
    /// Latency summary in the paper's terms.
    pub fn latency_summary(&self) -> LatencySummary {
        LatencySummary::from_histogram(&self.latency)
    }
}

/// The aggregate client-population node.
pub struct PopulationClient {
    cfg: PopulationConfig,
    switch: NodeId,
    rows: Vec<TenantRow>,
    release_key: u64,
    pending_releases: HashMap<u64, Vec<ReleaseRequest>>,
    stopped: bool,
    batches_sent: u64,
    grant_events: u64,
    /// Reused between ticks so steady-state generation performs only
    /// the one unavoidable `Box<[_]>` allocation per batch event.
    scratch: Vec<LockRequest>,
}

impl PopulationClient {
    /// A population that sends its batches to `switch`.
    pub fn new(cfg: PopulationConfig, switch: NodeId) -> PopulationClient {
        assert!(!cfg.tenants.is_empty(), "population needs >= 1 tenant");
        assert!(
            cfg.tenants.len() <= MAX_TENANTS,
            "at most {MAX_TENANTS} tenants per population node (8 txn-id bits)"
        );
        assert!(!cfg.quantum.is_zero(), "quantum must be positive");
        for t in &cfg.tenants {
            assert!(!t.locks.is_empty(), "tenant needs at least one lock");
            assert!(t.rate_rps_per_client >= 0.0, "rate must be non-negative");
        }
        let rows = vec![TenantRow::default(); cfg.tenants.len()];
        PopulationClient {
            cfg,
            switch,
            rows,
            release_key: 0,
            pending_releases: HashMap::new(),
            stopped: false,
            batches_sent: 0,
            grant_events: 0,
            scratch: Vec::new(),
        }
    }

    /// Whole-node counters since the last reset.
    pub fn stats(&self) -> PopulationStats {
        let mut out = PopulationStats {
            batches_sent: self.batches_sent,
            grant_events: self.grant_events,
            ..Default::default()
        };
        for row in &self.rows {
            out.issued += row.issued;
            out.grants += row.grants;
            out.throttled += row.throttled;
            out.reclaimed += row.reclaimed;
            out.latency.merge(&row.latency);
        }
        out
    }

    /// Per-tenant counters since the last reset, in spec order.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        self.cfg
            .tenants
            .iter()
            .zip(&self.rows)
            .map(|(spec, row)| TenantStats {
                tenant: spec.tenant,
                issued: row.issued,
                grants: row.grants,
                throttled: row.throttled,
                reclaimed: row.reclaimed,
                latency: row.latency.clone(),
            })
            .collect()
    }

    /// Clear measurement state (end of warmup). Generator state —
    /// outstanding windows, fluid credit, sequence numbers — persists,
    /// exactly like an individual client's.
    pub fn reset_stats(&mut self) {
        for row in &mut self.rows {
            row.issued = 0;
            row.grants = 0;
            row.throttled = 0;
            row.reclaimed = 0;
            row.latency = Histogram::default();
        }
        self.batches_sent = 0;
        self.grant_events = 0;
    }

    /// Stop generating: the next tick is a no-op and the timer is not
    /// re-armed. In-flight requests still complete, so the run can
    /// quiesce to an exact issued count (equivalence tests).
    pub fn stop_generating(&mut self) {
        self.stopped = true;
    }

    /// Redirect future batches to a different lock switch (backup
    /// switch failover, §4.5).
    pub fn set_switch(&mut self, switch: NodeId) {
        self.switch = switch;
    }

    fn tick(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        if self.stopped {
            return;
        }
        let now_ns = ctx.now().as_nanos();
        let quantum_secs = self.cfg.quantum.as_nanos() as f64 / 1e9;
        let retry_ns = self.cfg.retry_timeout.as_nanos();
        let me = ctx.self_id();
        let mut batch = std::mem::take(&mut self.scratch);
        batch.clear();
        for ti in 0..self.cfg.tenants.len() {
            let spec = &self.cfg.tenants[ti];
            let row = &mut self.rows[ti];
            if retry_ns > 0 && row.outstanding > 0 && now_ns - row.last_progress_ns >= retry_ns {
                // Grants stopped arriving (lost batch / dead path):
                // free the window so the tenant keeps offering load.
                row.reclaimed += row.outstanding;
                row.outstanding = 0;
                row.last_progress_ns = now_ns;
            }
            let mut rate = spec.base_rate_rps();
            if let Some(d) = &spec.diurnal {
                rate *= d.factor(now_ns);
            }
            let mut hot: Option<(LockId, f64)> = None;
            for b in &spec.bursts {
                if b.active_at(now_ns) {
                    rate *= b.multiplier.max(0.0);
                    if let Some(l) = b.hot_lock {
                        hot = Some((l, b.hot_fraction));
                    }
                }
            }
            let mean = rate * quantum_secs;
            let arrivals = if self.cfg.poisson {
                ctx.rng().poisson(mean)
            } else {
                // Fluid accumulation: carry the fractional remainder so
                // the long-run rate is exact. The epsilon absorbs float
                // error when the mean is a whole number per quantum.
                row.credit += mean;
                let n = (row.credit + 1e-9).floor();
                row.credit -= n;
                n as u64
            };
            let space = spec.max_outstanding.saturating_sub(row.outstanding);
            let admitted = arrivals.min(space);
            row.throttled += arrivals - admitted;
            for _ in 0..admitted {
                let lock = match hot {
                    Some((l, f)) if ctx.rng().chance(f) => l,
                    _ => spec.locks[ctx.rng().index(spec.locks.len())],
                };
                let txn =
                    TxnId(((me.0 as u64) << 40) | ((ti as u64) << 32) | (row.seq & 0xFFFF_FFFF));
                row.seq += 1;
                batch.push(LockRequest {
                    lock,
                    mode: spec.mode,
                    txn,
                    client: ClientAddr(me.0),
                    tenant: spec.tenant,
                    priority: spec.priority,
                    issued_at_ns: now_ns,
                });
            }
            row.outstanding += admitted;
            row.issued += admitted;
        }
        if !batch.is_empty() {
            self.batches_sent += 1;
            let msg = if batch.len() == 1 {
                // Singletons keep the individual wire format so tiny
                // populations are indistinguishable from one client.
                NetLockMsg::Acquire(batch[0])
            } else {
                NetLockMsg::AcquireBatch(batch.as_slice().into())
            };
            ctx.send_after(self.switch, msg, self.cfg.tx_delay);
        }
        self.scratch = batch;
        ctx.set_timer(self.cfg.quantum, TIMER_TICK);
    }

    fn on_grants(&mut self, grants: &[GrantMsg], ctx: &mut Context<'_, NetLockMsg>) {
        self.grant_events += 1;
        let now_ns = ctx.now().as_nanos();
        let rx_ns = self.cfg.rx_delay.as_nanos();
        let mut releases = Vec::with_capacity(grants.len());
        for g in grants {
            if let Some(row) = self.rows.get_mut(tenant_index_of(g.txn)) {
                row.outstanding = row.outstanding.saturating_sub(1);
                row.grants += 1;
                row.last_progress_ns = now_ns;
                row.latency
                    .record((now_ns + rx_ns).saturating_sub(g.issued_at_ns));
            }
            releases.push(ReleaseRequest {
                lock: g.lock,
                txn: g.txn,
                mode: g.mode,
                client: g.client,
                priority: g.priority,
            });
        }
        let delay = self.cfg.rx_delay + self.cfg.hold + self.cfg.tx_delay;
        if self.cfg.hold.is_zero() {
            self.send_releases(releases, delay, ctx);
        } else {
            // Model the hold as a timer so the release reflects the
            // client's clock, not the grant path.
            let key = self.release_key;
            self.release_key += 1;
            self.pending_releases.insert(key, releases);
            ctx.set_timer(delay, RELEASE_BASE + key);
        }
    }

    fn send_releases(
        &mut self,
        mut releases: Vec<ReleaseRequest>,
        delay: SimDuration,
        ctx: &mut Context<'_, NetLockMsg>,
    ) {
        debug_assert!(!releases.is_empty());
        let msg = if releases.len() == 1 {
            NetLockMsg::Release(releases.pop().expect("len checked"))
        } else {
            NetLockMsg::ReleaseBatch(releases.into())
        };
        ctx.send_after(self.switch, msg, delay);
    }
}

impl Node<NetLockMsg> for PopulationClient {
    fn on_start(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        // First tick at t=0, unjittered: the aggregate already smears
        // arrivals across virtual clients, and a fixed phase keeps the
        // tick times identical under any worker partitioning.
        ctx.set_timer(SimDuration::ZERO, TIMER_TICK);
    }

    fn on_packet(&mut self, pkt: Packet<NetLockMsg>, ctx: &mut Context<'_, NetLockMsg>) {
        match pkt.payload {
            NetLockMsg::Grant(g) => self.on_grants(std::slice::from_ref(&g), ctx),
            NetLockMsg::GrantBatch(gs) => self.on_grants(&gs, ctx),
            NetLockMsg::DbReply { grant } => self.on_grants(std::slice::from_ref(&grant), ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, NetLockMsg>) {
        if token == TIMER_TICK {
            self.tick(ctx);
        } else if token >= RELEASE_BASE {
            if let Some(rels) = self.pending_releases.remove(&(token - RELEASE_BASE)) {
                self.send_releases(rels, SimDuration::ZERO, ctx);
            }
        }
    }

    fn name(&self) -> &str {
        "population-client"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_sim::{LinkConfig, SimTime, Simulator, Topology};
    use netlock_switch::control::{apply_allocation, knapsack_allocate, LockStats};
    use netlock_switch::shared_queue::SharedQueueLayout;
    use netlock_switch::{DataPlane, SwitchConfig, SwitchNode};

    fn build_switch(sim: &mut Simulator<NetLockMsg>, locks: &[LockId]) -> NodeId {
        let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::small(2, 16_384, 64));
        let stats: Vec<LockStats> = locks
            .iter()
            .map(|&l| LockStats {
                lock: l,
                rate: 1.0,
                contention: 2_000,
                home_server: 0,
            })
            .collect();
        apply_allocation(&mut dp, &knapsack_allocate(&stats, 32_768));
        sim.add_node(Box::new(SwitchNode::new(
            dp,
            SwitchConfig::default(),
            vec![],
        )))
    }

    fn sim() -> Simulator<NetLockMsg> {
        Simulator::new(
            Topology::new(LinkConfig::with_delay(SimDuration::from_nanos(1_200))),
            7,
        )
    }

    #[test]
    fn aggregate_population_offers_configured_rate() {
        let mut sim = sim();
        let locks: Vec<LockId> = (0..4).map(LockId).collect();
        let switch = build_switch(&mut sim, &locks);
        let pop = sim.add_node(Box::new(PopulationClient::new(
            PopulationConfig {
                tenants: vec![TenantSpec {
                    virtual_clients: 10_000,
                    rate_rps_per_client: 100.0, // 1 MRPS aggregate
                    locks,
                    max_outstanding: 1 << 20,
                    ..Default::default()
                }],
                ..Default::default()
            },
            switch,
        )));
        sim.run_until(SimTime(SimDuration::from_millis(10).as_nanos()));
        let stats = sim.read_node::<PopulationClient, _>(pop, |p| p.stats());
        // 1 MRPS x 10 ms = 10_000 requests; fluid mode is exact up to
        // whether the tick on the final boundary fires.
        assert!(
            (9_900..=10_100).contains(&stats.issued),
            "issued {}",
            stats.issued
        );
        assert!(stats.grants + 1_000 >= stats.issued);
        // ~100 ticks carried ~10k requests: two orders fewer events.
        assert!(stats.batches_sent <= 101, "{}", stats.batches_sent);
    }

    #[test]
    fn poisson_population_rate_roughly_matches() {
        let mut sim = sim();
        let locks = vec![LockId(0)];
        let switch = build_switch(&mut sim, &locks);
        let pop = sim.add_node(Box::new(PopulationClient::new(
            PopulationConfig {
                poisson: true,
                tenants: vec![TenantSpec {
                    virtual_clients: 50_000,
                    rate_rps_per_client: 20.0, // 1 MRPS aggregate
                    locks,
                    max_outstanding: 1 << 20,
                    ..Default::default()
                }],
                ..Default::default()
            },
            switch,
        )));
        sim.run_until(SimTime(SimDuration::from_millis(20).as_nanos()));
        let stats = sim.read_node::<PopulationClient, _>(pop, |p| p.stats());
        let expected = 20_000.0;
        assert!(
            (stats.issued as f64 - expected).abs() < 0.05 * expected,
            "issued {} vs expected {expected}",
            stats.issued
        );
        assert!(stats.grants + 2_000 >= stats.issued);
        // Batching actually happened: far fewer events than requests.
        assert!(stats.batches_sent < stats.issued / 10);
    }

    #[test]
    fn grants_fan_back_to_correct_tenant_rows() {
        let mut sim = sim();
        let locks = vec![LockId(0), LockId(1)];
        let switch = build_switch(&mut sim, &locks);
        let pop = sim.add_node(Box::new(PopulationClient::new(
            PopulationConfig {
                tenants: vec![
                    TenantSpec {
                        tenant: TenantId(3),
                        virtual_clients: 100,
                        rate_rps_per_client: 1_000.0,
                        locks: vec![LockId(0)],
                        ..Default::default()
                    },
                    TenantSpec {
                        tenant: TenantId(9),
                        virtual_clients: 300,
                        rate_rps_per_client: 1_000.0,
                        locks: vec![LockId(1)],
                        ..Default::default()
                    },
                ],
                ..Default::default()
            },
            switch,
        )));
        sim.run_until(SimTime(SimDuration::from_millis(10).as_nanos()));
        let per_tenant = sim.read_node::<PopulationClient, _>(pop, |p| p.tenant_stats());
        assert_eq!(per_tenant.len(), 2);
        // 100 clients x 1 kRPS x 10 ms = 1000; tenant 2 is 3x tenant 1.
        assert!(per_tenant[0].issued >= 900, "{}", per_tenant[0].issued);
        assert!(
            per_tenant[1].issued >= 3 * per_tenant[0].issued - 100,
            "t0 {} t1 {}",
            per_tenant[0].issued,
            per_tenant[1].issued
        );
        for t in &per_tenant {
            assert!(t.grants + 50 >= t.issued, "{t:?}");
            assert!(t.latency_summary().avg_ns > 0.0);
        }
    }

    #[test]
    fn burst_episode_multiplies_rate_and_focuses_hot_lock() {
        let run = |bursts: Vec<BurstEpisode>| {
            let mut sim = sim();
            let locks: Vec<LockId> = (0..8).map(LockId).collect();
            let switch = build_switch(&mut sim, &locks);
            let pop = sim.add_node(Box::new(PopulationClient::new(
                PopulationConfig {
                    tenants: vec![TenantSpec {
                        virtual_clients: 1_000,
                        rate_rps_per_client: 100.0,
                        locks,
                        max_outstanding: 1 << 20,
                        bursts,
                        ..Default::default()
                    }],
                    ..Default::default()
                },
                switch,
            )));
            sim.run_until(SimTime(SimDuration::from_millis(10).as_nanos()));
            sim.read_node::<PopulationClient, _>(pop, |p| p.stats().issued)
        };
        let calm = run(vec![]);
        let bursty = run(vec![BurstEpisode {
            start_ns: SimDuration::from_millis(2).as_nanos(),
            duration: SimDuration::from_millis(4),
            multiplier: 10.0,
            hot_lock: Some(LockId(5)),
            hot_fraction: 0.9,
        }]);
        // 10 ms at 100 kRPS = 1000 calm; burst adds ~9x for 4 of 10 ms.
        assert!((900..=1_100).contains(&calm), "calm {calm}");
        assert!(
            bursty as f64 >= 3.5 * calm as f64,
            "bursty {bursty} calm {calm}"
        );
    }

    #[test]
    fn diurnal_modulation_shifts_load_between_half_periods() {
        let run_half = |phase_start_ms: u64| {
            let mut sim = sim();
            let locks = vec![LockId(0)];
            let switch = build_switch(&mut sim, &locks);
            let pop = sim.add_node(Box::new(PopulationClient::new(
                PopulationConfig {
                    tenants: vec![TenantSpec {
                        virtual_clients: 1_000,
                        rate_rps_per_client: 100.0,
                        locks,
                        max_outstanding: 1 << 20,
                        diurnal: Some(Diurnal {
                            amplitude: 0.8,
                            period: SimDuration::from_millis(20),
                        }),
                        ..Default::default()
                    }],
                    ..Default::default()
                },
                switch,
            )));
            sim.run_until(SimTime(SimDuration::from_millis(phase_start_ms).as_nanos()));
            sim.with_node::<PopulationClient, _>(pop, |p| p.reset_stats());
            sim.run_until(SimTime(
                SimDuration::from_millis(phase_start_ms + 10).as_nanos(),
            ));
            sim.read_node::<PopulationClient, _>(pop, |p| p.stats().issued)
        };
        // First half period rides the sine peak; second the trough.
        let peak = run_half(0);
        let trough = run_half(10);
        assert!(
            peak as f64 > 1.8 * trough as f64,
            "peak {peak} trough {trough}"
        );
    }

    #[test]
    fn window_throttles_and_retry_reclaims() {
        let mut sim = sim();
        let locks = vec![LockId(0)];
        let switch = build_switch(&mut sim, &locks);
        // Point the population at a dead node id: every batch is lost.
        let black_hole = NodeId(250);
        let pop = sim.add_node(Box::new(PopulationClient::new(
            PopulationConfig {
                retry_timeout: SimDuration::from_millis(2),
                tenants: vec![TenantSpec {
                    virtual_clients: 1_000,
                    rate_rps_per_client: 1_000.0,
                    locks,
                    max_outstanding: 100,
                    ..Default::default()
                }],
                ..Default::default()
            },
            black_hole,
        )));
        let _ = switch;
        sim.run_until(SimTime(SimDuration::from_millis(10).as_nanos()));
        let stats = sim.read_node::<PopulationClient, _>(pop, |p| p.stats());
        assert_eq!(stats.grants, 0);
        assert!(stats.throttled > 0, "window never filled: {stats:?}");
        assert!(stats.reclaimed >= 100, "retry never reclaimed: {stats:?}");
    }

    #[test]
    fn stop_generating_quiesces() {
        let mut sim = sim();
        let locks = vec![LockId(0)];
        let switch = build_switch(&mut sim, &locks);
        let pop = sim.add_node(Box::new(PopulationClient::new(
            PopulationConfig {
                tenants: vec![TenantSpec {
                    virtual_clients: 1_000,
                    rate_rps_per_client: 100.0,
                    locks,
                    ..Default::default()
                }],
                ..Default::default()
            },
            switch,
        )));
        sim.run_until(SimTime(SimDuration::from_millis(5).as_nanos()));
        sim.with_node::<PopulationClient, _>(pop, |p| p.stop_generating());
        sim.run_until(SimTime(SimDuration::from_millis(6).as_nanos()));
        let at_stop = sim.read_node::<PopulationClient, _>(pop, |p| p.stats());
        sim.run_until(SimTime(SimDuration::from_millis(20).as_nanos()));
        let later = sim.read_node::<PopulationClient, _>(pop, |p| p.stats());
        assert_eq!(at_stop.issued, later.issued);
        assert_eq!(later.grants, later.issued, "drain must grant everything");
    }

    #[test]
    fn txn_id_encodes_node_and_tenant() {
        let txn = TxnId((42u64 << 40) | (7u64 << 32) | 123);
        assert_eq!(tenant_index_of(txn), 7);
        assert_eq!(txn.0 >> 40, 42);
        assert_eq!(txn.0 & 0xFFFF_FFFF, 123);
    }

    #[test]
    fn reset_stats_keeps_generator_state() {
        let mut sim = sim();
        let locks = vec![LockId(0)];
        let switch = build_switch(&mut sim, &locks);
        let pop = sim.add_node(Box::new(PopulationClient::new(
            PopulationConfig::default(),
            switch,
        )));
        sim.run_until(SimTime(SimDuration::from_millis(5).as_nanos()));
        sim.with_node::<PopulationClient, _>(pop, |p| p.reset_stats());
        let stats = sim.read_node::<PopulationClient, _>(pop, |p| p.stats());
        assert_eq!(stats.issued, 0);
        assert_eq!(stats.grants, 0);
        // Sequence numbers must NOT reset (txn ids stay unique).
        sim.run_until(SimTime(SimDuration::from_millis(10).as_nanos()));
        let stats = sim.read_node::<PopulationClient, _>(pop, |p| p.stats());
        assert!(stats.issued > 0);
    }
}
