//! Rack assembly: one lock switch + lock servers + database servers +
//! clients, wired per Figure 2 of the paper.
//!
//! Node-id conventions (asserted at build time):
//! lock servers first, then the switch, then database servers, then
//! clients. `ClientAddr(n)` addresses node `n`, which is how the switch
//! and servers route grant notifications back.

use netlock_proto::{LockId, NetLockMsg};
use netlock_server::{ServerConfig, ServerNode};
use netlock_sim::{LinkConfig, NodeId, SimRng, Simulator, Topology};
use netlock_switch::control::{apply_allocation, Allocation};
use netlock_switch::priority::PriorityLayout;
use netlock_switch::shared_queue::SharedQueueLayout;
use netlock_switch::{DataPlane, SwitchConfig, SwitchNode};

use crate::client_micro::{MicroClient, MicroClientConfig};
use crate::client_txn::{TxnClient, TxnClientConfig};
use crate::db_server::{DbServer, DbServerConfig};
use crate::population::{PopulationClient, PopulationConfig};
use crate::txn::TxnSource;

/// Which data-plane engine the switch is compiled with.
#[derive(Clone, Debug)]
pub enum EngineSpec {
    /// FCFS shared-queue engine with this layout.
    Fcfs(SharedQueueLayout),
    /// Priority engine (service differentiation).
    Priority(PriorityLayout),
}

/// Rack configuration.
#[derive(Clone, Debug)]
pub struct RackConfig {
    /// Simulation seed.
    pub seed: u64,
    /// Number of lock servers.
    pub lock_servers: usize,
    /// Lock server parameters.
    pub server: ServerConfig,
    /// Switch parameters.
    pub switch: SwitchConfig,
    /// Data-plane engine and memory layout.
    pub engine: EngineSpec,
    /// Database servers (0 disables one-RTT mode regardless of the
    /// switch setting).
    pub db_servers: usize,
    /// Intra-rack link parameters.
    pub link: LinkConfig,
}

impl Default for RackConfig {
    fn default() -> Self {
        RackConfig {
            seed: 1,
            lock_servers: 2,
            server: ServerConfig::default(),
            switch: SwitchConfig::default(),
            engine: EngineSpec::Fcfs(SharedQueueLayout::paper_default()),
            db_servers: 0,
            link: LinkConfig::default(),
        }
    }
}

/// What kind of client occupies a node (for stat collection).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClientKind {
    /// Open-loop microbenchmark client.
    Micro,
    /// Closed-loop transaction client.
    Txn,
    /// Aggregate client-population node (many virtual clients).
    Population,
}

/// An assembled rack.
pub struct Rack {
    /// The simulator; run it via [`netlock_sim::Simulator::run_for`].
    pub sim: Simulator<NetLockMsg>,
    /// The ToR lock switch.
    pub switch: NodeId,
    /// Lock servers, by directory server index.
    pub lock_servers: Vec<NodeId>,
    /// Database servers (one-RTT mode).
    pub db_servers: Vec<NodeId>,
    /// Clients with their kinds, in creation order.
    pub clients: Vec<(NodeId, ClientKind)>,
    rng: SimRng,
}

impl Rack {
    /// Build the rack (without clients; add them afterwards).
    pub fn build(cfg: RackConfig) -> Rack {
        let mut sim: Simulator<NetLockMsg> = Simulator::new(Topology::new(cfg.link), cfg.seed);
        // Lock servers first; they need the switch id, which will be the
        // next node after them.
        let predicted_switch = NodeId(cfg.lock_servers as u32);
        let mut lock_servers = Vec::with_capacity(cfg.lock_servers);
        for _ in 0..cfg.lock_servers {
            let id = sim.add_node(Box::new(ServerNode::new(
                cfg.server.clone(),
                predicted_switch,
            )));
            lock_servers.push(id);
        }
        let dp = match &cfg.engine {
            EngineSpec::Fcfs(layout) => DataPlane::new_fcfs(layout),
            EngineSpec::Priority(layout) => DataPlane::new_priority(layout),
        };
        let mut db_ids = Vec::with_capacity(cfg.db_servers);
        // Database server ids follow the switch.
        for i in 0..cfg.db_servers {
            db_ids.push(NodeId(predicted_switch.0 + 1 + i as u32));
        }
        let switch_node =
            SwitchNode::new(dp, cfg.switch.clone(), lock_servers.clone()).with_db_servers(db_ids);
        let switch = sim.add_node(Box::new(switch_node));
        assert_eq!(switch, predicted_switch, "node ordering invariant broken");
        let mut db_servers = Vec::with_capacity(cfg.db_servers);
        for _ in 0..cfg.db_servers {
            let id = sim.add_node(Box::new(DbServer::new(DbServerConfig::default())));
            db_servers.push(id);
        }
        let mut rng = SimRng::new(cfg.seed ^ 0xC11E_57A7);
        let _ = rng.next_u64();
        Rack {
            sim,
            switch,
            lock_servers,
            db_servers,
            clients: Vec::new(),
            rng,
        }
    }

    /// Add an open-loop microbenchmark client.
    pub fn add_micro_client(&mut self, cfg: MicroClientConfig) -> NodeId {
        let id = self
            .sim
            .add_node(Box::new(MicroClient::new(cfg, self.switch)));
        self.clients.push((id, ClientKind::Micro));
        id
    }

    /// Add an aggregate client-population node (see
    /// [`crate::population`]): many virtual clients, batched traffic.
    pub fn add_population_client(&mut self, cfg: PopulationConfig) -> NodeId {
        let id = self
            .sim
            .add_node(Box::new(PopulationClient::new(cfg, self.switch)));
        self.clients.push((id, ClientKind::Population));
        id
    }

    /// Add a closed-loop transaction client.
    pub fn add_txn_client(&mut self, cfg: TxnClientConfig, source: Box<dyn TxnSource>) -> NodeId {
        let seed = self.rng.next_u64();
        let id = self
            .sim
            .add_node(Box::new(TxnClient::new(cfg, self.switch, source, seed)));
        self.clients.push((id, ClientKind::Txn));
        id
    }

    /// Program an FCFS allocation: switch regions + directory, and mark
    /// server-resident locks as owned on their home servers. Locks with
    /// no directory entry default-route to `hash(lock) % servers`.
    pub fn program(&mut self, alloc: &Allocation) {
        let n_servers = self.lock_servers.len();
        self.sim.with_node::<SwitchNode, _>(self.switch, |s| {
            s.dataplane_mut().set_default_servers(n_servers);
            apply_allocation(s.dataplane_mut(), alloc);
        });
        for &(lock, home) in &alloc.in_server {
            let server = self.lock_servers[home];
            self.sim
                .with_node::<ServerNode, _>(server, |s| s.own_lock(lock));
        }
    }

    /// Program the priority engine's directory: lock → sequential qid.
    pub fn program_priority(&mut self, locks: &[LockId]) {
        self.sim.with_node::<SwitchNode, _>(self.switch, |s| {
            for (qid, &lock) in locks.iter().enumerate() {
                s.dataplane_mut()
                    .directory_mut()
                    .set_switch_resident(lock, qid, 0);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_switch::control::{knapsack_allocate, LockStats};

    #[test]
    fn build_orders_nodes_as_documented() {
        let rack = Rack::build(RackConfig {
            lock_servers: 3,
            db_servers: 2,
            ..Default::default()
        });
        assert_eq!(rack.lock_servers, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(rack.switch, NodeId(3));
        assert_eq!(rack.db_servers, vec![NodeId(4), NodeId(5)]);
    }

    #[test]
    fn program_splits_ownership() {
        let mut rack = Rack::build(RackConfig {
            lock_servers: 2,
            engine: EngineSpec::Fcfs(SharedQueueLayout::small(2, 8, 8)),
            ..Default::default()
        });
        let stats = vec![
            LockStats {
                lock: LockId(1),
                rate: 100.0,
                contention: 8,
                home_server: 0,
            },
            LockStats {
                lock: LockId(2),
                rate: 1.0,
                contention: 16,
                home_server: 1,
            },
        ];
        // Capacity 8: lock 1 fits fully; lock 2 goes to server 1.
        let alloc = knapsack_allocate(&stats, 8);
        rack.program(&alloc);
        let resident = rack.sim.read_node::<SwitchNode, _>(rack.switch, |s| {
            s.dataplane().directory().switch_resident()
        });
        assert_eq!(resident.len(), 1);
        assert_eq!(resident[0].0, LockId(1));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::client_micro::MicroClientConfig;
    use crate::harness::{switch_breakdown, txns_by_client, warmup_and_measure};
    use crate::txn::SingleLockSource;
    use netlock_proto::LockMode;
    use netlock_sim::SimDuration;
    use netlock_switch::control::{knapsack_allocate, LockStats};
    use netlock_switch::shared_queue::SharedQueueLayout;

    fn small_rack() -> Rack {
        let mut rack = Rack::build(RackConfig {
            seed: 2,
            lock_servers: 1,
            engine: EngineSpec::Fcfs(SharedQueueLayout::small(2, 64, 8)),
            ..Default::default()
        });
        let stats: Vec<LockStats> = (0..4)
            .map(|l| LockStats {
                lock: LockId(l),
                rate: 1.0,
                contention: 16,
                home_server: 0,
            })
            .collect();
        rack.program(&knapsack_allocate(&stats, 64));
        rack
    }

    #[test]
    fn mixed_client_kinds_collected() {
        let mut rack = small_rack();
        rack.add_micro_client(MicroClientConfig {
            rate_rps: 50_000.0,
            locks: (0..4).map(LockId).collect(),
            mode: LockMode::Shared,
            ..Default::default()
        });
        rack.add_txn_client(
            TxnClientConfig {
                workers: 2,
                ..Default::default()
            },
            Box::new(SingleLockSource {
                locks: (0..4).map(LockId).collect(),
                mode: LockMode::Shared,
                think: SimDuration::from_micros(10),
            }),
        );
        let stats = warmup_and_measure(
            &mut rack,
            SimDuration::from_millis(1),
            SimDuration::from_millis(5),
        );
        assert!(stats.issued > 0, "micro client contributes issued count");
        assert!(stats.txns > 0, "txn client contributes txns");
        let per_client = txns_by_client(&rack);
        assert_eq!(per_client.len(), 2);
        assert!(per_client.iter().all(|&c| c > 0));
        let (sw, srv) = switch_breakdown(&rack);
        assert!(sw > 0);
        assert_eq!(srv, 0);
    }

    #[test]
    fn client_kinds_recorded_in_order() {
        let mut rack = small_rack();
        let a = rack.add_txn_client(
            TxnClientConfig::default(),
            Box::new(SingleLockSource {
                locks: vec![LockId(0)],
                mode: LockMode::Shared,
                think: SimDuration::ZERO,
            }),
        );
        let b = rack.add_micro_client(MicroClientConfig {
            locks: vec![LockId(1)],
            ..Default::default()
        });
        assert_eq!(rack.clients[0], (a, ClientKind::Txn));
        assert_eq!(rack.clients[1], (b, ClientKind::Micro));
    }
}
