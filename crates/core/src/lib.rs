//! # netlock-core
//!
//! NetLock: fast, centralized lock management with a programmable
//! switch + lock-server co-design — reproduction of Yu et al.,
//! SIGCOMM 2020, on a deterministic rack simulator.
//!
//! This crate is the integration layer and public API:
//! - [`txn`] — transactions and workload sources
//! - [`client_micro`] / [`client_txn`] — open-loop and closed-loop
//!   clients with retry/lease-compatible behavior
//! - [`population`] — aggregate nodes batching ~100K virtual clients'
//!   traffic into single events (million-client scenarios)
//! - [`db_server`] — the database server used by one-RTT mode (§4.1)
//! - [`rack`] — assembles switch + servers + clients (Figure 2)
//! - [`harness`] — warmup/measure/collect and time-series sampling
//!
//! ## Quick start
//!
//! ```
//! use netlock_core::prelude::*;
//! use netlock_proto::{LockId, LockMode};
//!
//! // One switch, two lock servers, all locks in switch memory.
//! let mut rack = Rack::build(RackConfig::default());
//! let locks: Vec<LockId> = (0..64).map(LockId).collect();
//! let stats: Vec<LockStats> = locks.iter().map(|&lock| LockStats {
//!     lock, rate: 1.0, contention: 16, home_server: 0,
//! }).collect();
//! rack.program(&knapsack_allocate(&stats, 10_000));
//!
//! // Four closed-loop clients issuing single-lock transactions.
//! for _ in 0..4 {
//!     rack.add_txn_client(
//!         TxnClientConfig { workers: 4, ..Default::default() },
//!         Box::new(SingleLockSource {
//!             locks: locks.clone(),
//!             mode: LockMode::Exclusive,
//!             think: SimDuration::from_micros(5),
//!         }),
//!     );
//! }
//!
//! let stats = warmup_and_measure(
//!     &mut rack,
//!     SimDuration::from_millis(1),
//!     SimDuration::from_millis(5),
//! );
//! assert!(stats.txns > 0);
//! assert!(stats.lock_latency_summary().p99_ns > 0);
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod client_micro;
pub mod client_txn;
pub mod cluster;
pub mod db_server;
pub mod failover;
pub mod harness;
pub mod oracle;
pub mod population;
pub mod rack;
pub mod txn;

/// Convenient single import for building experiments.
pub mod prelude {
    pub use crate::chaos::{
        attach_oracle, generate_plan, run_chaos, standard_recovery, ChaosPlanConfig, RackRoles,
        CUSTOM_SERVER_RESTART_BASE, CUSTOM_SWITCH_REBOOT,
    };
    pub use crate::client_micro::{MicroClient, MicroClientConfig, MicroClientStats};
    pub use crate::client_txn::{TxnClient, TxnClientConfig, TxnClientStats};
    pub use crate::cluster::{
        attach_rack_oracles, cluster_plan_config, run_cluster_chaos, ClusterRack, RackCluster,
    };
    pub use crate::db_server::{DbServer, DbServerConfig};
    pub use crate::failover::{
        attach_failover_probe, crash_plan, run_failover, CrashScenario, FailoverCluster,
        FailoverConfig, FailoverRun, GrantTimeline, VictimPick,
    };
    pub use crate::harness::{
        collect, reset_clients, switch_breakdown, tps_series, txns_by_client, warmup_and_measure,
        RunStats,
    };
    pub use crate::oracle::{Oracle, OracleConfig, OracleCounts, Violation, ViolationKind};
    pub use crate::population::{
        tenant_index_of, BurstEpisode, Diurnal, PopulationClient, PopulationConfig,
        PopulationStats, TenantSpec, TenantStats, MAX_TENANTS,
    };
    pub use crate::rack::{ClientKind, EngineSpec, Rack, RackConfig};
    pub use crate::txn::{LockNeed, SingleLockSource, Transaction, TxnSource};
    pub use netlock_sim::{LatencySummary, SimDuration, SimTime};
    pub use netlock_switch::control::{
        knapsack_allocate, knapsack_allocate_bounded, random_allocate, Allocation, LockStats,
    };
}
