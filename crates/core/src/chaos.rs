//! Chaos fault-injection for NetLock racks.
//!
//! Builds seeded, fully deterministic [`FaultPlan`]s over an assembled
//! [`Rack`] — loss bursts, duplication, reordering jitter, link flaps,
//! switch reboot, server crash-restart, client crashes — and drives the
//! simulator through them while a [`Oracle`] watches every packet. A
//! chaos run is a pure function of `(rack spec, chaos seed)`: replaying
//! the same pair reproduces the same fault schedule, the same packet
//! trace and the same byte-identical audit log.
//!
//! Fault scoping mirrors the paper's failure model (§4.5): the network
//! between clients and the rack misbehaves, and whole machines fail and
//! recover, but the in-rack switch↔server fabric is reliable — NetLock's
//! migration and forwarding protocols assume lossless in-rack delivery
//! the way the Tofino's internal paths do, so only client↔switch links
//! receive loss/duplication/jitter.
//!
//! Switch reboot and server restart need control-plane help that lives
//! above the simulator (reprogramming the directory, re-owning locks,
//! re-arming sweep timers), so the plan carries [`FaultAction::Custom`]
//! markers and [`run_chaos`] pauses at each one, applies the matching
//! recovery via rack-level code, declares an amnesia point to the
//! oracle, and resumes.

use std::sync::{Arc, Mutex};

use netlock_server::ServerNode;
use netlock_sim::{
    FaultAction, FaultPlan, GeParams, LinkConfig, LinkFaults, NodeId, RunOutcome, SimDuration,
    SimRng, SimTime,
};
use netlock_switch::control::{apply_allocation, Allocation};
use netlock_switch::SwitchNode;

use crate::oracle::{Oracle, OracleConfig};
use crate::rack::{ClientKind, Rack};

/// `Custom` token: the switch was revived; wipe and reprogram it.
pub const CUSTOM_SWITCH_REBOOT: u64 = 1;
/// `Custom` token base: lock server `token - CUSTOM_SERVER_RESTART_BASE`
/// was revived; restart it with total state loss and reprovision.
pub const CUSTOM_SERVER_RESTART_BASE: u64 = 0x1000;

/// Tuning for the random plan generator.
#[derive(Clone, Copy, Debug)]
pub struct ChaosPlanConfig {
    /// No faults before this instant (lets the rack reach steady state).
    pub start: SimDuration,
    /// Last instant a fault may *end*; everything after is a fault-free
    /// tail so leases expire and retries drain before the oracle's
    /// end-of-run checks.
    pub settle_by: SimDuration,
    /// Fault episodes to draw.
    pub episodes: usize,
    /// Longest single episode.
    pub max_episode: SimDuration,
    /// Allow one switch fail → reboot → reprogram cycle.
    pub switch_reboot: bool,
    /// Minimum switch outage. Must exceed the rack's lease: the paper's
    /// §4.5 failover serves no requests for one lease so every stranded
    /// pre-failure holder expires before the replacement switch grants
    /// anew; the simulator models that grace as outage length.
    pub switch_outage_min: SimDuration,
    /// Allow server crash-restart cycles.
    pub server_restart: bool,
    /// Allow (permanent) client crashes.
    pub client_crash: bool,
}

impl Default for ChaosPlanConfig {
    fn default() -> Self {
        ChaosPlanConfig {
            start: SimDuration::from_millis(2),
            settle_by: SimDuration::from_millis(40),
            episodes: 6,
            max_episode: SimDuration::from_millis(4),
            switch_reboot: true,
            switch_outage_min: SimDuration::from_millis(12),
            server_restart: true,
            client_crash: true,
        }
    }
}

/// Where the rack's roles live, for fault targeting.
#[derive(Clone, Debug)]
pub struct RackRoles {
    /// The lock switch.
    pub switch: NodeId,
    /// Lock servers, by directory index.
    pub servers: Vec<NodeId>,
    /// Individual client nodes (crashable).
    pub clients: Vec<NodeId>,
    /// Aggregate client-population nodes. Their links misbehave like
    /// any client's, but the generator never crashes them: one
    /// `FailNode` would atomically kill ~100K virtual clients — a
    /// correlated failure no machine-granular fault model produces —
    /// and the oracle's dead-client exemptions would then excuse every
    /// in-flight request of the whole population.
    pub aggregates: Vec<NodeId>,
}

impl RackRoles {
    /// Roles of an assembled rack, split by client kind.
    pub fn of(rack: &Rack) -> RackRoles {
        let mut clients = Vec::new();
        let mut aggregates = Vec::new();
        for &(id, kind) in &rack.clients {
            match kind {
                ClientKind::Population => aggregates.push(id),
                ClientKind::Micro | ClientKind::Txn => clients.push(id),
            }
        }
        RackRoles {
            switch: rack.switch,
            servers: rack.lock_servers.clone(),
            clients,
            aggregates,
        }
    }
}

fn episode_window(
    rng: &mut SimRng,
    cfg: &ChaosPlanConfig,
    min_len_ns: u64,
) -> Option<(SimTime, SimTime)> {
    let start = cfg.start.as_nanos();
    let end = cfg.settle_by.as_nanos();
    if end <= start + min_len_ns {
        return None;
    }
    let at = start + rng.next_below(end - start - min_len_ns);
    let len = min_len_ns + rng.next_below(cfg.max_episode.as_nanos().max(min_len_ns + 1));
    let fin = (at + len).min(end);
    Some((SimTime(at), SimTime(fin)))
}

/// Pick a link-fault victim: any client, individual or aggregate. When
/// `aggregates` is empty the draw sequence is identical to the
/// pre-aggregate generator, so existing seeded plans stay byte-stable.
fn pick_endpoint(rng: &mut SimRng, roles: &RackRoles) -> NodeId {
    let n = roles.clients.len() + roles.aggregates.len();
    let i = rng.index(n);
    if i < roles.clients.len() {
        roles.clients[i]
    } else {
        roles.aggregates[i - roles.clients.len()]
    }
}

/// Pick a faulted client↔switch link direction.
fn pick_link(rng: &mut SimRng, roles: &RackRoles) -> (NodeId, NodeId) {
    let client = pick_endpoint(rng, roles);
    if rng.chance(0.5) {
        (client, roles.switch)
    } else {
        (roles.switch, client)
    }
}

/// Generate a seeded fault plan for a rack. Identical
/// `(seed, cfg, roles)` always yield the identical plan.
pub fn generate_plan(seed: u64, roles: &RackRoles, cfg: &ChaosPlanConfig) -> FaultPlan {
    let mut rng = SimRng::new(seed ^ 0xC4A0_5EED);
    let mut plan = FaultPlan::new();
    let mut switch_rebooted = false;
    // At most one client crashes per plan: crashes are permanent (no
    // client-side recovery protocol exists) and losing too many clients
    // starves the closed loops the scenarios assert on.
    let mut client_crashed = false;
    let base_link = LinkConfig::default();

    for _ in 0..cfg.episodes {
        match rng.next_below(8) {
            // Burst loss on a client↔switch link (Gilbert–Elliott).
            0 | 1 => {
                let Some((at, fin)) = episode_window(&mut rng, cfg, 100_000) else {
                    continue;
                };
                let (src, dst) = pick_link(&mut rng, roles);
                let to_bad = 0.02 + rng.unit() * 0.1;
                let to_good = 0.1 + rng.unit() * 0.3;
                let faulty = base_link.with_faults(LinkFaults {
                    ge: Some(GeParams::bursty(to_bad, to_good, 1.0)),
                    ..LinkFaults::NONE
                });
                plan.push(
                    at,
                    FaultAction::SetLink {
                        src,
                        dst,
                        cfg: faulty,
                    },
                );
                plan.push(fin, FaultAction::ClearLink { src, dst });
            }
            // Duplication episode.
            2 => {
                let Some((at, fin)) = episode_window(&mut rng, cfg, 100_000) else {
                    continue;
                };
                let (src, dst) = pick_link(&mut rng, roles);
                let dup = 0.1 + rng.unit() * 0.9;
                let faulty = base_link.with_faults(LinkFaults {
                    duplicate: dup,
                    ..LinkFaults::NONE
                });
                plan.push(
                    at,
                    FaultAction::SetLink {
                        src,
                        dst,
                        cfg: faulty,
                    },
                );
                plan.push(fin, FaultAction::ClearLink { src, dst });
            }
            // Reordering jitter episode.
            3 => {
                let Some((at, fin)) = episode_window(&mut rng, cfg, 100_000) else {
                    continue;
                };
                let (src, dst) = pick_link(&mut rng, roles);
                let jitter = SimDuration::from_nanos(1_000 + rng.next_below(20_000));
                let faulty = base_link.with_faults(LinkFaults {
                    jitter,
                    ..LinkFaults::NONE
                });
                plan.push(
                    at,
                    FaultAction::SetLink {
                        src,
                        dst,
                        cfg: faulty,
                    },
                );
                plan.push(fin, FaultAction::ClearLink { src, dst });
            }
            // Hard link flap: both directions black-holed.
            4 => {
                let Some((at, fin)) = episode_window(&mut rng, cfg, 50_000) else {
                    continue;
                };
                let client = pick_endpoint(&mut rng, roles);
                let dead = base_link.with_loss(1.0);
                plan.push(
                    at,
                    FaultAction::SetLink {
                        src: client,
                        dst: roles.switch,
                        cfg: dead,
                    },
                );
                plan.push(
                    at,
                    FaultAction::SetLink {
                        src: roles.switch,
                        dst: client,
                        cfg: dead,
                    },
                );
                plan.push(
                    fin,
                    FaultAction::ClearLink {
                        src: client,
                        dst: roles.switch,
                    },
                );
                plan.push(
                    fin,
                    FaultAction::ClearLink {
                        src: roles.switch,
                        dst: client,
                    },
                );
            }
            // Switch fail → reboot → reprogram (at most once).
            5 if cfg.switch_reboot && !switch_rebooted => {
                let min_outage = cfg.switch_outage_min.as_nanos().max(500_000);
                let Some((at, fin)) = episode_window(&mut rng, cfg, min_outage) else {
                    continue;
                };
                switch_rebooted = true;
                plan.push(at, FaultAction::FailNode(roles.switch));
                plan.push(fin, FaultAction::ReviveNode(roles.switch));
                plan.push(fin, FaultAction::Custom(CUSTOM_SWITCH_REBOOT));
            }
            // Server crash → restart with state loss.
            6 if cfg.server_restart && !roles.servers.is_empty() => {
                let Some((at, fin)) = episode_window(&mut rng, cfg, 200_000) else {
                    continue;
                };
                let idx = rng.index(roles.servers.len());
                plan.push(at, FaultAction::FailNode(roles.servers[idx]));
                plan.push(fin, FaultAction::ReviveNode(roles.servers[idx]));
                plan.push(
                    fin,
                    FaultAction::Custom(CUSTOM_SERVER_RESTART_BASE + idx as u64),
                );
            }
            // Client crash, permanent.
            7 if cfg.client_crash && !client_crashed && roles.clients.len() > 1 => {
                let Some((at, _fin)) = episode_window(&mut rng, cfg, 0) else {
                    continue;
                };
                client_crashed = true;
                let client = roles.clients[rng.index(roles.clients.len())];
                plan.push(at, FaultAction::FailNode(client));
            }
            // Disallowed pick (e.g. second switch reboot): draw again on
            // the next episode; skipping keeps the sequence seeded.
            _ => {}
        }
    }
    plan
}

/// Attach a fresh oracle to the rack's packet tap. Every client already
/// added to the rack is registered; add clients *before* calling this.
pub fn attach_oracle(rack: &mut Rack, cfg: OracleConfig) -> Arc<Mutex<Oracle>> {
    let mut oracle = Oracle::new(cfg);
    for &(id, _) in &rack.clients {
        oracle.register_client(id);
    }
    let oracle = Arc::new(Mutex::new(oracle));
    let tap = Arc::clone(&oracle);
    rack.sim
        .set_tap(Box::new(move |ev| tap.lock().unwrap().observe(&ev)));
    oracle
}

/// Recovery the control plane performs when a `Custom` fault pauses the
/// run. [`standard_recovery`] covers the tokens [`generate_plan`] emits.
pub type CustomFaultHandler<'a> = dyn FnMut(&mut Rack, SimTime, u64) + 'a;

/// Apply the standard recovery for [`generate_plan`]'s custom tokens:
///
/// - [`CUSTOM_SWITCH_REBOOT`]: wipe the (already revived) switch and
///   reprogram directory + allocation, exactly like Fig. 15's §6.5
///   timeline. Clients re-drive their in-flight state via retries.
/// - [`CUSTOM_SERVER_RESTART_BASE`]` + i`: restart server `i` with total
///   state loss, re-declare its owned locks, re-arm its lease sweeper
///   and hold a grace window of one lease so stranded pre-crash holders
///   expire before the server hands out fresh conflicting grants.
pub fn standard_recovery(rack: &mut Rack, at: SimTime, token: u64, alloc: &Allocation) {
    if token == CUSTOM_SWITCH_REBOOT {
        let n_servers = rack.lock_servers.len();
        let switch = rack.switch;
        let tick = rack.sim.with_node::<SwitchNode, _>(switch, |s| {
            s.reboot();
            s.dataplane_mut().set_default_servers(n_servers);
            apply_allocation(s.dataplane_mut(), alloc);
            s.config().control_tick
        });
        // The control tick re-arms itself, so the chain died with the
        // node; without a restart the lease sweeper never runs again
        // and any holder whose grant the network ate wedges its queue
        // forever.
        if !tick.is_zero() {
            rack.sim
                .inject_timer(switch, tick, SwitchNode::CONTROL_TIMER_TOKEN);
        }
    } else if token >= CUSTOM_SERVER_RESTART_BASE {
        let idx = (token - CUSTOM_SERVER_RESTART_BASE) as usize;
        let server = rack.lock_servers[idx];
        let owned: Vec<_> = alloc
            .in_server
            .iter()
            .filter(|&&(_, home)| home == idx)
            .map(|&(lock, _)| lock)
            .collect();
        let (grace, sweep) = rack
            .sim
            .read_node::<ServerNode, _>(server, |s| (s.config().lease, s.config().sweep_tick));
        rack.sim.with_node::<ServerNode, _>(server, |s| {
            s.restart();
            for lock in owned {
                s.own_lock(lock);
            }
            s.set_grace_until(at.as_nanos() + grace.as_nanos());
        });
        // The restart wiped the server's q2 buffers, so any of its
        // switch-resident locks caught mid-overflow would wait forever
        // for pushes that can no longer come: reset their overflow
        // bookkeeping (part of the same runbook step as re-declaring
        // lock ownership above).
        let switch = rack.switch;
        rack.sim.with_node::<SwitchNode, _>(switch, |s| {
            s.dataplane_mut().cp_reset_overflow_for_server(idx);
        });
        if !sweep.is_zero() {
            rack.sim
                .inject_timer(server, sweep, ServerNode::SWEEP_TIMER_TOKEN);
        }
    }
}

/// Drive the rack to `until`, pausing at every `Custom` fault to apply
/// `recover` and declare an amnesia point to the oracle (a rebooted
/// lock manager silently forgets queued requests). Finishes the oracle
/// at the deadline and returns the number of custom faults handled.
pub fn run_chaos(
    rack: &mut Rack,
    until: SimTime,
    oracle: &Arc<Mutex<Oracle>>,
    recover: &mut CustomFaultHandler<'_>,
) -> usize {
    let mut handled = 0;
    loop {
        match rack.sim.run_until_fault(until) {
            RunOutcome::ReachedDeadline => break,
            RunOutcome::CustomFault { at, token } => {
                recover(rack, at, token);
                oracle.lock().unwrap().note_amnesia(at.as_nanos());
                handled += 1;
            }
        }
    }
    oracle.lock().unwrap().finish(until.as_nanos());
    handled
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roles() -> RackRoles {
        RackRoles {
            switch: NodeId(2),
            servers: vec![NodeId(0), NodeId(1)],
            clients: vec![NodeId(3), NodeId(4), NodeId(5)],
            aggregates: vec![],
        }
    }

    fn roles_with_aggregates() -> RackRoles {
        RackRoles {
            aggregates: vec![NodeId(6), NodeId(7)],
            ..roles()
        }
    }

    #[test]
    fn plan_generation_is_deterministic() {
        let cfg = ChaosPlanConfig::default();
        let a = generate_plan(7, &roles(), &cfg);
        let b = generate_plan(7, &roles(), &cfg);
        assert_eq!(a.events(), b.events());
        let c = generate_plan(8, &roles(), &cfg);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn plan_respects_settle_window() {
        let cfg = ChaosPlanConfig {
            episodes: 32,
            ..Default::default()
        };
        let plan = generate_plan(3, &roles(), &cfg);
        assert!(!plan.is_empty());
        for ev in plan.events() {
            assert!(ev.at.as_nanos() >= cfg.start.as_nanos());
            assert!(ev.at.as_nanos() <= cfg.settle_by.as_nanos());
        }
    }

    #[test]
    fn faults_never_touch_server_links_or_kill_switch_twice() {
        let cfg = ChaosPlanConfig {
            episodes: 64,
            ..Default::default()
        };
        let r = roles();
        let plan = generate_plan(11, &r, &cfg);
        let mut switch_fails = 0;
        for ev in plan.events() {
            match ev.action {
                FaultAction::SetLink { src, dst, .. } | FaultAction::ClearLink { src, dst } => {
                    let touches_client = r.clients.contains(&src) || r.clients.contains(&dst);
                    assert!(touches_client, "faulted a rack-internal link: {ev:?}");
                }
                FaultAction::FailNode(n) if n == r.switch => switch_fails += 1,
                _ => {}
            }
        }
        assert!(switch_fails <= 1);
    }

    #[test]
    fn empty_aggregates_leave_plans_byte_stable() {
        let cfg = ChaosPlanConfig {
            episodes: 64,
            ..Default::default()
        };
        let a = generate_plan(21, &roles(), &cfg);
        let b = generate_plan(21, &roles_with_aggregates(), &cfg);
        // Same seed, aggregates present: link faults may now pick them,
        // so the plans differ...
        assert_ne!(a.events(), b.events());
        // ...but an aggregate-free RackRoles reproduces the exact
        // pre-aggregate schedule (regression guard for old seeds).
        let c = generate_plan(21, &roles(), &cfg);
        assert_eq!(a.events(), c.events());
    }

    #[test]
    fn aggregates_get_link_faults_but_never_crash() {
        let cfg = ChaosPlanConfig {
            episodes: 256,
            settle_by: SimDuration::from_millis(400),
            ..Default::default()
        };
        let r = roles_with_aggregates();
        let mut aggregate_link_faults = 0;
        for seed in 0..8 {
            let plan = generate_plan(seed, &r, &cfg);
            for ev in plan.events() {
                match ev.action {
                    FaultAction::FailNode(n) => {
                        assert!(
                            !r.aggregates.contains(&n),
                            "crashed an aggregate population node: {ev:?}"
                        );
                    }
                    FaultAction::SetLink { src, dst, .. }
                        if r.aggregates.contains(&src) || r.aggregates.contains(&dst) =>
                    {
                        aggregate_link_faults += 1;
                    }
                    _ => {}
                }
            }
        }
        assert!(
            aggregate_link_faults > 0,
            "aggregates must still see link faults"
        );
    }
}
