//! Measurement harness: warmup, measure, collect.
//!
//! Every experiment follows the same shape: build a rack, program the
//! directory, run a warmup window (queues fill, closed loops reach
//! steady state), zero the client counters, run a measurement window,
//! and aggregate. All durations are simulated time; wall-clock cost is
//! proportional to event count, not to the simulated rates.

use netlock_sim::{Histogram, LatencySummary, SimDuration, TimeSeries};
use netlock_switch::SwitchNode;

use crate::client_micro::MicroClient;
use crate::client_txn::TxnClient;
use crate::population::PopulationClient;
use crate::rack::{ClientKind, Rack};

/// Aggregated results of one measurement window.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Measurement window length.
    pub measured: SimDuration,
    /// Acquire requests issued (micro clients only).
    pub issued: u64,
    /// Lock grants received by clients.
    pub grants: u64,
    /// Grants that came from the switch data plane.
    pub grants_switch: u64,
    /// Grants that came from lock servers.
    pub grants_server: u64,
    /// Transactions completed (txn clients only).
    pub txns: u64,
    /// Acquire retransmissions.
    pub retries: u64,
    /// Surplus grants released by txn clients (stale transactions or
    /// retry duplicates shed back to the queue).
    pub surplus_released: u64,
    /// Network-duplicated grants txn clients ignored.
    pub dup_grants_ignored: u64,
    /// Packets dropped by link loss/faults (whole-simulation counter —
    /// includes warmup; see [`netlock_sim::Simulator::link_counters`]
    /// for the per-link split).
    pub net_lost: u64,
    /// Extra packet copies created by duplication faults (whole run).
    pub net_duplicated: u64,
    /// Packets delivered out of send order on faulted links (whole run).
    pub net_reordered: u64,
    /// Simulator events dispatched since the simulation started
    /// (whole-run counter, warmup included). Dividing by wall-clock
    /// time gives the spine's events-per-second rate for a run.
    pub events_fired: u64,
    /// Acquire→grant latency across all clients (ns).
    pub lock_latency: Histogram,
    /// Transaction latency across all clients (ns).
    pub txn_latency: Histogram,
}

impl RunStats {
    /// Lock throughput in requests/second (grants per second).
    pub fn lock_rps(&self) -> f64 {
        self.grants as f64 / self.measured.as_secs_f64().max(1e-12)
    }

    /// Transaction throughput in transactions/second.
    pub fn tps(&self) -> f64 {
        self.txns as f64 / self.measured.as_secs_f64().max(1e-12)
    }

    /// Lock-latency summary.
    pub fn lock_latency_summary(&self) -> LatencySummary {
        LatencySummary::from_histogram(&self.lock_latency)
    }

    /// Transaction-latency summary.
    pub fn txn_latency_summary(&self) -> LatencySummary {
        LatencySummary::from_histogram(&self.txn_latency)
    }

    /// Fraction of grants served by the switch.
    pub fn switch_share(&self) -> f64 {
        if self.grants == 0 {
            0.0
        } else {
            self.grants_switch as f64 / self.grants as f64
        }
    }
}

/// Zero every client's counters (start of a measurement window).
pub fn reset_clients(rack: &mut Rack) {
    for &(id, kind) in &rack.clients.clone() {
        match kind {
            ClientKind::Micro => rack
                .sim
                .with_node::<MicroClient, _>(id, |c| c.reset_stats()),
            ClientKind::Txn => rack.sim.with_node::<TxnClient, _>(id, |c| c.reset_stats()),
            ClientKind::Population => rack
                .sim
                .with_node::<PopulationClient, _>(id, |c| c.reset_stats()),
        }
    }
}

/// Aggregate client counters accumulated since the last reset.
pub fn collect(rack: &Rack, measured: SimDuration) -> RunStats {
    let mut out = RunStats {
        measured,
        ..Default::default()
    };
    for &(id, kind) in &rack.clients {
        match kind {
            ClientKind::Micro => rack.sim.read_node::<MicroClient, _>(id, |c| {
                let s = c.stats();
                out.issued += s.issued;
                out.grants += s.grants;
                out.grants_switch += s.grants; // switch-only path
                out.lock_latency.merge(&s.latency);
            }),
            ClientKind::Txn => rack.sim.read_node::<TxnClient, _>(id, |c| {
                let s = c.stats();
                out.grants += s.grants;
                out.grants_switch += s.grants_switch;
                out.grants_server += s.grants_server;
                out.txns += s.txns;
                out.retries += s.retries;
                out.surplus_released += s.stale_grants;
                out.dup_grants_ignored += s.dup_grants_ignored;
                out.lock_latency.merge(&s.wait_latency);
                out.txn_latency.merge(&s.txn_latency);
            }),
            ClientKind::Population => rack.sim.read_node::<PopulationClient, _>(id, |c| {
                let s = c.stats();
                out.issued += s.issued;
                out.grants += s.grants;
                out.grants_switch += s.grants; // switch-only path
                out.retries += s.reclaimed;
                out.lock_latency.merge(&s.latency);
            }),
        }
    }
    let net = rack.sim.stats();
    out.net_lost = net.packets_lost;
    out.net_duplicated = net.packets_duplicated;
    out.net_reordered = net.packets_reordered;
    out.events_fired = net.events_fired;
    out
}

/// Run `warmup`, zero the counters, run `measure`, and aggregate.
pub fn warmup_and_measure(rack: &mut Rack, warmup: SimDuration, measure: SimDuration) -> RunStats {
    rack.sim.run_for(warmup);
    reset_clients(rack);
    rack.sim.run_for(measure);
    collect(rack, measure)
}

/// Sample transaction throughput over time: run `intervals` windows of
/// `interval` each, recording completed-transactions-per-second per
/// window. Used by the policy (Fig. 12) and failure (Fig. 15) plots.
pub fn tps_series(rack: &mut Rack, interval: SimDuration, intervals: usize) -> TimeSeries {
    let mut series = TimeSeries::new();
    let mut last = total_txns(rack);
    for _ in 0..intervals {
        rack.sim.run_for(interval);
        let now_total = total_txns(rack);
        let rate = (now_total - last) as f64 / interval.as_secs_f64();
        series.push(rack.sim.now(), rate);
        last = now_total;
    }
    series
}

/// Per-client transaction totals (for per-tenant series).
pub fn txns_by_client(rack: &Rack) -> Vec<u64> {
    rack.clients
        .iter()
        .map(|&(id, kind)| match kind {
            ClientKind::Micro => rack
                .sim
                .read_node::<MicroClient, _>(id, |c| c.stats().grants),
            ClientKind::Txn => rack.sim.read_node::<TxnClient, _>(id, |c| c.stats().txns),
            ClientKind::Population => rack
                .sim
                .read_node::<PopulationClient, _>(id, |c| c.stats().grants),
        })
        .collect()
}

fn total_txns(rack: &Rack) -> u64 {
    txns_by_client(rack).iter().sum()
}

/// Grants processed by the switch vs forwarded to servers, from the
/// switch's own counters (Fig. 13a's breakdown).
pub fn switch_breakdown(rack: &Rack) -> (u64, u64) {
    rack.sim.read_node::<SwitchNode, _>(rack.switch, |s| {
        let d = s.dataplane().stats();
        (
            d.grants_immediate + d.grants_on_release,
            d.forwarded_server_locks + d.forwarded_overflow,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client_micro::MicroClientConfig;
    use crate::rack::{EngineSpec, Rack, RackConfig};
    use netlock_proto::{LockId, LockMode};
    use netlock_switch::control::{knapsack_allocate, LockStats};
    use netlock_switch::shared_queue::SharedQueueLayout;

    fn micro_rack(nclients: usize) -> Rack {
        let mut rack = Rack::build(RackConfig {
            lock_servers: 1,
            engine: EngineSpec::Fcfs(SharedQueueLayout::small(2, 64, 16)),
            ..Default::default()
        });
        let locks: Vec<LockId> = (0..8).map(LockId).collect();
        let stats: Vec<LockStats> = locks
            .iter()
            .map(|&lock| LockStats {
                lock,
                rate: 1.0,
                contention: 8,
                home_server: 0,
            })
            .collect();
        let alloc = knapsack_allocate(&stats, 64);
        rack.program(&alloc);
        for _ in 0..nclients {
            rack.add_micro_client(MicroClientConfig {
                rate_rps: 200_000.0,
                locks: locks.clone(),
                mode: LockMode::Shared,
                ..Default::default()
            });
        }
        rack
    }

    #[test]
    fn measure_excludes_warmup() {
        let mut rack = micro_rack(2);
        let stats = warmup_and_measure(
            &mut rack,
            SimDuration::from_millis(2),
            SimDuration::from_millis(10),
        );
        // 2 clients × 200k for 10 ms ≈ 4000 grants.
        assert!(
            (3_000..5_000).contains(&stats.grants),
            "grants = {}",
            stats.grants
        );
        let rps = stats.lock_rps();
        assert!((300_000.0..500_000.0).contains(&rps), "rps = {rps}");
        assert!(stats.lock_latency_summary().count > 0);
        assert_eq!(stats.switch_share(), 1.0);
    }

    #[test]
    fn tps_series_has_one_point_per_interval() {
        let mut rack = micro_rack(1);
        let series = tps_series(&mut rack, SimDuration::from_millis(1), 5);
        assert_eq!(series.len(), 5);
        // Steady state: roughly constant rate.
        assert!(series.mean() > 100_000.0, "mean = {}", series.mean());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use netlock_sim::SimDuration;

    #[test]
    fn run_stats_rates() {
        let mut s = RunStats {
            measured: SimDuration::from_millis(10),
            grants: 1_000,
            txns: 100,
            ..Default::default()
        };
        assert!((s.lock_rps() - 100_000.0).abs() < 1e-6);
        assert!((s.tps() - 10_000.0).abs() < 1e-6);
        // Switch share with no grants is defined as 0.
        s.grants = 0;
        assert_eq!(s.switch_share(), 0.0);
        s.grants = 10;
        s.grants_switch = 5;
        assert_eq!(s.switch_share(), 0.5);
    }

    #[test]
    fn zero_measure_window_is_safe() {
        let s = RunStats {
            measured: SimDuration::ZERO,
            grants: 5,
            ..Default::default()
        };
        assert!(s.lock_rps().is_finite());
    }

    #[test]
    fn empty_latency_summaries() {
        let s = RunStats::default();
        assert_eq!(s.lock_latency_summary().count, 0);
        assert_eq!(s.txn_latency_summary().p999_ns, 0);
    }
}
