//! Property test: an aggregate [`PopulationClient`] is *count-exact*
//! against the build it replaces — N individual [`MicroClient`]s.
//!
//! The trick that makes exact equality testable: in fluid (uniform)
//! mode with the population quantum set to the per-client interval
//! `1e9 / rate`, every quantum accrues exactly `virtual_clients`
//! arrivals per tenant, and an individual uniform client issues
//! exactly one request per interval. Freeze both builds after K
//! intervals with `stop_generating()`, drain the in-flight tail, and
//! the per-tenant `(issued, grants)` totals — and the TSV rendered
//! from them — must agree to the byte. Latency distributions legally
//! differ (the aggregate batches arrivals onto tick boundaries; the
//! individual fleet phase-staggers), which is exactly why the
//! equivalence is defined over counts.

use proptest::prelude::*;

use netlock_core::prelude::*;
use netlock_proto::{LockId, LockMode, TenantId};
use netlock_sim::SimDuration;
use netlock_switch::control::{knapsack_allocate, LockStats};
use netlock_switch::shared_queue::SharedQueueLayout;

/// Per-client rate (requests/second). Divides 1e9 exactly, so the
/// uniform inter-arrival interval is an integer nanosecond count and
/// `rate x quantum == 1.0` holds exactly in f64.
const RATE_RPS: f64 = 100_000.0;
const INTERVAL_NS: u64 = 10_000;

#[derive(Clone, Debug)]
struct Scenario {
    /// Virtual clients per tenant (tenant i targets locks 2i, 2i+1).
    tenants: Vec<u64>,
    /// Generation intervals before both builds are frozen.
    ticks: u64,
    seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (prop::collection::vec(1u64..6, 1..4), 4u64..13, any::<u64>()).prop_map(
        |(tenants, ticks, seed)| Scenario {
            tenants,
            ticks,
            seed,
        },
    )
}

fn tenant_locks(ti: usize) -> Vec<LockId> {
    vec![LockId(2 * ti as u32), LockId(2 * ti as u32 + 1)]
}

fn build_rack(sc: &Scenario) -> Rack {
    let mut rack = Rack::build(RackConfig {
        seed: sc.seed,
        lock_servers: 1,
        engine: EngineSpec::Fcfs(SharedQueueLayout::small(2, 1024, 16)),
        ..Default::default()
    });
    let stats: Vec<LockStats> = (0..2 * sc.tenants.len() as u32)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: 1.0,
            contention: 600,
            home_server: 0,
        })
        .collect();
    rack.program(&knapsack_allocate(&stats, 2_048));
    rack
}

/// `(issued, grants)` per tenant, as one TSV. Both builds render
/// through this same function; the property compares the bytes.
fn counts_tsv(rows: &[(TenantId, u64, u64)]) -> String {
    let mut out = String::from("tenant\tissued\tgrants\n");
    for &(tenant, issued, grants) in rows {
        out.push_str(&format!("{}\t{issued}\t{grants}\n", tenant.0));
    }
    out
}

/// Aggregate build: one population node carrying every tenant.
fn run_aggregate(sc: &Scenario) -> Vec<(TenantId, u64, u64)> {
    let mut rack = build_rack(sc);
    let pop = rack.add_population_client(PopulationConfig {
        quantum: SimDuration::from_nanos(INTERVAL_NS),
        tenants: sc
            .tenants
            .iter()
            .enumerate()
            .map(|(ti, &n)| TenantSpec {
                tenant: TenantId(ti as u16),
                virtual_clients: n,
                rate_rps_per_client: RATE_RPS,
                locks: tenant_locks(ti),
                mode: LockMode::Shared,
                ..Default::default()
            })
            .collect(),
        ..Default::default()
    });
    // Ticks fire at 0, q, ..., K*q: freeze between tick K and K+1.
    let horizon = sc.ticks * INTERVAL_NS + INTERVAL_NS / 2;
    rack.sim.run_for(SimDuration::from_nanos(horizon));
    rack.sim
        .with_node::<PopulationClient, _>(pop, |p| p.stop_generating());
    rack.sim.run_for(SimDuration::from_millis(2));
    rack.sim.read_node::<PopulationClient, _>(pop, |p| {
        p.tenant_stats()
            .iter()
            .map(|t| (t.tenant, t.issued, t.grants))
            .collect()
    })
}

/// Reference build: one `MicroClient` node per virtual client.
fn run_individual(sc: &Scenario) -> Vec<(TenantId, u64, u64)> {
    let mut rack = build_rack(sc);
    let mut clients = Vec::new();
    for (ti, &n) in sc.tenants.iter().enumerate() {
        for _ in 0..n {
            let id = rack.add_micro_client(MicroClientConfig {
                rate_rps: RATE_RPS,
                locks: tenant_locks(ti),
                mode: LockMode::Shared,
                tenant: TenantId(ti as u16),
                ..Default::default()
            });
            clients.push((ti, id));
        }
    }
    // Each client starts with < 1 µs jitter then issues every interval:
    // by K*q + q/2 each has issued exactly K+1 requests.
    let horizon = sc.ticks * INTERVAL_NS + INTERVAL_NS / 2;
    rack.sim.run_for(SimDuration::from_nanos(horizon));
    for &(_, id) in &clients {
        rack.sim
            .with_node::<MicroClient, _>(id, |c| c.stop_generating());
    }
    rack.sim.run_for(SimDuration::from_millis(2));
    let mut rows: Vec<(TenantId, u64, u64)> = sc
        .tenants
        .iter()
        .enumerate()
        .map(|(ti, _)| (TenantId(ti as u16), 0, 0))
        .collect();
    for &(ti, id) in &clients {
        rack.sim.read_node::<MicroClient, _>(id, |c| {
            rows[ti].1 += c.stats().issued;
            rows[ti].2 += c.stats().grants;
        });
    }
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The aggregate node and the individual fleet it models issue and
    /// complete *identical* per-tenant request counts, and render
    /// byte-identical counts TSVs.
    #[test]
    fn aggregate_matches_individual_fleet(sc in scenario()) {
        let agg = run_aggregate(&sc);
        let ind = run_individual(&sc);
        prop_assert_eq!(&agg, &ind, "per-tenant (issued, grants) diverged");
        prop_assert_eq!(counts_tsv(&agg), counts_tsv(&ind));
        for (ti, &(_, issued, grants)) in agg.iter().enumerate() {
            // Exact count: K+1 ticks x virtual clients, fully drained.
            prop_assert_eq!(issued, (sc.ticks + 1) * sc.tenants[ti]);
            prop_assert_eq!(grants, issued, "drain must grant everything");
        }
    }

    /// The same scenario re-run from the same seed reproduces the same
    /// totals (the generators are deterministic, not just rate-exact).
    #[test]
    fn aggregate_replay_is_deterministic(sc in scenario()) {
        prop_assert_eq!(run_aggregate(&sc), run_aggregate(&sc));
    }
}
