//! Compile-time pins for the simulator event-slot layout.
//!
//! Every pending event in the calendar queue embeds a
//! `Packet<NetLockMsg>`, so its size bounds the footprint and memmove
//! cost of the entire pending set. The bulk `Push` /
//! `CtrlPromoteReady` variants carry boxed slices precisely to keep
//! these bounds; if either assertion fires, a variant grew and the hot
//! loop just got slower everywhere.

use netlock_proto::NetLockMsg;
use netlock_sim::Packet;

/// `src (4) + dst (4) + NetLockMsg (40)` — the message's niche/padding
/// absorbs nothing further, so 48 is the floor for this layout.
const _PACKET_FITS: () = assert!(std::mem::size_of::<Packet<NetLockMsg>>() <= 48);

const _MSG_FITS: () = assert!(std::mem::size_of::<NetLockMsg>() <= 40);

#[test]
fn packet_slot_stays_compact() {
    // Runtime mirror of the const assertions (so the bound shows up in
    // `cargo test` output with the measured value, not just at build).
    let packet = std::mem::size_of::<Packet<NetLockMsg>>();
    let msg = std::mem::size_of::<NetLockMsg>();
    assert!(packet <= 48, "Packet<NetLockMsg> grew to {packet} bytes");
    assert!(msg <= 40, "NetLockMsg grew to {msg} bytes");
}
