//! Figures 10 and 11: system comparison under TPC-C.
//!
//! NetLock vs DSLR vs DrTM vs NetChain, in two deployments:
//! - Figure 10: ten clients, two lock servers;
//! - Figure 11: six clients, six lock servers.
//!
//! Each runs both TPC-C contention settings and reports lock
//! throughput, transaction throughput, and average / 99th-percentile
//! transaction latency.

use std::fmt::Write;

use netlock_baselines::{
    build_drtm, build_dslr, build_netchain, measure_drtm, measure_dslr, measure_netchain,
    DrtmClientConfig, DslrClientConfig, NcClientConfig, RdmaNicConfig,
};
use netlock_core::prelude::*;

use crate::common::{build_netlock_tpcc, tpcc_sources, SystemResult, TimeScale, TpccRackSpec};
use crate::runner::Runner;

/// The four systems of the comparison, in figure row order.
const SYSTEMS: [&str; 4] = ["DSLR", "DrTM", "NetChain", "NetLock"];

/// Run one system for one deployment + contention setting.
pub fn run_system(
    system: &'static str,
    clients: usize,
    lock_servers: usize,
    high_contention: bool,
    scale: TimeScale,
    workers_per_client: usize,
) -> SystemResult {
    let contention = if high_contention { "high" } else { "low" };
    let spec = TpccRackSpec {
        clients,
        lock_servers,
        high_contention,
        workers_per_client,
        ..Default::default()
    };
    let workers = spec.workers_per_client;
    let stats = match system {
        // DSLR: RDMA bakery on `lock_servers` RDMA nodes.
        "DSLR" => {
            let mut rack = build_dslr(
                spec.seed,
                lock_servers,
                DslrClientConfig {
                    workers,
                    ..Default::default()
                },
                RdmaNicConfig::default(),
                tpcc_sources(&spec),
            );
            measure_dslr(&mut rack, scale.warmup, scale.measure)
        }
        // DrTM: CAS fail-and-retry on the same RDMA substrate.
        "DrTM" => {
            let mut rack = build_drtm(
                spec.seed,
                lock_servers,
                DrtmClientConfig {
                    workers,
                    ..Default::default()
                },
                RdmaNicConfig::default(),
                tpcc_sources(&spec),
            );
            measure_drtm(&mut rack, scale.warmup, scale.measure)
        }
        // NetChain: switch-only exclusive locks, no lock servers.
        "NetChain" => {
            let mut rack = build_netchain(
                spec.seed,
                100_000,
                NcClientConfig {
                    workers,
                    ..Default::default()
                },
                tpcc_sources(&spec),
            );
            measure_netchain(&mut rack, scale.warmup, scale.measure)
        }
        "NetLock" => {
            let mut rack = build_netlock_tpcc(&spec);
            warmup_and_measure(&mut rack, scale.warmup, scale.measure)
        }
        other => panic!("unknown system {other:?}"),
    };
    SystemResult {
        system,
        contention,
        stats,
    }
}

/// Run the four systems for one deployment + contention setting.
pub fn run_comparison(
    runner: &Runner,
    clients: usize,
    lock_servers: usize,
    high_contention: bool,
    scale: TimeScale,
) -> Vec<SystemResult> {
    run_comparison_with_workers(runner, clients, lock_servers, high_contention, scale, 16)
}

/// [`run_comparison`] with an explicit per-client worker count (the
/// offered load knob; the paper's clients saturate the systems).
pub fn run_comparison_with_workers(
    runner: &Runner,
    clients: usize,
    lock_servers: usize,
    high_contention: bool,
    scale: TimeScale,
    workers_per_client: usize,
) -> Vec<SystemResult> {
    runner.map(SYSTEMS.to_vec(), |system| {
        run_system(
            system,
            clients,
            lock_servers,
            high_contention,
            scale,
            workers_per_client,
        )
    })
}

/// One deployment (both contention settings) as TSV — all eight
/// system runs fan out as one batch.
pub fn render(runner: &Runner, clients: usize, lock_servers: usize, scale: TimeScale) -> String {
    // 32 workers/client ≈ the saturating offered load of the paper's
    // DPDK clients.
    let workers = 32;
    let inputs: Vec<(bool, &'static str)> = [false, true]
        .into_iter()
        .flat_map(|high| SYSTEMS.into_iter().map(move |s| (high, s)))
        .collect();
    let rows = runner.map(inputs, |(high, system)| {
        run_system(system, clients, lock_servers, high, scale, workers)
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# System comparison under TPC-C: {clients} clients, {lock_servers} lock servers, {workers} workers/client"
    );
    let _ = writeln!(out, "{}", SystemResult::tsv_header());
    for r in rows {
        let _ = writeln!(out, "{}", r.tsv());
    }
    out
}

/// Print one deployment (both contention settings) as TSV.
pub fn run_and_print(runner: &Runner, clients: usize, lock_servers: usize, scale: TimeScale) {
    print!("{}", render(runner, clients, lock_servers, scale));
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_sim::SimDuration;

    #[test]
    fn netlock_wins_the_comparison() {
        let scale = TimeScale {
            warmup: SimDuration::from_millis(2),
            measure: SimDuration::from_millis(10),
        };
        let results = run_comparison(&Runner::with_threads(1), 8, 2, false, scale);
        let tps = |name: &str| {
            results
                .iter()
                .find(|r| r.system == name)
                .map(|r| r.stats.tps())
                .unwrap()
        };
        let netlock = tps("NetLock");
        let dslr = tps("DSLR");
        let drtm = tps("DrTM");
        assert!(
            netlock > 3.0 * dslr,
            "NetLock {netlock} should beat DSLR {dslr} by a wide margin"
        );
        assert!(netlock > drtm, "NetLock {netlock} should beat DrTM {drtm}");
    }
}
