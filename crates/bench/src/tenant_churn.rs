//! Beyond-paper scenario: hot-key tenant churn at 100K+ virtual
//! clients.
//!
//! One rack, one aggregate population node, many tenants contending in
//! exclusive mode. The "hot" identity rotates: each tenant in turn
//! runs a burst episode that multiplies its arrival rate and focuses
//! most of its requests on one hot key, so over the run the overload
//! churns through every tenant. The per-tenant time series shows the
//! bursting tenant's latency tail and window throttling spike while
//! the other tenants ride through — the aggregate node's dense
//! per-tenant rows are what make this observable without one sim node
//! per client.

use std::fmt::Write;

use netlock_core::prelude::*;
use netlock_proto::{LockId, LockMode, TenantId};

/// Lock-set size; the rotating burst piles onto the last lock.
pub const LOCKS: u32 = 64;

/// The shared hot key.
pub const HOT_LOCK: LockId = LockId(LOCKS - 1);

/// Scenario shape.
#[derive(Clone, Debug)]
pub struct TenantChurnSpec {
    /// Simulation seed.
    pub seed: u64,
    /// Tenants; each takes one burst turn.
    pub tenants: usize,
    /// Virtual clients across all tenants, split evenly.
    pub virtual_clients: u64,
    /// Base offered load per virtual client, requests/second.
    pub rate_rps_per_client: f64,
    /// Burst rate multiplier while a tenant holds the hot turn.
    pub burst_multiplier: f64,
    /// Fraction of a bursting tenant's requests aimed at the hot key.
    pub hot_fraction: f64,
    /// In-flight cap per tenant (the visible throttling knob).
    pub max_outstanding: u64,
    /// Warmup window (excluded from the series).
    pub warmup: SimDuration,
    /// Series bucket width; each tenant's burst turn spans
    /// `buckets_per_turn` buckets.
    pub interval: SimDuration,
    /// Buckets per tenant burst turn.
    pub buckets_per_turn: usize,
}

impl TenantChurnSpec {
    /// The committed `results/tenant_churn.tsv` scale.
    pub fn full() -> TenantChurnSpec {
        TenantChurnSpec {
            seed: 91,
            tenants: 8,
            virtual_clients: 200_000,
            rate_rps_per_client: 1.0,
            burst_multiplier: 8.0,
            hot_fraction: 0.8,
            max_outstanding: 2_000,
            warmup: SimDuration::from_millis(10),
            interval: SimDuration::from_millis(10),
            buckets_per_turn: 2,
        }
    }

    /// Smoke-test scale, same TSV shape.
    pub fn quick() -> TenantChurnSpec {
        TenantChurnSpec {
            virtual_clients: 40_000,
            interval: SimDuration::from_millis(5),
            ..TenantChurnSpec::full()
        }
    }

    /// Buckets in the series (one burst turn per tenant).
    pub fn intervals(&self) -> usize {
        self.tenants * self.buckets_per_turn
    }

    /// Total measurement window.
    pub fn measure(&self) -> SimDuration {
        SimDuration(self.interval.as_nanos() * self.intervals() as u64)
    }

    fn tenant(&self, t: usize) -> TenantSpec {
        let turn = SimDuration(self.interval.as_nanos() * self.buckets_per_turn as u64);
        TenantSpec {
            tenant: TenantId(t as u16),
            virtual_clients: self.virtual_clients / self.tenants as u64,
            rate_rps_per_client: self.rate_rps_per_client,
            locks: (0..LOCKS).map(LockId).collect(),
            mode: LockMode::Exclusive,
            max_outstanding: self.max_outstanding,
            bursts: vec![BurstEpisode {
                start_ns: self.warmup.as_nanos() + turn.as_nanos() * t as u64,
                duration: turn,
                multiplier: self.burst_multiplier,
                hot_lock: Some(HOT_LOCK),
                hot_fraction: self.hot_fraction,
            }],
            ..Default::default()
        }
    }
}

/// Build the single-rack churn scenario.
pub fn build_rack(spec: &TenantChurnSpec) -> (Rack, netlock_sim::NodeId) {
    let mut rack = Rack::build(RackConfig {
        seed: spec.seed,
        lock_servers: 1,
        engine: EngineSpec::Fcfs(netlock_switch::shared_queue::SharedQueueLayout::small(
            2, 16_384, 64,
        )),
        ..Default::default()
    });
    let stats: Vec<LockStats> = (0..LOCKS)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: 1.0,
            contention: 500,
            home_server: 0,
        })
        .collect();
    rack.program(&knapsack_allocate(&stats, 32_000));
    let pop = rack.add_population_client(PopulationConfig {
        poisson: true,
        tenants: (0..spec.tenants).map(|t| spec.tenant(t)).collect(),
        ..Default::default()
    });
    (rack, pop)
}

/// One series bucket for one tenant.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantBucket {
    /// Bucket end, ms since simulation start.
    pub t_ms: f64,
    /// Tenant index.
    pub tenant: u16,
    /// True while this tenant holds the hot burst turn.
    pub bursting: bool,
    /// Requests issued in the bucket.
    pub issued: u64,
    /// Grants received in the bucket.
    pub grants: u64,
    /// Arrivals dropped on the tenant's full window.
    pub throttled: u64,
    /// 99th-percentile acquire→grant latency, µs.
    pub p99_us: f64,
}

/// Run the scenario and return the per-(bucket, tenant) series.
pub fn run_series(spec: &TenantChurnSpec) -> Vec<TenantBucket> {
    let (mut rack, pop) = build_rack(spec);
    rack.sim.run_for(spec.warmup);
    rack.sim
        .with_node::<PopulationClient, _>(pop, |p| p.reset_stats());
    let mut out = Vec::with_capacity(spec.intervals() * spec.tenants);
    for i in 0..spec.intervals() {
        rack.sim.run_for(spec.interval);
        let t_ms =
            (spec.warmup.as_nanos() + spec.interval.as_nanos() * (i as u64 + 1)) as f64 / 1e6;
        let per_tenant = rack
            .sim
            .read_node::<PopulationClient, _>(pop, |p| p.tenant_stats());
        for (t, stats) in per_tenant.iter().enumerate() {
            out.push(TenantBucket {
                t_ms,
                tenant: stats.tenant.0,
                bursting: i / spec.buckets_per_turn == t,
                issued: stats.issued,
                grants: stats.grants,
                throttled: stats.throttled,
                p99_us: stats.latency_summary().p99_ns as f64 / 1e3,
            });
        }
        rack.sim
            .with_node::<PopulationClient, _>(pop, |p| p.reset_stats());
    }
    out
}

/// The scenario as TSV.
pub fn render(spec: &TenantChurnSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Tenant churn: {} virtual clients over {} tenants, exclusive mode, \
         rotating {}x burst with {:.0}% of requests on lock {}",
        spec.virtual_clients,
        spec.tenants,
        spec.burst_multiplier,
        spec.hot_fraction * 100.0,
        HOT_LOCK.0,
    );
    let _ = writeln!(
        out,
        "t_ms\ttenant\tbursting\tissued\tgrants\tthrottled\tp99_us"
    );
    for b in run_series(spec) {
        let _ = writeln!(
            out,
            "{:.1}\t{}\t{}\t{}\t{}\t{}\t{:.1}",
            b.t_ms,
            b.tenant,
            u8::from(b.bursting),
            b.issued,
            b.grants,
            b.throttled,
            b.p99_us
        );
    }
    out
}

/// Print the scenario as TSV.
pub fn run_and_print(spec: &TenantChurnSpec) {
    print!("{}", render(spec));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_turn_rotates_and_shows_in_the_bursting_tenant() {
        let spec = TenantChurnSpec {
            virtual_clients: 20_000,
            tenants: 4,
            ..TenantChurnSpec::quick()
        };
        let series = run_series(&spec);
        assert_eq!(series.len(), spec.intervals() * spec.tenants);
        // Every tenant takes exactly one turn.
        for t in 0..spec.tenants as u16 {
            let turns = series
                .iter()
                .filter(|b| b.tenant == t && b.bursting)
                .count();
            assert_eq!(turns, spec.buckets_per_turn, "tenant {t}");
        }
        // While bursting, a tenant issues well above its calm rate.
        let bursting: u64 = series.iter().filter(|b| b.bursting).map(|b| b.issued).sum();
        let calm: u64 = series
            .iter()
            .filter(|b| !b.bursting)
            .map(|b| b.issued)
            .sum();
        let per_bucket_burst = bursting as f64 / spec.intervals() as f64;
        let per_bucket_calm = calm as f64 / (series.len() - spec.intervals()) as f64;
        assert!(
            per_bucket_burst > 3.0 * per_bucket_calm,
            "burst {per_bucket_burst:.0}/bucket vs calm {per_bucket_calm:.0}/bucket"
        );
    }
}
