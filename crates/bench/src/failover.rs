//! The multi-switch failover figure: availability and latency under a
//! crash schedule, swept over chain-replication factor 1 / 2 / 3.
//!
//! Every run uses the same partitioned cluster shape and the same
//! canonical crash plan ([`CrashScenario`]): one chain member per
//! partition fails mid-traffic and revives after the outage. The only
//! knob the sweep turns is the replication factor, so the TSV isolates
//! what replication buys:
//!
//! - **factor 1** — the partition is its only replica; every crash
//!   takes the partition's whole lock range offline until revive plus
//!   the §4.5 grace, and the grant timeline flatlines for the window;
//! - **factor ≥ 2** — the controller splices the survivors within a
//!   few control ticks, the new tail replays the in-flight window, and
//!   grants keep flowing through the outage.
//!
//! The report has two sections: one summary row per factor (progress,
//! crash-window availability, latency percentiles, oracle verdict,
//! audit digest) and a `# timeline` block of grants-per-millisecond
//! columns, one per factor — the data behind the availability plot.
//! Like every figure in this crate, a run is a pure function of its
//! config; [`check_workers`] replays the sweep at two worker counts
//! and byte-compares the audit digests.

use netlock_core::prelude::*;
use netlock_sim::LatencySummary;

/// Replication factors the failover figure sweeps.
pub const FACTORS: [usize; 3] = [1, 2, 3];

/// Scale of a sweep: the full figure or the CI smoke variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Full figure: 40 ms runs, 6 ms outage.
    Full,
    /// CI smoke: 24 ms runs, 4 ms outage.
    Quick,
}

impl Scale {
    /// Total simulated time per run.
    pub fn total(self) -> SimDuration {
        match self {
            Scale::Full => SimDuration::from_millis(40),
            Scale::Quick => SimDuration::from_millis(24),
        }
    }

    /// The crash schedule at this scale.
    pub fn scenario(self) -> CrashScenario {
        match self {
            Scale::Full => CrashScenario::default(),
            Scale::Quick => CrashScenario {
                crash_at: SimDuration::from_millis(6),
                outage: SimDuration::from_millis(4),
                ..Default::default()
            },
        }
    }
}

/// The cluster shape every sweep point shares (only `replication`
/// varies).
pub fn sweep_config(replication: usize) -> FailoverConfig {
    FailoverConfig {
        replication,
        ..Default::default()
    }
}

/// Run the factor sweep at one worker count.
pub fn run_sweep(scale: Scale, workers: usize) -> Vec<FailoverRun> {
    FACTORS
        .iter()
        .map(|&f| {
            run_failover(
                &sweep_config(f),
                &scale.scenario(),
                workers,
                scale.total(),
                false,
            )
        })
        .collect()
}

/// Render the two-section TSV report (summary rows + timeline block).
pub fn render(scale: Scale, runs: &[FailoverRun]) -> String {
    use std::fmt::Write;
    let partitions = FailoverConfig::default().partitions;
    let scenario = scale.scenario();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# NetLock multi-switch failover: {} partitions, crash at {} ms, outage {} ms, total {} ms",
        partitions,
        scenario.crash_at.as_nanos() as f64 / 1e6,
        scenario.outage.as_nanos() as f64 / 1e6,
        scale.total().as_nanos() as f64 / 1e6,
    );
    let _ = writeln!(
        out,
        "replication\tworkers\ttxns\tgrants\tcrash_window_grants\tretries\t\
         txn_p50_us\ttxn_p99_us\tdigest\tverdict"
    );
    for r in runs {
        let lat = LatencySummary::from_histogram(&r.totals.txn_latency);
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{:.1}\t{:.1}\t{:016x}\t{}",
            r.replication,
            r.workers,
            r.totals.txns,
            r.totals.grants,
            r.crash_window_grants(partitions),
            r.totals.retries,
            lat.p50_us(),
            lat.p99_us(),
            r.digest,
            if r.violations == 0 {
                "CLEAN"
            } else {
                "VIOLATED"
            },
        );
    }
    // Grants-per-millisecond timeline, one column per factor.
    let _ = writeln!(out, "# timeline: grants delivered per 1 ms bucket");
    let mut header = String::from("t_ms");
    for r in runs {
        let _ = write!(header, "\tfactor{}", r.replication);
    }
    let _ = writeln!(out, "{header}");
    let buckets = runs
        .iter()
        .map(|r| r.timeline.buckets().len())
        .max()
        .unwrap_or(0);
    for b in 0..buckets {
        let _ = write!(out, "{b}");
        for r in runs {
            let n = r.timeline.buckets().get(b).copied().unwrap_or(0);
            let _ = write!(out, "\t{n}");
        }
        out.push('\n');
    }
    out
}

/// Replay the sweep at two worker counts and insist the audit digests
/// match byte for byte and every run is oracle-clean. Returns the
/// human-readable failure on mismatch — the CI smoke job's teeth.
pub fn check_workers(scale: Scale, a: usize, b: usize) -> Result<Vec<FailoverRun>, String> {
    let left = run_sweep(scale, a);
    let right = run_sweep(scale, b);
    for (l, r) in left.iter().zip(&right) {
        if l.digest != r.digest {
            return Err(format!(
                "factor {}: digest {:016x} with {a} workers != {:016x} with {b} workers",
                l.replication, l.digest, r.digest
            ));
        }
        if l.audit != r.audit {
            return Err(format!(
                "factor {}: audit logs diverge between {a} and {b} workers",
                l.replication
            ));
        }
        if l.violations != 0 {
            return Err(format!(
                "factor {}: {} oracle violations:\n{}",
                l.replication, l.violations, l.audit
            ));
        }
    }
    Ok(left)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_renders_and_replication_pays() {
        let runs = run_sweep(Scale::Quick, 2);
        let report = render(Scale::Quick, &runs);
        for f in FACTORS {
            assert!(
                report.contains(&format!("\n{f}\t2\t")),
                "missing factor {f} row:\n{report}"
            );
        }
        assert!(report.contains("# timeline"), "{report}");
        for r in &runs {
            assert_eq!(r.violations, 0, "factor {}: {}", r.replication, r.audit);
        }
        let partitions = FailoverConfig::default().partitions;
        let solo = runs[0].crash_window_grants(partitions);
        let pair = runs[1].crash_window_grants(partitions);
        assert!(
            pair > solo * 4,
            "replication must sustain the crash window: factor2={pair} factor1={solo}"
        );
    }

    #[test]
    fn quick_check_workers_is_byte_identical() {
        let runs = check_workers(Scale::Quick, 1, 2).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(runs.len(), FACTORS.len());
    }
}
