//! The chaos suite: seeded fault schedules over NetLock racks with the
//! lock-safety oracle attached.
//!
//! Two rack flavors are exercised — an open-loop microbenchmark rack
//! (shared + exclusive clients, no retries) and a closed-loop TPC-C
//! rack (retries, multi-lock transactions) — each with compressed
//! lease/retry timescales so a 30 ms simulated run crosses many lease
//! generations. A run is a pure function of its seed: the seed derives
//! the fault plan, every packet fate, and therefore the oracle's audit
//! log, byte for byte.
//!
//! The timeline of every run:
//!
//! ```text
//! 0 ──── 2 ms ─────────────── 20 ms ──────────── 30 ms
//!   warm      faults allowed         settle tail   finish + oracle checks
//! ```
//!
//! The fault-free tail spans several leases, so stranded holders expire
//! and retries drain before the oracle's end-of-run leak and liveness
//! checks run.

use netlock_core::prelude::*;
use netlock_proto::{LockId, LockMode, TenantId};
use netlock_server::ServerConfig;
use netlock_sim::SimTime;
use netlock_switch::shared_queue::SharedQueueLayout;
use netlock_switch::{SwitchConfig, SwitchNode};

/// Compressed lease used by all chaos racks.
pub const CHAOS_LEASE: SimDuration = SimDuration::from_millis(2);
/// Sweep/control tick matching [`CHAOS_LEASE`].
pub const CHAOS_TICK: SimDuration = SimDuration::from_micros(200);
/// Total simulated time per run.
pub const CHAOS_TOTAL: SimDuration = SimDuration::from_millis(30);

/// Which rack flavor a chaos run exercises.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaosWorkload {
    /// Open-loop micro clients (shared + exclusive, no retries).
    Micro,
    /// Closed-loop TPC-C transaction clients (retries, multi-lock).
    Tpcc,
    /// One aggregate population node (20K virtual clients, batched
    /// traffic): the fault plan shakes its links but never crashes it,
    /// and the oracle's conservation checks run over batch messages.
    Population,
}

impl ChaosWorkload {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ChaosWorkload::Micro => "micro",
            ChaosWorkload::Tpcc => "tpcc",
            ChaosWorkload::Population => "population",
        }
    }
}

/// Everything one chaos run produced.
#[derive(Clone, Debug)]
pub struct ChaosRun {
    /// Rack flavor.
    pub workload: ChaosWorkload,
    /// The seed that determines the entire run.
    pub seed: u64,
    /// Fault-plan events installed.
    pub plan_events: usize,
    /// Custom (switch-reboot / server-restart) faults handled.
    pub custom_faults: usize,
    /// The oracle's event counters.
    pub counts: OracleCounts,
    /// Violations found (empty = clean).
    pub violations: Vec<Violation>,
    /// The canonical audit log (byte-identical across replays).
    pub audit: String,
    /// Grants clients consumed (progress proof).
    pub grants: u64,
    /// Transactions completed (TPC-C flavor).
    pub txns: u64,
    /// Surplus grants clients released.
    pub surplus_released: u64,
    /// Network-duplicate grants clients ignored.
    pub dup_grants_ignored: u64,
    /// Releases the switch's release guard filtered as stale.
    pub stale_releases_filtered: u64,
    /// Packets the links dropped.
    pub net_lost: u64,
    /// Extra packet copies the links created.
    pub net_duplicated: u64,
    /// Packets delivered out of order on faulted links.
    pub net_reordered: u64,
}

impl ChaosRun {
    /// Whether the oracle found no violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

fn chaos_plan_config(workload: ChaosWorkload) -> ChaosPlanConfig {
    ChaosPlanConfig {
        start: SimDuration::from_millis(2),
        settle_by: SimDuration::from_millis(20),
        episodes: 8,
        max_episode: SimDuration::from_millis(3),
        switch_reboot: true,
        // One lease plus slack: §4.5's failover grace as outage length.
        switch_outage_min: SimDuration::from_micros(2_500),
        server_restart: true,
        // Open-loop micro clients never retry, so a permanently crashed
        // client strands its whole in-flight window in the queues; each
        // stranded exclusive entry stalls the lock for a full lease when
        // it reaches the head, which reads as a liveness wedge rather
        // than a fault worth injecting. TPC-C workers bound the backlog
        // (one request per worker), so crashes stay on there.
        client_crash: matches!(workload, ChaosWorkload::Tpcc),
    }
}

/// The population chaos rack: the micro rack's switch/server shape, but
/// all traffic from one aggregate node — two shared tenants plus one
/// exclusive tenant hammering a hot lock, 20K virtual clients total.
/// The window-reclaim timeout stands in for retries: batches the
/// network eats must not pin the tenant windows past the oracle's
/// wedge horizon.
pub fn build_population_chaos_rack(seed: u64) -> (Rack, Allocation) {
    let mut rack = Rack::build(RackConfig {
        seed,
        lock_servers: 2,
        server: ServerConfig {
            lease: CHAOS_LEASE,
            sweep_tick: CHAOS_TICK,
            ..Default::default()
        },
        switch: SwitchConfig {
            lease: CHAOS_LEASE,
            control_tick: CHAOS_TICK,
            ..Default::default()
        },
        engine: EngineSpec::Fcfs(SharedQueueLayout::small(2, 256, 16)),
        ..Default::default()
    });
    let locks: Vec<LockId> = (0..8).map(LockId).collect();
    let stats: Vec<LockStats> = locks
        .iter()
        .map(|&lock| LockStats {
            lock,
            rate: 1.0,
            contention: 16,
            home_server: (lock.0 as usize) % 2,
        })
        .collect();
    // Half the demanded slots, as in the micro rack: some locks stay
    // server-resident so batches cross the forwarding path too.
    let alloc = knapsack_allocate(&stats, 64);
    rack.program(&alloc);
    let tenant = |t: u16, mode, locks: Vec<LockId>| TenantSpec {
        tenant: TenantId(t),
        virtual_clients: if mode == LockMode::Exclusive {
            2_000
        } else {
            9_000
        },
        rate_rps_per_client: 2.5,
        locks,
        mode,
        max_outstanding: 3_000,
        ..Default::default()
    };
    rack.add_population_client(PopulationConfig {
        poisson: true,
        tenants: vec![
            tenant(0, LockMode::Shared, locks.clone()),
            tenant(1, LockMode::Shared, locks[..4].to_vec()),
            // The exclusive tenant contends on one hot lock: a release
            // guard failure double-pops its FCFS queue, which the
            // oracle reads as overlapping exclusive holds.
            tenant(2, LockMode::Exclusive, vec![LockId(3)]),
        ],
        retry_timeout: SimDuration::from_millis(3),
        ..Default::default()
    });
    (rack, alloc)
}

fn oracle_config() -> OracleConfig {
    OracleConfig {
        lease_ns: CHAOS_LEASE.as_nanos(),
        // Several leases and retry timeouts: anything older is wedged.
        leak_after_ns: 6_000_000,
        wedge_after_ns: 6_000_000,
    }
}

/// The microbenchmark chaos rack: 2 lock servers, 8 locks (half
/// switch-resident by capacity), 4 open-loop clients — two exclusive,
/// two shared — with a generous in-flight window since lost requests
/// are never retried.
pub fn build_micro_chaos_rack(seed: u64) -> (Rack, Allocation) {
    let mut rack = Rack::build(RackConfig {
        seed,
        lock_servers: 2,
        server: ServerConfig {
            lease: CHAOS_LEASE,
            sweep_tick: CHAOS_TICK,
            ..Default::default()
        },
        switch: SwitchConfig {
            lease: CHAOS_LEASE,
            control_tick: CHAOS_TICK,
            ..Default::default()
        },
        engine: EngineSpec::Fcfs(SharedQueueLayout::small(2, 256, 16)),
        ..Default::default()
    });
    let locks: Vec<LockId> = (0..8).map(LockId).collect();
    let stats: Vec<LockStats> = locks
        .iter()
        .map(|&lock| LockStats {
            lock,
            rate: 1.0,
            contention: 16,
            home_server: (lock.0 as usize) % 2,
        })
        .collect();
    // Half the demanded slots: some locks stay server-resident so the
    // chaos run exercises the forwarding path too.
    let alloc = knapsack_allocate(&stats, 64);
    rack.program(&alloc);
    for i in 0..4 {
        rack.add_micro_client(MicroClientConfig {
            rate_rps: 50_000.0,
            locks: locks.clone(),
            mode: if i < 2 {
                LockMode::Exclusive
            } else {
                LockMode::Shared
            },
            // No retry logic: the window must absorb every request the
            // network eats, or the generator wedges itself.
            max_outstanding: 100_000,
            ..Default::default()
        });
    }
    (rack, alloc)
}

/// The TPC-C chaos rack: 4 clients × 4 workers, compressed think and
/// retry timescales, same lease as the micro rack.
pub fn build_tpcc_chaos_rack(seed: u64) -> (Rack, Allocation) {
    let spec = crate::common::TpccRackSpec {
        seed,
        clients: 4,
        lock_servers: 2,
        workers_per_client: 4,
        think_override: Some(SimDuration::from_micros(50)),
        retry_timeout: SimDuration::from_millis(1),
        ..Default::default()
    };
    let mut rack = Rack::build(RackConfig {
        seed: spec.seed,
        lock_servers: spec.lock_servers,
        server: ServerConfig {
            service: spec.server_service,
            lease: CHAOS_LEASE,
            sweep_tick: CHAOS_TICK,
            ..Default::default()
        },
        switch: SwitchConfig {
            lease: CHAOS_LEASE,
            control_tick: CHAOS_TICK,
            ..Default::default()
        },
        ..Default::default()
    });
    let alloc = crate::common::tpcc_allocation(&spec);
    rack.program(&alloc);
    let cfg = spec.tpcc_config();
    for _ in 0..spec.clients {
        rack.add_txn_client(
            TxnClientConfig {
                workers: spec.workers_per_client,
                retry_timeout: spec.retry_timeout,
                // Cap backoff at one lease: the oracle's wedge horizon is a
                // few leases, so retries must keep touching activity faster
                // than that even after repeated losses.
                retry_backoff_cap: CHAOS_LEASE,
                ..Default::default()
            },
            Box::new(netlock_workloads::TpccSource::new(cfg.clone())),
        );
    }
    (rack, alloc)
}

/// Sabotage switches for [`run_chaos_seed_with`]: disable one defense
/// layer to prove the oracle notices its absence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sabotage {
    /// Disable the switch's release guard (duplicated releases then
    /// double-pop FCFS queues → mutual-exclusion violations).
    pub disable_release_guard: bool,
    /// Disable txn clients' surplus-grant release (swallowed grants
    /// leak holders → conservation/leak violations).
    pub disable_surplus_release: bool,
}

/// Run one seeded chaos schedule. Everything — the fault plan, the
/// packet trace, the audit log — is a function of `(workload, seed)`.
pub fn run_chaos_seed(workload: ChaosWorkload, seed: u64) -> ChaosRun {
    run_chaos_seed_with(workload, seed, Sabotage::default())
}

/// [`run_chaos_seed`] with sabotage switches (oracle-is-live testing).
pub fn run_chaos_seed_with(workload: ChaosWorkload, seed: u64, sabotage: Sabotage) -> ChaosRun {
    let (mut rack, alloc) = match workload {
        ChaosWorkload::Micro => build_micro_chaos_rack(seed),
        ChaosWorkload::Tpcc => build_tpcc_chaos_rack(seed),
        ChaosWorkload::Population => build_population_chaos_rack(seed),
    };
    if sabotage.disable_release_guard {
        let switch = rack.switch;
        rack.sim
            .with_node::<SwitchNode, _>(switch, |s| s.sabotage_disable_release_guard());
    }
    if sabotage.disable_surplus_release {
        for &(id, kind) in &rack.clients.clone() {
            if kind == ClientKind::Txn {
                rack.sim
                    .with_node::<TxnClient, _>(id, |c| c.sabotage_disable_surplus_release());
            }
        }
    }
    let roles = RackRoles::of(&rack);
    let plan = generate_plan(seed, &roles, &chaos_plan_config(workload));
    let plan_events = plan.len();
    rack.sim.install_plan(&plan);
    let oracle = attach_oracle(&mut rack, oracle_config());
    let until = SimTime(CHAOS_TOTAL.as_nanos());
    let custom_faults = run_chaos(&mut rack, until, &oracle, &mut |rack, at, token| {
        standard_recovery(rack, at, token, &alloc)
    });
    let stats = collect(&rack, CHAOS_TOTAL);
    let stale_releases_filtered = rack
        .sim
        .read_node::<SwitchNode, _>(rack.switch, |s| s.stats().stale_releases_filtered);
    let micro_grants = stats.issued.min(stats.grants);
    let oracle = oracle.lock().unwrap();
    ChaosRun {
        workload,
        seed,
        plan_events,
        custom_faults,
        counts: oracle.counts(),
        violations: oracle.violations().to_vec(),
        audit: oracle.audit_log(),
        grants: if workload == ChaosWorkload::Tpcc {
            stats.grants
        } else {
            micro_grants
        },
        txns: stats.txns,
        surplus_released: stats.surplus_released,
        dup_grants_ignored: stats.dup_grants_ignored,
        stale_releases_filtered,
        net_lost: stats.net_lost,
        net_duplicated: stats.net_duplicated,
        net_reordered: stats.net_reordered,
    }
}

/// Run `seeds_per_workload` schedules per rack flavor.
pub fn run_suite(seeds_per_workload: u64) -> Vec<ChaosRun> {
    let mut runs = Vec::new();
    for seed in 0..seeds_per_workload {
        runs.push(run_chaos_seed(ChaosWorkload::Micro, seed));
        runs.push(run_chaos_seed(ChaosWorkload::Tpcc, seed));
    }
    runs
}

/// The TSV scenario report the `chaos` binary prints.
pub fn render(runs: &[ChaosRun]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# NetLock chaos suite: {} seeded fault schedules, lease={} ms, total={} ms",
        runs.len(),
        CHAOS_LEASE.as_nanos() as f64 / 1e6,
        CHAOS_TOTAL.as_nanos() as f64 / 1e6,
    );
    let _ = writeln!(
        out,
        "workload\tseed\tplan_events\tcustom_faults\tnet_lost\tnet_dup\tnet_reorder\t\
         grants\ttxns\tsurplus_rel\tdup_ignored\tstale_filtered\tamnesia\tdigest\tverdict"
    );
    for r in runs {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:016x}\t{}",
            r.workload.label(),
            r.seed,
            r.plan_events,
            r.custom_faults,
            r.net_lost,
            r.net_duplicated,
            r.net_reordered,
            r.grants,
            r.txns,
            r.surplus_released,
            r.dup_grants_ignored,
            r.stale_releases_filtered,
            r.counts.amnesia_excused,
            {
                let mut d: u64 = 0xcbf2_9ce4_8422_2325;
                for b in r.audit.bytes() {
                    d ^= b as u64;
                    d = d.wrapping_mul(0x100_0000_01b3);
                }
                d
            },
            if r.is_clean() { "CLEAN" } else { "VIOLATED" },
        );
    }
    let dirty: Vec<&ChaosRun> = runs.iter().filter(|r| !r.is_clean()).collect();
    if dirty.is_empty() {
        let _ = writeln!(out, "# all {} schedules clean", runs.len());
    } else {
        for r in dirty {
            for v in &r.violations {
                let _ = writeln!(
                    out,
                    "# VIOLATION {}/{}: at={} kind={} {}",
                    r.workload.label(),
                    r.seed,
                    v.at_ns,
                    v.kind,
                    v.detail
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_chaos_single_seed_is_clean_and_replays() {
        let a = run_chaos_seed(ChaosWorkload::Micro, 1);
        assert!(a.is_clean(), "{}", a.audit);
        assert!(a.grants > 500, "progress despite faults: {}", a.grants);
        assert!(a.plan_events > 0);
        let b = run_chaos_seed(ChaosWorkload::Micro, 1);
        assert_eq!(a.audit, b.audit, "audit log must be byte-identical");
    }

    #[test]
    fn tpcc_chaos_single_seed_is_clean() {
        let r = run_chaos_seed(ChaosWorkload::Tpcc, 1);
        assert!(r.is_clean(), "{}", r.audit);
        assert!(r.txns > 200, "progress despite faults: {}", r.txns);
    }

    #[test]
    fn report_has_one_row_per_run() {
        let runs = run_suite(1);
        let report = render(&runs);
        let rows = report
            .lines()
            .filter(|l| l.starts_with("micro\t") || l.starts_with("tpcc\t"))
            .count();
        assert_eq!(rows, runs.len());
        assert!(report.contains("verdict"));
    }
}
