//! Parallel sweep runner.
//!
//! Every figure's data set is a list of *independent* jobs: each job
//! builds a fresh seeded `Rack`/`Simulator`, runs it, and returns a
//! row struct. Nothing is shared between jobs (determinism is
//! per-simulation, keyed by the seed in each spec), so the sweep is
//! embarrassingly parallel. The runner fans jobs out over a scoped
//! worker pool and reassembles results **in job-index order**, so TSV
//! output is byte-identical regardless of thread count — `--threads 1`
//! and `--threads 64` produce the same file.
//!
//! Thread-count resolution (first match wins):
//! 1. an explicit `Runner::with_threads` (the bins' `--threads N`);
//! 2. the `NETLOCK_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A boxed sweep job producing one result row.
pub type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "NETLOCK_THREADS";

/// A fixed-size worker pool for independent simulation jobs.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    threads: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::from_env()
    }
}

impl Runner {
    /// A runner sized from `NETLOCK_THREADS` or, failing that, the
    /// host's available parallelism.
    pub fn from_env() -> Runner {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Runner::with_threads(threads)
    }

    /// A runner with an explicit worker count (min 1).
    pub fn with_threads(threads: usize) -> Runner {
        Runner {
            threads: threads.max(1),
        }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run all jobs and return their results in job order.
    ///
    /// Jobs are claimed from a shared counter, so long and short jobs
    /// interleave across workers; the result vector is indexed by job
    /// position, never by completion order. A panicking job propagates
    /// after the scope joins.
    pub fn run<T: Send>(&self, jobs: Vec<Job<'_, T>>) -> Vec<T> {
        let n = jobs.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return jobs.into_iter().map(|job| job()).collect();
        }
        let jobs: Vec<Mutex<Option<Job<'_, T>>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = jobs[i]
                        .lock()
                        .expect("job mutex")
                        .take()
                        .expect("job claimed once");
                    let result = job();
                    *slots[i].lock().expect("slot mutex") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot mutex")
                    .expect("every job stores its slot")
            })
            .collect()
    }

    /// Map a sweep function over inputs in parallel, preserving order.
    pub fn map<I: Send, T: Send>(&self, inputs: Vec<I>, f: impl Fn(I) -> T + Sync) -> Vec<T> {
        let f = &f;
        self.run(
            inputs
                .into_iter()
                .map(|input| Box::new(move || f(input)) as Job<'_, T>)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_job_order_any_thread_count() {
        for threads in [1, 2, 3, 8, 33] {
            let runner = Runner::with_threads(threads);
            let out = runner.map((0..100u64).collect(), |i| i * i);
            assert_eq!(out, (0..100u64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn uneven_job_durations_keep_order() {
        // Short jobs finish before long ones on other workers; output
        // order must still follow job index.
        let runner = Runner::with_threads(4);
        let out = runner.map((0..16u64).collect(), |i| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn boxed_jobs_with_captured_state() {
        let runner = Runner::with_threads(2);
        let base = 7u64;
        let jobs: Vec<Job<'_, u64>> = (0..10)
            .map(|i| Box::new(move || base + i) as Job<'_, u64>)
            .collect();
        assert_eq!(runner.run(jobs), (7..17).collect::<Vec<_>>());
    }

    #[test]
    fn empty_job_list() {
        let runner = Runner::with_threads(4);
        let out: Vec<u64> = runner.run(Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(Runner::with_threads(0).threads(), 1);
    }
}
