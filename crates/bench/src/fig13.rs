//! Figure 13: memory-allocation mechanisms (knapsack vs random).
//!
//! Ten clients, two lock servers, TPC-C low contention, and a switch
//! memory budget small enough that allocation matters. The allocator
//! input includes a large tail of cold customer rows, so the strawman
//! random allocator mostly wastes switch memory on locks nobody
//! contends for — the paper's Figure 13 setup.

use netlock_core::prelude::*;

use crate::common::{build_netlock_tpcc, mrps, TimeScale, TpccRackSpec};

/// Result of one allocation policy run.
#[derive(Clone, Debug)]
pub struct AllocResult {
    /// "knapsack" or "random".
    pub policy: &'static str,
    /// Grants served by the switch, per second.
    pub switch_rps: f64,
    /// Grants served by lock servers, per second.
    pub server_rps: f64,
    /// Transaction latency CDF points `(latency_ns, cum_fraction)`.
    pub latency_cdf: Vec<(u64, f64)>,
    /// Full run stats.
    pub stats: RunStats,
}

fn spec(random: bool) -> TpccRackSpec {
    TpccRackSpec {
        clients: 10,
        lock_servers: 2,
        switch_slots: 4_000,
        random_alloc: random,
        cold_locks_in_stats: 20_000,
        ..Default::default()
    }
}

/// Run one policy.
pub fn run_policy(random: bool, scale: TimeScale) -> AllocResult {
    let mut rack = build_netlock_tpcc(&spec(random));
    let stats = warmup_and_measure(&mut rack, scale.warmup, scale.measure);
    let secs = scale.measure.as_secs_f64();
    AllocResult {
        policy: if random { "random" } else { "knapsack" },
        switch_rps: stats.grants_switch as f64 / secs,
        server_rps: stats.grants_server as f64 / secs,
        latency_cdf: stats.txn_latency.cdf_points(),
        stats,
    }
}

/// Panel (a) breakdown and panel (b) CDF as TSV; the two policy runs
/// fan out as one batch.
pub fn render(runner: &crate::runner::Runner, scale: TimeScale) -> String {
    use std::fmt::Write;
    let results = runner.map(vec![true, false], |random| run_policy(random, scale));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Figure 13(a): throughput breakdown by allocation policy (4000 switch slots)"
    );
    let _ = writeln!(out, "policy\tswitch_mrps\tserver_mrps\ttotal_mrps");
    for r in &results {
        let _ = writeln!(
            out,
            "{}\t{:.3}\t{:.3}\t{:.3}",
            r.policy,
            mrps(r.switch_rps),
            mrps(r.server_rps),
            mrps(r.switch_rps + r.server_rps)
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "# Figure 13(b): transaction latency CDF");
    let _ = writeln!(out, "policy\tlatency_us\tcdf");
    for r in &results {
        // Downsample to ~50 points for readability.
        let step = (r.latency_cdf.len() / 50).max(1);
        for (i, &(ns, frac)) in r.latency_cdf.iter().enumerate() {
            if i % step == 0 || frac == 1.0 {
                let _ = writeln!(out, "{}\t{:.1}\t{:.4}", r.policy, ns as f64 / 1e3, frac);
            }
        }
    }
    out
}

/// Print panel (a) breakdown and panel (b) CDF as TSV.
pub fn run_and_print(runner: &crate::runner::Runner, scale: TimeScale) {
    print!("{}", render(runner, scale));
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_sim::SimDuration;

    #[test]
    fn knapsack_beats_random_end_to_end() {
        let scale = TimeScale {
            warmup: SimDuration::from_millis(3),
            measure: SimDuration::from_millis(15),
        };
        let knap = run_policy(false, scale);
        let rand = run_policy(true, scale);
        // Knapsack puts the hot locks in the switch...
        assert!(
            knap.switch_rps > 2.0 * rand.switch_rps,
            "knapsack switch share {} vs random {}",
            knap.switch_rps,
            rand.switch_rps
        );
        // ...and that shows up as higher total throughput.
        assert!(
            knap.stats.tps() > rand.stats.tps(),
            "knapsack tps {} vs random {}",
            knap.stats.tps(),
            rand.stats.tps()
        );
    }
}
