//! Real-threads delegation sweep over the `netlock-dlock` backends.
//!
//! The simulation charges the paper's 222 ns/message for server CPU;
//! this harness *measures* what the actual `server::LockTable` costs on
//! this machine's cores, and how that cost scales when many threads
//! contend for it through three concurrency-control strategies
//! (`mutex`, `flat_combining`, `ccsynch` — see the `netlock-dlock`
//! crate docs). The sweep axes:
//!
//! - **threads** — 1..max (the delegation payoff appears past 2);
//! - **contention** — `hot` (Zipf θ=0.99 over 64 locks, the paper's
//!   extreme-contention shape) vs `uniform` (4096 locks);
//! - **mix** — `excl` (all exclusive) vs `mixed` (50% shared);
//! - **cs_spins** — extra serial work per op while the table is held,
//!   the critical-section-length axis of the flat-combining paper.
//!
//! Each point reports throughput (M ops/s) and per-op latency
//! (mean/p50/p99 of the `run()` round-trip, i.e. delegation cost — not
//! lock-wait time; queued verdicts return immediately). The
//! single-thread sequential table cost is reported separately as
//! `seq_lock_table_ns_per_op` / `calibrated_service_ns`, the number the
//! `--calibrated` flag of the figure binaries feeds back into
//! [`netlock_server::ServiceModel`].

use std::time::Instant;

use netlock_dlock::{CcSynch, ConcurrentLockTable, FlatCombining, LockOp, MutexTable};
use netlock_proto::{ClientAddr, LockId, LockMode, LockRequest, Priority, TenantId, TxnId};
use netlock_server::{LockTable, TableAcquire};
use netlock_sim::{Histogram, SimRng};
use netlock_workloads::Zipf;

use crate::report::Json;

/// Hot-key lock-space size (the paper's extreme-contention shape).
pub const HOT_LOCKS: usize = 64;
/// Zipf skew for the hot distribution.
pub const HOT_THETA: f64 = 0.99;
/// Uniform lock-space size.
pub const UNIFORM_LOCKS: usize = 4096;
/// A thread releases once it holds this many locks, so hold counts stay
/// bounded and acquire/release traffic stays ~balanced.
const MAX_HELD: usize = 2;

/// Which backend a point measures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// `Mutex<LockTable>` baseline.
    Mutex,
    /// Flat combining.
    FlatCombining,
    /// CCSynch-style queue delegation.
    CcSynch,
}

impl Backend {
    /// All backends, baseline first.
    pub const ALL: [Backend; 3] = [Backend::Mutex, Backend::FlatCombining, Backend::CcSynch];

    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Mutex => "mutex",
            Backend::FlatCombining => "flat_combining",
            Backend::CcSynch => "ccsynch",
        }
    }
}

/// Lock-id distribution of a point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dist {
    /// Zipf θ=0.99 over [`HOT_LOCKS`].
    Hot,
    /// Uniform over [`UNIFORM_LOCKS`].
    Uniform,
}

impl Dist {
    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            Dist::Hot => "hot",
            Dist::Uniform => "uniform",
        }
    }
}

/// Shared/exclusive mix of a point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mix {
    /// All acquires exclusive.
    Exclusive,
    /// 50% shared, 50% exclusive.
    Mixed,
}

impl Mix {
    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            Mix::Exclusive => "excl",
            Mix::Mixed => "mixed",
        }
    }

    fn shared_prob(self) -> f64 {
        match self {
            Mix::Exclusive => 0.0,
            Mix::Mixed => 0.5,
        }
    }
}

/// One sweep point: a backend under one workload shape.
#[derive(Clone, Copy, Debug)]
pub struct PointSpec {
    /// The backend under test.
    pub backend: Backend,
    /// Worker threads.
    pub threads: usize,
    /// Lock-id distribution.
    pub dist: Dist,
    /// Shared/exclusive mix.
    pub mix: Mix,
    /// Critical-section padding (serial spins per op inside the table).
    pub cs_spins: u32,
    /// Measured ops per thread.
    pub ops_per_thread: usize,
    /// Untimed warmup ops per thread.
    pub warmup_per_thread: usize,
}

/// Measured outcome of one point.
#[derive(Clone, Copy, Debug)]
pub struct PointResult {
    /// The spec this measures.
    pub spec: PointSpec,
    /// Total measured ops across threads.
    pub ops: u64,
    /// Wall-clock seconds of the slowest thread's measured loop.
    pub secs: f64,
    /// Mean per-op latency (ns).
    pub mean_ns: f64,
    /// Median per-op latency (ns).
    pub p50_ns: u64,
    /// 99th-percentile per-op latency (ns).
    pub p99_ns: u64,
}

impl PointResult {
    /// Throughput in million ops per second.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.secs.max(1e-12) / 1e6
    }

    /// The TSV row for this point.
    pub fn tsv(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{:.4}\t{:.3}\t{:.1}\t{}\t{}",
            self.spec.backend.label(),
            self.spec.threads,
            self.spec.dist.label(),
            self.spec.mix.label(),
            self.spec.cs_spins,
            self.ops,
            self.secs,
            self.mops(),
            self.mean_ns,
            self.p50_ns,
            self.p99_ns,
        )
    }

    /// The header matching [`PointResult::tsv`].
    pub fn tsv_header() -> &'static str {
        "backend\tthreads\tdist\tmix\tcs_spins\tops\tsecs\tmops\tmean_ns\tp50_ns\tp99_ns"
    }

    /// The JSON object for this point.
    pub fn json(&self) -> Json {
        Json::obj([
            ("threads", Json::Int(self.spec.threads as u64)),
            ("dist", Json::str(self.spec.dist.label())),
            ("mix", Json::str(self.spec.mix.label())),
            ("cs_spins", Json::Int(self.spec.cs_spins as u64)),
            ("ops", Json::Int(self.ops)),
            ("secs", Json::Num(self.secs)),
            ("mops", Json::Num(self.mops())),
            ("mean_ns", Json::Num(self.mean_ns)),
            ("p50_ns", Json::Int(self.p50_ns)),
            ("p99_ns", Json::Int(self.p99_ns)),
        ])
    }
}

/// Run one sweep point.
pub fn run_point(spec: PointSpec) -> PointResult {
    match spec.backend {
        Backend::Mutex => drive(&MutexTable::new(spec.threads, spec.cs_spins), spec),
        Backend::FlatCombining => drive(&FlatCombining::new(spec.threads, spec.cs_spins), spec),
        Backend::CcSynch => drive(&CcSynch::new(spec.threads, spec.cs_spins), spec),
    }
}

/// One worker's loop: acquire fresh locks until [`MAX_HELD`] are held,
/// then release the oldest; grants promoted by our releases are adopted
/// into our held list (whoever receives the grant owns the release), so
/// grant/release conservation holds without cross-thread signaling.
fn worker<T: ConcurrentLockTable>(
    backend: &T,
    spec: &PointSpec,
    zipf: Option<&Zipf>,
    tid: usize,
) -> (f64, Histogram) {
    let mut rng = SimRng::new(0xD10C ^ ((tid as u64) << 32) ^ spec.cs_spins as u64);
    let mut held: Vec<(LockId, TxnId)> = Vec::new();
    let mut buf: Vec<LockRequest> = Vec::new();
    let mut hist = Histogram::new();
    let mut seq = 0u64;
    let mut elapsed = 0.0f64;
    for phase in 0..2 {
        let (ops, timed) = if phase == 0 {
            (spec.warmup_per_thread, false)
        } else {
            (spec.ops_per_thread, true)
        };
        let t0 = Instant::now();
        for _ in 0..ops {
            let op = if held.len() >= MAX_HELD {
                let (lock, txn) = held.remove(0);
                LockOp::Release { lock, txn }
            } else {
                let lock = match zipf {
                    Some(z) => z.sample(&mut rng) as u32,
                    None => rng.index(UNIFORM_LOCKS) as u32,
                };
                let mode = if rng.chance(spec.mix.shared_prob()) {
                    LockMode::Shared
                } else {
                    LockMode::Exclusive
                };
                seq += 1;
                LockOp::Acquire(LockRequest {
                    lock: LockId(lock),
                    mode,
                    txn: TxnId(((tid as u64 + 1) << 40) | seq),
                    client: ClientAddr(tid as u32 + 1),
                    tenant: TenantId(0),
                    priority: Priority(0),
                    issued_at_ns: seq,
                })
            };
            let t = Instant::now();
            let resp = backend.run(tid, op, buf);
            if timed {
                hist.record(t.elapsed().as_nanos() as u64);
            }
            if let LockOp::Acquire(req) = op {
                if resp.acquired == Some(TableAcquire::Granted) {
                    held.push((req.lock, req.txn));
                }
            }
            held.extend(resp.grants.iter().map(|g| (g.lock, g.txn)));
            buf = resp.grants;
        }
        if timed {
            elapsed = t0.elapsed().as_secs_f64();
        }
    }
    // Drain: release everything we hold (adopting any promotions those
    // releases trigger) so no thread exits leaving peers queued forever.
    while let Some((lock, txn)) = held.pop() {
        let resp = backend.run(tid, LockOp::Release { lock, txn }, buf);
        held.extend(resp.grants.iter().map(|g| (g.lock, g.txn)));
        buf = resp.grants;
    }
    (elapsed, hist)
}

fn drive<T: ConcurrentLockTable>(backend: &T, spec: PointSpec) -> PointResult {
    let zipf = match spec.dist {
        Dist::Hot => Some(Zipf::new(HOT_LOCKS, HOT_THETA)),
        Dist::Uniform => None,
    };
    let results: Vec<(f64, Histogram)> = std::thread::scope(|s| {
        let zipf = zipf.as_ref();
        let spec = &spec;
        let handles: Vec<_> = (0..spec.threads)
            .map(|tid| s.spawn(move || worker(backend, spec, zipf, tid)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut hist = Histogram::new();
    let mut secs = 0.0f64;
    for (elapsed, h) in &results {
        secs = secs.max(*elapsed);
        hist.merge(h);
    }
    PointResult {
        spec,
        ops: hist.count(),
        secs,
        mean_ns: hist.mean(),
        p50_ns: hist.quantile(0.5),
        p99_ns: hist.quantile(0.99),
    }
}

/// Sequential `LockTable` cost in ns per *message* (an acquire or a
/// release; the loop is acquire+release pairs over 64 locks, the same
/// churn `bench_sim` times). This is the number `--calibrated` feeds
/// into the simulation's server model in place of the paper's 222 ns.
pub fn seq_lock_table_ns_per_message(rounds: usize) -> f64 {
    let mut table = LockTable::new();
    let mut grants: Vec<LockRequest> = Vec::new();
    let mut txn = 0u64;
    let req = |lock: u32, txn: u64| LockRequest {
        lock: LockId(lock),
        mode: LockMode::Exclusive,
        txn: TxnId(txn),
        client: ClientAddr(1),
        tenant: TenantId(0),
        priority: Priority(0),
        issued_at_ns: txn,
    };
    for lock in 0..64u32 {
        table.acquire(req(lock, txn));
        grants.clear();
        table.release(LockId(lock), TxnId(txn), &mut grants);
        txn += 1;
    }
    let t = Instant::now();
    let mut acc = 0usize;
    for i in 0..rounds {
        let lock = (i % 64) as u32;
        table.acquire(req(lock, txn));
        grants.clear();
        table.release(LockId(lock), TxnId(txn), &mut grants);
        acc += grants.len();
        txn += 1;
    }
    let elapsed = t.elapsed().as_nanos() as f64;
    std::hint::black_box(acc);
    // Two messages (one acquire, one release) per round.
    elapsed / (rounds as f64 * 2.0)
}

/// The thread counts a sweep uses: doubling from 1 up to `max`.
pub fn thread_counts(max: usize) -> Vec<usize> {
    let mut counts = Vec::new();
    let mut t = 1;
    while t <= max {
        counts.push(t);
        t *= 2;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_runs_and_reports() {
        for backend in Backend::ALL {
            let spec = PointSpec {
                backend,
                threads: 2,
                dist: Dist::Hot,
                mix: Mix::Mixed,
                cs_spins: 0,
                ops_per_thread: 2_000,
                warmup_per_thread: 200,
            };
            let r = run_point(spec);
            assert_eq!(
                r.ops,
                4_000,
                "{}: all measured ops counted",
                backend.label()
            );
            assert!(r.secs > 0.0);
            assert!(r.mean_ns > 0.0);
            assert!(r.p99_ns >= r.p50_ns);
            let row = r.tsv();
            assert_eq!(
                row.split('\t').count(),
                PointResult::tsv_header().split('\t').count(),
                "row/header column mismatch: {row}"
            );
        }
    }

    #[test]
    fn seq_cost_is_positive_and_sane() {
        let ns = seq_lock_table_ns_per_message(20_000);
        assert!(ns > 0.0 && ns < 100_000.0, "ns/message = {ns}");
    }

    #[test]
    fn thread_count_ladder() {
        assert_eq!(thread_counts(1), vec![1]);
        assert_eq!(thread_counts(2), vec![1, 2]);
        assert_eq!(thread_counts(8), vec![1, 2, 4, 8]);
        assert_eq!(thread_counts(6), vec![1, 2, 4]);
    }
}
