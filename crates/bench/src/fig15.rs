//! Figure 15: failure handling.
//!
//! TPC-C runs steadily; the switch is stopped (drops everything,
//! retains no state), then reactivated with wiped registers and a
//! reprogrammed directory, exactly like §6.5's experiment. Clients
//! keep retrying during the outage; leases clear stranded holders.
//! Throughput drops to zero during the outage and returns to the
//! pre-failure level right after reactivation.

use netlock_core::prelude::*;
use netlock_sim::{SimDuration, TimeSeries};
use netlock_switch::SwitchNode;

use crate::common::{build_netlock_tpcc, tpcc_allocation, TpccRackSpec};

/// The failure experiment's timeline and result.
#[derive(Clone, Debug)]
pub struct FailureResult {
    /// TPS over time.
    pub series: TimeSeries,
    /// When the switch was stopped.
    pub fail_at: SimDuration,
    /// When the switch was reactivated.
    pub revive_at: SimDuration,
    /// Packets the links dropped.
    pub net_lost: u64,
    /// Extra packet copies the links created.
    pub net_duplicated: u64,
    /// Packets delivered out of order on faulted links.
    pub net_reordered: u64,
    /// Packets that arrived at the dead switch and vanished.
    pub net_to_dead: u64,
}

/// Run the failure timeline: fail at `fail_at`, revive at `revive_at`,
/// sample every `interval` until `total`.
pub fn run_failure(
    fail_at: SimDuration,
    revive_at: SimDuration,
    interval: SimDuration,
    total: SimDuration,
) -> FailureResult {
    assert!(fail_at < revive_at && revive_at < total);
    let spec = TpccRackSpec {
        clients: 10,
        lock_servers: 2,
        workers_per_client: 4,
        think_override: Some(SimDuration::from_micros(500)),
        retry_timeout: SimDuration::from_millis(10),
        ..Default::default()
    };
    let mut rack = build_netlock_tpcc(&spec);
    let switch = rack.switch;
    let alloc = tpcc_allocation(&spec);

    let mut series = TimeSeries::new();
    let mut last: u64 = 0;
    let mut failed = false;
    let mut revived = false;
    let mut t = SimDuration::ZERO;
    while t < total {
        let next = t + interval;
        // Apply failure events inside this window at the right instant.
        if !failed && fail_at >= t && fail_at < next {
            rack.sim.run_until(netlock_sim::SimTime(fail_at.as_nanos()));
            rack.sim.fail_node(switch);
            failed = true;
        }
        if !revived && revive_at >= t && revive_at < next {
            rack.sim
                .run_until(netlock_sim::SimTime(revive_at.as_nanos()));
            rack.sim.revive_node(switch);
            // "The switch retains none of its former state or register
            // values": wipe and reprogram, as the control plane would.
            let n_servers = rack.lock_servers.len();
            let tick = rack.sim.with_node::<SwitchNode, _>(switch, |s| {
                s.reboot();
                s.dataplane_mut().set_default_servers(n_servers);
                netlock_switch::control::apply_allocation(s.dataplane_mut(), &alloc);
                s.config().control_tick
            });
            // The control tick (lease sweeper) died with the node;
            // restart it or stranded holders are never reclaimed.
            if !tick.is_zero() {
                rack.sim
                    .inject_timer(switch, tick, SwitchNode::CONTROL_TIMER_TOKEN);
            }
            revived = true;
        }
        rack.sim.run_until(netlock_sim::SimTime(next.as_nanos()));
        let now_total: u64 = txns_by_client(&rack).iter().sum();
        series.push(
            rack.sim.now(),
            (now_total - last) as f64 / interval.as_secs_f64(),
        );
        last = now_total;
        t = next;
    }
    let net = rack.sim.stats();
    FailureResult {
        series,
        fail_at,
        revive_at,
        net_lost: net.packets_lost,
        net_duplicated: net.packets_duplicated,
        net_reordered: net.packets_reordered,
        net_to_dead: net.packets_to_dead_node,
    }
}

/// The throughput time series as TSV. The timeline is one simulation
/// (inherently sequential); `quick` shrinks every window by 4× so the
/// row count is unchanged.
pub fn render(quick: bool) -> String {
    use std::fmt::Write;
    let div = if quick { 4 } else { 1 };
    let r = run_failure(
        SimDuration::from_millis(2_000 / div),
        SimDuration::from_millis(3_000 / div),
        SimDuration::from_millis(200 / div),
        SimDuration::from_millis(6_000 / div),
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Figure 15: switch stopped at {:.1}s, reactivated at {:.1}s",
        r.fail_at.as_secs_f64(),
        r.revive_at.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "# network: lost={} duplicated={} reordered={} to_dead_switch={}",
        r.net_lost, r.net_duplicated, r.net_reordered, r.net_to_dead
    );
    let _ = writeln!(out, "time_s\ttps");
    for &(t, tps) in r.series.points() {
        let _ = writeln!(out, "{:.2}\t{:.0}", t.as_secs_f64(), tps);
    }
    out
}

/// Print the throughput time series as TSV.
pub fn run_and_print(quick: bool) {
    print!("{}", render(quick));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_drops_and_recovers() {
        let r = run_failure(
            SimDuration::from_millis(300),
            SimDuration::from_millis(500),
            SimDuration::from_millis(100),
            SimDuration::from_millis(1_200),
        );
        let pts = r.series.points();
        // Window indices: [0,100),[100,200),... failure at 300 ms.
        let before = pts[1].1.max(pts[2].1);
        // Outage windows (300–500 ms): index 3 and 4.
        let during = pts[3].1.min(pts[4].1);
        // Recovery: last three windows.
        let after = pts[pts.len() - 3..]
            .iter()
            .map(|p| p.1)
            .fold(0.0f64, f64::max);
        assert!(before > 1_000.0, "healthy throughput first: {before}");
        assert!(
            during < before * 0.2,
            "outage must crater throughput: {during} vs {before}"
        );
        assert!(
            after > before * 0.6,
            "reactivation must restore throughput: {after} vs {before}"
        );
    }
}
