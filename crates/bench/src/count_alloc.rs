//! A counting global allocator: wraps the system allocator and keeps a
//! relaxed atomic tally of allocation calls, so benches and tests can
//! *prove* a hot path is allocation-free rather than eyeball it.
//!
//! Install it in a binary or test with:
//!
//! ```text
//! #[global_allocator]
//! static ALLOC: netlock_bench::CountingAlloc = netlock_bench::CountingAlloc;
//! ```
//!
//! then bracket the region of interest with [`allocation_count`]:
//!
//! ```text
//! let before = allocation_count();
//! hot_loop();
//! assert_eq!(allocation_count() - before, 0);
//! ```
//!
//! `realloc` and `alloc_zeroed` count as allocations; `dealloc` does
//! not (freeing is not the hot-path sin being hunted). The counter is
//! process-global and monotone — always diff two readings, never read
//! one absolutely, because the runtime and test harness allocate too.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of allocation calls since process start (monotone; diff it).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The counting allocator. Zero-sized; see the module docs for usage.
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`, which upholds the `GlobalAlloc`
// contract; the only addition is a relaxed counter increment, which
// cannot affect the returned memory. `unsafe_code` is denied
// workspace-wide; this module is the one sanctioned exception, allowed
// explicitly here because a `GlobalAlloc` impl cannot be written
// without it.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: this test does NOT install the allocator (a test binary
    // can't, portably, without affecting every other test); it only
    // checks the counter plumbing. The real end-to-end proof lives in
    // `bench_sim` and the alloc-tracking integration test, which do
    // install it.
    #[test]
    fn counter_is_monotone() {
        let a = allocation_count();
        let b = allocation_count();
        assert!(b >= a);
    }
}
