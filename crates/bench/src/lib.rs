//! # netlock-bench
//!
//! Experiment harnesses that regenerate every figure of the paper's
//! evaluation (§6). Each `figXX` module provides typed `run_*`
//! functions (used by the Criterion benches and integration tests) and
//! a `run_and_print` that emits the figure's rows as TSV (used by the
//! `figXX` binaries). See DESIGN.md for the per-experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.

#![warn(missing_docs)]

pub mod chaos;
pub mod common;
pub mod count_alloc;
pub mod dlock;
pub mod failover;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod flash_crowd;
pub mod report;
pub mod runner;
pub mod tenant_churn;

pub use common::{
    build_netlock_tpcc, scale_for, tpcc_alloc_stats, tpcc_allocation, tpcc_sources, BinArgs, Fig,
    SystemResult, TimeScale, TpccRackSpec,
};
pub use count_alloc::{allocation_count, CountingAlloc};
pub use runner::{Job, Runner};
