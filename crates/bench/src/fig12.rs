//! Figure 12: policy support.
//!
//! (a) Service differentiation with priorities: two tenants of five
//! clients each share a TPC-C database; the high-priority tenant
//! arrives mid-run. Without differentiation, throughput splits evenly;
//! with per-stage priority queues, the high-priority tenant is served
//! first.
//!
//! (b) Performance isolation with per-tenant quotas: tenant 1 has
//! seven clients, tenant 2 has three. Without isolation, tenant 1
//! crowds out tenant 2; with token-bucket meters set to half the
//! measured system capacity each, both get their share.

use netlock_core::prelude::*;
use netlock_proto::{Priority, TenantId};
use netlock_sim::{SimDuration, TimeSeries};
use netlock_switch::priority::PriorityLayout;
use netlock_switch::SwitchNode;
use netlock_workloads::{tpcc::ids, TpccConfig, TpccSource};

/// Shared-database TPC-C config for the policy experiments (both
/// tenants hit the same 10 warehouses → real cross-tenant contention).
fn policy_tpcc(tenant: TenantId, priority: Priority) -> TpccConfig {
    TpccConfig {
        warehouses: 10,
        think_override: Some(SimDuration::from_micros(500)),
        tenant,
        priority,
        ..Default::default()
    }
}

/// Hot locks (warehouses + districts) of the shared database.
fn hot_locks() -> Vec<netlock_proto::LockId> {
    let mut v = Vec::new();
    for w in 0..10 {
        v.push(ids::warehouse(w));
        for d in 0..10 {
            v.push(ids::district(w, d));
        }
    }
    v
}

/// Per-tenant throughput series from panel (a).
#[derive(Clone, Debug)]
pub struct DiffResult {
    /// Low-priority tenant's TPS over time.
    pub low: TimeSeries,
    /// High-priority tenant's TPS over time.
    pub high: TimeSeries,
}

/// Panel (a): run with or without service differentiation.
///
/// The low-priority tenant (5 clients) runs from t = 0; the
/// high-priority tenant (5 clients) arrives at `arrival`. Sampled at
/// `interval` for `intervals` windows.
pub fn run_differentiation(
    differentiate: bool,
    arrival: SimDuration,
    interval: SimDuration,
    intervals: usize,
) -> DiffResult {
    let workers = 4;
    let mut rack = Rack::build(RackConfig {
        seed: 12,
        lock_servers: 2,
        engine: EngineSpec::Priority(PriorityLayout::new(2, 64, 128)),
        ..Default::default()
    });
    rack.program_priority(&hot_locks());
    // Default-route cold locks to the servers.
    let n_servers = rack.lock_servers.len();
    let switch = rack.switch;
    rack.sim.with_node::<SwitchNode, _>(switch, |s| {
        s.dataplane_mut().set_default_servers(n_servers);
    });
    // Tenant 1: low priority (level 1 when differentiating).
    let low_prio = if differentiate {
        Priority(1)
    } else {
        Priority(0)
    };
    for _ in 0..5 {
        rack.add_txn_client(
            TxnClientConfig {
                workers,
                ..Default::default()
            },
            Box::new(TpccSource::new(policy_tpcc(TenantId(1), low_prio))),
        );
    }
    // Tenant 2: high priority, arrives later.
    for _ in 0..5 {
        rack.add_txn_client(
            TxnClientConfig {
                workers,
                start_delay: arrival,
                ..Default::default()
            },
            Box::new(TpccSource::new(policy_tpcc(TenantId(2), Priority(0)))),
        );
    }
    // Sample per-tenant TPS: clients 0..5 are tenant 1, 5..10 tenant 2.
    let mut low = TimeSeries::new();
    let mut high = TimeSeries::new();
    let mut last = txns_by_client(&rack);
    for _ in 0..intervals {
        rack.sim.run_for(interval);
        let now_counts = txns_by_client(&rack);
        let secs = interval.as_secs_f64();
        let d_low: u64 = (0..5).map(|i| now_counts[i] - last[i]).sum();
        let d_high: u64 = (5..10).map(|i| now_counts[i] - last[i]).sum();
        low.push(rack.sim.now(), d_low as f64 / secs);
        high.push(rack.sim.now(), d_high as f64 / secs);
        last = now_counts;
    }
    DiffResult { low, high }
}

/// Per-tenant totals from panel (b).
#[derive(Clone, Copy, Debug)]
pub struct IsolationResult {
    /// Tenant 1 (7 clients) TPS.
    pub tenant1_tps: f64,
    /// Tenant 2 (3 clients) TPS.
    pub tenant2_tps: f64,
}

/// Panel (b): run with or without per-tenant quota meters.
///
/// Isolation only matters when tenants compete for a *shared resource*:
/// here the single lock server is the bottleneck (each tenant's offered
/// load alone exceeds half its capacity), so the meters genuinely
/// reassign capacity rather than just slowing one tenant.
pub fn run_isolation(isolate: bool, scale: crate::common::TimeScale) -> IsolationResult {
    let workers = 48;
    // Disjoint per-tenant warehouse ranges sized so each tenant has the
    // same per-warehouse worker density: tenants contend for the lock
    // manager's capacity, not for each other's rows, and each tenant's
    // solo demand exceeds half of it.
    let tenant_cfg = |tenant: u16| TpccConfig {
        warehouses: if tenant == 1 { 60 } else { 26 },
        warehouse_base: if tenant == 1 { 0 } else { 60 },
        think_override: Some(SimDuration::from_micros(100)),
        tenant: TenantId(tenant),
        ..Default::default()
    };
    let build = |with_meters: Option<u64>| -> Rack {
        let mut rack = Rack::build(RackConfig {
            seed: 13,
            lock_servers: 1,
            server: netlock_server::ServerConfig {
                service: SimDuration::from_nanos(1_500),
                ..Default::default()
            },
            ..Default::default()
        });
        // Hot rows (both tenants' ranges) live in the switch; the cold
        // customer/order traffic hits the lock server — the contended
        // resource the meters arbitrate.
        let mut stats = netlock_workloads::hot_lock_stats(&tenant_cfg(1), 7 * workers as u32, 1);
        stats.extend(netlock_workloads::hot_lock_stats(
            &tenant_cfg(2),
            3 * workers as u32,
            1,
        ));
        rack.program(&netlock_core::prelude::knapsack_allocate_bounded(
            &stats, 100_000, 10_000,
        ));
        if let Some(rate) = with_meters {
            let switch = rack.switch;
            rack.sim.with_node::<SwitchNode, _>(switch, |s| {
                s.dataplane_mut().set_tenant_meter(TenantId(1), rate, 64, 0);
                s.dataplane_mut().set_tenant_meter(TenantId(2), rate, 64, 0);
            });
        }
        for _ in 0..7 {
            rack.add_txn_client(
                TxnClientConfig {
                    workers,
                    retry_timeout: SimDuration::from_millis(5),
                    ..Default::default()
                },
                Box::new(TpccSource::new(tenant_cfg(1))),
            );
        }
        for _ in 0..3 {
            rack.add_txn_client(
                TxnClientConfig {
                    workers,
                    retry_timeout: SimDuration::from_millis(5),
                    ..Default::default()
                },
                Box::new(TpccSource::new(tenant_cfg(2))),
            );
        }
        rack
    };

    let quota = if isolate {
        // Calibrate: measure total lock request rate without meters,
        // then give each tenant half (the paper's equal shares).
        let mut cal = build(None);
        let s = warmup_and_measure(&mut cal, scale.warmup, scale.measure);
        Some((s.lock_rps() / 2.0) as u64)
    } else {
        None
    };
    let mut rack = build(quota);
    rack.sim.run_for(scale.warmup);
    reset_clients(&mut rack);
    rack.sim.run_for(scale.measure);
    let counts = txns_by_client(&rack);
    let secs = scale.measure.as_secs_f64();
    IsolationResult {
        tenant1_tps: (0..7).map(|i| counts[i]).sum::<u64>() as f64 / secs,
        tenant2_tps: (7..10).map(|i| counts[i]).sum::<u64>() as f64 / secs,
    }
}

enum PanelResult {
    Diff(DiffResult),
    Iso(IsolationResult),
}

/// Both panels as TSV: the two differentiation timelines and the two
/// isolation runs fan out as one batch of four jobs. `quick` shrinks
/// the simulated timelines (same row counts, smoke-test scale).
pub fn render(runner: &crate::runner::Runner, quick: bool) -> String {
    use std::fmt::Write;
    let (interval_ms, arrival_ms) = if quick { (20, 120) } else { (100, 600) };
    let interval = SimDuration::from_millis(interval_ms);
    let intervals = 20;
    let arrival = SimDuration::from_millis(arrival_ms);
    let iso_scale = if quick {
        crate::common::TimeScale {
            warmup: SimDuration::from_millis(5),
            measure: SimDuration::from_millis(40),
        }
    } else {
        crate::common::TimeScale {
            warmup: SimDuration::from_millis(20),
            measure: SimDuration::from_millis(200),
        }
    };
    let jobs: Vec<crate::runner::Job<'_, PanelResult>> = vec![
        Box::new(move || {
            PanelResult::Diff(run_differentiation(false, arrival, interval, intervals))
        }),
        Box::new(move || {
            PanelResult::Diff(run_differentiation(true, arrival, interval, intervals))
        }),
        Box::new(move || PanelResult::Iso(run_isolation(false, iso_scale))),
        Box::new(move || PanelResult::Iso(run_isolation(true, iso_scale))),
    ];
    let mut results = runner.run(jobs).into_iter();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Figure 12(a): service differentiation (high-prio tenant arrives at {:.1} s)",
        arrival.as_secs_f64()
    );
    for label in ["without", "with"] {
        let PanelResult::Diff(r) = results.next().expect("diff panel") else {
            unreachable!("job order");
        };
        let _ = writeln!(out, "## {label} differentiation");
        let _ = writeln!(out, "time_s\tlow_prio_tps\thigh_prio_tps");
        for (i, (t, lo)) in r.low.points().iter().enumerate() {
            let hi = r.high.points()[i].1;
            let _ = writeln!(out, "{:.2}\t{:.0}\t{:.0}", t.as_secs_f64(), lo, hi);
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "# Figure 12(b): performance isolation (tenant1: 7 clients, tenant2: 3 clients)"
    );
    let _ = writeln!(out, "mode\ttenant1_tps\ttenant2_tps");
    for label in ["without_isolation", "with_isolation"] {
        let PanelResult::Iso(r) = results.next().expect("iso panel") else {
            unreachable!("job order");
        };
        let _ = writeln!(out, "{}\t{:.0}\t{:.0}", label, r.tenant1_tps, r.tenant2_tps);
    }
    out
}

/// Print both panels as TSV.
pub fn run_and_print(runner: &crate::runner::Runner, quick: bool) {
    print!("{}", render(runner, quick));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differentiation_prioritizes_high_tenant() {
        let interval = SimDuration::from_millis(50);
        let arrival = SimDuration::from_millis(100);
        let r = run_differentiation(true, arrival, interval, 8);
        // After arrival, the high-priority tenant should clearly beat
        // the low-priority one.
        let late_low: f64 = r.low.points()[4..].iter().map(|p| p.1).sum();
        let late_high: f64 = r.high.points()[4..].iter().map(|p| p.1).sum();
        assert!(
            late_high > 1.3 * late_low,
            "high prio {late_high} should dominate low prio {late_low}"
        );
    }

    #[test]
    fn no_differentiation_splits_evenly() {
        let interval = SimDuration::from_millis(50);
        let arrival = SimDuration::from_millis(100);
        let r = run_differentiation(false, arrival, interval, 8);
        let late_low: f64 = r.low.points()[4..].iter().map(|p| p.1).sum();
        let late_high: f64 = r.high.points()[4..].iter().map(|p| p.1).sum();
        let ratio = late_high / late_low.max(1.0);
        assert!(
            (0.6..1.7).contains(&ratio),
            "equal priority should be near-even: ratio {ratio}"
        );
    }

    #[test]
    fn isolation_evens_out_tenants() {
        let scale = crate::common::TimeScale {
            warmup: SimDuration::from_millis(10),
            measure: SimDuration::from_millis(80),
        };
        let without = run_isolation(false, scale);
        let with = run_isolation(true, scale);
        // Unisolated: 7 clients crowd out 3.
        assert!(
            without.tenant1_tps > 1.5 * without.tenant2_tps,
            "without isolation tenant1 should dominate: {without:?}"
        );
        // Isolated: shares are much closer.
        let ratio_with = with.tenant1_tps / with.tenant2_tps.max(1.0);
        let ratio_without = without.tenant1_tps / without.tenant2_tps.max(1.0);
        assert!(
            ratio_with < ratio_without,
            "isolation must narrow the gap: {ratio_with} vs {ratio_without}"
        );
    }
}
