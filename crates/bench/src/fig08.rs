//! Figure 8: switch microbenchmark.
//!
//! (a) shared locks — latency vs offered throughput;
//! (b) exclusive locks without contention — latency vs throughput;
//! (c) exclusive locks with contention — throughput vs number of locks;
//! (d) exclusive locks with contention — latency vs number of locks.
//!
//! Setup mirrors §6.2: 12 client machines drive the lock switch; no
//! lock servers are involved for (a)/(b) and overflow goes to one
//! server in (c)/(d). The switch's 100K-slot shared queue is split
//! evenly over the target lock set.

use std::fmt::Write;

use netlock_core::prelude::*;
use netlock_proto::{LockId, LockMode};

use crate::common::{mrps, TimeScale};
use crate::runner::Runner;

/// Clients in the paper's testbed.
pub const CLIENTS: usize = 12;
/// The switch's queue slots (paper: 100K).
pub const SWITCH_SLOTS: u32 = 100_000;

/// One point of the latency-vs-throughput panels (a)/(b).
#[derive(Clone, Debug)]
pub struct LatencyPoint {
    /// Offered aggregate load (MRPS).
    pub offered_mrps: f64,
    /// Achieved grant throughput (MRPS).
    pub achieved_mrps: f64,
    /// Acquire→grant latency.
    pub latency: LatencySummary,
}

/// One point of the contention panels (c)/(d).
#[derive(Clone, Debug)]
pub struct ContentionPoint {
    /// Number of locks shared by all clients.
    pub locks: u32,
    /// Achieved grant throughput (MRPS).
    pub achieved_mrps: f64,
    /// Acquire→grant latency.
    pub latency: LatencySummary,
}

fn build_rack(locks_total: u32, per_lock_slots: u32) -> Rack {
    let mut rack = Rack::build(RackConfig {
        seed: 8,
        lock_servers: 1,
        ..Default::default()
    });
    let stats: Vec<LockStats> = (0..locks_total)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: 1.0,
            contention: per_lock_slots,
            home_server: 0,
        })
        .collect();
    rack.program(&knapsack_allocate(&stats, SWITCH_SLOTS));
    rack
}

fn rate_point(
    mode: LockMode,
    disjoint_locks: bool,
    offered: f64,
    scale: TimeScale,
) -> LatencyPoint {
    let locks_total = 6_000u32;
    let per_client = locks_total / CLIENTS as u32;
    let mut rack = build_rack(locks_total, SWITCH_SLOTS / locks_total);
    for c in 0..CLIENTS {
        let locks: Vec<LockId> = if disjoint_locks {
            (c as u32 * per_client..(c as u32 + 1) * per_client)
                .map(LockId)
                .collect()
        } else {
            (0..locks_total).map(LockId).collect()
        };
        rack.add_micro_client(MicroClientConfig {
            rate_rps: offered * 1e6 / CLIENTS as f64,
            locks,
            mode,
            poisson: true,
            ..Default::default()
        });
    }
    let stats = warmup_and_measure(&mut rack, scale.warmup, scale.measure);
    LatencyPoint {
        offered_mrps: offered,
        achieved_mrps: mrps(stats.lock_rps()),
        latency: stats.lock_latency_summary(),
    }
}

fn run_rate_sweep(
    runner: &Runner,
    mode: LockMode,
    disjoint_locks: bool,
    offered_mrps_points: &[f64],
    scale: TimeScale,
) -> Vec<LatencyPoint> {
    runner.map(offered_mrps_points.to_vec(), |offered| {
        rate_point(mode, disjoint_locks, offered, scale)
    })
}

/// Panel (a): shared locks, no contention possible.
pub fn run_8a(runner: &Runner, scale: TimeScale) -> Vec<LatencyPoint> {
    run_rate_sweep(
        runner,
        LockMode::Shared,
        false,
        &[1.0, 5.0, 20.0, 50.0, 100.0, 200.0],
        scale,
    )
}

/// Panel (b): exclusive locks, disjoint per-client lock ranges.
pub fn run_8b(runner: &Runner, scale: TimeScale) -> Vec<LatencyPoint> {
    run_rate_sweep(
        runner,
        LockMode::Exclusive,
        true,
        &[1.0, 5.0, 20.0, 50.0, 100.0, 200.0],
        scale,
    )
}

/// Panels (c)/(d): exclusive locks over a shared lock set of varying
/// size; all 12 clients offer their full NIC rate (18 MRPS each).
pub fn run_8cd(runner: &Runner, scale: TimeScale) -> Vec<ContentionPoint> {
    runner.map(vec![500u32, 2_000, 4_000, 6_000, 8_000, 10_000], |locks| {
        let per_lock = (SWITCH_SLOTS / locks).min(4_096);
        let mut rack = build_rack(locks, per_lock);
        for _ in 0..CLIENTS {
            rack.add_micro_client(MicroClientConfig {
                rate_rps: 18e6,
                locks: (0..locks).map(LockId).collect(),
                mode: LockMode::Exclusive,
                poisson: true,
                ..Default::default()
            });
        }
        let stats = warmup_and_measure(&mut rack, scale.warmup, scale.measure);
        ContentionPoint {
            locks,
            achieved_mrps: mrps(stats.lock_rps()),
            latency: stats.lock_latency_summary(),
        }
    })
}

/// All four panels as TSV (identical text for any runner thread count).
pub fn render(runner: &Runner, scale: TimeScale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Figure 8(a): shared locks — latency vs throughput");
    let _ = writeln!(
        out,
        "offered_mrps\tachieved_mrps\tavg_us\tmed_us\tp99_us\tp999_us"
    );
    for p in run_8a(runner, scale) {
        let _ = writeln!(
            out,
            "{:.1}\t{:.2}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
            p.offered_mrps,
            p.achieved_mrps,
            p.latency.avg_us(),
            p.latency.p50_us(),
            p.latency.p99_us(),
            p.latency.p999_us()
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "# Figure 8(b): exclusive locks w/o contention — latency vs throughput"
    );
    let _ = writeln!(
        out,
        "offered_mrps\tachieved_mrps\tavg_us\tmed_us\tp99_us\tp999_us"
    );
    for p in run_8b(runner, scale) {
        let _ = writeln!(
            out,
            "{:.1}\t{:.2}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
            p.offered_mrps,
            p.achieved_mrps,
            p.latency.avg_us(),
            p.latency.p50_us(),
            p.latency.p99_us(),
            p.latency.p999_us()
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "# Figure 8(c)/(d): exclusive locks w/ contention vs number of locks"
    );
    let _ = writeln!(out, "locks\tachieved_mrps\tavg_us\tmed_us\tp99_us\tp999_us");
    for p in run_8cd(runner, scale) {
        let _ = writeln!(
            out,
            "{}\t{:.2}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
            p.locks,
            p.achieved_mrps,
            p.latency.avg_us(),
            p.latency.p50_us(),
            p.latency.p99_us(),
            p.latency.p999_us()
        );
    }
    out
}

/// Print all four panels as TSV.
pub fn run_and_print(runner: &Runner, scale: TimeScale) {
    print!("{}", render(runner, scale));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TimeScale {
        TimeScale {
            warmup: SimDuration::from_millis(1),
            measure: SimDuration::from_millis(3),
        }
    }

    #[test]
    fn shared_latency_flat_with_load() {
        let runner = Runner::with_threads(1);
        let pts = run_rate_sweep(&runner, LockMode::Shared, false, &[1.0, 20.0], tiny());
        // The switch is never the bottleneck: latency stays ~constant.
        let lo = pts[0].latency.avg_ns;
        let hi = pts[1].latency.avg_ns;
        assert!(
            (hi - lo).abs() / lo < 0.3,
            "latency must not grow with load: {lo} → {hi}"
        );
        assert!((5_000.0..15_000.0).contains(&lo), "µs-scale: {lo}");
    }

    #[test]
    fn contention_shape_holds() {
        let pts = {
            let mut out = Vec::new();
            for &locks in &[500u32, 4_000] {
                let per_lock = (SWITCH_SLOTS / locks).min(4_096);
                let mut rack = build_rack(locks, per_lock);
                for _ in 0..CLIENTS {
                    rack.add_micro_client(MicroClientConfig {
                        rate_rps: 18e6,
                        locks: (0..locks).map(LockId).collect(),
                        mode: LockMode::Exclusive,
                        ..Default::default()
                    });
                }
                let stats = warmup_and_measure(&mut rack, tiny().warmup, tiny().measure);
                out.push((locks, stats.lock_rps(), stats.lock_latency_summary()));
            }
            out
        };
        assert!(
            pts[1].1 > pts[0].1 * 1.5,
            "more locks → more throughput: {} vs {}",
            pts[0].1,
            pts[1].1
        );
        assert!(
            pts[0].2.avg_ns > pts[1].2.avg_ns,
            "fewer locks → higher latency"
        );
    }
}
