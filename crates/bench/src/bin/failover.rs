//! Multi-switch failover figure: availability and latency under a
//! per-partition crash schedule, swept over chain-replication factor
//! 1 / 2 / 3. Prints the two-section TSV (summary + grant timeline)
//! and exits nonzero on any oracle violation.
//!
//! `--check-workers` replays the sweep with 1 and 2 in-simulation
//! workers and byte-compares the audit digests — the CI smoke mode.
use netlock_bench::failover::{check_workers, render, run_sweep, Scale};
use netlock_bench::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let mut scale = Scale::Full;
    let mut check = false;
    let mut sim_workers = 1usize;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--check-workers" => check = true,
            other => {
                if let Some(v) = other.strip_prefix("--sim-workers=") {
                    match v.parse::<usize>() {
                        Ok(n) if n > 0 => sim_workers = n,
                        _ => die(&format!(
                            "--sim-workers needs a positive integer, got {v:?}"
                        )),
                    }
                } else {
                    die(&format!("unknown flag {other:?}"));
                }
            }
        }
    }
    let runs = if check {
        match check_workers(scale, 1, 2) {
            Ok(runs) => {
                println!("# check-workers: digests byte-identical at 1 and 2 workers");
                runs
            }
            Err(e) => {
                eprintln!("failover check-workers FAILED: {e}");
                std::process::exit(1);
            }
        }
    } else {
        run_sweep(scale, sim_workers)
    };
    print!("{}", render(scale, &runs));
    if runs.iter().any(|r| r.violations != 0) {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("failover: {msg}");
    eprintln!("usage: failover [--quick|--full] [--check-workers] [--sim-workers=N]");
    std::process::exit(2);
}
