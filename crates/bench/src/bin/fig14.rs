//! Regenerates Figure 14 (impact of switch memory size).
use netlock_bench::TimeScale;
use netlock_sim::SimDuration;

fn main() {
    let scale = TimeScale {
        warmup: SimDuration::from_millis(5),
        measure: SimDuration::from_millis(25),
    };
    println!(
        "# scaling: {} warmup, {} measure per point (simulated time)",
        scale.warmup, scale.measure
    );
    netlock_bench::fig14::run_and_print(scale);
}
