//! Regenerates Figure 14 (impact of switch memory size).
use netlock_bench::{BinArgs, Fig};

fn main() {
    let args = BinArgs::parse();
    let scale = args.scale(Fig::F14);
    println!(
        "# scaling: {} warmup, {} measure per point (simulated time)",
        scale.warmup, scale.measure
    );
    netlock_bench::fig14::run_and_print(&args.runner(), scale);
}
