//! Emits the flash-crowd scenario TSV (see `netlock_bench::flash_crowd`):
//! a diurnal flash crowd from up to a million virtual clients driven
//! through aggregate population nodes.
//!
//! `--full` (default) reproduces the committed `results/flash_crowd.tsv`
//! (1M virtual clients, 8 racks); `--quick` runs the 100K-client smoke
//! scale with the same TSV shape. `--sim-workers N` advances the
//! partitioned cluster with N threads — the TSV is byte-identical for
//! any N. `--speedup` instead prints the wall-clock comparison between
//! the aggregate build and the equivalent individual-client build.

use netlock_bench::flash_crowd::{self, FlashCrowdSpec};
use netlock_sim::SimDuration;

fn main() {
    let mut quick = false;
    let mut workers = 1usize;
    let mut speedup = false;
    let mut rate = 10.0f64;
    let mut nodes = 400usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--speedup" => speedup = true,
            "--rate" => {
                rate = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r: &f64| r > 0.0)
                    .unwrap_or_else(|| usage("--rate needs a positive number"));
            }
            "--nodes" => {
                nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--nodes needs a positive integer"));
            }
            "--sim-workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--sim-workers needs a positive integer"));
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    if speedup {
        let vclients = 100_000u64;
        let measure = SimDuration::from_millis(if quick { 100 } else { 400 });
        let (agg, ind, requests) = flash_crowd::speedup_point(vclients, rate, nodes, measure, 90);
        println!("# {vclients} virtual clients x {rate} rps, {measure} simulated, shared queue");
        println!("aggregate_s\tindividual_s\tspeedup\trequests");
        println!(
            "{agg:.3}\t{ind:.3}\t{:.1}\t{requests}",
            ind / agg.max(1e-12)
        );
        return;
    }
    let spec = if quick {
        FlashCrowdSpec::quick()
    } else {
        FlashCrowdSpec::full()
    };
    flash_crowd::run_and_print(&spec, workers);
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: flash_crowd [--quick | --full] [--sim-workers N] \
         [--speedup [--rate R] [--nodes N]]"
    );
    std::process::exit(2);
}
