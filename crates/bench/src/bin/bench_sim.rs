//! Writes `BENCH_sim.json`: a machine-readable snapshot of simulator
//! hot-path performance — calendar-queue vs reference-heap event
//! scheduling cost, the whole-spine events/sec rate through the public
//! `Simulator` API, the event-slot size, plus the wall-clock (and
//! events/sec) of representative end-to-end figure points. Run from
//! the repo root:
//!
//! ```text
//! cargo run --release --bin bench_sim
//! ```
//!
//! The report is written to `BENCH_sim.json` in the current directory
//! (override the path with a positional argument). `--quick` shrinks
//! the round counts and skips the end-to-end points — used by the CI
//! bench-regression smoke step, which parses the JSON and fails on
//! `allocs_per_packet > 0` or a large `dataplane_ns_per_op` regression.
//!
//! The binary installs the counting global allocator, so
//! `allocs_per_packet` is measured, not asserted: the steady-state
//! packet path of the switch data plane must not allocate at all.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use netlock_bench::report::Json;
use netlock_bench::{
    allocation_count, fig08, fig09, flash_crowd, CountingAlloc, Runner, TimeScale,
};
use netlock_proto::{
    ClientAddr, LockId, LockMode, LockRequest, NetLockMsg, Priority, ReleaseRequest, TenantId,
    TxnId,
};
use netlock_server::LockTable;
use netlock_sim::{
    Context, EventQueue, LinkConfig, Node, NodeId, Packet, SimDuration, SimTime, Simulator,
    Topology,
};
use netlock_switch::analysis::layout::TofinoBudget;
use netlock_switch::control::{apply_allocation, knapsack_allocate, LockStats};
use netlock_switch::shared_queue::SharedQueueLayout;
use netlock_switch::txn::netlock::fcfs_enqueue_program;
use netlock_switch::txn::LoweredTxn;
use netlock_switch::{ActionBuf, DataPlane};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Deterministic xorshift so both queue implementations replay the
/// same event schedule.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Untimed ops run before each churn measurement starts.
const WARMUP_ROUNDS: usize = 50_000;

/// Steady-depth churn through the calendar queue; returns ns/op.
fn churn_calendar(depth: usize, rounds: usize, max_delay: u64) -> f64 {
    let mut q = EventQueue::new();
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut seq = 0u64;
    let mut now = SimTime::ZERO;
    for _ in 0..depth {
        q.push(now + SimDuration(xorshift(&mut rng) % max_delay), seq, seq);
        seq += 1;
    }
    let mut acc = 0u64;
    // Untimed warmup churn: settle the queue's self-tuning, caches and
    // CPU frequency before the clock starts (shallow depths are a few
    // ms of work — without this the first measured point eats the ramp).
    for _ in 0..WARMUP_ROUNDS {
        let (at, _, item) = q.pop().expect("steady depth");
        now = at;
        acc = acc.wrapping_add(item);
        q.push(now + SimDuration(xorshift(&mut rng) % max_delay), seq, seq);
        seq += 1;
    }
    let t = Instant::now();
    for _ in 0..rounds {
        let (at, _, item) = q.pop().expect("steady depth");
        now = at;
        acc = acc.wrapping_add(item);
        q.push(now + SimDuration(xorshift(&mut rng) % max_delay), seq, seq);
        seq += 1;
    }
    std::hint::black_box(acc);
    t.elapsed().as_nanos() as f64 / rounds as f64
}

/// The same churn through the `BinaryHeap` the simulator used before;
/// returns ns/op.
fn churn_heap(depth: usize, rounds: usize, max_delay: u64) -> f64 {
    let mut q: BinaryHeap<Reverse<(SimTime, u64, u64)>> = BinaryHeap::new();
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut seq = 0u64;
    let mut now = SimTime::ZERO;
    for _ in 0..depth {
        q.push(Reverse((
            now + SimDuration(xorshift(&mut rng) % max_delay),
            seq,
            seq,
        )));
        seq += 1;
    }
    let mut acc = 0u64;
    // Untimed warmup, as in `churn_calendar`.
    for _ in 0..WARMUP_ROUNDS {
        let Reverse((at, _, item)) = q.pop().expect("steady depth");
        now = at;
        acc = acc.wrapping_add(item);
        q.push(Reverse((
            now + SimDuration(xorshift(&mut rng) % max_delay),
            seq,
            seq,
        )));
        seq += 1;
    }
    let t = Instant::now();
    for _ in 0..rounds {
        let Reverse((at, _, item)) = q.pop().expect("steady depth");
        now = at;
        acc = acc.wrapping_add(item);
        q.push(Reverse((
            now + SimDuration(xorshift(&mut rng) % max_delay),
            seq,
            seq,
        )));
        seq += 1;
    }
    std::hint::black_box(acc);
    t.elapsed().as_nanos() as f64 / rounds as f64
}

/// The pre-calendar-queue hot path: a heap of boxed dispatch closures
/// (what `Simulator` stored before this rework — one heap allocation
/// plus one indirect call per event); returns ns/op.
fn churn_heap_boxed(depth: usize, rounds: usize, max_delay: u64) -> f64 {
    struct Ev {
        at: SimTime,
        seq: u64,
        run: Box<dyn FnOnce(&mut u64)>,
    }
    impl PartialEq for Ev {
        fn eq(&self, other: &Self) -> bool {
            (self.at, self.seq) == (other.at, other.seq)
        }
    }
    impl Eq for Ev {}
    impl PartialOrd for Ev {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Ev {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.at, self.seq).cmp(&(other.at, other.seq))
        }
    }
    let mut q: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut seq = 0u64;
    let mut now = SimTime::ZERO;
    let push = |q: &mut BinaryHeap<Reverse<Ev>>, now: SimTime, rng: &mut u64, seq: &mut u64| {
        let item = *seq;
        q.push(Reverse(Ev {
            at: now + SimDuration(xorshift(rng) % max_delay),
            seq: *seq,
            run: Box::new(move |acc: &mut u64| *acc = acc.wrapping_add(item)),
        }));
        *seq += 1;
    };
    for _ in 0..depth {
        push(&mut q, now, &mut rng, &mut seq);
    }
    let mut acc = 0u64;
    // Untimed warmup, as in `churn_calendar`.
    for _ in 0..WARMUP_ROUNDS {
        let Reverse(ev) = q.pop().expect("steady depth");
        now = ev.at;
        (ev.run)(&mut acc);
        push(&mut q, now, &mut rng, &mut seq);
    }
    let t = Instant::now();
    for _ in 0..rounds {
        let Reverse(ev) = q.pop().expect("steady depth");
        now = ev.at;
        (ev.run)(&mut acc);
        push(&mut q, now, &mut rng, &mut seq);
    }
    std::hint::black_box(acc);
    t.elapsed().as_nanos() as f64 / rounds as f64
}

/// One queue comparison at a given steady depth and delay range.
///
/// `old_over_new` compares the calendar queue against the *inline
/// heap* — the strongest of the two predecessors — so ≥ 1.0 means the
/// tuned calendar wins outright (the boxed-closure heap the simulator
/// originally used is also reported, as `heap_boxed_ns_per_op`).
fn queue_point(depth: usize, max_delay: u64, rounds: usize) -> Json {
    // Warm up, then take the better of two runs per implementation to
    // damp scheduler noise on shared machines.
    let cal =
        churn_calendar(depth, rounds, max_delay).min(churn_calendar(depth, rounds, max_delay));
    let heap = churn_heap(depth, rounds, max_delay).min(churn_heap(depth, rounds, max_delay));
    let boxed =
        churn_heap_boxed(depth, rounds, max_delay).min(churn_heap_boxed(depth, rounds, max_delay));
    Json::obj([
        ("depth", Json::Int(depth as u64)),
        ("max_delay_ns", Json::Int(max_delay)),
        ("rounds", Json::Int(rounds as u64)),
        ("calendar_ns_per_op", Json::Num(cal)),
        ("heap_inline_ns_per_op", Json::Num(heap)),
        ("heap_boxed_ns_per_op", Json::Num(boxed)),
        ("old_over_new", Json::Num(heap / cal)),
    ])
}

/// Ping-pong hop node for the whole-spine events/sec microbench: each
/// receipt at TTL `p > 0` forwards `p - 1` to the peer, and every 16th
/// hop also arms a timer, so the run exercises packet dispatch, timer
/// dispatch, and topology resolution together.
struct HopNode {
    peer: NodeId,
}

impl Node<u64> for HopNode {
    fn on_packet(&mut self, pkt: Packet<u64>, ctx: &mut Context<'_, u64>) {
        if pkt.payload > 0 {
            ctx.send(self.peer, pkt.payload - 1);
            if pkt.payload.is_multiple_of(16) {
                ctx.set_timer(SimDuration(500), pkt.payload);
            }
        }
    }

    fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_, u64>) {}
}

/// End-to-end spine rate through the *public* `Simulator` API: pop,
/// clock advance, dense-topology lookup, node dispatch, push. All
/// `messages` ping-pong flights traverse equal-delay links, so every
/// generation lands on one instant — the same-timestamp burst shape
/// the fused drain exists for. Returns events per wall-clock second.
fn sim_events_point(messages: u64, hops: u64) -> f64 {
    let link = LinkConfig::with_delay(SimDuration(1_000));
    let mut topo = Topology::new(link);
    topo.set_default(link);
    let mut sim: Simulator<u64> = Simulator::new(topo, 7);
    let a = sim.add_node(Box::new(HopNode { peer: NodeId(1) }));
    let b = sim.add_node(Box::new(HopNode { peer: NodeId(0) }));
    for i in 0..messages {
        if i % 2 == 0 {
            sim.inject(a, b, hops);
        } else {
            sim.inject(b, a, hops);
        }
    }
    let t = Instant::now();
    sim.run_until(SimTime(u64::MAX));
    let elapsed = t.elapsed().as_secs_f64();
    let events = sim.stats().events_fired;
    std::hint::black_box(&sim);
    events as f64 / elapsed.max(1e-12)
}

/// Partitioned-spine rate: `pairs` independent ping-pong pairs, one
/// logical process each, advanced through conservative lookahead
/// windows by `workers` threads. Intra-pair hops take 1 µs; cross-LP
/// links are 20 µs, so each window covers ~20 hop generations and the
/// window-protocol overhead (per-LP peek, bound exchange, barrier when
/// parallel) amortizes over `pairs × flights × 20` events. With
/// `workers == None` the same scenario runs unpartitioned on the fused
/// serial loop — the like-for-like reference the 0.95× gate compares
/// the 1-worker windowed loop against (same node count, same queue
/// depths, measured back-to-back; the 2-node `sim_events_point` is a
/// different scenario and a noisy cross-config yardstick). Returns
/// events per wall-clock second.
fn sim_parallel_events_point(pairs: usize, flights: u64, hops: u64, workers: Option<usize>) -> f64 {
    let link = LinkConfig::with_delay(SimDuration(1_000));
    let topo = Topology::new(link);
    let mut sim: Simulator<u64> = Simulator::new(topo, 7);
    let mut lp_of = Vec::with_capacity(pairs * 2);
    for p in 0..pairs as u32 {
        let a = sim.add_node(Box::new(HopNode {
            peer: NodeId(2 * p + 1),
        }));
        let b = sim.add_node(Box::new(HopNode {
            peer: NodeId(2 * p),
        }));
        lp_of.push(p);
        lp_of.push(p);
        for i in 0..flights {
            if i % 2 == 0 {
                sim.inject(a, b, hops);
            } else {
                sim.inject(b, a, hops);
            }
        }
    }
    let cross = LinkConfig::with_delay(SimDuration(20_000));
    for a in 0..(2 * pairs) as u32 {
        for b in 0..(2 * pairs) as u32 {
            if a / 2 != b / 2 {
                sim.topology_mut().set_link(NodeId(a), NodeId(b), cross);
            }
        }
    }
    if let Some(workers) = workers {
        sim.partition(lp_of, workers);
    }
    let t = Instant::now();
    sim.run_until(SimTime(u64::MAX - 1));
    let elapsed = t.elapsed().as_secs_f64();
    let events = sim.stats().events_fired;
    std::hint::black_box(&sim);
    events as f64 / elapsed.max(1e-12)
}

fn acquire(lock: u32, txn: u64, mode: LockMode) -> NetLockMsg {
    NetLockMsg::Acquire(LockRequest {
        lock: LockId(lock),
        mode,
        txn: TxnId(txn),
        client: ClientAddr(1),
        tenant: TenantId(0),
        priority: Priority(0),
        issued_at_ns: 0,
    })
}

fn release(lock: u32, txn: u64, mode: LockMode) -> NetLockMsg {
    NetLockMsg::Release(ReleaseRequest {
        lock: LockId(lock),
        txn: TxnId(txn),
        mode,
        client: ClientAddr(1),
        priority: Priority(0),
    })
}

/// Steady-state churn through the full switch data plane with a
/// reusable `ActionBuf`. Returns `(ns_per_packet, allocs_per_packet)`;
/// the latter must be exactly 0 — the tentpole claim of this harness.
fn dataplane_point(rounds: usize) -> (f64, f64) {
    let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::small(8, 16_384, 64));
    let stats: Vec<LockStats> = (0..64)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: 1.0,
            contention: 64,
            home_server: 0,
        })
        .collect();
    apply_allocation(&mut dp, &knapsack_allocate(&stats, 16_384 * 8));
    let mut out = ActionBuf::new();
    // Warm up: touch every lock in every mode so interning, buffers and
    // region state reach steady shape before counting.
    let mut txn = 0u64;
    for _ in 0..4 {
        for lock in 0..64u32 {
            dp.process(acquire(lock, txn, LockMode::Exclusive), 0, &mut out);
            dp.process(release(lock, txn, LockMode::Exclusive), 0, &mut out);
            txn += 1;
            dp.process(acquire(lock, txn, LockMode::Shared), 0, &mut out);
            dp.process(release(lock, txn, LockMode::Shared), 0, &mut out);
            txn += 1;
        }
    }
    let allocs_before = allocation_count();
    let t = Instant::now();
    let mut acc = 0usize;
    for i in 0..rounds {
        let lock = (i % 64) as u32;
        let mode = if i % 2 == 0 {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        };
        dp.process(acquire(lock, txn, mode), 0, &mut out);
        acc += out.len();
        dp.process(release(lock, txn, mode), 0, &mut out);
        acc += out.len();
        txn += 1;
    }
    let elapsed = t.elapsed().as_nanos() as f64;
    let allocs = allocation_count() - allocs_before;
    std::hint::black_box(acc);
    let packets = (rounds * 2) as f64;
    (elapsed / packets, allocs as f64 / packets)
}

/// Steady-state churn through the server lock table with the reusable
/// grant out-buffer. Returns ns per acquire+release pair.
fn lock_table_point(rounds: usize) -> f64 {
    let mut table = LockTable::new();
    let mut grants: Vec<LockRequest> = Vec::new();
    let mut txn = 0u64;
    let req = |lock: u32, txn: u64| LockRequest {
        lock: LockId(lock),
        mode: LockMode::Exclusive,
        txn: TxnId(txn),
        client: ClientAddr(1),
        tenant: TenantId(0),
        priority: Priority(0),
        issued_at_ns: txn,
    };
    for lock in 0..64u32 {
        table.acquire(req(lock, txn));
        grants.clear();
        table.release(LockId(lock), TxnId(txn), &mut grants);
        txn += 1;
    }
    let t = Instant::now();
    let mut acc = 0usize;
    for i in 0..rounds {
        let lock = (i % 64) as u32;
        table.acquire(req(lock, txn));
        grants.clear();
        table.release(LockId(lock), TxnId(txn), &mut grants);
        acc += grants.len();
        txn += 1;
    }
    let elapsed = t.elapsed().as_nanos() as f64;
    std::hint::black_box(acc);
    elapsed / rounds as f64
}

/// Steady-state churn through the lowered grant-path transaction
/// (`switch::txn`): the declarative FCFS admission program, statically
/// verified and compiled onto pipeline stages, replacing the
/// hand-written enqueue. Returns `(ns_per_packet, allocs_per_packet)`;
/// the latter must be exactly 0 — the lowered IR path is held to the
/// same zero-allocation bar as `dataplane_point`.
fn txn_point(rounds: usize) -> (f64, f64) {
    let cap = 8u32;
    let budget = TofinoBudget::tofino_single_direction();
    let mut lowered =
        LoweredTxn::compile(fcfs_enqueue_program(cap), &budget).expect("grant path verifies");
    let mut actions = Vec::new();
    let cycle = u64::from(cap) * 2; // fill, overflow, reset — all three verdicts
    for i in 0..cycle * 2 {
        actions.clear();
        lowered.run(&[i % 2], &mut actions);
        if (i + 1) % cycle == 0 {
            lowered.cp_reset();
        }
    }
    let allocs_before = allocation_count();
    let t = Instant::now();
    let mut acc = 0usize;
    for i in 0..rounds as u64 {
        actions.clear();
        lowered.run(&[i % 2], &mut actions);
        acc += actions.len();
        if (i + 1) % cycle == 0 {
            lowered.cp_reset();
        }
    }
    let elapsed = t.elapsed().as_nanos() as f64;
    let allocs = allocation_count() - allocs_before;
    std::hint::black_box(acc);
    (elapsed / rounds as f64, allocs as f64 / rounds as f64)
}

/// Times one end-to-end figure point and returns (label, millis).
fn timed_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let mut quick = false;
    let mut path = "BENCH_sim.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            path = arg;
        }
    }
    // Queue churn is cheap (a few ms per point) and shallow depths are
    // noise-prone, so --quick keeps the full round count there; the
    // savings come from the hot-path loops and skipped end-to-end runs.
    let queue_rounds = 200_000;
    let hot_rounds = if quick { 200_000 } else { 1_000_000 };

    eprintln!("# event-queue microbench ...");
    let queue = Json::Arr(vec![
        queue_point(64, 4_096, queue_rounds),
        queue_point(1_024, 4_096, queue_rounds),
        queue_point(8_192, 4_096, queue_rounds),
        queue_point(1_024, 40_000_000, queue_rounds),
    ]);

    eprintln!("# simulator spine events/sec ...");
    // Full-spine microbench through the public Simulator API; --quick
    // shrinks the flight length, not the burst width, so the smoke run
    // still exercises the same-timestamp drain path.
    let hop_ttl = if quick { 5_000 } else { 100_000 };
    let sim_events_per_sec = sim_events_point(64, hop_ttl).max(sim_events_point(64, hop_ttl));

    let threads_available = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);

    eprintln!("# partitioned spine events/sec ...");
    // Same spine through the conservative-window parallel path: 4
    // ping-pong LPs. `serial_ref` runs the identical scenario
    // unpartitioned on the fused serial loop; `workers_1` is the serial
    // window loop; `workers_max` uses every available core and shows
    // the actual speedup on this machine (equal to workers_1 on a
    // 1-core host). Two ratios are reported:
    //
    // - `w1_over_ref` = workers_1 / serial_ref, the ratio of the two
    //   recorded best-of-5 rates. It is self-consistent with the fields
    //   next to it by construction (the regression script cross-checks
    //   that) but mixes rates from different runs, so it wobbles with
    //   machine noise.
    // - `best_paired_ratio` = max over the 5 interleaved (ref, w1)
    //   pairs of w/r. On shared / throttled machines the absolute rates
    //   of any two runs can differ by 30% of pure noise, but noise hits
    //   both halves of an adjacent pair roughly equally — if the
    //   windowed loop were genuinely more than 5% slower per event, no
    //   pair could reach 0.95. The regression gate reads this one.
    let par_ttl = if quick { 2_000 } else { 40_000 };
    let (mut par_ref, mut par_w1, mut best_paired) = (0.0f64, 0.0f64, 0.0f64);
    for _ in 0..5 {
        let r = sim_parallel_events_point(4, 64, par_ttl, None);
        let w = sim_parallel_events_point(4, 64, par_ttl, Some(1));
        par_ref = par_ref.max(r);
        par_w1 = par_w1.max(w);
        best_paired = best_paired.max(w / r.max(1e-12));
    }
    let par_wmax = if threads_available > 1 {
        let w = threads_available as usize;
        sim_parallel_events_point(4, 64, par_ttl, Some(w)).max(sim_parallel_events_point(
            4,
            64,
            par_ttl,
            Some(w),
        ))
    } else {
        par_w1
    };

    eprintln!("# data-plane / lock-table hot path ...");
    let (dp_a, allocs_a) = dataplane_point(hot_rounds);
    let (dp_b, allocs_b) = dataplane_point(hot_rounds);
    let dataplane_ns = dp_a.min(dp_b);
    let allocs_per_packet = allocs_a.max(allocs_b);
    let lock_table_ns = lock_table_point(hot_rounds).min(lock_table_point(hot_rounds));

    eprintln!("# lowered transaction hot path ...");
    let (txn_a, txn_allocs_a) = txn_point(hot_rounds);
    let (txn_b, txn_allocs_b) = txn_point(hot_rounds);
    let txn_lowered_ns = txn_a.min(txn_b);
    let txn_allocs_per_packet = txn_allocs_a.max(txn_allocs_b);

    eprintln!("# aggregate population path ...");
    // Requests per wall-second through the batched aggregate path:
    // 100K virtual clients on one population node driving the shared-
    // queue scenario (same build `flash_crowd --speedup` compares
    // against per-client nodes). Best of two runs.
    let agg_measure = SimDuration::from_millis(if quick { 50 } else { 200 });
    let agg_rate = {
        let (s1, r1) = flash_crowd::aggregate_point(100_000, 20.0, agg_measure, 90);
        let (s2, r2) = flash_crowd::aggregate_point(100_000, 20.0, agg_measure, 90);
        (r1 as f64 / s1.max(1e-12)).max(r2 as f64 / s2.max(1e-12))
    };

    let mut fields = vec![
        ("schema", Json::str("netlock-bench-sim/7")),
        ("quick", Json::Bool(quick)),
        ("queue_churn", queue),
        ("sim_events_per_sec", Json::Num(sim_events_per_sec)),
        (
            "sim_parallel_events_per_sec",
            Json::obj([
                ("lps", Json::Int(4)),
                ("serial_ref", Json::Num(par_ref)),
                ("workers_1", Json::Num(par_w1)),
                ("w1_over_ref", Json::Num(par_w1 / par_ref.max(1e-12))),
                ("best_paired_ratio", Json::Num(best_paired)),
                ("workers_max", Json::Num(par_wmax)),
                ("max_workers", Json::Int(threads_available)),
            ]),
        ),
        (
            "packet_bytes",
            Json::Int(std::mem::size_of::<Packet<NetLockMsg>>() as u64),
        ),
        ("dataplane_ns_per_op", Json::Num(dataplane_ns)),
        ("lock_table_ns_per_op", Json::Num(lock_table_ns)),
        ("allocs_per_packet", Json::Num(allocs_per_packet)),
        ("txn_lowered_ns_per_op", Json::Num(txn_lowered_ns)),
        ("txn_allocs_per_packet", Json::Num(txn_allocs_per_packet)),
        ("agg_requests_per_sec", Json::Num(agg_rate)),
    ];

    if !quick {
        eprintln!("# end-to-end figure points (quick scale, 1 thread) ...");
        let seq = Runner::with_threads(1);
        let scale = TimeScale::quick();
        let t = Instant::now();
        let fig09_stats = fig09::run_switch_stats(fig09::Workload::Shared, scale);
        let fig09_elapsed = t.elapsed().as_secs_f64();
        std::hint::black_box(fig09_stats.lock_rps());
        let fig09_ms = fig09_elapsed * 1e3;
        let fig09_eps = fig09_stats.events_fired as f64 / fig09_elapsed.max(1e-12);
        let fig08_ms = timed_ms(|| {
            std::hint::black_box(fig08::run_8a(&seq, scale).len());
        });
        // The 100K-virtual-client flash-crowd scenario (quick scale of
        // `flash_crowd --full`), serial.
        let flash_ms = timed_ms(|| {
            std::hint::black_box(
                flash_crowd::run_series(&flash_crowd::FlashCrowdSpec::quick(), 1).len(),
            );
        });
        // Parallel end-to-end point: the 2-rack fig09 cluster advanced
        // by every available core (serial windows on a 1-core host).
        let workers = threads_available as usize;
        let t = Instant::now();
        let cluster_stats = fig09::run_cluster_stats(fig09::Workload::Shared, scale, 2, workers);
        let cluster_elapsed = t.elapsed().as_secs_f64();
        let cluster_events = cluster_stats
            .first()
            .map(|s| s.events_fired)
            .unwrap_or_default();
        std::hint::black_box(&cluster_stats);
        fields.push((
            "end_to_end_ms",
            Json::obj([
                ("fig09_switch_shared", Json::Num(fig09_ms)),
                ("fig08a_sweep", Json::Num(fig08_ms)),
                ("fig09_cluster2_shared", Json::Num(cluster_elapsed * 1e3)),
                ("fig_flash_crowd_100k", Json::Num(flash_ms)),
            ]),
        ));
        fields.push((
            "events_per_sec",
            Json::obj([
                ("fig09_switch_shared", Json::Num(fig09_eps)),
                (
                    "fig09_cluster2_shared",
                    Json::Num(cluster_events as f64 / cluster_elapsed.max(1e-12)),
                ),
            ]),
        ));
    }
    fields.push(("threads_available", Json::Int(threads_available)));

    let report = Json::obj(fields);
    std::fs::write(&path, report.render()).expect("write report");
    eprintln!("# wrote {path}");
}
