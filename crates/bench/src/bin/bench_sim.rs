//! Writes `BENCH_sim.json`: a machine-readable snapshot of simulator
//! hot-path performance — calendar-queue vs reference-heap event
//! scheduling cost, plus the wall-clock of representative end-to-end
//! figure points. Run from the repo root:
//!
//! ```text
//! cargo run --release --bin bench_sim
//! ```
//!
//! The report is written to `BENCH_sim.json` in the current directory
//! (override the path with a single positional argument).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use netlock_bench::report::Json;
use netlock_bench::{fig08, fig09, Runner, TimeScale};
use netlock_sim::{EventQueue, SimDuration, SimTime};

/// Deterministic xorshift so both queue implementations replay the
/// same event schedule.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Steady-depth churn through the calendar queue; returns ns/op.
fn churn_calendar(depth: usize, rounds: usize, max_delay: u64) -> f64 {
    let mut q = EventQueue::new();
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut seq = 0u64;
    let mut now = SimTime::ZERO;
    for _ in 0..depth {
        q.push(now + SimDuration(xorshift(&mut rng) % max_delay), seq, seq);
        seq += 1;
    }
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..rounds {
        let (at, _, item) = q.pop().expect("steady depth");
        now = at;
        acc = acc.wrapping_add(item);
        q.push(now + SimDuration(xorshift(&mut rng) % max_delay), seq, seq);
        seq += 1;
    }
    std::hint::black_box(acc);
    t.elapsed().as_nanos() as f64 / rounds as f64
}

/// The same churn through the `BinaryHeap` the simulator used before;
/// returns ns/op.
fn churn_heap(depth: usize, rounds: usize, max_delay: u64) -> f64 {
    let mut q: BinaryHeap<Reverse<(SimTime, u64, u64)>> = BinaryHeap::new();
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut seq = 0u64;
    let mut now = SimTime::ZERO;
    for _ in 0..depth {
        q.push(Reverse((
            now + SimDuration(xorshift(&mut rng) % max_delay),
            seq,
            seq,
        )));
        seq += 1;
    }
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..rounds {
        let Reverse((at, _, item)) = q.pop().expect("steady depth");
        now = at;
        acc = acc.wrapping_add(item);
        q.push(Reverse((
            now + SimDuration(xorshift(&mut rng) % max_delay),
            seq,
            seq,
        )));
        seq += 1;
    }
    std::hint::black_box(acc);
    t.elapsed().as_nanos() as f64 / rounds as f64
}

/// The pre-calendar-queue hot path: a heap of boxed dispatch closures
/// (what `Simulator` stored before this rework — one heap allocation
/// plus one indirect call per event); returns ns/op.
fn churn_heap_boxed(depth: usize, rounds: usize, max_delay: u64) -> f64 {
    struct Ev {
        at: SimTime,
        seq: u64,
        run: Box<dyn FnOnce(&mut u64)>,
    }
    impl PartialEq for Ev {
        fn eq(&self, other: &Self) -> bool {
            (self.at, self.seq) == (other.at, other.seq)
        }
    }
    impl Eq for Ev {}
    impl PartialOrd for Ev {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Ev {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.at, self.seq).cmp(&(other.at, other.seq))
        }
    }
    let mut q: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut seq = 0u64;
    let mut now = SimTime::ZERO;
    let push = |q: &mut BinaryHeap<Reverse<Ev>>, now: SimTime, rng: &mut u64, seq: &mut u64| {
        let item = *seq;
        q.push(Reverse(Ev {
            at: now + SimDuration(xorshift(rng) % max_delay),
            seq: *seq,
            run: Box::new(move |acc: &mut u64| *acc = acc.wrapping_add(item)),
        }));
        *seq += 1;
    };
    for _ in 0..depth {
        push(&mut q, now, &mut rng, &mut seq);
    }
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..rounds {
        let Reverse(ev) = q.pop().expect("steady depth");
        now = ev.at;
        (ev.run)(&mut acc);
        push(&mut q, now, &mut rng, &mut seq);
    }
    std::hint::black_box(acc);
    t.elapsed().as_nanos() as f64 / rounds as f64
}

/// One queue comparison at a given steady depth and delay range.
fn queue_point(depth: usize, max_delay: u64) -> Json {
    const ROUNDS: usize = 200_000;
    // Warm up, then take the better of two runs per implementation to
    // damp scheduler noise on shared machines.
    let cal =
        churn_calendar(depth, ROUNDS, max_delay).min(churn_calendar(depth, ROUNDS, max_delay));
    let heap = churn_heap(depth, ROUNDS, max_delay).min(churn_heap(depth, ROUNDS, max_delay));
    let boxed =
        churn_heap_boxed(depth, ROUNDS, max_delay).min(churn_heap_boxed(depth, ROUNDS, max_delay));
    Json::obj([
        ("depth", Json::Int(depth as u64)),
        ("max_delay_ns", Json::Int(max_delay)),
        ("rounds", Json::Int(ROUNDS as u64)),
        ("calendar_ns_per_op", Json::Num(cal)),
        ("heap_inline_ns_per_op", Json::Num(heap)),
        ("heap_boxed_ns_per_op", Json::Num(boxed)),
        ("old_over_new", Json::Num(boxed / cal)),
    ])
}

/// Times one end-to-end figure point and returns (label, millis).
fn timed_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let seq = Runner::with_threads(1);
    let scale = TimeScale::quick();

    eprintln!("# event-queue microbench ...");
    let queue = Json::Arr(vec![
        queue_point(64, 4_096),
        queue_point(1_024, 4_096),
        queue_point(8_192, 4_096),
        queue_point(1_024, 40_000_000),
    ]);

    eprintln!("# end-to-end figure points (quick scale, 1 thread) ...");
    let fig09_ms = timed_ms(|| {
        std::hint::black_box(fig09::run_switch(fig09::Workload::Shared, scale));
    });
    let fig08_ms = timed_ms(|| {
        std::hint::black_box(fig08::run_8a(&seq, scale).len());
    });

    let report = Json::obj([
        ("schema", Json::str("netlock-bench-sim/1")),
        ("queue_churn", queue),
        (
            "end_to_end_ms",
            Json::obj([
                ("fig09_switch_shared", Json::Num(fig09_ms)),
                ("fig08a_sweep", Json::Num(fig08_ms)),
            ]),
        ),
        (
            "threads_available",
            Json::Int(
                std::thread::available_parallelism()
                    .map(|n| n.get() as u64)
                    .unwrap_or(1),
            ),
        ),
    ]);
    std::fs::write(&path, report.render()).expect("write report");
    eprintln!("# wrote {path}");
}
