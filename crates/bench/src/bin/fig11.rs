//! Regenerates Figure 11 (TPC-C comparison, 6 clients + 6 lock servers).
use netlock_bench::{BinArgs, Fig};

fn main() {
    let args = BinArgs::parse();
    let scale = args.scale(Fig::F11);
    println!(
        "# scaling: {} warmup, {} measure (simulated time)",
        scale.warmup, scale.measure
    );
    netlock_bench::fig10::run_and_print(&args.runner(), 6, 6, scale);
}
