//! Regenerates Figure 11 (TPC-C comparison, 6 clients + 6 lock servers).
use netlock_bench::TimeScale;

fn main() {
    let scale = TimeScale::full();
    println!(
        "# scaling: {} warmup, {} measure (simulated time)",
        scale.warmup, scale.measure
    );
    netlock_bench::fig10::run_and_print(6, 6, scale);
}
