//! Regenerates Figure 15 (switch failure and reactivation).
fn main() {
    println!("# scaling: 6 s simulated timeline (paper: 20 s), 200 ms sampling");
    netlock_bench::fig15::run_and_print();
}
