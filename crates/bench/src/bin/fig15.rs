//! Regenerates Figure 15 (switch failure and reactivation).
use netlock_bench::BinArgs;

fn main() {
    let args = BinArgs::parse();
    if args.quick {
        println!("# scaling: 1.5 s simulated timeline (paper: 20 s), 50 ms sampling");
    } else {
        println!("# scaling: 6 s simulated timeline (paper: 20 s), 200 ms sampling");
    }
    netlock_bench::fig15::run_and_print(args.quick);
}
