//! Runs the chaos suite: seeded fault schedules over the micro and
//! TPC-C racks with the lock-safety oracle attached. Prints the
//! scenario report as TSV and exits nonzero if any schedule produced
//! an oracle violation.
//!
//! Runs under the counting global allocator, like `bench_sim` and the
//! alloc-tracking integration test, so chaos runs exercise the exact
//! allocator configuration the zero-allocation claims are made under.
use netlock_bench::{BinArgs, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let args = BinArgs::parse();
    let seeds = if args.quick { 4 } else { 16 };
    println!(
        "# scaling: {seeds} seeds per workload ({} schedules total)",
        seeds * 2
    );
    let runs = netlock_bench::chaos::run_suite(seeds);
    print!("{}", netlock_bench::chaos::render(&runs));
    if runs.iter().any(|r| !r.is_clean()) {
        std::process::exit(1);
    }
}
