//! Custom experiment runner: sweep any NetLock TPC-C configuration
//! without writing code.
//!
//! ```text
//! cargo run --release -p netlock-bench --bin custom -- \
//!     clients=10 servers=2 workers=16 slots=100000 contention=low \
//!     warmup_ms=10 measure_ms=50 seed=42 [alloc=random] [think_us=5]
//! ```
//!
//! Prints a single TSV row (plus header) with throughput, latency and
//! the switch's share of grants — the same metrics the paper reports.

use netlock_bench::{build_netlock_tpcc, TpccRackSpec};
use netlock_core::prelude::*;
use netlock_sim::SimDuration;

fn usage() -> ! {
    eprintln!(
        "usage: custom [key=value ...]\n\
         keys:\n\
           clients=N       client machines (default 10)\n\
           servers=N       lock servers (default 2)\n\
           workers=N       transaction workers per client (default 16)\n\
           slots=N         switch memory budget in queue slots (default 100000)\n\
           contention=low|high   TPC-C setting (default low)\n\
           alloc=knapsack|random allocation policy (default knapsack)\n\
           think_us=N      override every txn's think time (default: per-type)\n\
           cold=N          cold locks offered to the allocator (default 0)\n\
           warmup_ms=N     warmup window, simulated ms (default 10)\n\
           measure_ms=N    measurement window, simulated ms (default 50)\n\
           seed=N          simulation seed (default 42)"
    );
    std::process::exit(2);
}

fn main() {
    let mut spec = TpccRackSpec::default();
    let mut warmup = SimDuration::from_millis(10);
    let mut measure = SimDuration::from_millis(50);
    for arg in std::env::args().skip(1) {
        let Some((key, value)) = arg.split_once('=') else {
            eprintln!("bad argument: {arg}");
            usage();
        };
        let parse = |v: &str| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad number in {arg}");
                usage()
            })
        };
        match key {
            "clients" => spec.clients = parse(value) as usize,
            "servers" => spec.lock_servers = parse(value) as usize,
            "workers" => spec.workers_per_client = parse(value) as usize,
            "slots" => spec.switch_slots = parse(value) as u32,
            "contention" => match value {
                "low" => spec.high_contention = false,
                "high" => spec.high_contention = true,
                _ => usage(),
            },
            "alloc" => match value {
                "knapsack" => spec.random_alloc = false,
                "random" => spec.random_alloc = true,
                _ => usage(),
            },
            "think_us" => {
                spec.think_override = Some(SimDuration::from_micros(parse(value)));
            }
            "cold" => spec.cold_locks_in_stats = parse(value) as u32,
            "warmup_ms" => warmup = SimDuration::from_millis(parse(value)),
            "measure_ms" => measure = SimDuration::from_millis(parse(value)),
            "seed" => spec.seed = parse(value),
            "help" | "-h" | "--help" => usage(),
            _ => {
                eprintln!("unknown key: {key}");
                usage();
            }
        }
    }
    if spec.clients == 0 || spec.lock_servers == 0 || spec.workers_per_client == 0 {
        eprintln!("clients, servers and workers must be positive");
        usage();
    }

    eprintln!(
        "# {} clients × {} workers, {} servers, {} slots, {} contention, {} allocation",
        spec.clients,
        spec.workers_per_client,
        spec.lock_servers,
        spec.switch_slots,
        if spec.high_contention { "high" } else { "low" },
        if spec.random_alloc {
            "random"
        } else {
            "knapsack"
        },
    );
    let mut rack = build_netlock_tpcc(&spec);
    let stats = warmup_and_measure(&mut rack, warmup, measure);
    let lock_lat = stats.lock_latency_summary();
    let txn_lat = stats.txn_latency_summary();
    println!(
        "lock_mrps\ttxn_ktps\tswitch_share\tlock_p50_us\tlock_p99_us\ttxn_avg_us\ttxn_p99_us\tretries"
    );
    println!(
        "{:.3}\t{:.1}\t{:.3}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{}",
        stats.lock_rps() / 1e6,
        stats.tps() / 1e3,
        stats.switch_share(),
        lock_lat.p50_us(),
        lock_lat.p99_us(),
        txn_lat.avg_us(),
        txn_lat.p99_us(),
        stats.retries,
    );
}
