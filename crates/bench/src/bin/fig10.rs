//! Regenerates Figure 10 (TPC-C comparison, 10 clients + 2 lock servers).
use netlock_bench::TimeScale;

fn main() {
    let scale = TimeScale::full();
    println!(
        "# scaling: {} warmup, {} measure (simulated time)",
        scale.warmup, scale.measure
    );
    netlock_bench::fig10::run_and_print(10, 2, scale);
}
