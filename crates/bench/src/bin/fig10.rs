//! Regenerates Figure 10 (TPC-C comparison, 10 clients + 2 lock servers).
use netlock_bench::{BinArgs, Fig};

fn main() {
    let args = BinArgs::parse();
    let scale = args.scale(Fig::F10);
    println!(
        "# scaling: {} warmup, {} measure (simulated time)",
        scale.warmup, scale.measure
    );
    netlock_bench::fig10::run_and_print(&args.runner(), 10, 2, scale);
}
