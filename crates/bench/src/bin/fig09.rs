//! Regenerates Figure 9 (lock switch vs lock server, 1-8 cores).
//!
//! With `--sim-workers N` it instead emits the cluster variant: two
//! fig09 lock-switch racks in one partitioned simulator, advanced by
//! `N` worker threads under conservative lookahead windows. The cluster
//! TSV is byte-identical for any `N`.
use netlock_bench::{BinArgs, Fig};

fn main() {
    let args = BinArgs::parse();
    let scale = args.scale(Fig::F09);
    println!(
        "# scaling: {} warmup, {} measure per point (simulated time)",
        scale.warmup, scale.measure
    );
    match args.sim_workers {
        Some(workers) => netlock_bench::fig09::run_and_print_cluster(scale, 2, workers),
        None => netlock_bench::fig09::run_and_print(&args.runner(), scale),
    }
}
