//! Regenerates Figure 9 (lock switch vs lock server, 1-8 cores).
use netlock_bench::{BinArgs, Fig};

fn main() {
    let args = BinArgs::parse();
    let scale = args.scale(Fig::F09);
    println!(
        "# scaling: {} warmup, {} measure per point (simulated time)",
        scale.warmup, scale.measure
    );
    netlock_bench::fig09::run_and_print(&args.runner(), scale);
}
