//! Regenerates Figure 9 (lock switch vs lock server, 1-8 cores).
use netlock_bench::TimeScale;
use netlock_sim::SimDuration;

fn main() {
    let scale = TimeScale {
        warmup: SimDuration::from_millis(1),
        measure: SimDuration::from_millis(3),
    };
    println!(
        "# scaling: {} warmup, {} measure per point (simulated time)",
        scale.warmup, scale.measure
    );
    netlock_bench::fig09::run_and_print(scale);
}
