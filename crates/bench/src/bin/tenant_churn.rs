//! Emits the tenant-churn scenario TSV (see
//! `netlock_bench::tenant_churn`): a rotating hot-key burst churning
//! through the tenants of a 100K+ virtual-client aggregate population.
//!
//! `--full` (default) reproduces the committed
//! `results/tenant_churn.tsv`; `--quick` runs a smaller scale with the
//! same TSV shape.

use netlock_bench::tenant_churn::{self, TenantChurnSpec};

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            other => {
                eprintln!("error: unknown argument {other:?}");
                eprintln!("usage: tenant_churn [--quick | --full]");
                std::process::exit(2);
            }
        }
    }
    let spec = if quick {
        TenantChurnSpec::quick()
    } else {
        TenantChurnSpec::full()
    };
    tenant_churn::run_and_print(&spec);
}
