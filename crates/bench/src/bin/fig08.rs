//! Regenerates Figure 8 (switch microbenchmark). See DESIGN.md §3.
use netlock_bench::{BinArgs, Fig};

fn main() {
    let args = BinArgs::parse();
    let scale = args.scale(Fig::F08);
    println!(
        "# scaling: {} warmup, {} measure per point (simulated time)",
        scale.warmup, scale.measure
    );
    netlock_bench::fig08::run_and_print(&args.runner(), scale);
}
