//! Regenerates Figure 8 (switch microbenchmark). See DESIGN.md §3.
use netlock_bench::TimeScale;
use netlock_sim::SimDuration;

fn main() {
    let scale = TimeScale {
        warmup: SimDuration::from_millis(1),
        measure: SimDuration::from_millis(5),
    };
    println!(
        "# scaling: {} warmup, {} measure per point (simulated time)",
        scale.warmup, scale.measure
    );
    netlock_bench::fig08::run_and_print(scale);
}
