//! Regenerates Figure 12 (policy support: differentiation + isolation).
fn main() {
    println!("# scaling: 2 s simulated series, 100 ms sampling; think time 500 us");
    netlock_bench::fig12::run_and_print();
}
