//! Regenerates Figure 12 (policy support: differentiation + isolation).
use netlock_bench::BinArgs;

fn main() {
    let args = BinArgs::parse();
    if args.quick {
        println!("# scaling: 0.4 s simulated series, 20 ms sampling; think time 500 us");
    } else {
        println!("# scaling: 2 s simulated series, 100 ms sampling; think time 500 us");
    }
    netlock_bench::fig12::run_and_print(&args.runner(), args.quick);
}
