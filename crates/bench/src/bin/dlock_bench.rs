//! Real-threads delegation sweep: writes `results/dlock.tsv`-shaped
//! rows to stdout and a machine-readable `BENCH_dlock.json`. Run from
//! the repo root:
//!
//! ```text
//! cargo run --release --bin dlock_bench > results/dlock.tsv
//! ```
//!
//! Sweeps the three `netlock-dlock` backends (mutex baseline, flat
//! combining, CCSynch delegation) over threads × contention (hot-key
//! Zipf vs uniform, shared vs exclusive) × critical-section length,
//! all driving the actual `server::LockTable`. Also measures the
//! sequential table's ns-per-message — the calibration input the
//! figure binaries' `--calibrated` flag feeds into the simulation's
//! server model in place of the paper's 222 ns constant.
//!
//! `--quick` shrinks op counts and the thread ladder (capped at the
//! host's cores, so CI smoke runs finish fast and the ≥4-core speedup
//! gate in `scripts/check_bench_regression.sh` only arms where a
//! speedup is physically possible). `--threads N` caps the ladder; a
//! positional argument overrides the JSON path.

use netlock_bench::dlock::{
    run_point, seq_lock_table_ns_per_message, thread_counts, Backend, Dist, Mix, PointResult,
    PointSpec, HOT_LOCKS, HOT_THETA, UNIFORM_LOCKS,
};
use netlock_bench::report::Json;

/// Total measured ops per point, split across the point's threads.
const FULL_OPS: usize = 120_000;
const QUICK_OPS: usize = 24_000;

fn main() {
    let mut quick = false;
    let mut cap: Option<usize> = None;
    let mut path = "BENCH_dlock.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--threads" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => cap = Some(n),
                    _ => {
                        eprintln!("error: --threads needs a positive integer, got {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            other => path = other.to_string(),
        }
    }

    let threads_available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Full runs sweep the whole ladder to 8 so committed artifacts have
    // one shape everywhere (threads_available in the JSON tells readers
    // how many were real cores); quick runs cap at the host so CI smoke
    // stays fast and oversubscribed points don't dominate.
    let max_threads = cap.unwrap_or(if quick {
        threads_available.clamp(2, 4)
    } else {
        8
    });
    let ladder = thread_counts(max_threads);
    let dists = [Dist::Hot, Dist::Uniform];
    let mixes = [Mix::Exclusive, Mix::Mixed];
    let spins: &[u32] = if quick { &[0] } else { &[0, 100] };
    let total_ops = if quick { QUICK_OPS } else { FULL_OPS };

    eprintln!("# sequential lock-table cost ...");
    let seq_rounds = if quick { 100_000 } else { 500_000 };
    let seq_ns =
        seq_lock_table_ns_per_message(seq_rounds).min(seq_lock_table_ns_per_message(seq_rounds));

    println!("# dlock_bench: delegation backends over server::LockTable");
    println!(
        "# hot = zipf(theta={HOT_THETA}) over {HOT_LOCKS} locks; uniform = {UNIFORM_LOCKS} locks"
    );
    println!("# latency = run() round-trip (delegation cost), ns");
    println!(
        "# threads_available = {threads_available}; seq_lock_table_ns_per_message = {seq_ns:.1}"
    );
    println!("{}", PointResult::tsv_header());

    let mut results: Vec<PointResult> = Vec::new();
    for backend in Backend::ALL {
        eprintln!("# sweeping {} ...", backend.label());
        for &threads in &ladder {
            for dist in dists {
                for mix in mixes {
                    for &cs_spins in spins {
                        let ops_per_thread = (total_ops / threads).max(1_000);
                        let r = run_point(PointSpec {
                            backend,
                            threads,
                            dist,
                            mix,
                            cs_spins,
                            ops_per_thread,
                            warmup_per_thread: ops_per_thread / 5,
                        });
                        println!("{}", r.tsv());
                        results.push(r);
                    }
                }
            }
        }
    }

    // The headline contended point: most threads, hot keys, all
    // exclusive, no padding — where delegation either pays or doesn't.
    let contended_threads = *ladder.last().expect("ladder non-empty");
    let contended = |backend: Backend| -> f64 {
        results
            .iter()
            .find(|r| {
                r.spec.backend == backend
                    && r.spec.threads == contended_threads
                    && r.spec.dist == Dist::Hot
                    && r.spec.mix == Mix::Exclusive
                    && r.spec.cs_spins == 0
            })
            .map(|r| r.mops())
            .unwrap_or(0.0)
    };
    let (m, fc, cc) = (
        contended(Backend::Mutex),
        contended(Backend::FlatCombining),
        contended(Backend::CcSynch),
    );

    let backends = Backend::ALL
        .iter()
        .map(|&b| {
            Json::obj([
                ("backend", Json::str(b.label())),
                (
                    "points",
                    Json::Arr(
                        results
                            .iter()
                            .filter(|r| r.spec.backend == b)
                            .map(|r| r.json())
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();

    let report = Json::obj([
        ("schema", Json::str("netlock-bench-dlock/1")),
        ("quick", Json::Bool(quick)),
        ("threads_available", Json::Int(threads_available as u64)),
        ("seq_lock_table_ns_per_op", Json::Num(seq_ns)),
        ("calibrated_service_ns", Json::Num(seq_ns)),
        ("backends", Json::Arr(backends)),
        (
            "contended",
            Json::obj([
                ("threads", Json::Int(contended_threads as u64)),
                ("dist", Json::str("hot")),
                ("mix", Json::str("excl")),
                ("mutex_mops", Json::Num(m)),
                ("flat_combining_mops", Json::Num(fc)),
                ("ccsynch_mops", Json::Num(cc)),
                ("fc_over_mutex", Json::Num(fc / m.max(1e-12))),
                ("cc_over_mutex", Json::Num(cc / m.max(1e-12))),
            ]),
        ),
    ]);
    std::fs::write(&path, report.render()).expect("write report");
    eprintln!("# wrote {path}");
}
