//! Runs every figure harness in sequence (the full reproduction).
use netlock_bench::TimeScale;
use netlock_sim::SimDuration;

fn main() {
    let t0 = std::time::Instant::now();
    let micro = TimeScale {
        warmup: SimDuration::from_millis(1),
        measure: SimDuration::from_millis(5),
    };
    let fig9 = TimeScale {
        warmup: SimDuration::from_millis(1),
        measure: SimDuration::from_millis(3),
    };
    netlock_bench::fig08::run_and_print(micro);
    println!();
    netlock_bench::fig09::run_and_print(fig9);
    println!();
    netlock_bench::fig10::run_and_print(10, 2, TimeScale::full());
    println!();
    netlock_bench::fig10::run_and_print(6, 6, TimeScale::full());
    println!();
    netlock_bench::fig12::run_and_print();
    println!();
    netlock_bench::fig13::run_and_print(TimeScale::full());
    println!();
    let fig14 = TimeScale {
        warmup: SimDuration::from_millis(5),
        measure: SimDuration::from_millis(25),
    };
    netlock_bench::fig14::run_and_print(fig14);
    println!();
    netlock_bench::fig15::run_and_print();
    eprintln!(
        "# all figures regenerated in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
