//! Runs every figure harness in sequence (the full reproduction).
//!
//! Each figure's sweep fans out over the shared worker pool
//! (`--threads N` / `NETLOCK_THREADS`, default: available
//! parallelism); stdout is byte-identical for any thread count.
//! Per-figure wall-clock goes to stderr so a regression is
//! attributable to a figure.
use netlock_bench::{BinArgs, Fig, Runner};

fn timed(name: &str, f: impl FnOnce()) {
    let t = std::time::Instant::now();
    f();
    eprintln!("# {name}: {:.1}s", t.elapsed().as_secs_f64());
}

fn main() {
    let args = BinArgs::parse();
    let runner = args.runner();
    eprintln!("# sweep runner: {} thread(s)", runner.threads());
    let t0 = std::time::Instant::now();
    run_all(&args, &runner);
    eprintln!(
        "# all figures regenerated in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}

fn run_all(args: &BinArgs, runner: &Runner) {
    timed("fig08", || {
        netlock_bench::fig08::run_and_print(runner, args.scale(Fig::F08));
    });
    println!();
    timed("fig09", || {
        netlock_bench::fig09::run_and_print(runner, args.scale(Fig::F09));
    });
    println!();
    timed("fig10", || {
        netlock_bench::fig10::run_and_print(runner, 10, 2, args.scale(Fig::F10));
    });
    println!();
    timed("fig11", || {
        netlock_bench::fig10::run_and_print(runner, 6, 6, args.scale(Fig::F11));
    });
    println!();
    timed("fig12", || {
        netlock_bench::fig12::run_and_print(runner, args.quick);
    });
    println!();
    timed("fig13", || {
        netlock_bench::fig13::run_and_print(runner, args.scale(Fig::F13));
    });
    println!();
    timed("fig14", || {
        netlock_bench::fig14::run_and_print(runner, args.scale(Fig::F14));
    });
    println!();
    timed("fig15", || {
        netlock_bench::fig15::run_and_print(args.quick);
    });
}
