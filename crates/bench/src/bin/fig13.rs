//! Regenerates Figure 13 (knapsack vs random memory allocation).
use netlock_bench::{BinArgs, Fig};

fn main() {
    let args = BinArgs::parse();
    let scale = args.scale(Fig::F13);
    println!(
        "# scaling: {} warmup, {} measure (simulated time)",
        scale.warmup, scale.measure
    );
    netlock_bench::fig13::run_and_print(&args.runner(), scale);
}
