//! Regenerates Figure 13 (knapsack vs random memory allocation).
use netlock_bench::TimeScale;

fn main() {
    let scale = TimeScale::full();
    println!(
        "# scaling: {} warmup, {} measure (simulated time)",
        scale.warmup, scale.measure
    );
    netlock_bench::fig13::run_and_print(scale);
}
