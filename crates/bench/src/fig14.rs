//! Figure 14: impact of switch memory size.
//!
//! (a) throughput vs memory slots for think times {0, 5, 10, 100 µs}:
//! the think time bounds a slot's turnover rate, so longer transactions
//! need more memory for the same throughput.
//!
//! (b) throughput vs memory slots for knapsack vs random allocation:
//! the knapsack allocator reaches peak throughput with a fraction of
//! the memory the random allocator wastes.

use netlock_core::prelude::*;
use netlock_sim::SimDuration;

use crate::common::{build_netlock_tpcc, mrps, TimeScale, TpccRackSpec};

/// One sweep point.
#[derive(Clone, Copy, Debug)]
pub struct MemoryPoint {
    /// Switch memory (queue slots).
    pub slots: u32,
    /// Lock throughput (MRPS).
    pub lock_mrps: f64,
}

/// Panel (a): memory sweep at a fixed think time.
pub fn run_think_sweep(
    think: SimDuration,
    slots_points: &[u32],
    scale: TimeScale,
) -> Vec<MemoryPoint> {
    slots_points
        .iter()
        .map(|&slots| {
            let mut rack = build_netlock_tpcc(&TpccRackSpec {
                clients: 10,
                lock_servers: 2,
                switch_slots: slots,
                think_override: Some(think),
                ..Default::default()
            });
            let stats = warmup_and_measure(&mut rack, scale.warmup, scale.measure);
            MemoryPoint {
                slots,
                lock_mrps: mrps(stats.lock_rps()),
            }
        })
        .collect()
}

/// Panel (b): memory sweep for one allocation policy (cold tail in the
/// allocator input, as in Figure 13).
pub fn run_alloc_sweep(random: bool, slots_points: &[u32], scale: TimeScale) -> Vec<MemoryPoint> {
    slots_points
        .iter()
        .map(|&slots| {
            let mut rack = build_netlock_tpcc(&TpccRackSpec {
                clients: 10,
                lock_servers: 2,
                switch_slots: slots,
                random_alloc: random,
                cold_locks_in_stats: 20_000,
                ..Default::default()
            });
            let stats = warmup_and_measure(&mut rack, scale.warmup, scale.measure);
            MemoryPoint {
                slots,
                lock_mrps: mrps(stats.lock_rps()),
            }
        })
        .collect()
}

/// Print both panels as TSV.
pub fn run_and_print(scale: TimeScale) {
    println!("# Figure 14(a): throughput vs switch memory, by think time");
    println!("think_us\tslots\tthroughput_mrps");
    let slots_a = [100u32, 250, 500, 1_000, 2_000, 4_000];
    for &think_us in &[0u64, 5, 10, 100] {
        for p in run_think_sweep(SimDuration::from_micros(think_us), &slots_a, scale) {
            println!("{}\t{}\t{:.3}", think_us, p.slots, p.lock_mrps);
        }
    }
    println!();
    println!("# Figure 14(b): throughput vs switch memory, by allocation policy");
    println!("policy\tslots\tthroughput_mrps");
    let slots_b = [1_000u32, 2_500, 5_000, 10_000, 20_000, 40_000];
    for (label, random) in [("knapsack", false), ("random", true)] {
        for p in run_alloc_sweep(random, &slots_b, scale) {
            println!("{}\t{}\t{:.3}", label, p.slots, p.lock_mrps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TimeScale {
        TimeScale {
            warmup: SimDuration::from_millis(3),
            measure: SimDuration::from_millis(12),
        }
    }

    #[test]
    fn more_memory_helps_until_saturation() {
        let pts = run_think_sweep(SimDuration::ZERO, &[100, 2_000], tiny());
        assert!(
            pts[1].lock_mrps > pts[0].lock_mrps,
            "2000 slots {} should beat 100 slots {}",
            pts[1].lock_mrps,
            pts[0].lock_mrps
        );
    }

    #[test]
    fn long_think_time_needs_more_memory() {
        // At a fixed small memory, 100 µs transactions achieve much
        // lower throughput than 0 µs ones (slot turnover bound).
        let fast = run_think_sweep(SimDuration::ZERO, &[1_000], tiny());
        let slow = run_think_sweep(SimDuration::from_micros(100), &[1_000], tiny());
        assert!(
            fast[0].lock_mrps > 1.25 * slow[0].lock_mrps,
            "think 0 {} vs think 100us {}",
            fast[0].lock_mrps,
            slow[0].lock_mrps
        );
    }

    #[test]
    fn knapsack_reaches_peak_with_less_memory() {
        let knap = run_alloc_sweep(false, &[2_500], tiny());
        let rand = run_alloc_sweep(true, &[2_500], tiny());
        assert!(
            knap[0].lock_mrps > rand[0].lock_mrps,
            "knapsack {} vs random {} at 2500 slots",
            knap[0].lock_mrps,
            rand[0].lock_mrps
        );
    }
}
