//! Figure 14: impact of switch memory size.
//!
//! (a) throughput vs memory slots for think times {0, 5, 10, 100 µs}:
//! the think time bounds a slot's turnover rate, so longer transactions
//! need more memory for the same throughput.
//!
//! (b) throughput vs memory slots for knapsack vs random allocation:
//! the knapsack allocator reaches peak throughput with a fraction of
//! the memory the random allocator wastes.

use std::fmt::Write;

use netlock_core::prelude::*;
use netlock_sim::SimDuration;

use crate::common::{build_netlock_tpcc, mrps, TimeScale, TpccRackSpec};
use crate::runner::Runner;

/// One sweep point.
#[derive(Clone, Copy, Debug)]
pub struct MemoryPoint {
    /// Switch memory (queue slots).
    pub slots: u32,
    /// Lock throughput (MRPS).
    pub lock_mrps: f64,
}

fn think_point(think: SimDuration, slots: u32, scale: TimeScale) -> MemoryPoint {
    let mut rack = build_netlock_tpcc(&TpccRackSpec {
        clients: 10,
        lock_servers: 2,
        switch_slots: slots,
        think_override: Some(think),
        ..Default::default()
    });
    let stats = warmup_and_measure(&mut rack, scale.warmup, scale.measure);
    MemoryPoint {
        slots,
        lock_mrps: mrps(stats.lock_rps()),
    }
}

fn alloc_point(random: bool, slots: u32, scale: TimeScale) -> MemoryPoint {
    let mut rack = build_netlock_tpcc(&TpccRackSpec {
        clients: 10,
        lock_servers: 2,
        switch_slots: slots,
        random_alloc: random,
        cold_locks_in_stats: 20_000,
        ..Default::default()
    });
    let stats = warmup_and_measure(&mut rack, scale.warmup, scale.measure);
    MemoryPoint {
        slots,
        lock_mrps: mrps(stats.lock_rps()),
    }
}

/// Panel (a): memory sweep at a fixed think time.
pub fn run_think_sweep(
    runner: &Runner,
    think: SimDuration,
    slots_points: &[u32],
    scale: TimeScale,
) -> Vec<MemoryPoint> {
    runner.map(slots_points.to_vec(), |slots| {
        think_point(think, slots, scale)
    })
}

/// Panel (b): memory sweep for one allocation policy (cold tail in the
/// allocator input, as in Figure 13).
pub fn run_alloc_sweep(
    runner: &Runner,
    random: bool,
    slots_points: &[u32],
    scale: TimeScale,
) -> Vec<MemoryPoint> {
    runner.map(slots_points.to_vec(), |slots| {
        alloc_point(random, slots, scale)
    })
}

/// Both panels as TSV. Panel (a)'s 4×6 grid and panel (b)'s 2×6 grid
/// each fan out as one flat batch, so no worker idles at a row
/// boundary.
pub fn render(runner: &Runner, scale: TimeScale) -> String {
    let slots_a = [100u32, 250, 500, 1_000, 2_000, 4_000];
    let thinks = [0u64, 5, 10, 100];
    let grid_a: Vec<(u64, u32)> = thinks
        .iter()
        .flat_map(|&t| slots_a.iter().map(move |&s| (t, s)))
        .collect();
    let rows_a = runner.map(grid_a.clone(), |(think_us, slots)| {
        think_point(SimDuration::from_micros(think_us), slots, scale)
    });

    let slots_b = [1_000u32, 2_500, 5_000, 10_000, 20_000, 40_000];
    let policies = [("knapsack", false), ("random", true)];
    let grid_b: Vec<(&'static str, bool, u32)> = policies
        .iter()
        .flat_map(|&(label, random)| slots_b.iter().map(move |&s| (label, random, s)))
        .collect();
    let rows_b = runner.map(grid_b.clone(), |(_, random, slots)| {
        alloc_point(random, slots, scale)
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Figure 14(a): throughput vs switch memory, by think time"
    );
    let _ = writeln!(out, "think_us\tslots\tthroughput_mrps");
    for (&(think_us, _), p) in grid_a.iter().zip(&rows_a) {
        let _ = writeln!(out, "{}\t{}\t{:.3}", think_us, p.slots, p.lock_mrps);
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "# Figure 14(b): throughput vs switch memory, by allocation policy"
    );
    let _ = writeln!(out, "policy\tslots\tthroughput_mrps");
    for (&(label, _, _), p) in grid_b.iter().zip(&rows_b) {
        let _ = writeln!(out, "{}\t{}\t{:.3}", label, p.slots, p.lock_mrps);
    }
    out
}

/// Print both panels as TSV.
pub fn run_and_print(runner: &Runner, scale: TimeScale) {
    print!("{}", render(runner, scale));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TimeScale {
        TimeScale {
            warmup: SimDuration::from_millis(3),
            measure: SimDuration::from_millis(12),
        }
    }

    fn seq() -> Runner {
        Runner::with_threads(1)
    }

    #[test]
    fn more_memory_helps_until_saturation() {
        let pts = run_think_sweep(&seq(), SimDuration::ZERO, &[100, 2_000], tiny());
        assert!(
            pts[1].lock_mrps > pts[0].lock_mrps,
            "2000 slots {} should beat 100 slots {}",
            pts[1].lock_mrps,
            pts[0].lock_mrps
        );
    }

    #[test]
    fn long_think_time_needs_more_memory() {
        // At a fixed small memory, 100 µs transactions achieve much
        // lower throughput than 0 µs ones (slot turnover bound).
        let fast = run_think_sweep(&seq(), SimDuration::ZERO, &[1_000], tiny());
        let slow = run_think_sweep(&seq(), SimDuration::from_micros(100), &[1_000], tiny());
        assert!(
            fast[0].lock_mrps > 1.25 * slow[0].lock_mrps,
            "think 0 {} vs think 100us {}",
            fast[0].lock_mrps,
            slow[0].lock_mrps
        );
    }

    #[test]
    fn knapsack_reaches_peak_with_less_memory() {
        let knap = run_alloc_sweep(&seq(), false, &[2_500], tiny());
        let rand = run_alloc_sweep(&seq(), true, &[2_500], tiny());
        assert!(
            knap[0].lock_mrps > rand[0].lock_mrps,
            "knapsack {} vs random {} at 2500 slots",
            knap[0].lock_mrps,
            rand[0].lock_mrps
        );
    }
}
