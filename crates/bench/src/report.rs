//! Tiny JSON serializer for the perf-trajectory reports
//! (`BENCH_*.json`).
//!
//! The workspace builds offline (no serde); benchmark reports need
//! exactly one thing — turning a small tree of numbers and strings
//! into stable, diffable JSON text. Object keys keep insertion order
//! so successive reports diff cleanly.

use std::fmt::Write;

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    /// A string.
    Str(String),
    /// A finite number, printed with up to 3 decimal places (trailing
    /// zeros trimmed) — benchmark numbers, not arbitrary floats.
    Num(f64),
    /// An integer.
    Int(u64),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<Json>),
    /// An object in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Pretty-printed JSON text (2-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if (n.fract() == 0.0) && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let s = format!("{n:.3}");
                    let s = s.trim_end_matches('0').trim_end_matches('.');
                    out.push_str(s);
                }
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    let _ = write!(out, "\"{k}\": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_report() {
        let j = Json::obj([
            ("bench", Json::str("event_queue")),
            ("ns_per_op", Json::Num(12.345678)),
            ("events", Json::Int(1_000_000)),
            ("ok", Json::Bool(true)),
            (
                "series",
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(3.25)]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = j.render();
        assert!(text.contains("\"bench\": \"event_queue\""));
        assert!(text.contains("\"ns_per_op\": 12.346"));
        assert!(text.contains("\"events\": 1000000"));
        assert!(text.contains("\"series\": [\n"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::str("a\"b\\c\nd");
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(Json::Num(3.0).render(), "3\n");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
    }
}
