//! Figure 9: one lock switch vs one lock server with 1–8 cores.
//!
//! Ten client machines generate three microbenchmark workloads —
//! shared locks, exclusive locks without contention, and exclusive
//! locks with contention (5000 locks) — against (i) the lock switch
//! and (ii) a lock server configured with 1..=8 cores. As in the
//! paper, the switch is *not* saturated by ten clients; the server
//! saturates at its core count × per-core rate.

use std::fmt::Write;

use netlock_baselines::server_only::build_server_only;
use netlock_core::prelude::*;
use netlock_proto::{LockId, LockMode};

use crate::common::{mrps, TimeScale};
use crate::runner::{Job, Runner};

/// Client machines.
pub const CLIENTS: usize = 10;
/// Lock-set size for the contended workload.
pub const CONTENDED_LOCKS: u32 = 5_000;

/// The three workloads of the figure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Workload {
    /// All-shared requests.
    Shared,
    /// Exclusive, disjoint per-client lock ranges.
    ExclusiveNoContention,
    /// Exclusive, 5000 locks shared by every client.
    ExclusiveContention,
}

impl Workload {
    /// All three, in figure order.
    pub fn all() -> [Workload; 3] {
        [
            Workload::Shared,
            Workload::ExclusiveNoContention,
            Workload::ExclusiveContention,
        ]
    }

    /// Label used in the TSV output.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Shared => "shared",
            Workload::ExclusiveNoContention => "exclusive_no_contention",
            Workload::ExclusiveContention => "exclusive_contention",
        }
    }
}

fn add_clients(rack: &mut Rack, workload: Workload, total_locks: u32) {
    let per_client = total_locks / CLIENTS as u32;
    for c in 0..CLIENTS {
        let (locks, mode): (Vec<LockId>, LockMode) = match workload {
            Workload::Shared => ((0..total_locks).map(LockId).collect(), LockMode::Shared),
            Workload::ExclusiveNoContention => (
                (c as u32 * per_client..(c as u32 + 1) * per_client)
                    .map(LockId)
                    .collect(),
                LockMode::Exclusive,
            ),
            Workload::ExclusiveContention => (
                (0..CONTENDED_LOCKS).map(LockId).collect(),
                LockMode::Exclusive,
            ),
        };
        rack.add_micro_client(MicroClientConfig {
            rate_rps: 18e6,
            locks,
            mode,
            ..Default::default()
        });
    }
}

/// Throughput (MRPS) of the lock switch for one workload.
pub fn run_switch(workload: Workload, scale: TimeScale) -> f64 {
    mrps(run_switch_stats(workload, scale).lock_rps())
}

/// Full measurement stats for the lock-switch run — same rack, seed,
/// and windows as [`run_switch`]. Used by `bench_sim` to pair the
/// wall-clock of a figure point with its simulator event count
/// (`RunStats::events_fired`) for an end-to-end events/sec rate.
pub fn run_switch_stats(workload: Workload, scale: TimeScale) -> RunStats {
    let total_locks = 6_000u32;
    let mut rack = Rack::build(RackConfig {
        seed: 9,
        lock_servers: 1,
        ..Default::default()
    });
    let lock_count = match workload {
        Workload::ExclusiveContention => CONTENDED_LOCKS,
        _ => total_locks,
    };
    let stats: Vec<LockStats> = (0..lock_count)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: 1.0,
            contention: (100_000 / lock_count).min(4_096),
            home_server: 0,
        })
        .collect();
    rack.program(&knapsack_allocate(&stats, 100_000));
    add_clients(&mut rack, workload, total_locks);
    warmup_and_measure(&mut rack, scale.warmup, scale.measure)
}

/// Throughput (MRPS) of a lock server with `cores` cores.
pub fn run_server(workload: Workload, cores: usize, scale: TimeScale) -> f64 {
    let total_locks = 6_000u32;
    let lock_count = match workload {
        Workload::ExclusiveContention => CONTENDED_LOCKS,
        _ => total_locks,
    };
    let locks: Vec<LockId> = (0..lock_count).map(LockId).collect();
    let mut rack = build_server_only(9, 1, cores, &locks);
    add_clients(&mut rack, workload, total_locks);
    let stats = warmup_and_measure(&mut rack, scale.warmup, scale.measure);
    mrps(stats.lock_rps())
}

/// Per-rack cluster stats for the parallel variant of the figure:
/// `racks` copies of the fig09 lock-switch rack inside one simulator,
/// partitioned one logical process per rack and advanced by `workers`
/// threads under conservative lookahead windows. The returned per-rack
/// stats — and therefore [`render_cluster`]'s TSV — are byte-identical
/// for any `workers`; only the wall-clock changes.
pub fn run_cluster_stats(
    workload: Workload,
    scale: TimeScale,
    racks: usize,
    workers: usize,
) -> Vec<RunStats> {
    let total_locks = 6_000u32;
    let cfg = RackConfig {
        seed: 9,
        lock_servers: 1,
        ..Default::default()
    };
    // Inter-rack RTTs dwarf in-rack ones; 10 µs one-way is the
    // lookahead the partition synchronizes on.
    let cross = netlock_sim::LinkConfig::with_delay(SimDuration::from_micros(10));
    let mut cluster = RackCluster::build(&cfg, racks, cross);
    let lock_count = match workload {
        Workload::ExclusiveContention => CONTENDED_LOCKS,
        _ => total_locks,
    };
    let stats: Vec<LockStats> = (0..lock_count)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: 1.0,
            contention: (100_000 / lock_count).min(4_096),
            home_server: 0,
        })
        .collect();
    let alloc = knapsack_allocate(&stats, 100_000);
    let per_client = total_locks / CLIENTS as u32;
    for r in 0..racks {
        cluster.program(r, &alloc);
        for c in 0..CLIENTS {
            let (locks, mode): (Vec<LockId>, LockMode) = match workload {
                Workload::Shared => ((0..total_locks).map(LockId).collect(), LockMode::Shared),
                Workload::ExclusiveNoContention => (
                    (c as u32 * per_client..(c as u32 + 1) * per_client)
                        .map(LockId)
                        .collect(),
                    LockMode::Exclusive,
                ),
                Workload::ExclusiveContention => (
                    (0..CONTENDED_LOCKS).map(LockId).collect(),
                    LockMode::Exclusive,
                ),
            };
            cluster.add_micro_client(
                r,
                MicroClientConfig {
                    rate_rps: 18e6,
                    locks,
                    mode,
                    ..Default::default()
                },
            );
        }
    }
    cluster.partition(workers);
    cluster.warmup_and_measure(scale.warmup, scale.measure)
}

/// The cluster variant as TSV: one row per (workload, rack). The rows
/// do not mention the worker count on purpose — the output is the same
/// file for any `workers`.
pub fn render_cluster(scale: TimeScale, racks: usize, workers: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Figure 9 cluster variant: {racks} lock-switch racks, one LP each, 10 clients/rack"
    );
    let _ = writeln!(out, "rack\tworkload\tthroughput_mrps");
    for wl in Workload::all() {
        let per_rack = run_cluster_stats(wl, scale, racks, workers);
        for (r, stats) in per_rack.iter().enumerate() {
            let _ = writeln!(out, "{}\t{}\t{:.2}", r, wl.label(), mrps(stats.lock_rps()));
        }
    }
    out
}

/// Print the cluster variant as TSV.
pub fn run_and_print_cluster(scale: TimeScale, racks: usize, workers: usize) {
    print!("{}", render_cluster(scale, racks, workers));
}

/// The figure as TSV: 3 switch rows then 24 server rows, computed as
/// one batch of 27 independent jobs.
pub fn render(runner: &Runner, scale: TimeScale) -> String {
    let mut jobs: Vec<Job<'_, f64>> = Vec::new();
    for wl in Workload::all() {
        jobs.push(Box::new(move || run_switch(wl, scale)));
    }
    for wl in Workload::all() {
        for cores in 1..=8 {
            jobs.push(Box::new(move || run_server(wl, cores, scale)));
        }
    }
    let results = runner.run(jobs);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Figure 9: lock switch vs lock server (1-8 cores), 10 clients"
    );
    let _ = writeln!(out, "system\tcores\tworkload\tthroughput_mrps");
    let mut rows = results.into_iter();
    for wl in Workload::all() {
        let t = rows.next().expect("switch row");
        let _ = writeln!(out, "switch\t-\t{}\t{:.2}", wl.label(), t);
    }
    for wl in Workload::all() {
        for cores in 1..=8 {
            let t = rows.next().expect("server row");
            let _ = writeln!(out, "server\t{}\t{}\t{:.3}", cores, wl.label(), t);
        }
    }
    out
}

/// Print the figure as TSV.
pub fn run_and_print(runner: &Runner, scale: TimeScale) {
    print!("{}", render(runner, scale));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TimeScale {
        TimeScale {
            warmup: SimDuration::from_millis(1),
            measure: SimDuration::from_millis(3),
        }
    }

    #[test]
    fn switch_beats_server_by_a_wide_margin() {
        let sw = run_switch(Workload::Shared, tiny());
        let srv = run_server(Workload::Shared, 8, tiny());
        assert!(
            sw > 5.0 * srv,
            "paper reports ~7×: switch {sw} MRPS vs server {srv} MRPS"
        );
    }

    #[test]
    fn cluster_stats_match_across_sim_worker_counts() {
        let one = run_cluster_stats(Workload::Shared, tiny(), 2, 1);
        let two = run_cluster_stats(Workload::Shared, tiny(), 2, 2);
        assert_eq!(one.len(), 2);
        for (a, b) in one.iter().zip(&two) {
            assert!(a.grants > 0);
            assert_eq!(a.grants, b.grants);
            assert_eq!(a.issued, b.issued);
            assert_eq!(
                a.lock_latency_summary().p99_ns,
                b.lock_latency_summary().p99_ns
            );
        }
    }

    #[test]
    fn server_scales_with_cores() {
        let one = run_server(Workload::ExclusiveNoContention, 1, tiny());
        let eight = run_server(Workload::ExclusiveNoContention, 8, tiny());
        assert!(
            eight > 4.0 * one,
            "8 cores should be ≫ 1 core: {one} vs {eight}"
        );
        // 8 cores ≈ 18 MRPS in the paper's testbed.
        assert!((10.0..25.0).contains(&eight), "8-core server: {eight} MRPS");
    }
}
