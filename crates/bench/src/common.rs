//! Shared builders and formatting for the figure harnesses.
//!
//! Every experiment prints tab-separated rows plus `#`-prefixed context
//! lines (scaling knobs, units) so outputs are self-describing and easy
//! to diff against EXPERIMENTS.md.

use netlock_core::prelude::*;
use netlock_sim::SimDuration;
use netlock_workloads::{hot_lock_stats, TpccConfig, TpccSource};

/// Time windows for one measurement.
#[derive(Clone, Copy, Debug)]
pub struct TimeScale {
    /// Warmup window (excluded from stats).
    pub warmup: SimDuration,
    /// Measurement window.
    pub measure: SimDuration,
}

impl TimeScale {
    /// Full-figure scale used by the `figXX` binaries.
    pub fn full() -> TimeScale {
        TimeScale {
            warmup: SimDuration::from_millis(10),
            measure: SimDuration::from_millis(50),
        }
    }

    /// Reduced scale for Criterion benches and integration tests.
    pub fn quick() -> TimeScale {
        TimeScale {
            warmup: SimDuration::from_millis(2),
            measure: SimDuration::from_millis(10),
        }
    }
}

/// Specification of a NetLock TPC-C rack (Figures 10–15).
#[derive(Clone, Debug)]
pub struct TpccRackSpec {
    /// Simulation seed.
    pub seed: u64,
    /// Client machines.
    pub clients: usize,
    /// Lock servers.
    pub lock_servers: usize,
    /// Transaction workers per client.
    pub workers_per_client: usize,
    /// One warehouse per client (true) vs ten (false).
    pub high_contention: bool,
    /// Switch memory given to the allocator, in queue slots.
    pub switch_slots: u32,
    /// Use the strawman random allocator instead of knapsack.
    pub random_alloc: bool,
    /// Extra cold locks offered to the allocator (exposes the random
    /// allocator's weakness — Fig. 13/14).
    pub cold_locks_in_stats: u32,
    /// Override every transaction's think time.
    pub think_override: Option<SimDuration>,
    /// Client retry timeout.
    pub retry_timeout: SimDuration,
    /// Lock-server CPU time per message. The paper's 18 MRPS/server is
    /// the microbenchmark peak (trivial uniform requests); its TPC-C
    /// experiments show each server sustaining only ~1.5 M lock
    /// requests/s (Fig. 13a's server bars), i.e. ≈1.5 µs of CPU per
    /// message once real table management, skew and batching effects
    /// bite. TPC-C specs default to that calibration.
    pub server_service: SimDuration,
}

impl Default for TpccRackSpec {
    fn default() -> Self {
        TpccRackSpec {
            seed: 42,
            clients: 10,
            lock_servers: 2,
            workers_per_client: 16,
            high_contention: false,
            switch_slots: 100_000,
            random_alloc: false,
            cold_locks_in_stats: 0,
            think_override: None,
            retry_timeout: SimDuration::from_millis(20),
            server_service: SimDuration::from_nanos(1_500),
        }
    }
}

impl TpccRackSpec {
    /// The TPC-C generator configuration this spec implies.
    pub fn tpcc_config(&self) -> TpccConfig {
        let mut cfg = if self.high_contention {
            TpccConfig::high_contention(self.clients as u32)
        } else {
            TpccConfig::low_contention(self.clients as u32)
        };
        cfg.think_override = self.think_override;
        cfg
    }

    /// Total workers across clients (the contention bound for hot locks).
    pub fn total_workers(&self) -> u32 {
        (self.clients * self.workers_per_client) as u32
    }
}

/// Build the allocator input for a spec: the analytic hot set plus an
/// optional tail of cold customer rows.
pub fn tpcc_alloc_stats(spec: &TpccRackSpec) -> Vec<LockStats> {
    let cfg = spec.tpcc_config();
    let mut stats = hot_lock_stats(&cfg, spec.total_workers(), spec.lock_servers);
    for i in 0..spec.cold_locks_in_stats {
        let w = i % cfg.warehouses;
        let d = (i / cfg.warehouses) % 10;
        let c = i % 3_000;
        stats.push(LockStats {
            lock: netlock_workloads::tpcc::ids::customer(w, d, c),
            rate: 1e-6,
            contention: 4,
            home_server: (i as usize) % spec.lock_servers,
        });
    }
    stats
}

/// The allocation a spec implies (knapsack or the random strawman),
/// bounded by the paper-default layout's 10 000 queue regions.
pub fn tpcc_allocation(spec: &TpccRackSpec) -> Allocation {
    let stats = tpcc_alloc_stats(spec);
    if spec.random_alloc {
        let mut a = random_allocate(&stats, spec.switch_slots, spec.seed ^ 0xA110C);
        while a.in_switch.len() > 10_000 {
            let (lock, _slots, home) = a.in_switch.pop().expect("non-empty");
            a.in_server.push((lock, home));
        }
        a
    } else {
        netlock_switch::control::knapsack_allocate_bounded(&stats, spec.switch_slots, 10_000)
    }
}

/// Build and program a NetLock rack per spec, with TPC-C clients.
pub fn build_netlock_tpcc(spec: &TpccRackSpec) -> Rack {
    let mut rack = Rack::build(RackConfig {
        seed: spec.seed,
        lock_servers: spec.lock_servers,
        server: netlock_server::ServerConfig {
            service: spec.server_service,
            ..Default::default()
        },
        ..Default::default()
    });
    let alloc = tpcc_allocation(spec);
    rack.program(&alloc);
    let cfg = spec.tpcc_config();
    for _ in 0..spec.clients {
        rack.add_txn_client(
            TxnClientConfig {
                workers: spec.workers_per_client,
                retry_timeout: spec.retry_timeout,
                ..Default::default()
            },
            Box::new(TpccSource::new(cfg.clone())),
        );
    }
    rack
}

/// TPC-C sources for the baseline builders (one per client).
pub fn tpcc_sources(spec: &TpccRackSpec) -> Vec<TpccSource> {
    let cfg = spec.tpcc_config();
    (0..spec.clients)
        .map(|_| TpccSource::new(cfg.clone()))
        .collect()
}

/// Format requests/second as MRPS.
pub fn mrps(rps: f64) -> f64 {
    rps / 1e6
}

/// Format transactions/second as MTPS.
pub fn mtps(tps: f64) -> f64 {
    tps / 1e6
}

/// Milliseconds from nanoseconds.
pub fn ms(ns: f64) -> f64 {
    ns / 1e6
}

/// Microseconds from nanoseconds.
pub fn us(ns: f64) -> f64 {
    ns / 1e3
}

/// One comparison row in the fig10/fig11 output.
#[derive(Clone, Debug)]
pub struct SystemResult {
    /// System name (DSLR, DrTM, NetChain, NetLock).
    pub system: &'static str,
    /// Contention setting label.
    pub contention: &'static str,
    /// Measured stats.
    pub stats: RunStats,
}

impl SystemResult {
    /// The TSV row for the comparison tables.
    pub fn tsv(&self) -> String {
        let lat = self.stats.txn_latency_summary();
        format!(
            "{}\t{}\t{:.3}\t{:.4}\t{:.3}\t{:.3}",
            self.system,
            self.contention,
            mrps(self.stats.lock_rps()),
            mtps(self.stats.tps()),
            ms(lat.avg_ns),
            ms(lat.p99_ns as f64),
        )
    }

    /// The header matching [`SystemResult::tsv`].
    pub fn tsv_header() -> &'static str {
        "system\tcontention\tlock_tput_mrps\ttxn_tput_mtps\tavg_lat_ms\tp99_lat_ms"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_contention_settings() {
        let mut spec = TpccRackSpec {
            clients: 10,
            ..Default::default()
        };
        assert_eq!(spec.tpcc_config().warehouses, 100);
        spec.high_contention = true;
        assert_eq!(spec.tpcc_config().warehouses, 10);
        assert_eq!(spec.total_workers(), 160);
    }

    #[test]
    fn alloc_stats_include_cold_tail() {
        let spec = TpccRackSpec {
            clients: 2,
            cold_locks_in_stats: 50,
            ..Default::default()
        };
        let stats = tpcc_alloc_stats(&spec);
        // 20 warehouses × (11 hot rows + 10 stock buckets) + 50 cold.
        assert_eq!(stats.len(), 20 * 21 + 50);
    }

    #[test]
    fn netlock_tpcc_rack_runs() {
        let spec = TpccRackSpec {
            clients: 2,
            workers_per_client: 4,
            ..Default::default()
        };
        let mut rack = build_netlock_tpcc(&spec);
        let stats = warmup_and_measure(
            &mut rack,
            SimDuration::from_millis(2),
            SimDuration::from_millis(5),
        );
        assert!(stats.txns > 100, "txns = {}", stats.txns);
        assert!(stats.grants > stats.txns, "multiple locks per txn");
        assert!(
            stats.switch_share() > 0.3,
            "hot locks should be switch-resident: {}",
            stats.switch_share()
        );
    }
}
