//! Beyond-paper scenario: a diurnal flash crowd from up to a million
//! virtual clients.
//!
//! The paper's evaluation stops at tens of client machines; the
//! north-star workload is "heavy traffic from millions of users". This
//! module drives that regime through aggregate population nodes
//! (`netlock_core::population`): each rack hosts one node that models
//! hundreds of thousands of virtual clients as per-tenant arrival
//! processes and ships their requests as batched events. The scenario
//! layers a slow sinusoidal diurnal swing over the base Poisson rate
//! and a flash-crowd episode — tenant 0's users piling onto one hot
//! lock at 6× their base rate for a third of the run — and reports a
//! per-rack time series TSV.
//!
//! The TSV is byte-identical for any `--sim-workers` count: racks map
//! one-to-one onto logical processes and the population nodes derive
//! all randomness from their own per-node streams.

use std::fmt::Write;
use std::time::Instant;

use netlock_core::prelude::*;
use netlock_proto::{LockId, LockMode, TenantId};
use netlock_sim::LinkConfig;

/// Locks per rack; the flash crowd piles onto the last one.
pub const LOCKS_PER_RACK: u32 = 64;

/// The hot key the crowd converges on.
pub const HOT_LOCK: LockId = LockId(LOCKS_PER_RACK - 1);

/// Scenario shape: population size, arrival model, and time windows.
#[derive(Clone, Debug)]
pub struct FlashCrowdSpec {
    /// Simulation seed.
    pub seed: u64,
    /// Racks (one aggregate population node each, one LP each).
    pub racks: usize,
    /// Virtual clients across the whole cluster, split evenly.
    pub virtual_clients: u64,
    /// Base offered load per virtual client, requests/second.
    pub rate_rps_per_client: f64,
    /// Tenants per rack; tenant 0 hosts the flash crowd.
    pub tenants_per_rack: usize,
    /// Warmup window (excluded from the series).
    pub warmup: SimDuration,
    /// Series bucket width.
    pub interval: SimDuration,
    /// Series length in buckets.
    pub intervals: usize,
}

impl FlashCrowdSpec {
    /// The committed `results/flash_crowd.tsv` scale: one million
    /// virtual clients across 8 racks, 200 ms of simulated time.
    pub fn full() -> FlashCrowdSpec {
        FlashCrowdSpec {
            seed: 90,
            racks: 8,
            virtual_clients: 1_000_000,
            rate_rps_per_client: 2.0,
            tenants_per_rack: 4,
            warmup: SimDuration::from_millis(20),
            interval: SimDuration::from_millis(20),
            intervals: 10,
        }
    }

    /// Smoke-test scale: 100K virtual clients, same TSV shape.
    pub fn quick() -> FlashCrowdSpec {
        FlashCrowdSpec {
            virtual_clients: 100_000,
            racks: 4,
            warmup: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(5),
            intervals: 10,
            ..FlashCrowdSpec::full()
        }
    }

    /// Total measurement window.
    pub fn measure(&self) -> SimDuration {
        SimDuration(self.interval.as_nanos() * self.intervals as u64)
    }

    fn diurnal(&self) -> Diurnal {
        // One full cycle over the measured window: the first half rides
        // the peak, the second the trough.
        Diurnal {
            amplitude: 0.5,
            period: self.measure(),
        }
    }

    fn burst(&self) -> BurstEpisode {
        // The crowd arrives 20% into the window and stays for a third
        // of it, at 6x the base rate, half its requests on the hot key.
        BurstEpisode {
            start_ns: self.warmup.as_nanos() + self.measure().as_nanos() / 5,
            duration: SimDuration(self.measure().as_nanos() / 3),
            multiplier: 6.0,
            hot_lock: Some(HOT_LOCK),
            hot_fraction: 0.5,
        }
    }

    fn tenant(&self, t: usize) -> TenantSpec {
        let per_rack = self.virtual_clients / self.racks as u64;
        let per_tenant = per_rack / self.tenants_per_rack as u64;
        TenantSpec {
            tenant: TenantId(t as u16),
            virtual_clients: per_tenant,
            rate_rps_per_client: self.rate_rps_per_client,
            locks: (0..LOCKS_PER_RACK).map(LockId).collect(),
            mode: LockMode::Shared,
            max_outstanding: 1 << 20,
            diurnal: Some(self.diurnal()),
            bursts: if t == 0 { vec![self.burst()] } else { vec![] },
            ..Default::default()
        }
    }
}

fn rack_alloc() -> Allocation {
    let stats: Vec<LockStats> = (0..LOCKS_PER_RACK)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: 1.0,
            contention: 500,
            home_server: 0,
        })
        .collect();
    knapsack_allocate(&stats, 32_000)
}

fn rack_config(seed: u64) -> RackConfig {
    RackConfig {
        seed,
        lock_servers: 1,
        engine: EngineSpec::Fcfs(netlock_switch::shared_queue::SharedQueueLayout::small(
            2, 16_384, 64,
        )),
        ..Default::default()
    }
}

/// Build the flash-crowd cluster: `racks` racks, one Poisson-MMPP
/// population node each, programmed and ready to partition.
pub fn build_cluster(spec: &FlashCrowdSpec) -> RackCluster {
    let cross = LinkConfig::with_delay(SimDuration::from_micros(10));
    let mut cluster = RackCluster::build(&rack_config(spec.seed), spec.racks, cross);
    let alloc = rack_alloc();
    for r in 0..spec.racks {
        cluster.program(r, &alloc);
        cluster.add_population_client(
            r,
            PopulationConfig {
                poisson: true,
                tenants: (0..spec.tenants_per_rack).map(|t| spec.tenant(t)).collect(),
                ..Default::default()
            },
        );
    }
    cluster
}

/// One series bucket for one rack.
#[derive(Clone, Debug, PartialEq)]
pub struct Bucket {
    /// Bucket end, ms since simulation start.
    pub t_ms: f64,
    /// Rack index.
    pub rack: usize,
    /// Requests issued in the bucket.
    pub issued: u64,
    /// Grants received in the bucket.
    pub grants: u64,
    /// Arrivals dropped on full tenant windows.
    pub throttled: u64,
    /// Window slots reclaimed by retry timeouts.
    pub reclaimed: u64,
    /// Request-bearing events sent (batching denominator).
    pub batches: u64,
    /// Median acquire→grant latency, µs.
    pub p50_us: f64,
    /// 99th-percentile acquire→grant latency, µs.
    pub p99_us: f64,
}

/// Run the scenario partitioned across `workers` simulation threads
/// and return the per-(bucket, rack) series. The series is identical
/// for every `workers` value.
pub fn run_series(spec: &FlashCrowdSpec, workers: usize) -> Vec<Bucket> {
    let mut cluster = build_cluster(spec);
    cluster.partition(workers);
    cluster.sim.run_for(spec.warmup);
    cluster.reset_clients();
    let mut out = Vec::with_capacity(spec.intervals * spec.racks);
    for i in 0..spec.intervals {
        cluster.sim.run_for(spec.interval);
        let t_ms =
            (spec.warmup.as_nanos() + spec.interval.as_nanos() * (i as u64 + 1)) as f64 / 1e6;
        for r in 0..spec.racks {
            let &(id, _) = cluster.racks[r]
                .clients
                .first()
                .expect("one population node per rack");
            let stats = cluster
                .sim
                .read_node::<PopulationClient, _>(id, |p| p.stats());
            let lat = stats.latency_summary();
            out.push(Bucket {
                t_ms,
                rack: r,
                issued: stats.issued,
                grants: stats.grants,
                throttled: stats.throttled,
                reclaimed: stats.reclaimed,
                batches: stats.batches_sent,
                p50_us: lat.p50_ns as f64 / 1e3,
                p99_us: lat.p99_ns as f64 / 1e3,
            });
        }
        cluster.reset_clients();
    }
    out
}

/// The scenario as TSV. Deliberately omits the worker count: the file
/// is byte-identical for any `workers`.
pub fn render(spec: &FlashCrowdSpec, workers: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Flash crowd: {} virtual clients on {} racks ({} tenants/rack), \
         {:.0} rps/client base, diurnal amplitude 0.5, burst 6x on lock {} \
         (tenant 0, half its requests)",
        spec.virtual_clients,
        spec.racks,
        spec.tenants_per_rack,
        spec.rate_rps_per_client,
        HOT_LOCK.0,
    );
    let _ = writeln!(
        out,
        "t_ms\track\tissued\tgrants\tthrottled\treclaimed\tbatches\tp50_us\tp99_us"
    );
    for b in run_series(spec, workers) {
        let _ = writeln!(
            out,
            "{:.1}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.1}\t{:.1}",
            b.t_ms,
            b.rack,
            b.issued,
            b.grants,
            b.throttled,
            b.reclaimed,
            b.batches,
            b.p50_us,
            b.p99_us
        );
    }
    out
}

/// Print the scenario as TSV.
pub fn run_and_print(spec: &FlashCrowdSpec, workers: usize) {
    print!("{}", render(spec, workers));
}

/// The shared-queue scenario both `speedup_point` builds run: the
/// allocator-sized region layout, the 64-lock target set, and the
/// per-request hold (the paper's clients hold each lock for the
/// transaction span; both builds get the same hold so the comparison
/// stays apples-to-apples).
fn speedup_scenario() -> (Allocation, Vec<LockId>, SimDuration) {
    let locks: Vec<LockId> = (0..LOCKS_PER_RACK).map(LockId).collect();
    // Size regions the way the paper's allocator would for this
    // workload: shared-mode queues stay a handful of entries deep
    // (rate × hold ≪ region), so `contention` reflects the measured
    // depth, not the flash-crowd worst case.
    let stats: Vec<LockStats> = (0..LOCKS_PER_RACK)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: 1.0,
            contention: 64,
            home_server: 0,
        })
        .collect();
    (
        knapsack_allocate(&stats, 32_000),
        locks,
        SimDuration::from_micros(10),
    )
}

/// Wall-clock of the aggregate build alone: `virtual_clients` on one
/// population node, `measure` of simulated time after an untimed
/// warmup. Returns `(seconds, requests_issued)` — the
/// requests-per-wall-second rate `bench_sim` snapshots as
/// `agg_requests_per_sec`.
pub fn aggregate_point(
    virtual_clients: u64,
    rate_rps_per_client: f64,
    measure: SimDuration,
    seed: u64,
) -> (f64, u64) {
    let (alloc, locks, hold) = speedup_scenario();
    let mut agg = Rack::build(rack_config(seed));
    agg.program(&alloc);
    let pop = agg.add_population_client(PopulationConfig {
        tenants: vec![TenantSpec {
            virtual_clients,
            rate_rps_per_client,
            locks,
            mode: LockMode::Shared,
            max_outstanding: 1 << 20,
            ..Default::default()
        }],
        hold,
        ..Default::default()
    });
    // Untimed warmup: first-touch page faults and allocator growth
    // stay out of the measured window (the individual build gets the
    // same treatment).
    let warmup = SimDuration::from_millis(20);
    agg.sim.run_for(warmup);
    let issued_at_warmup = agg
        .sim
        .read_node::<PopulationClient, _>(pop, |p| p.stats().issued);
    let t = Instant::now();
    agg.sim.run_for(measure);
    let agg_secs = t.elapsed().as_secs_f64();
    let agg_requests = agg
        .sim
        .read_node::<PopulationClient, _>(pop, |p| p.stats().issued)
        - issued_at_warmup;
    (agg_secs, agg_requests)
}

/// Wall-clock cost of the two ways to model the same shared-queue load
/// on one rack: one aggregate node carrying `virtual_clients`, vs the
/// individual build — the same total offered rate spread over `nodes`
/// per-client `MicroClient` nodes (the densest build the ≤
/// `netlock_sim::MAX_NODES` topology admits; a literal one-node-per-
/// client build is impossible, which is the point of the aggregate).
/// Both runs use uniform arrivals, the same locks, the same allocation
/// and the same measurement window. Returns
/// `(aggregate_seconds, individual_seconds, requests_each)`.
pub fn speedup_point(
    virtual_clients: u64,
    rate_rps_per_client: f64,
    nodes: usize,
    measure: SimDuration,
    seed: u64,
) -> (f64, f64, u64) {
    let total_rate = virtual_clients as f64 * rate_rps_per_client;
    let (alloc, locks, hold) = speedup_scenario();
    let (agg_secs, agg_requests) =
        aggregate_point(virtual_clients, rate_rps_per_client, measure, seed);

    let mut ind = Rack::build(rack_config(seed));
    ind.program(&alloc);
    for _ in 0..nodes {
        ind.add_micro_client(MicroClientConfig {
            rate_rps: total_rate / nodes as f64,
            locks: locks.clone(),
            mode: LockMode::Shared,
            max_outstanding: 1 << 20,
            hold,
            ..Default::default()
        });
    }
    let warmup = SimDuration::from_millis(20);
    ind.sim.run_for(warmup);
    let t = Instant::now();
    ind.sim.run_for(measure);
    let ind_secs = t.elapsed().as_secs_f64();

    (agg_secs, ind_secs, agg_requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_series_shows_burst_and_byte_stable_render() {
        // Small enough to run in seconds, but with ~8 arrivals per
        // tenant-quantum so the batching demonstration below has teeth.
        let spec = FlashCrowdSpec {
            virtual_clients: 40_000,
            racks: 2,
            rate_rps_per_client: 16.0,
            ..FlashCrowdSpec::quick()
        };
        let series = run_series(&spec, 1);
        assert_eq!(series.len(), spec.intervals * spec.racks);
        // The burst window must carry visibly more load than the first
        // bucket (6x on tenant 0 = ~2.25x overall, on the diurnal peak).
        let calm: u64 = series
            .iter()
            .filter(|b| b.t_ms < 11.0)
            .map(|b| b.issued)
            .sum();
        let burst_t = (spec.burst().start_ns + spec.interval.as_nanos()) as f64 / 1e6;
        let bursty: u64 = series
            .iter()
            .filter(|b| (b.t_ms - burst_t).abs() < 0.1)
            .map(|b| b.issued)
            .sum();
        assert!(
            bursty as f64 > 1.5 * calm as f64,
            "burst bucket {bursty} vs calm bucket {calm}"
        );
        // All traffic is granted (shared mode, ample queue capacity).
        let issued: u64 = series.iter().map(|b| b.issued).sum();
        let grants: u64 = series.iter().map(|b| b.grants).sum();
        assert!(issued > 0 && grants > 0);
        // Batching: far fewer request-bearing events than requests.
        let batches: u64 = series.iter().map(|b| b.batches).sum();
        assert!(batches * 5 < issued, "batches {batches} issued {issued}");
        assert_eq!(render(&spec, 1), render(&spec, 2), "worker count leaked");
    }
}
