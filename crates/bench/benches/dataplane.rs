//! Benchmarks of the full switch data-plane state machine — the cost
//! the simulator charges per NetLock packet, and a sanity check that
//! the model itself is cheap enough to simulate line-rate traffic.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netlock_proto::{
    ClientAddr, LockId, LockMode, LockRequest, NetLockMsg, Priority, ReleaseRequest, TenantId,
    TxnId,
};
use netlock_switch::control::{apply_allocation, knapsack_allocate, LockStats};
use netlock_switch::priority::PriorityLayout;
use netlock_switch::shared_queue::SharedQueueLayout;
use netlock_switch::DataPlane;

fn acquire(lock: u32, txn: u64, mode: LockMode) -> NetLockMsg {
    NetLockMsg::Acquire(LockRequest {
        lock: LockId(lock),
        mode,
        txn: TxnId(txn),
        client: ClientAddr(1),
        tenant: TenantId(0),
        priority: Priority(0),
        issued_at_ns: 0,
    })
}

fn release(lock: u32, txn: u64, mode: LockMode) -> NetLockMsg {
    NetLockMsg::Release(ReleaseRequest {
        lock: LockId(lock),
        txn: TxnId(txn),
        mode,
        client: ClientAddr(1),
        priority: Priority(0),
    })
}

fn fcfs_dp(locks: u32) -> DataPlane {
    let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::small(8, 16_384, locks as usize));
    let stats: Vec<LockStats> = (0..locks)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: 1.0,
            contention: 64,
            home_server: 0,
        })
        .collect();
    apply_allocation(&mut dp, &knapsack_allocate(&stats, 16_384 * 8));
    dp
}

fn bench_fcfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataplane_fcfs");
    g.bench_function("uncontended_acquire_release", |b| {
        let mut dp = fcfs_dp(512);
        let mut i = 0u64;
        b.iter(|| {
            let lock = (i % 512) as u32;
            let a = dp.process(acquire(lock, i, LockMode::Exclusive), 0);
            let r = dp.process(release(lock, i, LockMode::Exclusive), 0);
            i += 1;
            black_box((a.len(), r.len()))
        });
    });
    g.bench_function("contended_handoff", |b| {
        // One lock, a standing queue of 8: each iteration releases the
        // head (grant handoff) and enqueues a replacement.
        let mut dp = fcfs_dp(4);
        for i in 0..8 {
            dp.process(acquire(0, i, LockMode::Exclusive), 0);
        }
        let mut i = 8u64;
        b.iter(|| {
            let r = dp.process(release(0, i - 8, LockMode::Exclusive), 0);
            dp.process(acquire(0, i, LockMode::Exclusive), 0);
            i += 1;
            black_box(r.len())
        });
    });
    g.finish();
}

fn bench_priority(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataplane_priority");
    g.bench_function("two_level_acquire_release", |b| {
        let mut dp = DataPlane::new_priority(&PriorityLayout::new(2, 128, 16));
        dp.directory_mut().set_switch_resident(LockId(0), 0, 0);
        let mut i = 0u64;
        b.iter(|| {
            let a = dp.process(acquire(0, i, LockMode::Exclusive), 0);
            let r = dp.process(release(0, i, LockMode::Exclusive), 0);
            i += 1;
            black_box((a.len(), r.len()))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_fcfs, bench_priority);
criterion_main!(benches);
