//! Benchmarks of the full switch data-plane state machine — the cost
//! the simulator charges per NetLock packet, and a sanity check that
//! the model itself is cheap enough to simulate line-rate traffic.
//!
//! The `algorithm2` group covers all four grant/release cases of the
//! paper's Algorithm 2 head-handoff logic (S→S, S→X, X→X, X→S) with a
//! caller-owned reusable `ActionBuf`, so these numbers track the
//! zero-allocation hot path the simulator actually runs. The
//! `trace_guard` group pins the cost of the analyzer hook: untraced
//! `process()` must not pay for the trace machinery beyond one
//! predictable branch (compare the two bench lines).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netlock_proto::{
    ClientAddr, LockId, LockMode, LockRequest, NetLockMsg, Priority, ReleaseRequest, TenantId,
    TxnId,
};
use netlock_switch::analysis::trace::new_sink;
use netlock_switch::control::{apply_allocation, knapsack_allocate, LockStats};
use netlock_switch::priority::PriorityLayout;
use netlock_switch::shared_queue::SharedQueueLayout;
use netlock_switch::{ActionBuf, DataPlane};

fn acquire(lock: u32, txn: u64, mode: LockMode) -> NetLockMsg {
    NetLockMsg::Acquire(LockRequest {
        lock: LockId(lock),
        mode,
        txn: TxnId(txn),
        client: ClientAddr(1),
        tenant: TenantId(0),
        priority: Priority(0),
        issued_at_ns: 0,
    })
}

fn release(lock: u32, txn: u64, mode: LockMode) -> NetLockMsg {
    NetLockMsg::Release(ReleaseRequest {
        lock: LockId(lock),
        txn: TxnId(txn),
        mode,
        client: ClientAddr(1),
        priority: Priority(0),
    })
}

fn fcfs_dp(locks: u32) -> DataPlane {
    let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::small(8, 16_384, locks as usize));
    let stats: Vec<LockStats> = (0..locks)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: 1.0,
            contention: 64,
            home_server: 0,
        })
        .collect();
    apply_allocation(&mut dp, &knapsack_allocate(&stats, 16_384 * 8));
    dp
}

fn bench_fcfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataplane_fcfs");
    g.bench_function("uncontended_acquire_release", |b| {
        let mut dp = fcfs_dp(512);
        let mut out = ActionBuf::new();
        let mut i = 0u64;
        b.iter(|| {
            let lock = (i % 512) as u32;
            dp.process(acquire(lock, i, LockMode::Exclusive), 0, &mut out);
            let a = out.len();
            dp.process(release(lock, i, LockMode::Exclusive), 0, &mut out);
            i += 1;
            black_box((a, out.len()))
        });
    });
    g.bench_function("contended_handoff", |b| {
        // One lock, a standing queue of 8: each iteration releases the
        // head (grant handoff) and enqueues a replacement.
        let mut dp = fcfs_dp(4);
        let mut out = ActionBuf::new();
        for i in 0..8 {
            dp.process(acquire(0, i, LockMode::Exclusive), 0, &mut out);
        }
        let mut i = 8u64;
        b.iter(|| {
            dp.process(release(0, i - 8, LockMode::Exclusive), 0, &mut out);
            let r = out.len();
            dp.process(acquire(0, i, LockMode::Exclusive), 0, &mut out);
            i += 1;
            black_box(r)
        });
    });
    g.finish();
}

/// All four Algorithm 2 release cases, each at a steady queue shape.
fn bench_algorithm2(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataplane_algorithm2");

    // Case S→S: a shared holder releases while shared holders remain —
    // no grant is produced (the head run shrinks).
    g.bench_function("shared_release_no_grant", |b| {
        let mut dp = fcfs_dp(4);
        let mut out = ActionBuf::new();
        for i in 0..4 {
            dp.process(acquire(0, i, LockMode::Shared), 0, &mut out);
        }
        let mut i = 4u64;
        b.iter(|| {
            dp.process(release(0, i - 4, LockMode::Shared), 0, &mut out);
            let r = out.len();
            dp.process(acquire(0, i, LockMode::Shared), 0, &mut out);
            i += 1;
            black_box(r)
        });
    });

    // Case S→X: the last shared holder releases and the head exclusive
    // waiter is granted.
    g.bench_function("last_shared_grants_exclusive", |b| {
        let mut dp = fcfs_dp(4);
        let mut out = ActionBuf::new();
        // Standing pattern: one shared holder, one exclusive waiter.
        dp.process(acquire(0, 0, LockMode::Shared), 0, &mut out);
        dp.process(acquire(0, 1, LockMode::Exclusive), 0, &mut out);
        let mut i = 2u64;
        b.iter(|| {
            // Release the shared holder → grants the exclusive waiter;
            // release it too, then restore the standing pattern.
            dp.process(release(0, i - 2, LockMode::Shared), 0, &mut out);
            let grants = out.len();
            dp.process(release(0, i - 1, LockMode::Exclusive), 0, &mut out);
            dp.process(acquire(0, i, LockMode::Shared), 0, &mut out);
            dp.process(acquire(0, i + 1, LockMode::Exclusive), 0, &mut out);
            i += 2;
            black_box(grants)
        });
    });

    // Case X→X: an exclusive holder releases and exactly one queued
    // exclusive waiter is granted (serial handoff).
    g.bench_function("exclusive_handoff", |b| {
        let mut dp = fcfs_dp(4);
        let mut out = ActionBuf::new();
        for i in 0..8 {
            dp.process(acquire(0, i, LockMode::Exclusive), 0, &mut out);
        }
        let mut i = 8u64;
        b.iter(|| {
            dp.process(release(0, i - 8, LockMode::Exclusive), 0, &mut out);
            let r = out.len();
            dp.process(acquire(0, i, LockMode::Exclusive), 0, &mut out);
            i += 1;
            black_box(r)
        });
    });

    // Case X→S: an exclusive holder releases in front of a run of
    // shared waiters — the whole run is granted in one pass cascade.
    g.bench_function("exclusive_release_shared_cascade", |b| {
        let mut dp = fcfs_dp(4);
        let mut out = ActionBuf::new();
        dp.process(acquire(0, 0, LockMode::Exclusive), 0, &mut out);
        for i in 1..9 {
            dp.process(acquire(0, i, LockMode::Shared), 0, &mut out);
        }
        let mut i = 9u64;
        b.iter(|| {
            // Release X → 8 shared grants; re-acquire X (queues behind
            // them), release the 8 shared → X granted; refill shared.
            dp.process(release(0, i - 9, LockMode::Exclusive), 0, &mut out);
            let cascade = out.len();
            dp.process(acquire(0, i, LockMode::Exclusive), 0, &mut out);
            for k in 0..8 {
                dp.process(release(0, i - 8 + k, LockMode::Shared), 0, &mut out);
            }
            for k in 1..9 {
                dp.process(acquire(0, i + k, LockMode::Shared), 0, &mut out);
            }
            i += 9;
            black_box(cascade)
        });
    });

    g.finish();
}

/// Guard: `process()` with no trace sink attached must cost the same
/// as before the analyzer existed (one predictable branch); compare
/// against the traced line to see what a sink costs.
fn bench_trace_guard(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataplane_trace_guard");
    g.bench_function("untraced", |b| {
        let mut dp = fcfs_dp(4);
        let mut out = ActionBuf::new();
        let mut i = 0u64;
        b.iter(|| {
            dp.process(acquire(0, i, LockMode::Exclusive), 0, &mut out);
            dp.process(release(0, i, LockMode::Exclusive), 0, &mut out);
            i += 1;
            black_box(out.len())
        });
    });
    g.bench_function("traced", |b| {
        let mut dp = fcfs_dp(4);
        let sink = new_sink();
        dp.set_trace_sink(Some(sink.clone()));
        let mut out = ActionBuf::new();
        let mut i = 0u64;
        b.iter(|| {
            dp.process(acquire(0, i, LockMode::Exclusive), 0, &mut out);
            dp.process(release(0, i, LockMode::Exclusive), 0, &mut out);
            i += 1;
            // Drain the buffer so it doesn't grow across iterations.
            black_box(sink.lock().unwrap().take().len())
        });
    });
    g.finish();
}

fn bench_priority(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataplane_priority");
    g.bench_function("two_level_acquire_release", |b| {
        let mut dp = DataPlane::new_priority(&PriorityLayout::new(2, 128, 16));
        dp.directory_mut().set_switch_resident(LockId(0), 0, 0);
        let mut out = ActionBuf::new();
        let mut i = 0u64;
        b.iter(|| {
            dp.process(acquire(0, i, LockMode::Exclusive), 0, &mut out);
            let a = out.len();
            dp.process(release(0, i, LockMode::Exclusive), 0, &mut out);
            i += 1;
            black_box((a, out.len()))
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fcfs,
    bench_algorithm2,
    bench_trace_guard,
    bench_priority
);
criterion_main!(benches);
