//! Ablations of NetLock's design choices (DESIGN.md §6):
//!
//! 1. **Pooled shared queue vs static equal partitions.** The shared
//!    queue exists so per-lock regions can be sized to measured
//!    contention; the ablation statically splits the same memory
//!    equally and measures the throughput lost to fragmentation.
//! 2. **One-RTT transactions vs two-step acquire-then-fetch.** §4.1's
//!    grant-forwarding optimization, measured as lock-to-data latency.
//!
//! The comparisons are printed once at startup (shape numbers for
//! EXPERIMENTS.md); Criterion then times the underlying runs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netlock_bench::TimeScale;
use netlock_core::prelude::*;
use netlock_proto::{LockId, LockMode};
use netlock_sim::SimDuration;
use netlock_switch::control::Allocation;
use netlock_switch::SwitchConfig;

fn tiny() -> TimeScale {
    TimeScale {
        warmup: SimDuration::from_millis(2),
        measure: SimDuration::from_millis(8),
    }
}

/// The skewed workload that motivates runtime-adjustable regions
/// (Figure 5): 4 heavily contended locks (16 workers each) and 252
/// near-idle locks. Contention-sized regions need 33 slots on the hot
/// locks and 1 elsewhere; a static equal split cannot express that.
const HOT: u32 = 4;
const COLD: u32 = 252;
const CAPACITY: u32 = 4 * 33 + 252; // exactly the sized footprint

fn skew_stats() -> Vec<LockStats> {
    let mut v: Vec<LockStats> = (0..HOT)
        .map(|l| LockStats {
            lock: LockId(l),
            rate: 1_000.0,
            contention: 33,
            home_server: 0,
        })
        .collect();
    v.extend((HOT..HOT + COLD).map(|l| LockStats {
        lock: LockId(l),
        rate: 1.0,
        contention: 1,
        home_server: 0,
    }));
    v
}

fn run_skew(alloc: &Allocation, scale: TimeScale) -> f64 {
    let mut rack = Rack::build(RackConfig {
        seed: 71,
        lock_servers: 1,
        ..Default::default()
    });
    rack.program(alloc);
    // Two clients of 16 workers hammer the hot locks; one client roams
    // the cold ones.
    for _ in 0..2 {
        rack.add_txn_client(
            TxnClientConfig {
                workers: 16,
                ..Default::default()
            },
            Box::new(SingleLockSource {
                locks: (0..HOT).map(LockId).collect(),
                mode: LockMode::Exclusive,
                // Zero think: the grant-handoff path dominates, which is
                // exactly where a starved q1 pays the q2 round trips.
                think: SimDuration::ZERO,
            }),
        );
    }
    rack.add_txn_client(
        TxnClientConfig {
            workers: 8,
            ..Default::default()
        },
        Box::new(SingleLockSource {
            locks: (HOT..HOT + COLD).map(LockId).collect(),
            mode: LockMode::Exclusive,
            think: SimDuration::from_micros(20),
        }),
    );
    warmup_and_measure(&mut rack, scale.warmup, scale.measure).lock_rps()
}

/// Contention-sized regions (what the pooled shared queue enables).
fn run_pooled(scale: TimeScale) -> f64 {
    run_skew(&knapsack_allocate(&skew_stats(), CAPACITY), scale)
}

/// Static equal partitions over the same locks and the same memory.
fn run_equal_partition(scale: TimeScale) -> f64 {
    let stats = skew_stats();
    let equal = CAPACITY / (HOT + COLD); // 1 slot per lock
    let alloc = Allocation {
        in_switch: stats
            .iter()
            .map(|s| (s.lock, equal.max(1), s.home_server))
            .collect(),
        in_server: vec![],
    };
    run_skew(&alloc, scale)
}

/// Micro acquire→data latency with and without one-RTT forwarding.
fn run_one_rtt(one_rtt: bool, scale: TimeScale) -> f64 {
    let mut rack = Rack::build(RackConfig {
        seed: 77,
        lock_servers: 1,
        db_servers: 2,
        switch: SwitchConfig {
            one_rtt,
            ..Default::default()
        },
        ..Default::default()
    });
    let locks: Vec<LockId> = (0..256).map(LockId).collect();
    let stats: Vec<LockStats> = locks
        .iter()
        .map(|&lock| LockStats {
            lock,
            rate: 1.0,
            contention: 64,
            home_server: 0,
        })
        .collect();
    rack.program(&knapsack_allocate(&stats, 100_000));
    for _ in 0..4 {
        rack.add_micro_client(MicroClientConfig {
            rate_rps: 100_000.0,
            locks: locks.clone(),
            mode: LockMode::Exclusive,
            ..Default::default()
        });
    }
    let stats = warmup_and_measure(&mut rack, scale.warmup, scale.measure);
    // With one-RTT on, the client's "grant" latency already includes
    // the data fetch; without it, add the separate fetch round trip the
    // client would need (client→db→client plus db service).
    let base = stats.lock_latency_summary().avg_ns;
    if one_rtt {
        base
    } else {
        base + 2.0 * 1_200.0 + 800.0 + 5_000.0 // extra RTT + fetch + client processing
    }
}

fn bench_ablation(c: &mut Criterion) {
    // Print the ablation comparison once.
    let pooled = run_pooled(tiny());
    let equal = run_equal_partition(tiny());
    println!(
        "# ablation: contention-sized regions {:.2} MRPS vs equal static partitions {:.2} MRPS (same memory, skewed workload)",
        pooled / 1e6,
        equal / 1e6
    );
    let one = run_one_rtt(true, tiny());
    let two = run_one_rtt(false, tiny());
    println!(
        "# ablation: lock+data latency one-RTT {:.1} us vs two-step {:.1} us",
        one / 1e3,
        two / 1e3
    );
    assert!(
        pooled > equal * 1.2,
        "contention-sized regions must beat equal partitions on skew: {pooled} vs {equal}"
    );
    assert!(one < two, "one-RTT must reduce lock+data latency");

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("pooled_queue_tpcc", |b| {
        b.iter(|| black_box(run_pooled(tiny())));
    });
    g.bench_function("equal_partition_tpcc", |b| {
        b.iter(|| black_box(run_equal_partition(tiny())));
    });
    g.bench_function("one_rtt_micro", |b| {
        b.iter(|| black_box(run_one_rtt(true, tiny())));
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
