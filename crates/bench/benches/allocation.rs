//! Benchmarks of the control-plane memory allocator (Algorithm 3):
//! how fast the knapsack allocation runs at realistic lock counts, and
//! the quality gap vs the random strawman.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use netlock_proto::LockId;
use netlock_switch::control::{knapsack_allocate, random_allocate, LockStats};

fn skewed_stats(n: usize) -> Vec<LockStats> {
    (0..n)
        .map(|i| LockStats {
            lock: LockId(i as u32),
            // Zipf-ish rates: hot head, long tail.
            rate: 1_000.0 / (i as f64 + 1.0),
            contention: 4 + (i % 32) as u32,
            home_server: i % 4,
        })
        .collect()
}

fn bench_knapsack(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocation");
    for n in [1_000usize, 10_000, 100_000] {
        let stats = skewed_stats(n);
        g.bench_with_input(BenchmarkId::new("knapsack", n), &stats, |b, stats| {
            b.iter(|| black_box(knapsack_allocate(stats, 100_000)));
        });
    }
    let stats = skewed_stats(10_000);
    g.bench_function("random_10000", |b| {
        b.iter(|| black_box(random_allocate(&stats, 100_000, 7)));
    });
    g.finish();
}

fn bench_quality(c: &mut Criterion) {
    // Not a speed benchmark: asserts the quality gap stays large, so a
    // regression in the allocator shows up in `cargo bench` output.
    let stats = skewed_stats(10_000);
    let cap = 5_000;
    let knap = knapsack_allocate(&stats, cap).objective(&stats);
    let rand = random_allocate(&stats, cap, 7).objective(&stats);
    assert!(
        knap > 2.0 * rand,
        "knapsack objective {knap} should dominate random {rand}"
    );
    let mut g = c.benchmark_group("allocation_quality");
    g.bench_function("objective_evaluation", |b| {
        let alloc = knapsack_allocate(&stats, cap);
        b.iter(|| black_box(alloc.objective(&stats)));
    });
    g.finish();
}

criterion_group!(benches, bench_knapsack, bench_quality);
criterion_main!(benches);
