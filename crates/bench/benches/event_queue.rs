//! Micro-benchmarks of the simulator's event-scheduler hot path.
//!
//! Three variants over identical schedules: the calendar queue with an
//! inline payload (the new path), a plain `BinaryHeap` with the same
//! inline payload (structure-only comparison), and a `BinaryHeap` of
//! boxed dispatch closures (what `Simulator` actually did before —
//! one heap allocation plus an indirect call per event). The third is
//! the honest before/after; the second isolates how much of the gap
//! is the queue structure vs. the allocation-free payload.
//! Depth/delay regimes mirror the rack workloads (RPC round-trips of
//! a few microseconds plus sparse long timers).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netlock_sim::{EventQueue, SimDuration, SimTime};

/// Deterministic xorshift so both queues see the same schedule.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Churn `rounds` events through the calendar queue at a steady depth,
/// with delays drawn uniformly from `[0, max_delay)` nanoseconds.
fn churn_calendar(depth: usize, rounds: usize, max_delay: u64) -> u64 {
    let mut q = EventQueue::new();
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut seq = 0u64;
    let mut now = SimTime::ZERO;
    for _ in 0..depth {
        q.push(now + SimDuration(xorshift(&mut rng) % max_delay), seq, seq);
        seq += 1;
    }
    let mut acc = 0u64;
    for _ in 0..rounds {
        let (at, _, item) = q.pop().expect("queue kept at steady depth");
        now = at;
        acc = acc.wrapping_add(item);
        q.push(now + SimDuration(xorshift(&mut rng) % max_delay), seq, seq);
        seq += 1;
    }
    acc
}

/// Same schedule through the reference `BinaryHeap<Reverse<...>>`.
fn churn_heap(depth: usize, rounds: usize, max_delay: u64) -> u64 {
    let mut q: BinaryHeap<Reverse<(SimTime, u64, u64)>> = BinaryHeap::new();
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut seq = 0u64;
    let mut now = SimTime::ZERO;
    for _ in 0..depth {
        q.push(Reverse((
            now + SimDuration(xorshift(&mut rng) % max_delay),
            seq,
            seq,
        )));
        seq += 1;
    }
    let mut acc = 0u64;
    for _ in 0..rounds {
        let Reverse((at, _, item)) = q.pop().expect("queue kept at steady depth");
        now = at;
        acc = acc.wrapping_add(item);
        q.push(Reverse((
            now + SimDuration(xorshift(&mut rng) % max_delay),
            seq,
            seq,
        )));
        seq += 1;
    }
    acc
}

/// The pre-calendar-queue hot path: a heap of boxed dispatch closures,
/// one allocation + one indirect call per event.
#[allow(clippy::type_complexity)]
fn churn_heap_boxed(depth: usize, rounds: usize, max_delay: u64) -> u64 {
    struct Ev {
        at: SimTime,
        seq: u64,
        run: Box<dyn FnOnce(&mut u64)>,
    }
    impl PartialEq for Ev {
        fn eq(&self, other: &Self) -> bool {
            (self.at, self.seq) == (other.at, other.seq)
        }
    }
    impl Eq for Ev {}
    impl PartialOrd for Ev {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Ev {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.at, self.seq).cmp(&(other.at, other.seq))
        }
    }
    let mut q: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut seq = 0u64;
    let mut now = SimTime::ZERO;
    let push = |q: &mut BinaryHeap<Reverse<Ev>>, now: SimTime, rng: &mut u64, seq: &mut u64| {
        let item = *seq;
        q.push(Reverse(Ev {
            at: now + SimDuration(xorshift(rng) % max_delay),
            seq: *seq,
            run: Box::new(move |acc: &mut u64| *acc = acc.wrapping_add(item)),
        }));
        *seq += 1;
    };
    for _ in 0..depth {
        push(&mut q, now, &mut rng, &mut seq);
    }
    let mut acc = 0u64;
    for _ in 0..rounds {
        let Reverse(ev) = q.pop().expect("queue kept at steady depth");
        now = ev.at;
        (ev.run)(&mut acc);
        push(&mut q, now, &mut rng, &mut seq);
    }
    acc
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    // Depths bracket what the figure harnesses sustain (hundreds to a
    // few thousand in-flight events); 4 us delays model RPC hops
    // inside the calendar horizon, 40 ms delays force overflow-tier
    // traffic (client think times, sampling timers).
    for &depth in &[64usize, 1_024, 8_192] {
        g.bench_function(&format!("calendar_depth_{depth}_short"), |b| {
            b.iter(|| black_box(churn_calendar(depth, 10_000, 4_096)));
        });
        g.bench_function(&format!("heap_depth_{depth}_short"), |b| {
            b.iter(|| black_box(churn_heap(depth, 10_000, 4_096)));
        });
        g.bench_function(&format!("heap_boxed_depth_{depth}_short"), |b| {
            b.iter(|| black_box(churn_heap_boxed(depth, 10_000, 4_096)));
        });
    }
    g.bench_function("calendar_depth_1024_long", |b| {
        b.iter(|| black_box(churn_calendar(1_024, 10_000, 40_000_000)));
    });
    g.bench_function("heap_depth_1024_long", |b| {
        b.iter(|| black_box(churn_heap(1_024, 10_000, 40_000_000)));
    });
    g.bench_function("heap_boxed_depth_1024_long", |b| {
        b.iter(|| black_box(churn_heap_boxed(1_024, 10_000, 40_000_000)));
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
